//! Offline stand-in for the `criterion` crate.
//!
//! The build container has no network access, so this workspace vendors the
//! slice of criterion's API its benches use: [`Criterion`],
//! [`BenchmarkGroup`], [`Bencher::iter`]/[`Bencher::iter_batched`],
//! [`Throughput`], [`BenchmarkId`], and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Measurement is deliberately simple: each benchmark is warmed up briefly,
//! then timed over enough iterations to fill a short measurement window,
//! and the mean time per iteration is printed. There is no statistical
//! analysis, outlier detection, or HTML report — numbers are indicative,
//! not publication-grade.

#![forbid(unsafe_code)]

use std::fmt;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity function.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// How `iter_batched` amortises setup cost. This stand-in runs one routine
/// call per setup call regardless of variant.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One routine call per batch.
    PerIteration,
}

/// Units processed per iteration, for derived rates in the output.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Identifier for one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Just the parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    warm_up: Duration,
    measure: Duration,
    /// Mean nanoseconds per iteration, filled in by `iter`/`iter_batched`.
    mean_ns: f64,
}

impl Bencher {
    /// Times `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: also calibrates how many calls fit in the window.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = self.warm_up.as_secs_f64() / warm_iters.max(1) as f64;
        let target = ((self.measure.as_secs_f64() / per_iter) as u64).max(1);

        let start = Instant::now();
        for _ in 0..target {
            black_box(routine());
        }
        let elapsed = start.elapsed();
        self.mean_ns = elapsed.as_nanos() as f64 / target as f64;
    }

    /// Times `routine` over fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        let mut iters: u64 = 0;
        let deadline = Instant::now() + self.measure;
        while Instant::now() < deadline {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
            iters += 1;
        }
        self.mean_ns = total.as_nanos() as f64 / iters.max(1) as f64;
    }
}

fn run_one(label: &str, throughput: Option<Throughput>, f: impl FnOnce(&mut Bencher)) {
    let mut bencher = Bencher {
        warm_up: Duration::from_millis(30),
        measure: Duration::from_millis(100),
        mean_ns: 0.0,
    };
    f(&mut bencher);
    let mut line = format!("{label:<50} {:>12.1} ns/iter", bencher.mean_ns);
    if let Some(tp) = throughput {
        let per_sec = |units: u64| units as f64 / (bencher.mean_ns / 1e9);
        match tp {
            Throughput::Bytes(bytes) => {
                line.push_str(&format!(
                    "  {:>10.1} MiB/s",
                    per_sec(bytes) / (1024.0 * 1024.0)
                ));
            }
            Throughput::Elements(elems) => {
                line.push_str(&format!("  {:>10.1} elem/s", per_sec(elems)));
            }
        }
    }
    println!("{line}");
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets the sample count (accepted for API compatibility; this
    /// stand-in uses a fixed measurement window instead).
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Sets the measurement window.
    pub fn measurement_time(&mut self, _time: Duration) -> &mut Self {
        self
    }

    /// Declares the units processed per iteration for rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id), self.throughput, f);
        self
    }

    /// Runs one benchmark with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id), self.throughput, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        run_one(id, None, f);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            _criterion: self,
        }
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_bencher() -> Bencher {
        Bencher {
            warm_up: Duration::from_millis(1),
            measure: Duration::from_millis(2),
            mean_ns: 0.0,
        }
    }

    #[test]
    fn iter_measures_something() {
        let mut b = quick_bencher();
        b.iter(|| black_box(1u64).wrapping_mul(3));
        assert!(b.mean_ns > 0.0);
    }

    #[test]
    fn iter_batched_measures_something() {
        let mut b = quick_bencher();
        b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput);
        assert!(b.mean_ns > 0.0);
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("f", 32).to_string(), "f/32");
        assert_eq!(BenchmarkId::from_parameter(8).to_string(), "8");
    }
}
