//! Offline stand-in for the `parking_lot` crate.
//!
//! The build container has no network access, so this workspace vendors the
//! tiny slice of `parking_lot`'s API it actually uses: [`Mutex`], [`RwLock`]
//! and [`Condvar`] with the poison-free calling convention (`lock()` returns
//! the guard directly). Everything is implemented over `std::sync`; a
//! poisoned std lock (a thread panicked while holding it) is recovered into
//! its inner value, matching parking_lot's "no poisoning" semantics.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync;

/// A mutual-exclusion lock whose `lock()` returns the guard directly.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so Condvar::wait can temporarily take the std guard out.
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = match self.0.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        MutexGuard { inner: Some(guard) }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(sync::TryLockError::Poisoned(poisoned)) => Some(MutexGuard {
                inner: Some(poisoned.into_inner()),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_tuple("Mutex").field(&&*guard).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner
            .as_ref()
            .expect("guard present outside Condvar::wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner
            .as_mut()
            .expect("guard present outside Condvar::wait")
    }
}

/// A reader-writer lock whose `read()`/`write()` return guards directly.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized>(sync::RwLockReadGuard<'a, T>);
/// Exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Creates a lock protecting `value`.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => RwLockReadGuard(g),
            Err(poisoned) => RwLockReadGuard(poisoned.into_inner()),
        }
    }

    /// Acquires the exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => RwLockWriteGuard(g),
            Err(poisoned) => RwLockWriteGuard(poisoned.into_inner()),
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("RwLock(..)")
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// A condition variable usable with [`Mutex`]/[`MutexGuard`].
#[derive(Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    /// Creates a condition variable.
    pub const fn new() -> Condvar {
        Condvar(sync::Condvar::new())
    }

    /// Atomically releases the guard's lock and waits for a notification,
    /// reacquiring the lock before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard present before wait");
        let reacquired = match self.0.wait(std_guard) {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        guard.inner = Some(reacquired);
    }

    /// Like [`Condvar::wait`] with an upper bound on the wait. Returns true
    /// if the wait timed out.
    pub fn wait_for<T>(&self, guard: &mut MutexGuard<'_, T>, timeout: std::time::Duration) -> bool {
        let std_guard = guard.inner.take().expect("guard present before wait");
        let (reacquired, result) = match self.0.wait_timeout(std_guard, timeout) {
            Ok((g, r)) => (g, r),
            Err(poisoned) => {
                let (g, r) = poisoned.into_inner();
                (g, r)
            }
        };
        guard.inner = Some(reacquired);
        result.timed_out()
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let waiter = std::thread::spawn(move || {
            let (lock, cvar) = &*pair2;
            let mut ready = lock.lock();
            while !*ready {
                cvar.wait(&mut ready);
            }
        });
        std::thread::sleep(Duration::from_millis(20));
        let (lock, cvar) = &*pair;
        *lock.lock() = true;
        cvar.notify_all();
        waiter.join().expect("waiter exits");
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = Arc::new(Mutex::new(7));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison it");
        })
        .join();
        assert_eq!(*m.lock(), 7);
    }
}
