//! Offline stand-in for the `crossbeam` crate.
//!
//! The build container has no network access, so this workspace vendors the
//! slice of `crossbeam`'s API it uses:
//!
//! * [`thread::scope`] — scoped threads whose closures receive a `&Scope`
//!   handle, built on `std::thread::scope` (stable since Rust 1.63). Unlike
//!   std, the crossbeam entry point returns `Result<R, Box<dyn Any + Send>>`
//!   so callers can observe worker panics instead of unwinding.
//! * [`channel`] — multi-producer multi-consumer bounded/unbounded channels
//!   with cloneable senders *and* receivers, implemented with a
//!   `Mutex<VecDeque>` + two `Condvar`s. Throughput is far below the real
//!   crate's lock-free implementation but the semantics match.

#![forbid(unsafe_code)]

/// Scoped threads with crossbeam's calling convention.
pub mod thread {
    use std::any::Any;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Handle passed to [`scope`] closures for spawning further threads.
    /// `Copy` so spawned closures can carry it into nested spawns.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Clone for Scope<'scope, 'env> {
        fn clone(&self) -> Self {
            *self
        }
    }

    impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

    /// Join handle for a thread spawned on a [`Scope`].
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread to finish, returning its result or the
        /// panic payload if it panicked.
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope handle so
        /// it can spawn nested workers (crossbeam convention).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let handle: Scope<'scope, 'env> = *self;
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(&handle)),
            }
        }
    }

    /// Runs `f` with a scope handle; all spawned threads are joined before
    /// this returns. If the main closure or any *unjoined* thread panicked,
    /// the panic payload is returned as `Err` (crossbeam semantics).
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

/// MPMC channels with crossbeam's API shape.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Shared<T> {
        queue: Mutex<State<T>>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    struct State<T> {
        items: VecDeque<T>,
        cap: Option<usize>,
        senders: usize,
        receivers: usize,
    }

    /// Sending half of a channel. Cloneable (multi-producer).
    pub struct Sender<T>(Arc<Shared<T>>);

    /// Receiving half of a channel. Cloneable (multi-consumer).
    pub struct Receiver<T>(Arc<Shared<T>>);

    /// Error returned by [`Sender::send`] when all receivers are gone.
    /// Carries the unsent message.
    pub struct SendError<T>(pub T);

    /// Error returned by [`Sender::try_send`]. Carries the unsent message.
    pub enum TrySendError<T> {
        /// Bounded channel at capacity; receivers still connected.
        Full(T),
        /// Every receiver dropped.
        Disconnected(T),
    }

    /// Error returned by [`Sender::send_timeout`]. Carries the unsent
    /// message.
    pub enum SendTimeoutError<T> {
        /// Bounded channel stayed full for the whole timeout; receivers
        /// still connected.
        Timeout(T),
        /// Every receiver dropped.
        Disconnected(T),
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel currently empty; senders still connected.
        Empty,
        /// Channel empty and every sender dropped.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// Channel empty and every sender dropped.
        Disconnected,
    }

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Debug for TrySendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TrySendError::Full(_) => f.write_str("TrySendError::Full(..)"),
                TrySendError::Disconnected(_) => f.write_str("TrySendError::Disconnected(..)"),
            }
        }
    }

    impl<T> fmt::Display for TrySendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TrySendError::Full(_) => f.write_str("sending on a full channel"),
                TrySendError::Disconnected(_) => f.write_str("sending on a disconnected channel"),
            }
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl<T> fmt::Debug for SendTimeoutError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                SendTimeoutError::Timeout(_) => f.write_str("SendTimeoutError::Timeout(..)"),
                SendTimeoutError::Disconnected(_) => {
                    f.write_str("SendTimeoutError::Disconnected(..)")
                }
            }
        }
    }

    impl<T> fmt::Display for SendTimeoutError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                SendTimeoutError::Timeout(_) => f.write_str("send timed out"),
                SendTimeoutError::Disconnected(_) => {
                    f.write_str("sending on a disconnected channel")
                }
            }
        }
    }

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty, disconnected channel")
        }
    }

    impl fmt::Display for TryRecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TryRecvError::Empty => f.write_str("channel empty"),
                TryRecvError::Disconnected => f.write_str("channel disconnected"),
            }
        }
    }

    impl fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                RecvTimeoutError::Timeout => f.write_str("receive timed out"),
                RecvTimeoutError::Disconnected => f.write_str("channel disconnected"),
            }
        }
    }

    impl<T> std::error::Error for SendError<T> {}
    impl<T> std::error::Error for TrySendError<T> {}
    impl<T> std::error::Error for SendTimeoutError<T> {}
    impl std::error::Error for RecvError {}
    impl std::error::Error for TryRecvError {}
    impl std::error::Error for RecvTimeoutError {}

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_cap(None)
    }

    /// Creates a bounded MPMC channel holding at most `cap` messages.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_cap(Some(cap))
    }

    fn with_cap<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(State {
                items: VecDeque::new(),
                cap,
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (Sender(Arc::clone(&shared)), Receiver(shared))
    }

    fn lock<T>(shared: &Shared<T>) -> std::sync::MutexGuard<'_, State<T>> {
        match shared.queue.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    impl<T> Sender<T> {
        /// Sends a message, blocking while a bounded channel is full.
        /// Fails (returning the message) when every receiver is dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut state = lock(&self.0);
            loop {
                if state.receivers == 0 {
                    return Err(SendError(msg));
                }
                let full = state.cap.is_some_and(|c| state.items.len() >= c);
                if !full {
                    state.items.push_back(msg);
                    self.0.not_empty.notify_one();
                    return Ok(());
                }
                state = match self.0.not_full.wait(state) {
                    Ok(g) => g,
                    Err(poisoned) => poisoned.into_inner(),
                };
            }
        }

        /// Non-blocking send: fails with [`TrySendError::Full`] instead of
        /// blocking when a bounded channel is at capacity.
        pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
            let mut state = lock(&self.0);
            if state.receivers == 0 {
                return Err(TrySendError::Disconnected(msg));
            }
            if state.cap.is_some_and(|c| state.items.len() >= c) {
                return Err(TrySendError::Full(msg));
            }
            state.items.push_back(msg);
            self.0.not_empty.notify_one();
            Ok(())
        }

        /// Sends with an upper bound on the wait: blocks while a bounded
        /// channel is full, up to `timeout`, then fails returning the
        /// message.
        pub fn send_timeout(&self, msg: T, timeout: Duration) -> Result<(), SendTimeoutError<T>> {
            let deadline = Instant::now() + timeout;
            let mut state = lock(&self.0);
            loop {
                if state.receivers == 0 {
                    return Err(SendTimeoutError::Disconnected(msg));
                }
                let full = state.cap.is_some_and(|c| state.items.len() >= c);
                if !full {
                    state.items.push_back(msg);
                    self.0.not_empty.notify_one();
                    return Ok(());
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(SendTimeoutError::Timeout(msg));
                }
                let (guard, _result) = match self.0.not_full.wait_timeout(state, deadline - now) {
                    Ok(pair) => pair,
                    Err(poisoned) => poisoned.into_inner(),
                };
                state = guard;
            }
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            lock(&self.0).senders += 1;
            Sender(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = lock(&self.0);
            state.senders -= 1;
            if state.senders == 0 {
                drop(state);
                self.0.not_empty.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Receives a message, blocking until one arrives or every sender
        /// is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = lock(&self.0);
            loop {
                if let Some(item) = state.items.pop_front() {
                    self.0.not_full.notify_one();
                    return Ok(item);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = match self.0.not_empty.wait(state) {
                    Ok(g) => g,
                    Err(poisoned) => poisoned.into_inner(),
                };
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = lock(&self.0);
            if let Some(item) = state.items.pop_front() {
                self.0.not_full.notify_one();
                return Ok(item);
            }
            if state.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Receives with an upper bound on the wait.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut state = lock(&self.0);
            loop {
                if let Some(item) = state.items.pop_front() {
                    self.0.not_full.notify_one();
                    return Ok(item);
                }
                if state.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _result) = match self.0.not_empty.wait_timeout(state, deadline - now) {
                    Ok(pair) => pair,
                    Err(poisoned) => poisoned.into_inner(),
                };
                state = guard;
            }
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            lock(&self.0).items.len()
        }

        /// True when no messages are queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Receiver<T> {
            lock(&self.0).receivers += 1;
            Receiver(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut state = lock(&self.0);
            state.receivers -= 1;
            if state.receivers == 0 {
                drop(state);
                self.0.not_full.notify_all();
            }
        }
    }

    impl<T> Iterator for Receiver<T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.recv().ok()
        }
    }
}

#[cfg(test)]
mod tests {
    use std::time::Duration;

    #[test]
    fn scope_joins_and_collects() {
        let data = [1u32, 2, 3, 4];
        let sum: u32 = crate::thread::scope(|s| {
            let handles: Vec<_> = data.iter().map(|&x| s.spawn(move |_| x * 2)).collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("no panic"))
                .sum()
        })
        .expect("scope ok");
        assert_eq!(sum, 20);
    }

    #[test]
    fn scope_propagates_panic_as_err() {
        let result = crate::thread::scope(|_s| {
            panic!("boom");
        });
        assert!(result.is_err());
    }

    #[test]
    fn channel_mpmc_roundtrip() {
        let (tx, rx) = crate::channel::unbounded();
        let tx2 = tx.clone();
        tx.send(1).expect("send");
        tx2.send(2).expect("send");
        drop((tx, tx2));
        let mut got = vec![rx.recv().expect("recv"), rx.recv().expect("recv")];
        got.sort_unstable();
        assert_eq!(got, vec![1, 2]);
        assert!(rx.recv().is_err());
    }

    #[test]
    fn bounded_blocks_until_drained() {
        let (tx, rx) = crate::channel::bounded(1);
        tx.send(1).expect("first fits");
        let handle = std::thread::spawn(move || tx.send(2));
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.recv().expect("recv"), 1);
        handle.join().expect("no panic").expect("second sent");
        assert_eq!(rx.recv().expect("recv"), 2);
    }

    #[test]
    fn try_send_full_and_disconnected() {
        use crate::channel::TrySendError;
        let (tx, rx) = crate::channel::bounded(1);
        tx.try_send(1).expect("fits");
        assert!(matches!(tx.try_send(2), Err(TrySendError::Full(2))));
        assert_eq!(rx.recv().expect("recv"), 1);
        tx.try_send(3).expect("fits after drain");
        drop(rx);
        assert!(matches!(tx.try_send(4), Err(TrySendError::Disconnected(4))));
    }

    #[test]
    fn send_timeout_times_out_and_succeeds_after_drain() {
        use crate::channel::SendTimeoutError;
        let (tx, rx) = crate::channel::bounded(1);
        tx.send(1).expect("fits");
        // Full for the whole timeout: the message comes back.
        let err = tx.send_timeout(2, Duration::from_millis(20)).unwrap_err();
        assert!(matches!(err, SendTimeoutError::Timeout(2)));
        // A concurrent drain lets a blocked send_timeout through.
        let handle = std::thread::spawn(move || tx.send_timeout(3, Duration::from_secs(5)));
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.recv().expect("recv"), 1);
        handle.join().expect("no panic").expect("sent after drain");
        assert_eq!(rx.recv().expect("recv"), 3);
        drop(rx);
    }

    #[test]
    fn recv_timeout_times_out() {
        let (tx, rx) = crate::channel::unbounded::<u8>();
        let err = rx.recv_timeout(Duration::from_millis(10)).unwrap_err();
        assert_eq!(err, crate::channel::RecvTimeoutError::Timeout);
        drop(tx);
        let err = rx.recv_timeout(Duration::from_millis(10)).unwrap_err();
        assert_eq!(err, crate::channel::RecvTimeoutError::Disconnected);
    }
}
