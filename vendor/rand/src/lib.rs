//! Offline stand-in for the `rand` crate (0.8 API surface).
//!
//! The build container has no network access, so this workspace vendors the
//! slice of `rand` it uses: the [`RngCore`]/[`Rng`]/[`SeedableRng`] traits,
//! integer/float `gen_range`, byte-slice `fill`, and the [`rngs::SmallRng`]
//! / [`rngs::StdRng`] generators. Generators are xorshift64* seeded through
//! splitmix64 — deterministic and statistically fine for tests, simulation
//! jitter and benchmarks, but **not** cryptographically secure. Nothing in
//! this workspace draws key material from `rand` (wedge-crypto derives keys
//! from explicit seeds), so that trade-off is safe here.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level uniform bit source.
pub trait RngCore {
    /// Returns 32 uniform bits.
    fn next_u32(&mut self) -> u32;
    /// Returns 64 uniform bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with uniform bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Deterministic seeding.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that [`Rng::gen`] can produce.
pub trait Standard: Sized {
    /// Draws one uniform value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, i8, i16, i32);

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for i64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> i64 {
        rng.next_u64() as i64
    }
}

impl Standard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

impl Standard for u128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u128 {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl<const N: usize> Standard for [u8; N] {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> [u8; N] {
        let mut out = [0u8; N];
        rng.fill_bytes(&mut out);
        out
    }
}

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a uniform value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i64).wrapping_sub(start as i64) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add((rng.next_u64() % (span + 1)) as $t)
            }
        }
    )*};
}

impl_sample_range_int!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        start + f64::sample_standard(rng) * (end - start)
    }
}

/// Buffers that [`Rng::fill`] can populate.
pub trait Fill {
    /// Fills `self` with uniform data.
    fn fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl Fill for [u8] {
    fn fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        rng.fill_bytes(self);
    }
}

impl<const N: usize> Fill for [u8; N] {
    fn fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        rng.fill_bytes(self);
    }
}

/// High-level convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws one uniform value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a uniform value from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns true with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }

    /// Fills `dest` with uniform data.
    fn fill<T: Fill + ?Sized>(&mut self, dest: &mut T) {
        dest.fill_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// The generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// splitmix64: expands a 64-bit seed into well-mixed initial state.
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// xorshift64* core shared by both generators.
    #[derive(Clone, Debug)]
    struct Xorshift64Star {
        state: u64,
    }

    impl Xorshift64Star {
        fn from_u64(seed: u64) -> Xorshift64Star {
            let mut s = seed;
            let mut state = splitmix64(&mut s);
            if state == 0 {
                state = 0x2545_F491_4F6C_DD1D; // xorshift state must be non-zero
            }
            Xorshift64Star { state }
        }

        fn next(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }

    macro_rules! define_rng {
        ($(#[$doc:meta])* $name:ident) => {
            $(#[$doc])*
            #[derive(Clone, Debug)]
            pub struct $name(Xorshift64Star);

            impl SeedableRng for $name {
                fn seed_from_u64(state: u64) -> $name {
                    $name(Xorshift64Star::from_u64(state))
                }
            }

            impl RngCore for $name {
                fn next_u32(&mut self) -> u32 {
                    (self.0.next() >> 32) as u32
                }

                fn next_u64(&mut self) -> u64 {
                    self.0.next()
                }

                fn fill_bytes(&mut self, dest: &mut [u8]) {
                    for chunk in dest.chunks_mut(8) {
                        let word = self.0.next().to_le_bytes();
                        chunk.copy_from_slice(&word[..chunk.len()]);
                    }
                }
            }
        };
    }

    define_rng! {
        /// A small, fast, non-cryptographic generator.
        SmallRng
    }
    define_rng! {
        /// The "standard" generator. In this offline stand-in it is the
        /// same xorshift64* construction as [`SmallRng`] — deterministic,
        /// fast, and **not** cryptographically secure.
        StdRng
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::{SmallRng, StdRng};
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(1);
        let mut c = SmallRng::seed_from_u64(2);
        let (xa, xb, xc) = (a.gen::<u64>(), b.gen::<u64>(), c.gen::<u64>());
        assert_eq!(xa, xb);
        assert_ne!(xa, xc);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(5usize..=7);
            assert!((5..=7).contains(&w));
            let f = rng.gen_range(-0.5f64..=0.5);
            assert!((-0.5..=0.5).contains(&f));
            let i = rng.gen_range(-4i32..5);
            assert!((-4..5).contains(&i));
        }
    }

    #[test]
    fn fill_covers_slice() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut buf = vec![0u8; 37];
        rng.fill(buf.as_mut_slice());
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn rng_usable_through_mut_ref() {
        fn draw<R: super::RngCore + ?Sized>(rng: &mut R) -> u64 {
            use super::Rng as _;
            rng.gen_range(0..=u64::MAX)
        }
        let mut rng = SmallRng::seed_from_u64(4);
        let _ = draw(&mut rng);
    }
}
