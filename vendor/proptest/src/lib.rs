//! Offline stand-in for the `proptest` crate.
//!
//! The build container has no network access, so this workspace vendors the
//! slice of proptest's API its tests use: the [`Strategy`] trait with
//! `prop_map`/`prop_filter`/`prop_filter_map`, `any::<T>()`, integer range
//! strategies, tuple strategies, [`collection::vec`], [`Just`],
//! `prop_oneof!`, and the [`proptest!`]/`prop_assert*`/`prop_assume!`
//! macros driven by a deterministic per-test RNG.
//!
//! Differences from the real crate, chosen for simplicity:
//!
//! * **No shrinking.** A failing case reports the panic message with the
//!   case number; re-running is deterministic (the RNG is seeded from the
//!   test name), so failures reproduce exactly but are not minimised.
//! * `prop_assume!`/filter rejections skip the case rather than resampling
//!   it, with a bounded retry inside filter strategies.

#![forbid(unsafe_code)]

use std::fmt;

/// Deterministic generator used for test-case generation (xorshift64*).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from an arbitrary 64-bit value.
    pub fn new(seed: u64) -> TestRng {
        // splitmix64 so consecutive seeds give unrelated streams.
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        TestRng {
            state: if z == 0 { 0xDEAD_BEEF_CAFE_F00D } else { z },
        }
    }

    /// Returns 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Fills a byte slice with uniform data.
    pub fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

/// Why a generated test case did not complete.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case's inputs did not satisfy an assumption; skip it.
    Reject(String),
    /// An assertion failed.
    Fail(String),
}

impl TestCaseError {
    /// Builds a failure.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(msg.into())
    }

    /// Builds a rejection.
    pub fn reject(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Reject(msg) => write!(f, "rejected: {msg}"),
            TestCaseError::Fail(msg) => write!(f, "failed: {msg}"),
        }
    }
}

/// Result type produced by a generated test body.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration (`#![proptest_config(...)]`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` successful cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of test values.
///
/// Object-safe so strategies can be boxed (`prop_oneof!`); the combinators
/// require `Self: Sized` as in the real crate.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Keeps only values for which `f` returns true, retrying generation a
    /// bounded number of times.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(self, reason: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            reason,
            f,
        }
    }

    /// Maps values through `f`, retrying generation while `f` returns
    /// `None` (bounded).
    fn prop_filter_map<T, F: Fn(Self::Value) -> Option<T>>(
        self,
        reason: &'static str,
        f: F,
    ) -> FilterMap<Self, F>
    where
        Self: Sized,
    {
        FilterMap {
            inner: self,
            reason,
            f,
        }
    }

    /// Boxes the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A heap-allocated, type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

const FILTER_RETRIES: usize = 4096;

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    reason: &'static str,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..FILTER_RETRIES {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter({}) rejected {FILTER_RETRIES} candidates",
            self.reason
        );
    }
}

/// See [`Strategy::prop_filter_map`].
pub struct FilterMap<S, F> {
    inner: S,
    reason: &'static str,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> Option<T>> Strategy for FilterMap<S, F> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        for _ in 0..FILTER_RETRIES {
            if let Some(v) = (self.f)(self.inner.generate(rng)) {
                return v;
            }
        }
        panic!(
            "prop_filter_map({}) rejected {FILTER_RETRIES} candidates",
            self.reason
        );
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Chooses uniformly between boxed strategies (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].generate(rng)
    }
}

/// Values with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> u128 {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl<const N: usize> Arbitrary for [u8; N] {
    fn arbitrary(rng: &mut TestRng) -> [u8; N] {
        let mut out = [0u8; N];
        rng.fill_bytes(&mut out);
        out
    }
}

/// Strategy produced by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`: uniform over its whole domain.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = end.wrapping_sub(start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(rng.below(span + 1) as $t)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Strategy for `Vec<T>` with a length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    /// Generates vectors of values from `element` with length in `len`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty vec length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Deterministically runs the generated cases for one `proptest!` test.
///
/// Not part of the public proptest API — called by the macro expansion.
pub fn run_proptest_cases<F>(config: &ProptestConfig, test_name: &str, mut case: F)
where
    F: FnMut(&mut TestRng, u32) -> TestCaseResult,
{
    // FNV-1a over the test name: a stable seed so failures reproduce.
    let mut seed = 0xcbf2_9ce4_8422_2325u64;
    for byte in test_name.bytes() {
        seed ^= u64::from(byte);
        seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
    }

    let mut rejected = 0u32;
    for case_index in 0..config.cases {
        let mut rng = TestRng::new(seed ^ (u64::from(case_index) << 32));
        match case(&mut rng, case_index) {
            Ok(()) => {}
            Err(TestCaseError::Reject(_)) => rejected += 1,
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "proptest `{test_name}` failed at case {case_index}/{}: {msg}",
                    config.cases
                );
            }
        }
    }
    assert!(
        rejected < config.cases,
        "proptest `{test_name}`: every case was rejected by prop_assume!"
    );
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(left == right, $($fmt)*);
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(left != right, $($fmt)*);
    }};
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// Uniformly chooses between several strategies yielding the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Declares property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `body` over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($config); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::ProptestConfig::default()); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config = $config;
            $(let $arg = $strategy;)*
            $crate::run_proptest_cases(&config, stringify!($name), |rng, _case| {
                $(let $arg = $crate::Strategy::generate(&$arg, rng);)*
                (|| -> $crate::TestCaseResult { $body Ok(()) })()
            });
        }
    )*};
}

/// The glob-import surface (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };

    /// Namespace mirror so `prop::collection::vec(...)` resolves.
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_vecs_respect_bounds() {
        let strat = prop::collection::vec(3u8..10, 2..5);
        let mut rng = crate::TestRng::new(1);
        for _ in 0..200 {
            let v = crate::Strategy::generate(&strat, &mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&b| (3..10).contains(&b)));
        }
    }

    #[test]
    fn oneof_covers_all_options() {
        let strat = prop_oneof![Just(1u8), Just(2u8), (3u8..5).prop_map(|x| x)];
        let mut rng = crate::TestRng::new(7);
        let mut seen = [false; 5];
        for _ in 0..300 {
            let v = crate::Strategy::generate(&strat, &mut rng) as usize;
            seen[v.min(4)] = true;
        }
        assert!(seen[1] && seen[2] && (seen[3] || seen[4]));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_roundtrip(x in any::<u64>(), bytes in prop::collection::vec(any::<u8>(), 0..16)) {
            prop_assume!(x != 42);
            prop_assert!(bytes.len() < 16);
            prop_assert_eq!(x.wrapping_add(1).wrapping_sub(1), x);
            prop_assert_ne!(x, 42);
        }

        #[test]
        fn tuple_strategies_compose(pair in (0u8..4, 10u64..20).prop_map(|(a, b)| (a, b))) {
            prop_assert!(pair.0 < 4 && (10..20).contains(&pair.1));
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics() {
        crate::run_proptest_cases(
            &ProptestConfig::with_cases(8),
            "always_fails",
            |_rng, _case| Err(TestCaseError::fail("nope")),
        );
    }
}
