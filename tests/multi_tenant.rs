//! Platform multi-tenancy: several independent Offchain Nodes (separate
//! operators, separate contract suites) share one chain without
//! interference — including isolated punishments.

use std::sync::Arc;
use std::time::Duration;

use wedgeblock::chain::{Chain, ChainConfig, Wei};
use wedgeblock::contracts::{Punishment, PunishmentStatus};
use wedgeblock::core::{
    deploy_service, NodeBehavior, NodeConfig, OffchainNode, Publisher, ServiceConfig, Stage2Verdict,
};
use wedgeblock::crypto::Identity;
use wedgeblock::sim::Clock;

struct Tenant {
    node: Arc<OffchainNode>,
    publisher: Publisher,
    punishment: wedgeblock::chain::Address,
}

fn tenant(chain: &Arc<Chain>, tag: &str, behavior: NodeBehavior) -> Tenant {
    let node_id = Identity::from_seed(format!("tenant-node-{tag}").as_bytes());
    let client_id = Identity::from_seed(format!("tenant-client-{tag}").as_bytes());
    chain.fund(node_id.address(), Wei::from_eth(1000));
    chain.fund(client_id.address(), Wei::from_eth(1000));
    let deployment = deploy_service(
        chain,
        &node_id,
        client_id.address(),
        &ServiceConfig {
            escrow: Wei::from_eth(4),
            payment_terms: None,
        },
    )
    .unwrap();
    let dir = std::env::temp_dir().join(format!("wedge-tenant-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let node = Arc::new(
        OffchainNode::start(
            node_id,
            NodeConfig {
                batch_size: 20,
                batch_linger: Duration::from_millis(5),
                behavior,
                ..Default::default()
            },
            Arc::clone(chain),
            deployment.root_record,
            &dir,
        )
        .unwrap(),
    );
    let publisher = Publisher::new(
        client_id,
        Arc::clone(&node),
        Arc::clone(chain),
        deployment.root_record,
        Some(deployment.punishment),
    );
    Tenant {
        node,
        publisher,
        punishment: deployment.punishment,
    }
}

#[test]
fn tenants_share_the_chain_without_interference() {
    let clock = Clock::compressed(2000.0);
    let chain = Chain::new(clock, ChainConfig::default());
    let _miner = chain.start_miner();

    // Three tenants: two honest, one equivocating.
    let mut honest_a = tenant(&chain, "a", NodeBehavior::Honest);
    let mut honest_b = tenant(&chain, "b", NodeBehavior::Honest);
    let mut evil = tenant(
        &chain,
        "evil",
        NodeBehavior::CommitWrongRoot { from_log: 0 },
    );

    let data = |tag: &str| -> Vec<Vec<u8>> {
        (0..20).map(|i| format!("{tag}-{i}").into_bytes()).collect()
    };
    let out_a = honest_a.publisher.append_batch(data("a")).unwrap();
    let out_b = honest_b.publisher.append_batch(data("b")).unwrap();
    let out_evil = evil.publisher.append_batch(data("evil")).unwrap();

    honest_a
        .node
        .wait_stage2_idle(Duration::from_secs(600))
        .unwrap();
    honest_b
        .node
        .wait_stage2_idle(Duration::from_secs(600))
        .unwrap();
    evil.node
        .wait_stage2_idle(Duration::from_secs(600))
        .unwrap();

    // Each tenant's log ids start at 0 on its own Root Record — identical
    // indices, different contracts, no collisions.
    assert_eq!(out_a.responses[0].entry_id.log_id, 0);
    assert_eq!(out_b.responses[0].entry_id.log_id, 0);
    assert_eq!(
        honest_a
            .publisher
            .verify_blockchain_commit(&out_a.responses[0])
            .unwrap(),
        Stage2Verdict::Committed
    );
    assert_eq!(
        honest_b
            .publisher
            .verify_blockchain_commit(&out_b.responses[0])
            .unwrap(),
        Stage2Verdict::Committed
    );

    // Only the cheating tenant's escrow is touched.
    let receipt = evil
        .publisher
        .verify_all_and_punish(&out_evil.responses)
        .unwrap()
        .expect("evil tenant punished");
    assert!(receipt.status.is_success());
    assert_eq!(chain.balance(evil.punishment), Wei::ZERO);
    assert_eq!(chain.balance(honest_a.punishment), Wei::from_eth(4));
    assert_eq!(chain.balance(honest_b.punishment), Wei::from_eth(4));
    let status = |addr| {
        Punishment::decode_status(&chain.view(addr, &Punishment::status_calldata()).unwrap())
            .unwrap()
    };
    assert_eq!(status(evil.punishment), PunishmentStatus::Punished);
    assert_eq!(status(honest_a.punishment), PunishmentStatus::Active);
    assert_eq!(status(honest_b.punishment), PunishmentStatus::Active);

    // Cross-tenant evidence is worthless: an honest tenant's response
    // cannot drain another tenant's escrow (different offchain_address).
    let cross = Punishment::invoke_calldata(
        out_a.responses[0].entry_id.log_id,
        &out_a.responses[0].merkle_root,
        &out_a.responses[0].proof.to_bytes(),
        &out_a.responses[0].leaf,
        &out_a.responses[0].signature,
    );
    let client_b = Identity::from_seed(b"tenant-client-b");
    let tx = chain
        .call_contract(
            client_b.secret_key(),
            honest_b.punishment,
            Wei::ZERO,
            cross,
            wedgeblock::chain::Gas(5_000_000),
        )
        .unwrap();
    let receipt = chain.wait_for_receipt(tx).unwrap();
    assert!(
        !receipt.status.is_success(),
        "cross-tenant evidence rejected"
    );
    assert_eq!(chain.balance(honest_b.punishment), Wei::from_eth(4));
}
