//! Liveness properties (paper §4.7): replication against omission attacks,
//! and the behaviour of clients when the node stalls stage 2.

use std::sync::Arc;
use std::time::Duration;

use wedgeblock::chain::{Chain, ChainConfig, Wei};
use wedgeblock::core::{
    deploy_service, NodeBehavior, NodeConfig, OffchainNode, Publisher, ServiceConfig, Stage2Verdict,
};
use wedgeblock::crypto::Identity;
use wedgeblock::sim::Clock;
use wedgeblock::storage::{LogStore, StoreConfig};

fn payloads(n: usize) -> Vec<Vec<u8>> {
    (0..n)
        .map(|i| format!("liveness-{i}").into_bytes())
        .collect()
}

#[test]
fn replicas_hold_the_data_after_an_extreme_omission_attack() {
    // The node replicates batches to 2 followers, then "destroys" its local
    // tail. The replicas still hold every record — the decentralized-storage
    // mitigation of §4.7.
    let clock = Clock::compressed(2000.0);
    let chain = Chain::new(clock, ChainConfig::default());
    let node_id = Identity::from_seed(b"liveness-node");
    let client_id = Identity::from_seed(b"liveness-client");
    chain.fund(node_id.address(), Wei::from_eth(100));
    chain.fund(client_id.address(), Wei::from_eth(100));
    let _miner = chain.start_miner();
    let deployment = deploy_service(
        &chain,
        &node_id,
        client_id.address(),
        &ServiceConfig {
            escrow: Wei::from_eth(1),
            payment_terms: None,
        },
    )
    .unwrap();
    let dir = std::env::temp_dir().join(format!("wedge-liveness-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let node = Arc::new(
        OffchainNode::start(
            node_id,
            NodeConfig {
                batch_size: 20,
                batch_linger: Duration::from_millis(5),
                replicas: 2,
                ..Default::default()
            },
            Arc::clone(&chain),
            deployment.root_record,
            &dir,
        )
        .unwrap(),
    );
    let mut publisher = Publisher::new(
        client_id,
        Arc::clone(&node),
        Arc::clone(&chain),
        deployment.root_record,
        None,
    );
    publisher.append_batch(payloads(40)).unwrap();
    assert_eq!(node.entry_count(), 40);

    // Extreme omission: the node wipes its newest 20 entries.
    node.destroy_tail(20).unwrap();
    assert_eq!(node.entry_count(), 20);

    // Both replicas still hold all 42 records (2 headers + 40 leaves).
    for replica in 0..2 {
        let store = LogStore::open(
            dir.join("replicas").join(format!("replica-{replica}")),
            StoreConfig::default(),
        )
        .unwrap();
        assert_eq!(store.len(), 42, "replica {replica} must retain everything");
    }
}

#[test]
fn stage2_omission_is_observable_not_hanging() {
    // With stage 2 omitted, clients don't hang: the wait API times out and
    // reports NotYet, giving the application the signal to escalate.
    let clock = Clock::compressed(2000.0);
    let chain = Chain::new(clock, ChainConfig::default());
    let node_id = Identity::from_seed(b"omission-node");
    let client_id = Identity::from_seed(b"omission-client");
    chain.fund(node_id.address(), Wei::from_eth(100));
    chain.fund(client_id.address(), Wei::from_eth(100));
    let _miner = chain.start_miner();
    let deployment = deploy_service(
        &chain,
        &node_id,
        client_id.address(),
        &ServiceConfig {
            escrow: Wei::from_eth(1),
            payment_terms: None,
        },
    )
    .unwrap();
    let dir = std::env::temp_dir().join(format!("wedge-omission-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let node = Arc::new(
        OffchainNode::start(
            node_id,
            NodeConfig {
                batch_size: 10,
                batch_linger: Duration::from_millis(5),
                behavior: NodeBehavior::OmitStage2 { from_log: 0 },
                ..Default::default()
            },
            Arc::clone(&chain),
            deployment.root_record,
            &dir,
        )
        .unwrap(),
    );
    let mut publisher = Publisher::new(
        client_id,
        Arc::clone(&node),
        Arc::clone(&chain),
        deployment.root_record,
        None,
    );
    let outcome = publisher.append_batch(payloads(10)).unwrap();
    let verdict = publisher
        .wait_blockchain_commit(&outcome.responses[0], Duration::from_secs(90))
        .unwrap();
    assert_eq!(verdict, Stage2Verdict::NotYet);
    let stats = node.stats();
    assert_eq!(stats.stage2_committed, 0);
    assert_eq!(stats.batches_flushed, 1);
}

#[test]
fn node_throughput_survives_replication() {
    // Fig 3's red-curve claim in miniature: adding replicas must not
    // collapse ingestion (merkle + signing dominate; replication is a
    // channel send + disk append).
    let clock = Clock::compressed(2000.0);
    let chain = Chain::new(clock, ChainConfig::default());
    let node_id = Identity::from_seed(b"repl-throughput-node");
    let client_id = Identity::from_seed(b"repl-throughput-client");
    chain.fund(node_id.address(), Wei::from_eth(100));
    chain.fund(client_id.address(), Wei::from_eth(100));
    let _miner = chain.start_miner();
    let deployment = deploy_service(
        &chain,
        &node_id,
        client_id.address(),
        &ServiceConfig {
            escrow: Wei::from_eth(1),
            payment_terms: None,
        },
    )
    .unwrap();

    let mut times = Vec::new();
    for replicas in [0usize, 2] {
        let dir =
            std::env::temp_dir().join(format!("wedge-repl-tp-{replicas}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let node = Arc::new(
            OffchainNode::start(
                node_id.clone(),
                NodeConfig {
                    batch_size: 100,
                    batch_linger: Duration::from_millis(5),
                    replicas,
                    ..Default::default()
                },
                Arc::clone(&chain),
                deployment.root_record,
                &dir,
            )
            .unwrap(),
        );
        let mut publisher = Publisher::new(
            client_id.clone(),
            Arc::clone(&node),
            Arc::clone(&chain),
            deployment.root_record,
            None,
        );
        let outcome = publisher.append_batch(payloads(200)).unwrap();
        times.push(outcome.stage1_commit);
    }
    // Replicated ingestion within 3x of unreplicated (debug builds are
    // noisy; the paper reports "insignificant decrease" in release).
    assert!(
        times[1] < times[0] * 3 + Duration::from_millis(500),
        "replication cost exploded: {:?} vs {:?}",
        times[1],
        times[0]
    );
}

#[test]
fn replica_failure_is_detected_not_fatal() {
    // Kill one of two replicas mid-stream: the node keeps serving (liveness)
    // and records the shortfall (observability).
    let clock = Clock::compressed(2000.0);
    let chain = Chain::new(clock, ChainConfig::default());
    let node_id = Identity::from_seed(b"shortfall-node");
    let client_id = Identity::from_seed(b"shortfall-client");
    chain.fund(node_id.address(), Wei::from_eth(100));
    chain.fund(client_id.address(), Wei::from_eth(100));
    let _miner = chain.start_miner();
    let deployment = deploy_service(
        &chain,
        &node_id,
        client_id.address(),
        &ServiceConfig {
            escrow: Wei::from_eth(1),
            payment_terms: None,
        },
    )
    .unwrap();
    let dir = std::env::temp_dir().join(format!("wedge-shortfall-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let node = Arc::new(
        OffchainNode::start(
            node_id,
            NodeConfig {
                batch_size: 20,
                batch_linger: Duration::from_millis(5),
                replicas: 2,
                ..Default::default()
            },
            Arc::clone(&chain),
            deployment.root_record,
            &dir,
        )
        .unwrap(),
    );
    let mut publisher = Publisher::new(
        client_id,
        Arc::clone(&node),
        Arc::clone(&chain),
        deployment.root_record,
        None,
    );
    // Healthy batch: both replicas ack.
    publisher.append_batch(payloads(20)).unwrap();
    assert_eq!(node.stats().replication_shortfalls, 0);
    // Kill replica 1 and publish again: still succeeds, shortfall recorded.
    node.replicator().unwrap().stop_replica(1);
    publisher.append_batch(payloads(20)).unwrap();
    assert_eq!(node.entry_count(), 40, "service uninterrupted");
    assert_eq!(node.stats().replication_shortfalls, 1);
    // Replica 0 still received everything (2 batches × 21 records).
    drop(node);
    let store = LogStore::open(
        dir.join("replicas").join("replica-0"),
        StoreConfig::default(),
    )
    .unwrap();
    assert_eq!(store.len(), 42);
}
