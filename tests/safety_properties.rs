//! The paper's safety definitions as executable properties.
//!
//! - **Definition 3.1 (Off-chain-commit Safety)**: any off-chain committed
//!   `i-e` pair either (1) matches what is eventually blockchain-committed,
//!   or (2) the client can *prove* the node lied — and the proof is accepted
//!   by the Punishment contract.
//! - **Definition 3.2 (Blockchain-committed Safety)**: two clients reading
//!   blockchain-committed responses for the same index always agree.

use std::sync::Arc;
use std::time::Duration;

use wedgeblock::chain::{Chain, ChainConfig, Wei};
use wedgeblock::contracts::{Punishment, RootRecord};
use wedgeblock::core::{
    deploy_service, NodeBehavior, NodeConfig, OffchainNode, Publisher, Reader, ServiceConfig,
    Stage2Verdict,
};
use wedgeblock::crypto::Identity;
use wedgeblock::sim::Clock;

struct World {
    chain: Arc<Chain>,
    node: Arc<OffchainNode>,
    publisher: Publisher,
    root_record: wedgeblock::chain::Address,
    punishment: wedgeblock::chain::Address,
    _miner: wedgeblock::chain::MinerHandle,
}

fn world(tag: &str, behavior: NodeBehavior) -> World {
    let clock = Clock::compressed(2000.0);
    let chain = Chain::new(clock, ChainConfig::default());
    let node_id = Identity::from_seed(format!("safety-node-{tag}").as_bytes());
    let client_id = Identity::from_seed(format!("safety-client-{tag}").as_bytes());
    chain.fund(node_id.address(), Wei::from_eth(1000));
    chain.fund(client_id.address(), Wei::from_eth(1000));
    let miner = chain.start_miner();
    let deployment = deploy_service(
        &chain,
        &node_id,
        client_id.address(),
        &ServiceConfig {
            escrow: Wei::from_eth(8),
            payment_terms: None,
        },
    )
    .unwrap();
    let dir = std::env::temp_dir().join(format!("wedge-safety-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let node = Arc::new(
        OffchainNode::start(
            node_id,
            NodeConfig {
                batch_size: 25,
                batch_linger: Duration::from_millis(5),
                behavior,
                ..Default::default()
            },
            Arc::clone(&chain),
            deployment.root_record,
            &dir,
        )
        .unwrap(),
    );
    let publisher = Publisher::new(
        client_id,
        Arc::clone(&node),
        Arc::clone(&chain),
        deployment.root_record,
        Some(deployment.punishment),
    );
    World {
        chain,
        node,
        publisher,
        root_record: deployment.root_record,
        punishment: deployment.punishment,
        _miner: miner,
    }
}

fn payloads(n: usize) -> Vec<Vec<u8>> {
    (0..n)
        .map(|i| format!("safety-entry-{i}").into_bytes())
        .collect()
}

#[test]
fn definition_3_1_clause_1_honest_node() {
    // Clause 1: the off-chain committed pair IS what gets blockchain
    // committed.
    let mut w = world("d31-honest", NodeBehavior::Honest);
    let outcome = w.publisher.append_batch(payloads(25)).unwrap();
    w.node.wait_stage2_idle(Duration::from_secs(600)).unwrap();
    for response in &outcome.responses {
        // The on-chain digest at index i equals the signed digest for e.
        let out = w
            .chain
            .view(
                w.root_record,
                &RootRecord::get_root_calldata(response.entry_id.log_id),
            )
            .unwrap();
        assert_eq!(RootRecord::decode_root(&out), Some(response.merkle_root));
    }
}

#[test]
fn definition_3_1_clause_2_lying_node_is_provable() {
    // Clause 2: when the node blockchain-commits e' ≠ e, the client's signed
    // response alone convinces the Punishment contract.
    let mut w = world("d31-liar", NodeBehavior::CommitWrongRoot { from_log: 0 });
    let outcome = w.publisher.append_batch(payloads(25)).unwrap();
    w.node.wait_stage2_idle(Duration::from_secs(600)).unwrap();
    // The lie is visible...
    assert_eq!(
        w.publisher
            .verify_blockchain_commit(&outcome.responses[0])
            .unwrap(),
        Stage2Verdict::Mismatch
    );
    // ...and provable: the contract pays out on exactly this evidence.
    let receipt = w.publisher.punish(&outcome.responses[0]).unwrap();
    assert!(receipt.status.is_success());
    assert_eq!(
        Punishment::decode_invoke_result(&receipt.output),
        Some(true)
    );
    assert_eq!(w.chain.balance(w.punishment), Wei::ZERO);
}

#[test]
fn definition_3_1_fabricated_evidence_is_rejected() {
    // The dual of clause 2: a client cannot frame an honest node. Evidence
    // not actually signed by the node is rejected by the contract.
    let mut w = world("d31-frame", NodeBehavior::Honest);
    let outcome = w.publisher.append_batch(payloads(25)).unwrap();
    w.node.wait_stage2_idle(Duration::from_secs(600)).unwrap();
    // Honest response: the punishment call must NOT pay out.
    let receipt = w.publisher.punish(&outcome.responses[0]).unwrap();
    assert!(receipt.status.is_success());
    assert_eq!(
        Punishment::decode_invoke_result(&receipt.output),
        Some(false)
    );
    assert_eq!(
        w.chain.balance(w.punishment),
        Wei::from_eth(8),
        "escrow untouched"
    );
}

#[test]
fn definition_3_2_blockchain_committed_readers_agree() {
    // Two independent readers with blockchain-committed responses for the
    // same index always see the same entry.
    let mut w = world("d32", NodeBehavior::Honest);
    let outcome = w.publisher.append_batch(payloads(25)).unwrap();
    w.node.wait_stage2_idle(Duration::from_secs(600)).unwrap();
    let reader1 = Reader::new(Arc::clone(&w.node), Arc::clone(&w.chain), w.root_record);
    let reader2 = Reader::new(Arc::clone(&w.node), Arc::clone(&w.chain), w.root_record);
    for response in &outcome.responses {
        let e1 = reader1.read(response.entry_id).unwrap();
        let e2 = reader2.read(response.entry_id).unwrap();
        assert_eq!(e1.phase, wedgeblock::core::CommitPhase::BlockchainCommitted);
        assert_eq!(e1.request.payload, e2.request.payload);
        assert_eq!(e1.request.sequence, e2.request.sequence);
    }
}

#[test]
fn root_record_single_write_blocks_rewriting_history() {
    // The mechanism behind Definition 3.2: once index i holds a digest, not
    // even the node itself can change it.
    let mut w = world("d32-rewrite", NodeBehavior::Honest);
    w.publisher.append_batch(payloads(25)).unwrap();
    w.node.wait_stage2_idle(Duration::from_secs(600)).unwrap();
    // Forge an update attempt for index 0 signed by the node's own key.
    let node_key = Identity::from_seed(b"safety-node-d32-rewrite");
    let tx = w
        .chain
        .call_contract(
            node_key.secret_key(),
            w.root_record,
            Wei::ZERO,
            RootRecord::update_records_calldata(0, &[wedgeblock::crypto::Hash32([0xBB; 32])]),
            wedgeblock::chain::Gas(500_000),
        )
        .unwrap();
    let receipt = w.chain.wait_for_receipt(tx).unwrap();
    assert!(!receipt.status.is_success(), "history rewrite must revert");
}
