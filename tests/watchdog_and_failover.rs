//! Extension scenarios built from the paper's §4.7 mitigations:
//!
//! 1. **Watchdog**: a third-party auditor scans the log, finds punishable
//!    evidence against an equivocating node, and a client cashes it in.
//! 2. **Replica promotion**: after an extreme omission attack destroys the
//!    primary, a fresh node is started over a replica's store and serves
//!    reads that still verify against the on-chain digests.

use std::sync::Arc;
use std::time::Duration;

use wedgeblock::chain::{Chain, ChainConfig, Wei};
use wedgeblock::core::{
    deploy_service, Auditor, CommitPhase, EvidenceKind, NodeBehavior, NodeConfig, OffchainNode,
    Publisher, Reader, ServiceConfig,
};
use wedgeblock::crypto::Identity;
use wedgeblock::sim::Clock;

fn payloads(n: usize) -> Vec<Vec<u8>> {
    (0..n).map(|i| format!("wf-{i}").into_bytes()).collect()
}

#[test]
fn auditor_watchdog_finds_and_monetizes_evidence() {
    let clock = Clock::compressed(2000.0);
    let chain = Chain::new(clock, ChainConfig::default());
    let node_id = Identity::from_seed(b"watchdog-node");
    let client_id = Identity::from_seed(b"watchdog-client");
    chain.fund(node_id.address(), Wei::from_eth(1000));
    chain.fund(client_id.address(), Wei::from_eth(1000));
    let _miner = chain.start_miner();
    let deployment = deploy_service(
        &chain,
        &node_id,
        client_id.address(),
        &ServiceConfig {
            escrow: Wei::from_eth(16),
            payment_terms: None,
        },
    )
    .unwrap();
    let dir = std::env::temp_dir().join(format!("wedge-watchdog-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let node = Arc::new(
        OffchainNode::start(
            node_id,
            NodeConfig {
                batch_size: 20,
                batch_linger: Duration::from_millis(5),
                behavior: NodeBehavior::CommitWrongRoot { from_log: 1 },
                ..Default::default()
            },
            Arc::clone(&chain),
            deployment.root_record,
            &dir,
        )
        .unwrap(),
    );
    let mut publisher = Publisher::new(
        client_id,
        Arc::clone(&node),
        Arc::clone(&chain),
        deployment.root_record,
        Some(deployment.punishment),
    );
    // Two batches: log 0 honest, log 1 equivocated.
    publisher.append_batch(payloads(20)).unwrap();
    publisher.append_batch(payloads(20)).unwrap();
    node.wait_stage2_idle(Duration::from_secs(600)).unwrap();

    // An independent auditor (no punishment contract of its own) scans.
    let auditor = Auditor::new(
        Arc::clone(&node),
        Arc::clone(&chain),
        deployment.root_record,
    );
    let evidence = auditor
        .find_evidence(0, u64::MAX)
        .unwrap()
        .expect("equivocation must surface evidence");
    assert_eq!(evidence.kind, EvidenceKind::RootMismatch);
    assert_eq!(evidence.response.entry_id.log_id, 1, "log 0 was honest");

    // The client (beneficiary of the punishment contract) cashes it in.
    let receipt = publisher.punish(&evidence.response).unwrap();
    assert!(receipt.status.is_success());
    assert_eq!(
        chain.balance(deployment.punishment),
        Wei::ZERO,
        "escrow seized"
    );
}

#[test]
fn watchdog_finds_nothing_on_honest_node() {
    let clock = Clock::compressed(2000.0);
    let chain = Chain::new(clock, ChainConfig::default());
    let node_id = Identity::from_seed(b"honest-watch-node");
    let client_id = Identity::from_seed(b"honest-watch-client");
    chain.fund(node_id.address(), Wei::from_eth(100));
    chain.fund(client_id.address(), Wei::from_eth(100));
    let _miner = chain.start_miner();
    let deployment = deploy_service(
        &chain,
        &node_id,
        client_id.address(),
        &ServiceConfig {
            escrow: Wei::from_eth(1),
            payment_terms: None,
        },
    )
    .unwrap();
    let dir = std::env::temp_dir().join(format!("wedge-honest-watch-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let node = Arc::new(
        OffchainNode::start(
            node_id,
            NodeConfig {
                batch_size: 20,
                batch_linger: Duration::from_millis(5),
                ..Default::default()
            },
            Arc::clone(&chain),
            deployment.root_record,
            &dir,
        )
        .unwrap(),
    );
    let mut publisher = Publisher::new(
        client_id,
        Arc::clone(&node),
        Arc::clone(&chain),
        deployment.root_record,
        None,
    );
    publisher.append_batch(payloads(40)).unwrap();
    node.wait_stage2_idle(Duration::from_secs(600)).unwrap();
    let auditor = Auditor::new(
        Arc::clone(&node),
        Arc::clone(&chain),
        deployment.root_record,
    );
    assert!(auditor.find_evidence(0, u64::MAX).unwrap().is_none());
}

#[test]
fn replica_promotion_survives_total_primary_loss() {
    let clock = Clock::compressed(2000.0);
    let chain = Chain::new(clock, ChainConfig::default());
    let node_id = Identity::from_seed(b"failover-node");
    let client_id = Identity::from_seed(b"failover-client");
    chain.fund(node_id.address(), Wei::from_eth(1000));
    chain.fund(client_id.address(), Wei::from_eth(1000));
    let _miner = chain.start_miner();
    let deployment = deploy_service(
        &chain,
        &node_id,
        client_id.address(),
        &ServiceConfig {
            escrow: Wei::from_eth(1),
            payment_terms: None,
        },
    )
    .unwrap();
    let dir = std::env::temp_dir().join(format!("wedge-failover-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let data = payloads(60);
    {
        let node = Arc::new(
            OffchainNode::start(
                node_id,
                NodeConfig {
                    batch_size: 30,
                    batch_linger: Duration::from_millis(5),
                    replicas: 1,
                    ..Default::default()
                },
                Arc::clone(&chain),
                deployment.root_record,
                &dir,
            )
            .unwrap(),
        );
        let mut publisher = Publisher::new(
            client_id.clone(),
            Arc::clone(&node),
            Arc::clone(&chain),
            deployment.root_record,
            None,
        );
        publisher.append_batch(data.clone()).unwrap();
        node.wait_stage2_idle(Duration::from_secs(600)).unwrap();
        // The primary is then wholly destroyed (node dropped, directory
        // removed) — the extreme omission attack of §4.7.
    }
    let _ = std::fs::remove_dir_all(dir.join("log"));

    // Promote the replica: a *witness* operator starts a node over the
    // replica's store. Its identity differs from the original node's — the
    // data's authenticity comes from the on-chain digests, not from who
    // serves it.
    let witness_id = Identity::from_seed(b"witness-operator");
    let witness_dir = dir.join("replicas").join("replica-0");
    // The node's store lives under <dir>/log; point the witness at a dir
    // whose `log` subdirectory is the replica store.
    let promoted_root = dir.join("promoted");
    std::fs::create_dir_all(&promoted_root).unwrap();
    std::fs::rename(&witness_dir, promoted_root.join("log")).unwrap();
    let witness = Arc::new(
        OffchainNode::start(
            witness_id,
            NodeConfig {
                batch_size: 30,
                // The witness serves reads only; it must not re-commit.
                behavior: NodeBehavior::OmitStage2 { from_log: 0 },
                ..Default::default()
            },
            Arc::clone(&chain),
            deployment.root_record,
            &promoted_root,
        )
        .unwrap(),
    );
    assert_eq!(witness.entry_count(), 60, "replica held the full log");

    // Reads through the witness still verify as blockchain-committed: the
    // proofs check out against the digests the ORIGINAL node committed.
    let reader = Reader::new(
        Arc::clone(&witness),
        Arc::clone(&chain),
        deployment.root_record,
    );
    for (i, payload) in data.iter().enumerate().step_by(7) {
        let entry = reader
            .read(wedgeblock::core::EntryId {
                log_id: (i / 30) as u64,
                offset: (i % 30) as u32,
            })
            .unwrap();
        assert_eq!(&entry.request.payload, payload);
        assert_eq!(entry.phase, CommitPhase::BlockchainCommitted);
    }
}
