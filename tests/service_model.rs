//! Full DApp-logging-as-a-service lifecycle (paper §4.5) through the
//! facade: deploy all three contracts, subscribe, log, bill, settle.

use std::sync::Arc;
use std::time::Duration;

use wedgeblock::chain::{Chain, ChainConfig, Wei};
use wedgeblock::contracts::PaymentTerms;
use wedgeblock::core::{
    deploy_service, service, NodeConfig, OffchainNode, Publisher, ServiceConfig, Subscription,
};
use wedgeblock::crypto::Identity;
use wedgeblock::sim::Clock;

#[test]
fn end_to_end_logging_as_a_service() {
    let clock = Clock::compressed(2000.0);
    let chain = Chain::new(clock.clone(), ChainConfig::default());
    let operator = Identity::from_seed(b"svc-operator");
    let dapp = Identity::from_seed(b"svc-dapp");
    chain.fund(operator.address(), Wei::from_eth(1000));
    chain.fund(dapp.address(), Wei::from_eth(1000));
    let _miner = chain.start_miner();

    // 1. The operator deploys all three contracts.
    let terms = PaymentTerms {
        offchain_address: operator.address(),
        client_address: dapp.address(),
        period: 60,
        payment_per_period: Wei::from_gwei(1000),
        max_overdue_periods: 60,
    };
    let deployment = deploy_service(
        &chain,
        &operator,
        dapp.address(),
        &ServiceConfig {
            escrow: Wei::from_eth(10),
            payment_terms: Some(terms),
        },
    )
    .unwrap();
    let payment = deployment.payment.expect("payment contract deployed");

    // 2. The dapp verifies the setup, deposits, starts the stream.
    assert!(chain.contract_exists(deployment.root_record));
    assert!(chain.contract_exists(deployment.punishment));
    assert_eq!(chain.balance(deployment.punishment), Wei::from_eth(10));
    let subscription = Subscription::new(Arc::clone(&chain), dapp.clone(), payment);
    subscription.deposit_and_start(Wei::from_eth(1)).unwrap();
    let status = subscription.status().unwrap();
    assert!(status.started && !status.terminated);

    // 3. Logging happens (the service being paid for).
    let dir = std::env::temp_dir().join(format!("wedge-svc-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let node = Arc::new(
        OffchainNode::start(
            operator.clone(),
            NodeConfig {
                batch_size: 50,
                batch_linger: Duration::from_millis(5),
                ..Default::default()
            },
            Arc::clone(&chain),
            deployment.root_record,
            &dir,
        )
        .unwrap(),
    );
    let mut publisher = Publisher::new(
        dapp.clone(),
        Arc::clone(&node),
        Arc::clone(&chain),
        deployment.root_record,
        Some(deployment.punishment),
    );
    let outcome = publisher
        .append_batch((0..100).map(|i| format!("svc-{i}").into_bytes()).collect())
        .unwrap();
    node.wait_stage2_idle(Duration::from_secs(600)).unwrap();
    assert_eq!(outcome.responses.len(), 100);

    // 4. Time passes; the operator withdraws earned fees. (On the
    // compressed clock, the real compute above also consumed simulated
    // billing time, so compute the expectation from actual elapsed periods.)
    let start_time = subscription.status().unwrap().payment_start_time;
    clock.sleep(Duration::from_secs(10 * 60)); // at least ten more periods
    let periods_elapsed = (clock.now().as_secs() - start_time) / 60;
    let earned = service::withdraw_earnings(&chain, &operator, payment).unwrap();
    assert!(
        earned >= Wei::from_gwei(1000 * periods_elapsed as u128)
            && earned <= Wei::from_gwei(1000 * (periods_elapsed as u128 + 20)),
        "expected ≈{periods_elapsed} periods of pay, got {earned}"
    );
    assert!(
        earned >= Wei::from_gwei(10_000),
        "at least the 10 slept periods"
    );

    // 5. The dapp tops up and later terminates; everyone is settled.
    subscription.top_up(Wei::from_gwei(5000)).unwrap();
    subscription.update_status().unwrap();
    subscription.terminate().unwrap();
    let status = subscription.status().unwrap();
    assert!(status.terminated);
    assert!(
        status.balance.is_zero(),
        "contract fully drained at settlement"
    );

    // 6. The engagement ended cleanly — the operator reclaims its escrow.
    let tx = chain
        .call_contract(
            dapp.secret_key(),
            deployment.punishment,
            Wei::ZERO,
            wedgeblock::contracts::Punishment::terminate_calldata(),
            wedgeblock::chain::Gas(300_000),
        )
        .unwrap();
    chain.wait_for_receipt(tx).unwrap();
    let before = chain.balance(operator.address());
    let tx = chain
        .call_contract(
            operator.secret_key(),
            deployment.punishment,
            Wei::ZERO,
            wedgeblock::contracts::Punishment::withdraw_calldata(),
            wedgeblock::chain::Gas(300_000),
        )
        .unwrap();
    let receipt = chain.wait_for_receipt(tx).unwrap();
    assert!(receipt.status.is_success());
    let reclaimed = chain
        .balance(operator.address())
        .checked_add(receipt.fee)
        .unwrap()
        .checked_sub(before)
        .unwrap();
    assert_eq!(reclaimed, Wei::from_eth(10));
}
