//! # WedgeBlock
//!
//! A from-scratch Rust reproduction of *WedgeBlock: An Off-Chain Secure
//! Logging Platform for Blockchain Applications* (EDBT 2023).
//!
//! This facade crate re-exports the workspace crates under one roof:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`crypto`] | `wedge-crypto` | Keccak-256, SHA-256, secp256k1 ECDSA with recovery |
//! | [`merkle`] | `wedge-merkle` | Merkle trees, inclusion proofs, multiproofs |
//! | [`sim`] | `wedge-sim` | scaled simulation clock, latency models |
//! | [`storage`] | `wedge-storage` | segmented append-only log store |
//! | [`chain`] | `wedge-chain` | simulated Ethereum: accounts, gas, blocks, contracts |
//! | [`contracts`] | `wedge-contracts` | RootRecord, Punishment, Payment (+ baseline contracts) |
//! | [`core`] | `wedge-core` | the LMT protocol: Offchain Node + client roles |
//! | [`baselines`] | `wedge-baselines` | OCL / SOCL / RHL comparison systems |
//!
//! See `examples/quickstart.rs` for the fastest way in, and `DESIGN.md` for
//! the full architecture and per-experiment index.

#![forbid(unsafe_code)]

pub use wedge_baselines as baselines;
pub use wedge_chain as chain;
pub use wedge_contracts as contracts;
pub use wedge_core as core;
pub use wedge_crypto as crypto;
pub use wedge_merkle as merkle;
pub use wedge_net as net;
pub use wedge_sim as sim;
pub use wedge_storage as storage;
