//! A third-party audit service: periodically scans the log for punishable
//! inconsistencies and, on detection, the wronged client turns the evidence
//! into compensation on-chain.
//!
//! Run with: `cargo run --example auditor_watchdog`

use std::sync::Arc;
use std::time::Duration;

use wedgeblock::chain::{Chain, ChainConfig, Wei};
use wedgeblock::core::{
    deploy_service, Auditor, EvidenceKind, NodeBehavior, NodeConfig, OffchainNode, Publisher,
    ServiceConfig,
};
use wedgeblock::crypto::Identity;
use wedgeblock::sim::Clock;

fn main() {
    let clock = Clock::compressed(1000.0);
    let chain = Chain::new(clock, ChainConfig::default());
    let _miner = chain.start_miner();

    let node_identity = Identity::from_seed(b"watchdog-demo-node");
    let client_identity = Identity::from_seed(b"watchdog-demo-client");
    chain.fund(node_identity.address(), Wei::from_eth(200));
    chain.fund(client_identity.address(), Wei::from_eth(200));
    let deployment = deploy_service(
        &chain,
        &node_identity,
        client_identity.address(),
        &ServiceConfig {
            escrow: Wei::from_eth(16),
            payment_terms: None,
        },
    )
    .expect("deploy");

    // The node turns malicious from log position 2 onward.
    let data_dir = std::env::temp_dir().join("wedgeblock-watchdog");
    let _ = std::fs::remove_dir_all(&data_dir);
    let node = Arc::new(
        OffchainNode::start(
            node_identity,
            NodeConfig {
                batch_size: 50,
                behavior: NodeBehavior::CommitWrongRoot { from_log: 2 },
                ..Default::default()
            },
            Arc::clone(&chain),
            deployment.root_record,
            &data_dir,
        )
        .expect("start node"),
    );
    let mut publisher = Publisher::new(
        client_identity,
        Arc::clone(&node),
        Arc::clone(&chain),
        deployment.root_record,
        Some(deployment.punishment),
    );

    // Four batches land in log positions 0..4; positions 2 and 3 are
    // equivocated on-chain.
    for round in 0..4 {
        let entries = (0..50)
            .map(|i| format!("round-{round}-entry-{i}").into_bytes())
            .collect();
        publisher.append_batch(entries).expect("append");
    }
    node.wait_stage2_idle(Duration::from_secs(600))
        .expect("stage 2");
    println!(
        "log has {} positions committed on-chain",
        node.log_positions()
    );

    // The watchdog sweep: an independent auditor with no special access —
    // only the public read API and the public chain.
    let auditor = Auditor::new(
        Arc::clone(&node),
        Arc::clone(&chain),
        deployment.root_record,
    );
    match auditor.find_evidence(0, u64::MAX).expect("scan") {
        None => println!("watchdog: all positions consistent"),
        Some(evidence) => {
            let kind = match evidence.kind {
                EvidenceKind::RootMismatch => "committed root ≠ signed root",
                EvidenceKind::BogusProof => "signed proof does not reproduce signed root",
            };
            println!(
                "watchdog: PUNISHABLE inconsistency at entry {} ({kind})",
                evidence.response.entry_id
            );
            // Hand the signed response to the client with the punishment
            // contract; one transaction later the escrow is theirs.
            let before = chain.balance(publisher.address());
            let receipt = publisher.punish(&evidence.response).expect("punish");
            assert!(receipt.status.is_success());
            let gained = chain
                .balance(publisher.address())
                .checked_add(receipt.fee)
                .unwrap()
                .checked_sub(before)
                .unwrap();
            println!(
                "punishment executed in block {}: {gained} recovered for {} of gas",
                receipt.block_number, receipt.fee
            );
        }
    }
}
