//! Use case 2 (paper §2.3): a DApp game with off-chain event logs.
//!
//! Game actions — including *conflicting* ones — are logged through
//! WedgeBlock. The log's total order is fixed at stage 1 and anchored
//! on-chain at stage 2, so any observer can later prove which of two
//! conflicting actions happened first (the paper's ordering requirement).
//!
//! Run with: `cargo run --example nft_game`

use std::sync::Arc;
use std::time::Duration;

use wedgeblock::chain::{Chain, ChainConfig, Wei};
use wedgeblock::core::{
    deploy_service, Auditor, NodeConfig, OffchainNode, Publisher, ServiceConfig,
};
use wedgeblock::crypto::Identity;
use wedgeblock::sim::Clock;

fn main() {
    let clock = Clock::compressed(1000.0);
    let chain = Chain::new(clock, ChainConfig::default());
    let _miner = chain.start_miner();

    let game_server = Identity::from_seed(b"game-server-node");
    chain.fund(game_server.address(), Wei::from_eth(500));
    let alice = Identity::from_seed(b"player-alice");
    let bob = Identity::from_seed(b"player-bob");
    chain.fund(alice.address(), Wei::from_eth(10));
    chain.fund(bob.address(), Wei::from_eth(10));

    let deployment = deploy_service(
        &chain,
        &game_server,
        alice.address(),
        &ServiceConfig {
            escrow: Wei::from_eth(20),
            payment_terms: None,
        },
    )
    .expect("deploy");

    let data_dir = std::env::temp_dir().join("wedgeblock-game");
    let _ = std::fs::remove_dir_all(&data_dir);
    let node = Arc::new(
        OffchainNode::start(
            game_server,
            NodeConfig {
                batch_size: 64,
                batch_linger: Duration::from_millis(10),
                ..Default::default()
            },
            Arc::clone(&chain),
            deployment.root_record,
            &data_dir,
        )
        .expect("start node"),
    );

    // Both players race to claim the same loot chest (a conflicting pair of
    // actions). Each signs and publishes their own action log.
    let mut alice_pub = Publisher::new(
        alice.clone(),
        Arc::clone(&node),
        Arc::clone(&chain),
        deployment.root_record,
        None,
    );
    let mut bob_pub = Publisher::new(
        bob.clone(),
        Arc::clone(&node),
        Arc::clone(&chain),
        deployment.root_record,
        None,
    );

    let alice_actions: Vec<Vec<u8>> = vec![
        b"alice: move to dungeon-3".to_vec(),
        b"alice: open chest #77".to_vec(),
        b"alice: claim sword-of-testing (NFT #9001)".to_vec(),
    ];
    let bob_actions: Vec<Vec<u8>> = vec![
        b"bob: move to dungeon-3".to_vec(),
        b"bob: open chest #77".to_vec(),
        b"bob: claim sword-of-testing (NFT #9001)".to_vec(),
    ];
    let a = alice_pub
        .append_batch(alice_actions)
        .expect("alice publish");
    let b = bob_pub.append_batch(bob_actions).expect("bob publish");

    // The log's order is (log_id, offset): whoever's claim has the smaller
    // entry id wins the chest. Both players can verify this independently.
    let alice_claim = a.responses[2].entry_id;
    let bob_claim = b.responses[2].entry_id;
    let winner = if (alice_claim.log_id, alice_claim.offset) < (bob_claim.log_id, bob_claim.offset)
    {
        ("alice", alice_claim)
    } else {
        ("bob", bob_claim)
    };
    println!("alice's claim landed at log entry {alice_claim}");
    println!("bob's   claim landed at log entry {bob_claim}");
    println!("→ {} wins NFT #9001 (earlier log position)", winner.0);

    // Anchor on-chain; the ordering is now immutable — an auditor (e.g. a
    // dispute-resolution service) replays and verifies the whole log.
    node.wait_stage2_idle(Duration::from_secs(600))
        .expect("stage 2");
    let auditor = Auditor::new(
        Arc::clone(&node),
        Arc::clone(&chain),
        deployment.root_record,
    );
    let report = auditor.audit(0, 6).expect("audit");
    assert!(report.is_clean());
    println!(
        "auditor replayed {} events against the on-chain digests: clean ✓ \
         ({}% of audit time spent verifying)",
        report.entries_checked,
        (report.verify_fraction() * 100.0).round(),
    );
}
