//! Use case 1 (paper §2.3): a decentralized IoT data marketplace.
//!
//! Multiple IoT publishers stream readings to a third-party Offchain Node;
//! consumers read verified data back; the node is compensated through the
//! Payment contract's subscription stream (DApp-logging-as-a-service).
//!
//! Run with: `cargo run --example iot_marketplace`

use std::sync::Arc;
use std::time::Duration;

use wedgeblock::chain::{Chain, ChainConfig, Wei};
use wedgeblock::contracts::PaymentTerms;
use wedgeblock::core::{
    deploy_service, service, NodeConfig, OffchainNode, Publisher, Reader, ServiceConfig,
    Subscription,
};
use wedgeblock::crypto::Identity;
use wedgeblock::sim::Clock;

fn main() {
    let clock = Clock::compressed(1000.0);
    let chain = Chain::new(clock.clone(), ChainConfig::default());
    let _miner = chain.start_miner();

    // The marketplace operator (Offchain Node) and a shared publisher
    // cohort address that pays for the service.
    let operator = Identity::from_seed(b"iot-marketplace-operator");
    let cohort = Identity::from_seed(b"iot-publisher-cohort");
    chain.fund(operator.address(), Wei::from_eth(1000));
    chain.fund(cohort.address(), Wei::from_eth(1000));

    // Full service deployment: Root Record + Punishment + Payment.
    // Terms: 0.001 ETH per 3600-second period, 24 overdue periods allowed.
    let terms = PaymentTerms {
        offchain_address: operator.address(),
        client_address: cohort.address(),
        period: 3600,
        payment_per_period: Wei::from_eth_f64(0.001),
        max_overdue_periods: 24,
    };
    let deployment = deploy_service(
        &chain,
        &operator,
        cohort.address(),
        &ServiceConfig {
            escrow: Wei::from_eth(50),
            payment_terms: Some(terms),
        },
    )
    .expect("deploy service");
    let payment = deployment.payment.expect("payment contract");
    println!("marketplace contracts deployed; payment at {payment}");

    // Cohort subscribes: deposit one ETH (1000 hours of service) and start.
    let subscription = Subscription::new(Arc::clone(&chain), cohort.clone(), payment);
    subscription
        .deposit_and_start(Wei::from_eth(1))
        .expect("start subscription");
    println!("subscription started: 0.001 ETH/hour streaming to the operator");

    let data_dir = std::env::temp_dir().join("wedgeblock-iot");
    let _ = std::fs::remove_dir_all(&data_dir);
    let node = Arc::new(
        OffchainNode::start(
            operator.clone(),
            NodeConfig {
                batch_size: 200,
                ..Default::default()
            },
            Arc::clone(&chain),
            deployment.root_record,
            &data_dir,
        )
        .expect("start node"),
    );

    // Three IoT sensors publish concurrently through the shared cohort key
    // (the paper: "If there are multiple Publishers, they can set up a
    // shared address") — but each signs with its own device identity.
    let mut total = 0usize;
    crossbeam::thread::scope(|scope| {
        let mut handles = Vec::new();
        for sensor in ["thermostat", "air-quality", "power-meter"] {
            let node = Arc::clone(&node);
            let chain = Arc::clone(&chain);
            let root_record = deployment.root_record;
            handles.push(scope.spawn(move |_| {
                let device = Identity::from_seed(sensor.as_bytes());
                let mut publisher = Publisher::new(device, node, chain, root_record, None);
                let readings: Vec<Vec<u8>> = (0..300)
                    .map(|i| format!("{sensor}: sample {i} = {}", i * 7 % 100).into_bytes())
                    .collect();
                let outcome = publisher.append_batch(readings).expect("publish");
                (sensor, outcome.responses.len(), outcome.stage1_commit)
            }));
        }
        for handle in handles {
            let (sensor, count, latency) = handle.join().unwrap();
            println!("{sensor}: {count} readings off-chain-committed in {latency:?}");
            total += count;
        }
    })
    .unwrap();
    println!("marketplace ingested {total} readings across 3 devices");

    node.wait_stage2_idle(Duration::from_secs(600))
        .expect("stage 2");
    println!(
        "stage-2: {} log positions anchored on-chain for {}",
        node.stats().stage2_committed,
        node.stats().stage2_fees,
    );

    // A consumer fetches a verified reading from the power meter.
    let reader = Reader::new(
        Arc::clone(&node),
        Arc::clone(&chain),
        deployment.root_record,
    );
    let meter = Identity::from_seed(b"power-meter");
    let entry = reader
        .read_by_sequence(meter.address(), 123)
        .expect("consumer read");
    println!(
        "consumer verified reading: {:?} [{:?}]",
        String::from_utf8_lossy(&entry.request.payload),
        entry.phase
    );

    // Service billing: 10 hours pass; the operator withdraws earnings.
    clock.sleep(Duration::from_secs(10 * 3600));
    let earned = service::withdraw_earnings(&chain, &operator, payment).expect("withdraw");
    println!("operator withdrew {earned} for ~10 hours of service");
    let status = subscription.status().expect("status");
    println!(
        "subscription: {} unreserved deposit remaining",
        status.balance.saturating_sub(status.reserved_for_edge)
    );
}
