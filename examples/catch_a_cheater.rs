//! Catch a cheater: the punishment flow end-to-end.
//!
//! The Offchain Node is configured to equivocate — it signs honest stage-1
//! responses but blockchain-commits a different digest. The publisher
//! detects the mismatch during stage-2 verification and uses its signed
//! response as evidence to drain the node's escrow through the Punishment
//! contract (paper Definition 3.1, clause 2).
//!
//! Run with: `cargo run --example catch_a_cheater`

use std::sync::Arc;
use std::time::Duration;

use wedgeblock::chain::{Chain, ChainConfig, Wei};
use wedgeblock::contracts::{Punishment, PunishmentStatus};
use wedgeblock::core::{
    deploy_service, NodeBehavior, NodeConfig, OffchainNode, Publisher, ServiceConfig, Stage2Verdict,
};
use wedgeblock::crypto::Identity;
use wedgeblock::sim::Clock;

fn main() {
    let clock = Clock::compressed(1000.0);
    let chain = Chain::new(clock, ChainConfig::default());
    let _miner = chain.start_miner();

    let node_identity = Identity::from_seed(b"cheating-node");
    let client_identity = Identity::from_seed(b"vigilant-client");
    chain.fund(node_identity.address(), Wei::from_eth(100));
    chain.fund(client_identity.address(), Wei::from_eth(100));

    let escrow = Wei::from_eth(32);
    let deployment = deploy_service(
        &chain,
        &node_identity,
        client_identity.address(),
        &ServiceConfig {
            escrow,
            payment_terms: None,
        },
    )
    .expect("deploy");
    println!("node escrowed {escrow} in the Punishment contract");

    // The node will equivocate on every batch.
    let data_dir = std::env::temp_dir().join("wedgeblock-cheater");
    let _ = std::fs::remove_dir_all(&data_dir);
    let node = Arc::new(
        OffchainNode::start(
            node_identity,
            NodeConfig {
                batch_size: 50,
                behavior: NodeBehavior::CommitWrongRoot { from_log: 0 },
                ..Default::default()
            },
            Arc::clone(&chain),
            deployment.root_record,
            &data_dir,
        )
        .expect("start node"),
    );

    let mut publisher = Publisher::new(
        client_identity,
        Arc::clone(&node),
        Arc::clone(&chain),
        deployment.root_record,
        Some(deployment.punishment),
    );

    // Stage 1 looks perfectly honest — the responses verify.
    let entries: Vec<Vec<u8>> = (0..50)
        .map(|i| format!("asset-transfer-{i}").into_bytes())
        .collect();
    let outcome = publisher.append_batch(entries).expect("append");
    println!(
        "stage 1: {} signed responses, all verified ✓",
        outcome.responses.len()
    );

    // Stage 2 exposes the lie.
    node.wait_stage2_idle(Duration::from_secs(600))
        .expect("stage 2");
    let verdict = publisher
        .verify_blockchain_commit(&outcome.responses[0])
        .expect("verify");
    assert_eq!(verdict, Stage2Verdict::Mismatch);
    println!("stage 2: on-chain digest ≠ signed digest — the node LIED");

    // The signed response is court-admissible evidence.
    let balance_before = chain.balance(publisher.address());
    let receipt = publisher
        .verify_all_and_punish(&outcome.responses)
        .expect("punish")
        .expect("mismatch found");
    assert!(receipt.status.is_success());
    let status = Punishment::decode_status(
        &chain
            .view(deployment.punishment, &Punishment::status_calldata())
            .unwrap(),
    )
    .unwrap();
    assert_eq!(status, PunishmentStatus::Punished);
    let gained = chain
        .balance(publisher.address())
        .checked_add(receipt.fee)
        .unwrap()
        .checked_sub(balance_before)
        .unwrap();
    println!(
        "punishment invoked: escrow of {gained} transferred to the client \
         (all-or-nothing), contract terminated"
    );
    assert_eq!(gained, escrow);
}
