//! Quickstart: the minimal WedgeBlock deployment.
//!
//! Spins up a simulated chain, deploys the contract suite, starts an
//! Offchain Node, appends a few entries as a publisher, and reads them back
//! verified — showing both commit phases of Lazy-Minimum Trust.
//!
//! Run with: `cargo run --example quickstart`

use std::sync::Arc;
use std::time::Duration;

use wedgeblock::chain::{Chain, ChainConfig, Wei};
use wedgeblock::core::{
    deploy_service, NodeConfig, OffchainNode, Publisher, Reader, ServiceConfig, Stage2Verdict,
};
use wedgeblock::crypto::Identity;
use wedgeblock::sim::Clock;

fn main() {
    // A chain on a 1000x-compressed clock: 13-second blocks mine every
    // 13 ms of wall time; reported latencies are in simulated seconds.
    let clock = Clock::compressed(1000.0);
    let chain = Chain::new(clock.clone(), ChainConfig::default());
    let _miner = chain.start_miner();

    // Identities + funding (the faucet stands in for genesis allocation).
    let node_identity = Identity::from_seed(b"quickstart-node");
    let publisher_identity = Identity::from_seed(b"quickstart-publisher");
    chain.fund(node_identity.address(), Wei::from_eth(100));
    chain.fund(publisher_identity.address(), Wei::from_eth(100));

    // The Offchain Node deploys the Root Record + Punishment contracts and
    // escrows 10 ETH against future misbehaviour.
    let deployment = deploy_service(
        &chain,
        &node_identity,
        publisher_identity.address(),
        &ServiceConfig {
            escrow: Wei::from_eth(10),
            payment_terms: None,
        },
    )
    .expect("deploy contracts");
    println!("Root Record contract: {}", deployment.root_record);
    println!("Punishment contract:  {}", deployment.punishment);

    // Start the node (batch size 100 for this small demo).
    let data_dir = std::env::temp_dir().join("wedgeblock-quickstart");
    let _ = std::fs::remove_dir_all(&data_dir);
    let node = Arc::new(
        OffchainNode::start(
            node_identity,
            NodeConfig {
                batch_size: 100,
                ..Default::default()
            },
            Arc::clone(&chain),
            deployment.root_record,
            &data_dir,
        )
        .expect("start node"),
    );

    // Publish 250 log entries.
    let mut publisher = Publisher::new(
        publisher_identity,
        Arc::clone(&node),
        Arc::clone(&chain),
        deployment.root_record,
        Some(deployment.punishment),
    );
    let entries: Vec<Vec<u8>> = (0..250)
        .map(|i| format!("sensor-reading-{i}: temp={}", 20 + i % 5).into_bytes())
        .collect();
    let outcome = publisher.append_batch(entries).expect("append");
    println!(
        "\nstage-1 (off-chain) committed {} entries in {:?} \
         (first response after {:?})",
        outcome.responses.len(),
        outcome.stage1_commit,
        outcome.first_response,
    );

    // Stage 2 happens lazily in the background; wait for it here to show
    // the full lifecycle.
    node.wait_stage2_idle(Duration::from_secs(600))
        .expect("stage 2");
    let verdict = publisher
        .verify_blockchain_commit(&outcome.responses[0])
        .expect("verify");
    assert_eq!(verdict, Stage2Verdict::Committed);
    let stats = node.stats();
    println!(
        "stage-2 (blockchain) committed {} log positions, mean latency {:?} \
         (simulated), total on-chain cost {}",
        stats.stage2_committed,
        stats.mean_stage2_latency().unwrap(),
        stats.stage2_fees,
    );
    println!("on-chain cost per operation: {}", stats.cost_per_op());

    // Verified reads.
    let reader = Reader::new(
        Arc::clone(&node),
        Arc::clone(&chain),
        deployment.root_record,
    );
    let entry = reader
        .read_by_sequence(publisher.address(), 42)
        .expect("read");
    println!(
        "\nread seq 42 → {:?} [{:?}]",
        String::from_utf8_lossy(&entry.request.payload),
        entry.phase,
    );
}
