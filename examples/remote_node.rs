//! The paper's process topology over real TCP: the Offchain Node serves on
//! a socket; publisher, reader and auditor connect as network clients and
//! run the unchanged verification protocol.
//!
//! Run with: `cargo run --example remote_node`

use std::sync::Arc;
use std::time::Duration;

use wedgeblock::chain::{Chain, ChainConfig, Wei};
use wedgeblock::core::{
    deploy_service, Auditor, NodeConfig, OffchainNode, Publisher, Reader, ServiceConfig,
};
use wedgeblock::crypto::Identity;
use wedgeblock::net::{NodeServer, RemoteNode};
use wedgeblock::sim::Clock;

fn main() {
    let clock = Clock::compressed(1000.0);
    let chain = Chain::new(clock, ChainConfig::default());
    let _miner = chain.start_miner();

    let node_identity = Identity::from_seed(b"tcp-node");
    let client_identity = Identity::from_seed(b"tcp-client");
    chain.fund(node_identity.address(), Wei::from_eth(100));
    chain.fund(client_identity.address(), Wei::from_eth(100));
    let deployment = deploy_service(
        &chain,
        &node_identity,
        client_identity.address(),
        &ServiceConfig {
            escrow: Wei::from_eth(10),
            payment_terms: None,
        },
    )
    .expect("deploy");

    // --- the "node process": an OffchainNode behind a TCP server.
    let data_dir = std::env::temp_dir().join("wedgeblock-remote");
    let _ = std::fs::remove_dir_all(&data_dir);
    let node = Arc::new(
        OffchainNode::start(
            node_identity,
            NodeConfig {
                batch_size: 100,
                ..Default::default()
            },
            Arc::clone(&chain),
            deployment.root_record,
            &data_dir,
        )
        .expect("start node"),
    );
    let server = NodeServer::bind("127.0.0.1:0", Arc::clone(&node) as _).expect("bind");
    println!("offchain node serving on {}", server.local_addr());

    // --- the "publisher process": connects over TCP.
    let remote = Arc::new(RemoteNode::connect(server.local_addr()).expect("connect"));
    let mut publisher = Publisher::new(
        client_identity.clone(),
        Arc::clone(&remote),
        Arc::clone(&chain),
        deployment.root_record,
        Some(deployment.punishment),
    );
    let entries: Vec<Vec<u8>> = (0..300)
        .map(|i| format!("telemetry sample {i}").into_bytes())
        .collect();
    let outcome = publisher.append_batch(entries).expect("append over TCP");
    println!(
        "published 300 entries over TCP: stage-1 commit in {:?} \
         (first response {:?})",
        outcome.stage1_commit, outcome.first_response
    );

    node.wait_stage2_idle(Duration::from_secs(600))
        .expect("stage 2");

    // --- the "user process": a second connection reads and verifies.
    let remote2 = Arc::new(RemoteNode::connect(server.local_addr()).expect("connect"));
    let reader = Reader::new(
        Arc::clone(&remote2),
        Arc::clone(&chain),
        deployment.root_record,
    );
    let entry = reader
        .read_by_sequence(client_identity.address(), 150)
        .expect("read over TCP");
    println!(
        "remote read seq 150 → {:?} [{:?}]",
        String::from_utf8_lossy(&entry.request.payload),
        entry.phase
    );

    // --- the "auditor process": full scan through the same socket API.
    let auditor = Auditor::new(remote2, Arc::clone(&chain), deployment.root_record);
    let report = auditor.audit(0, 300).expect("audit over TCP");
    assert!(report.is_clean());
    println!(
        "remote audit of {} entries: clean ✓ ({:?} total, {:.0}% verifying)",
        report.entries_checked,
        report.total_time,
        report.verify_fraction() * 100.0
    );
}
