//! DApp-logging-as-a-service (paper §4.5): the Payment contract lifecycle.
//!
//! Walks the full subscription state machine on a manually driven clock:
//! deposit → startPayment → healthy streaming (PaymentStateUpdated) →
//! operator withdrawal → underfunded reminders (DepositInsufficient) →
//! top-up → graceful termination with settlement.
//!
//! Run with: `cargo run --example logging_as_a_service`

use std::sync::Arc;
use std::time::Duration;

use wedgeblock::chain::{Chain, ChainConfig, Gas, Wei};
use wedgeblock::contracts::{Payment, PaymentTerms};
use wedgeblock::crypto::Identity;
use wedgeblock::sim::Clock;

fn mine(chain: &Arc<Chain>, clock: &Clock) {
    clock.advance(Duration::from_secs(13));
    chain.mine_block();
    chain.mine_block(); // confirmation depth
    chain.mine_block();
}

fn main() {
    // Manual clock: we are the timekeeper, so period math is exact.
    let clock = Clock::manual();
    let chain = Chain::new(clock.clone(), ChainConfig::default());
    let operator = Identity::from_seed(b"laas-operator");
    let dapp = Identity::from_seed(b"laas-dapp");
    chain.fund(operator.address(), Wei::from_eth(100));
    chain.fund(dapp.address(), Wei::from_eth(100));

    // Terms: 100 gwei per 60-second period, 120 overdue periods tolerated
    // (the paper's worked example).
    let terms = PaymentTerms {
        offchain_address: operator.address(),
        client_address: dapp.address(),
        period: 60,
        payment_per_period: Wei::from_gwei(100),
        max_overdue_periods: 120,
    };
    let (payment, _) = chain
        .deploy(
            operator.secret_key(),
            Box::new(Payment::new(terms)),
            Wei::ZERO,
            Payment::CODE_LEN,
        )
        .expect("deploy");
    mine(&chain, &clock);
    println!("Payment contract at {payment}: 100 gwei / 60 s, 120 periods grace");

    // Subscribe to contract events like a real off-chain service would.
    let events = chain.subscribe_events();

    // Deposit enough for 30 periods and start.
    chain
        .transfer(dapp.secret_key(), payment, Wei::from_gwei(3000))
        .expect("deposit");
    mine(&chain, &clock);
    chain
        .call_contract(
            dapp.secret_key(),
            payment,
            Wei::ZERO,
            Payment::start_payment_calldata(),
            Gas(300_000),
        )
        .expect("start");
    mine(&chain, &clock);
    println!("dapp deposited 3000 gwei (30 periods) and started the stream");

    // 10 periods of healthy streaming.
    clock.advance(Duration::from_secs(600));
    chain
        .call_contract(
            dapp.secret_key(),
            payment,
            Wei::ZERO,
            Payment::update_status_calldata(),
            Gas(300_000),
        )
        .expect("update");
    mine(&chain, &clock);
    while let Ok(event) = events.try_recv() {
        if event.name == "PaymentStateUpdated" {
            let remaining = u64::from_be_bytes(event.data.clone().try_into().unwrap());
            println!("event PaymentStateUpdated: deposit covers {remaining} more periods");
        }
    }

    // Operator withdraws earnings so far.
    let before = chain.balance(operator.address());
    chain
        .call_contract(
            operator.secret_key(),
            payment,
            Wei::ZERO,
            Payment::withdraw_edge_calldata(),
            Gas(300_000),
        )
        .expect("withdraw");
    mine(&chain, &clock);
    let receipt_fees = chain.total_fees_paid(operator.address());
    let _ = receipt_fees;
    println!(
        "operator withdrew earnings (balance {} → {})",
        before,
        chain.balance(operator.address())
    );

    // Let the deposit run dry: 25 more periods on a ~20-period balance.
    clock.advance(Duration::from_secs(25 * 60));
    chain
        .call_contract(
            dapp.secret_key(),
            payment,
            Wei::ZERO,
            Payment::update_status_calldata(),
            Gas(300_000),
        )
        .expect("update");
    mine(&chain, &clock);
    while let Ok(event) = events.try_recv() {
        if event.name == "DepositInsufficient" {
            let overdue = u64::from_be_bytes(event.data.clone().try_into().unwrap());
            println!("event DepositInsufficient: {overdue} periods overdue — topping up");
        }
    }

    // Top up and finally terminate gracefully.
    chain
        .transfer(dapp.secret_key(), payment, Wei::from_gwei(5000))
        .expect("top up");
    mine(&chain, &clock);
    chain
        .call_contract(
            dapp.secret_key(),
            payment,
            Wei::ZERO,
            Payment::terminate_calldata(),
            Gas(500_000),
        )
        .expect("terminate");
    mine(&chain, &clock);
    let status =
        Payment::decode_status(&chain.view(payment, &Payment::status_calldata()).unwrap()).unwrap();
    assert!(status.terminated);
    assert!(status.balance.is_zero());
    println!(
        "subscription terminated: operator paid in full, remainder refunded \
         to the dapp; contract balance is {}",
        status.balance
    );
}
