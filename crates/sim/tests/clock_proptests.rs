//! Property tests for the simulation clock and latency models.

use std::time::Duration;

use proptest::prelude::*;
use wedge_sim::{Clock, LatencyModel, SimInstant};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn manual_clock_advances_exactly(steps in prop::collection::vec(0u64..10_000, 1..20)) {
        let clock = Clock::manual();
        let mut expected = Duration::ZERO;
        for step in steps {
            clock.advance(Duration::from_millis(step));
            expected += Duration::from_millis(step);
            prop_assert_eq!(clock.now().elapsed(), expected);
        }
    }

    #[test]
    fn sim_instant_ordering_is_consistent(a in 0u64..1_000_000, b in 0u64..1_000_000) {
        let ia = SimInstant::EPOCH.add(Duration::from_micros(a));
        let ib = SimInstant::EPOCH.add(Duration::from_micros(b));
        prop_assert_eq!(ia < ib, a < b);
        // since() is saturating: never panics, zero when earlier >= later.
        if a >= b {
            prop_assert_eq!(ib.since(ia), Duration::ZERO);
            prop_assert_eq!(ia.since(ib), Duration::from_micros(a - b));
        }
    }

    #[test]
    fn uniform_latency_within_bounds(lo in 0u64..5_000, span in 0u64..5_000, payload in 0usize..1_000_000) {
        use rand::SeedableRng;
        let model = LatencyModel::Uniform {
            min: Duration::from_micros(lo),
            max: Duration::from_micros(lo + span),
        };
        let mut rng = rand::rngs::StdRng::seed_from_u64(lo ^ span as u64);
        for _ in 0..32 {
            let d = model.sample(&mut rng, payload);
            prop_assert!(d >= Duration::from_micros(lo));
            prop_assert!(d <= Duration::from_micros(lo + span));
        }
        // Mean is inside the bounds too.
        let mean = model.mean(payload);
        prop_assert!(mean >= Duration::from_micros(lo) && mean <= Duration::from_micros(lo + span));
    }

    #[test]
    fn link_latency_is_monotone_in_payload(base in 0u64..1000, per_kb in 0u64..1000, small in 0usize..10_000, extra in 1usize..100_000) {
        use rand::SeedableRng;
        let model = LatencyModel::Link {
            base: Duration::from_micros(base),
            per_kb: Duration::from_nanos(per_kb),
        };
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let a = model.sample(&mut rng, small);
        let b = model.sample(&mut rng, small + extra);
        prop_assert!(b >= a, "more bytes must never be faster");
    }
}

#[test]
fn compressed_clock_ratios_hold() {
    // Two compressed clocks at different factors measure the same wall
    // interval; their simulated elapsed times must scale accordingly.
    let fast = Clock::compressed(2000.0);
    let slow = Clock::compressed(200.0);
    let f0 = fast.now();
    let s0 = slow.now();
    std::thread::sleep(Duration::from_millis(20));
    let f = fast.now().since(f0).as_secs_f64();
    let s = slow.now().since(s0).as_secs_f64();
    let ratio = f / s;
    assert!(
        (8.0..12.0).contains(&ratio),
        "expected ~10x, got {ratio:.2}"
    );
}
