//! Latency models for simulated links and block-production jitter.

use std::time::Duration;

use rand::Rng;

/// A distribution over durations.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub enum LatencyModel {
    /// No delay.
    #[default]
    Zero,
    /// A fixed delay.
    Constant(Duration),
    /// Uniform over `[min, max]`.
    Uniform {
        /// Lower bound (inclusive).
        min: Duration,
        /// Upper bound (inclusive).
        max: Duration,
    },
    /// Constant base plus per-byte transmission time (a simple
    /// bandwidth/propagation link model).
    Link {
        /// Propagation delay.
        base: Duration,
        /// Transmission time per kilobyte of payload.
        per_kb: Duration,
    },
}

impl LatencyModel {
    /// Samples a delay for a message of `payload_bytes` using `rng`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R, payload_bytes: usize) -> Duration {
        match *self {
            LatencyModel::Zero => Duration::ZERO,
            LatencyModel::Constant(d) => d,
            LatencyModel::Uniform { min, max } => {
                debug_assert!(min <= max);
                if min == max {
                    min
                } else {
                    let span = (max - min).as_nanos() as u64;
                    min + Duration::from_nanos(rng.gen_range(0..=span))
                }
            }
            LatencyModel::Link { base, per_kb } => {
                let kb = payload_bytes.div_ceil(1024) as u32;
                base + per_kb * kb
            }
        }
    }

    /// The mean delay for a message of `payload_bytes` (for analytical
    /// expectations in benches).
    pub fn mean(&self, payload_bytes: usize) -> Duration {
        match *self {
            LatencyModel::Zero => Duration::ZERO,
            LatencyModel::Constant(d) => d,
            LatencyModel::Uniform { min, max } => (min + max) / 2,
            LatencyModel::Link { base, per_kb } => {
                base + per_kb * payload_bytes.div_ceil(1024) as u32
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zero_and_constant() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(LatencyModel::Zero.sample(&mut rng, 100), Duration::ZERO);
        let c = LatencyModel::Constant(Duration::from_millis(7));
        assert_eq!(c.sample(&mut rng, 0), Duration::from_millis(7));
        assert_eq!(c.mean(0), Duration::from_millis(7));
    }

    #[test]
    fn uniform_stays_in_bounds() {
        let model = LatencyModel::Uniform {
            min: Duration::from_millis(10),
            max: Duration::from_millis(20),
        };
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let d = model.sample(&mut rng, 0);
            assert!(d >= Duration::from_millis(10) && d <= Duration::from_millis(20));
        }
        assert_eq!(model.mean(0), Duration::from_millis(15));
    }

    #[test]
    fn uniform_degenerate() {
        let d = Duration::from_millis(5);
        let model = LatencyModel::Uniform { min: d, max: d };
        let mut rng = StdRng::seed_from_u64(7);
        assert_eq!(model.sample(&mut rng, 0), d);
    }

    #[test]
    fn link_scales_with_payload() {
        let model = LatencyModel::Link {
            base: Duration::from_millis(1),
            per_kb: Duration::from_micros(100),
        };
        let mut rng = StdRng::seed_from_u64(3);
        let small = model.sample(&mut rng, 512);
        let large = model.sample(&mut rng, 512 * 1024);
        assert_eq!(small, Duration::from_millis(1) + Duration::from_micros(100));
        assert!(large > small);
        assert_eq!(
            large,
            Duration::from_millis(1) + Duration::from_micros(100) * 512
        );
    }
}
