//! Simulation clock.
//!
//! The paper's stage-2 latency (~43 s) is pure waiting on blockchain
//! machinery: block intervals, confirmation depth, queueing. Re-running the
//! full figure suite against wall-clock Ethereum timings would take hours,
//! so every time-dependent component reads a [`Clock`] instead of
//! `Instant::now()`:
//!
//! - [`Clock::realtime`] — simulated time == wall time.
//! - [`Clock::compressed`] — simulated time advances `factor`× faster than
//!   wall time (benches use ~1000×: a 13 sim-second block interval costs
//!   13 ms of wall time). Every *ratio* between simulated latencies is
//!   preserved exactly.
//! - [`Clock::manual`] — time advances only on [`Clock::advance`], for
//!   deterministic unit tests (e.g. Payment-contract period accounting).

use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

/// A point in simulated time, measured from the clock's epoch.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug, Default)]
pub struct SimInstant(Duration);

impl SimInstant {
    /// The clock epoch.
    pub const EPOCH: SimInstant = SimInstant(Duration::ZERO);

    /// Duration since an earlier instant (zero if `earlier` is later).
    pub fn since(&self, earlier: SimInstant) -> Duration {
        self.0.saturating_sub(earlier.0)
    }

    /// Offset from the epoch.
    pub fn elapsed(&self) -> Duration {
        self.0
    }

    /// Whole simulated seconds since the epoch (the chain's block-timestamp
    /// unit, mirroring Ethereum's seconds-since-genesis timestamps).
    pub fn as_secs(&self) -> u64 {
        self.0.as_secs()
    }

    /// Adds a simulated duration.
    pub fn add(&self, d: Duration) -> SimInstant {
        SimInstant(self.0 + d)
    }
}

enum Inner {
    /// Wall time scaled by `factor`.
    Scaled { start: Instant, factor: f64 },
    /// Manually advanced time.
    Manual {
        state: Mutex<Duration>,
        waiters: Condvar,
    },
}

/// A shareable simulation clock (cheap to clone).
#[derive(Clone)]
pub struct Clock {
    inner: Arc<Inner>,
}

impl Clock {
    /// A clock where simulated time equals wall time.
    pub fn realtime() -> Clock {
        Clock::compressed(1.0)
    }

    /// A clock where simulated time advances `factor`× faster than wall
    /// time. `factor` must be positive and finite.
    pub fn compressed(factor: f64) -> Clock {
        assert!(
            factor.is_finite() && factor > 0.0,
            "invalid compression factor"
        );
        Clock {
            inner: Arc::new(Inner::Scaled {
                start: Instant::now(),
                factor,
            }),
        }
    }

    /// A clock that only advances via [`Clock::advance`].
    pub fn manual() -> Clock {
        Clock {
            inner: Arc::new(Inner::Manual {
                state: Mutex::new(Duration::ZERO),
                waiters: Condvar::new(),
            }),
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimInstant {
        match &*self.inner {
            Inner::Scaled { start, factor } => SimInstant(Duration::from_secs_f64(
                start.elapsed().as_secs_f64() * factor,
            )),
            Inner::Manual { state, .. } => SimInstant(*state.lock()),
        }
    }

    /// Blocks the calling thread for `d` of simulated time.
    ///
    /// On a scaled clock this is a real sleep of `d / factor`; on a manual
    /// clock it waits until [`Clock::advance`] moves time past the target.
    pub fn sleep(&self, d: Duration) {
        match &*self.inner {
            Inner::Scaled { factor, .. } => {
                std::thread::sleep(Duration::from_secs_f64(d.as_secs_f64() / factor));
            }
            Inner::Manual { state, waiters } => {
                let mut now = state.lock();
                let target = *now + d;
                while *now < target {
                    waiters.wait(&mut now);
                }
            }
        }
    }

    /// Advances a manual clock by `d`, waking sleepers.
    ///
    /// # Panics
    /// Panics if the clock is not manual — advancing wall time is a logic
    /// error, not a runtime condition.
    pub fn advance(&self, d: Duration) {
        match &*self.inner {
            Inner::Manual { state, waiters } => {
                *state.lock() += d;
                waiters.notify_all();
            }
            // lint: allow(panic) — documented `# Panics` contract: advancing a wall clock is a caller logic error, not a runtime condition
            Inner::Scaled { .. } => panic!("advance() requires a manual clock"),
        }
    }

    /// True if this clock is manually driven.
    pub fn is_manual(&self) -> bool {
        matches!(&*self.inner, Inner::Manual { .. })
    }

    /// The simulated-per-wall time factor (1.0 for realtime, `None` for
    /// manual clocks).
    pub fn compression(&self) -> Option<f64> {
        match &*self.inner {
            Inner::Scaled { factor, .. } => Some(*factor),
            Inner::Manual { .. } => None,
        }
    }
}

impl core::fmt::Debug for Clock {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match &*self.inner {
            Inner::Scaled { factor, .. } => write!(f, "Clock(scaled ×{factor})"),
            Inner::Manual { state, .. } => write!(f, "Clock(manual @ {:?})", *state.lock()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn realtime_advances() {
        let clock = Clock::realtime();
        let t0 = clock.now();
        std::thread::sleep(Duration::from_millis(5));
        let t1 = clock.now();
        assert!(t1 > t0);
        assert!(t1.since(t0) >= Duration::from_millis(4));
    }

    #[test]
    fn compressed_runs_faster() {
        let clock = Clock::compressed(1000.0);
        let t0 = clock.now();
        std::thread::sleep(Duration::from_millis(10));
        let elapsed = clock.now().since(t0);
        // 10 ms wall = 10 sim-seconds at 1000x.
        assert!(elapsed >= Duration::from_secs(5), "elapsed {elapsed:?}");
    }

    #[test]
    fn compressed_sleep_is_short() {
        let clock = Clock::compressed(1000.0);
        let wall0 = Instant::now();
        clock.sleep(Duration::from_secs(5)); // should take ~5 ms of wall time
        assert!(wall0.elapsed() < Duration::from_secs(1));
    }

    #[test]
    fn manual_clock_is_frozen_until_advanced() {
        let clock = Clock::manual();
        let t0 = clock.now();
        std::thread::sleep(Duration::from_millis(2));
        assert_eq!(clock.now(), t0);
        clock.advance(Duration::from_secs(60));
        assert_eq!(clock.now().since(t0), Duration::from_secs(60));
        assert_eq!(clock.now().as_secs(), 60);
    }

    #[test]
    fn manual_sleep_wakes_on_advance() {
        let clock = Clock::manual();
        let woke = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let (c, w) = (clock.clone(), woke.clone());
        let handle = std::thread::spawn(move || {
            c.sleep(Duration::from_secs(10));
            w.store(true, std::sync::atomic::Ordering::SeqCst);
        });
        std::thread::sleep(Duration::from_millis(10));
        assert!(!woke.load(std::sync::atomic::Ordering::SeqCst));
        clock.advance(Duration::from_secs(5));
        std::thread::sleep(Duration::from_millis(10));
        assert!(!woke.load(std::sync::atomic::Ordering::SeqCst));
        clock.advance(Duration::from_secs(5));
        handle.join().unwrap();
        assert!(woke.load(std::sync::atomic::Ordering::SeqCst));
    }

    #[test]
    #[should_panic(expected = "manual clock")]
    fn advance_on_scaled_clock_panics() {
        Clock::realtime().advance(Duration::from_secs(1));
    }

    #[test]
    fn sim_instant_arithmetic() {
        let a = SimInstant::EPOCH.add(Duration::from_secs(10));
        let b = a.add(Duration::from_secs(5));
        assert_eq!(b.since(a), Duration::from_secs(5));
        assert_eq!(a.since(b), Duration::ZERO); // saturating
        assert_eq!(b.elapsed(), Duration::from_secs(15));
    }
}
