//! # wedge-sim
//!
//! Simulation-time substrate: a scalable [`Clock`] that lets blockchain
//! timings (13 s block intervals, ~43 s stage-2 latency) run at
//! millisecond-scale wall time while preserving every latency ratio, plus
//! [`LatencyModel`] distributions for simulated network links.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod clock;
mod latency;

pub use clock::{Clock, SimInstant};
pub use latency::LatencyModel;
