//! Message-level signing helpers and the parallel batch operations the
//! WedgeBlock prototype uses ("ECDSA signature and verification are applied
//! independently to a large number of data objects so they are executed
//! concurrently using all available CPU cores" — paper §5).

use crate::ecdsa::{
    recover_address, sign_prehashed, sign_prehashed_batch, verify_prehashed,
    verify_prehashed_batch, Signature,
};
use crate::error::CryptoError;
use crate::hash::keccak256;
use crate::keys::{Address, Keypair, PublicKey, SecretKey};
use crate::secp256k1::AffineTable;

/// Signs an arbitrary message: the signature covers `keccak256(message)`.
pub fn sign_message(secret: &SecretKey, message: &[u8]) -> Signature {
    sign_prehashed(secret, &keccak256(message))
}

/// Verifies a message-level signature.
pub fn verify_message(
    public: &PublicKey,
    message: &[u8],
    sig: &Signature,
) -> Result<(), CryptoError> {
    verify_prehashed(public, &keccak256(message), sig)
}

/// Recovers the signing address from a message-level signature.
pub fn recover_message_signer(message: &[u8], sig: &Signature) -> Result<Address, CryptoError> {
    recover_address(&keccak256(message), sig)
}

/// Signs many prehashed messages in parallel, using at most
/// `min(threads, available_parallelism)` workers from a
/// [`wedge_pool::WorkPool`] — the historical version spawned one thread
/// per chunk regardless of core count; the trimmed excess shows up in
/// [`wedge_pool::oversubscription_avoided`].
///
/// Output order matches input order. With `threads <= 1` the work runs
/// inline.
///
/// Each worker signs a contiguous chunk via
/// [`sign_prehashed_batch`], which shares one field inversion (nonce-point
/// normalization) and one scalar inversion (nonce inverses) across the
/// whole chunk — so the batch API is faster than per-item signing even on
/// one thread. Output bytes are identical to [`sign_prehashed`] per item.
pub fn sign_batch_parallel(
    secret: &SecretKey,
    hashes: &[[u8; 32]],
    threads: usize,
) -> Vec<Signature> {
    let pool = wedge_pool::WorkPool::new(threads);
    // One chunk per worker: the batch-inversion savings grow with chunk
    // length, so chunks are made as large as the parallelism allows.
    let chunk_len = hashes.len().div_ceil(pool.workers()).max(1);
    let chunks: Vec<&[[u8; 32]]> = hashes.chunks(chunk_len).collect();
    pool.map(&chunks, |chunk| sign_prehashed_batch(secret, chunk))
        .into_iter()
        .flatten()
        .collect()
}

/// Verifies many prehashed signatures in parallel (same worker cap as
/// [`sign_batch_parallel`]).
///
/// The public key's odd-multiples table is precomputed **once** and shared
/// by every worker, and each worker's chunk runs through
/// [`verify_prehashed_batch`], which amortizes the per-signature `s⁻¹`
/// inversions into one shared ladder.
///
/// Returns `Ok(())` if every signature verifies, otherwise the index of the
/// first (lowest-index) failure.
pub fn verify_batch_parallel(
    public: &PublicKey,
    items: &[([u8; 32], Signature)],
    threads: usize,
) -> Result<(), usize> {
    let key_table = AffineTable::new(public.point());
    let pool = wedge_pool::WorkPool::new(threads);
    let chunk_len = items.len().div_ceil(pool.workers()).max(1);
    let chunks: Vec<&[([u8; 32], Signature)]> = items.chunks(chunk_len).collect();
    let results = pool.map(&chunks, |chunk| verify_prehashed_batch(&key_table, chunk));
    for (chunk_idx, result) in results.iter().enumerate() {
        if let Err(local) = result {
            return Err(chunk_idx * chunk_len + local);
        }
    }
    Ok(())
}

/// A signing identity: keypair plus message-level convenience methods.
///
/// This is the object the Offchain Node and every client role carry around.
#[derive(Clone, Debug)]
pub struct Identity {
    keypair: Keypair,
}

impl Identity {
    /// Wraps a keypair.
    pub fn new(keypair: Keypair) -> Identity {
        Identity { keypair }
    }

    /// Deterministic identity from a seed label.
    pub fn from_seed(label: &[u8]) -> Identity {
        Identity {
            keypair: Keypair::from_seed(label),
        }
    }

    /// The identity's address.
    pub fn address(&self) -> Address {
        self.keypair.address
    }

    /// The identity's public key.
    pub fn public_key(&self) -> &PublicKey {
        &self.keypair.public
    }

    /// The identity's secret key (for chain transaction signing).
    pub fn secret_key(&self) -> &SecretKey {
        &self.keypair.secret
    }

    /// Signs a message (keccak-prehashed).
    pub fn sign(&self, message: &[u8]) -> Signature {
        sign_message(&self.keypair.secret, message)
    }

    /// Verifies a message signature against this identity.
    pub fn verify(&self, message: &[u8], sig: &Signature) -> Result<(), CryptoError> {
        verify_message(&self.keypair.public, message, sig)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_sign_verify() {
        let id = Identity::from_seed(b"node");
        let sig = id.sign(b"payload");
        id.verify(b"payload", &sig).unwrap();
        assert!(id.verify(b"other", &sig).is_err());
    }

    #[test]
    fn message_recovery() {
        let id = Identity::from_seed(b"rec");
        let sig = id.sign(b"data");
        assert_eq!(recover_message_signer(b"data", &sig).unwrap(), id.address());
    }

    #[test]
    fn batch_sign_matches_sequential() {
        let kp = Keypair::from_seed(b"batch");
        let hashes: Vec<[u8; 32]> = (0..37u32).map(|i| keccak256(&i.to_be_bytes())).collect();
        let seq = sign_batch_parallel(&kp.secret, &hashes, 1);
        let par = sign_batch_parallel(&kp.secret, &hashes, 4);
        assert_eq!(seq.len(), par.len());
        for (a, b) in seq.iter().zip(par.iter()) {
            assert_eq!(a.to_bytes(), b.to_bytes());
        }
    }

    #[test]
    fn batch_verify_accepts_and_locates_failure() {
        let kp = Keypair::from_seed(b"bv");
        let hashes: Vec<[u8; 32]> = (0..25u32).map(|i| keccak256(&i.to_be_bytes())).collect();
        let sigs = sign_batch_parallel(&kp.secret, &hashes, 4);
        let mut items: Vec<([u8; 32], Signature)> = hashes.iter().copied().zip(sigs).collect();
        assert_eq!(verify_batch_parallel(&kp.public, &items, 4), Ok(()));
        // Corrupt item 13: signature from a different message.
        items[13].1 = sign_message(&kp.secret, b"corrupted");
        assert_eq!(verify_batch_parallel(&kp.public, &items, 4), Err(13));
        assert_eq!(verify_batch_parallel(&kp.public, &items, 1), Err(13));
    }

    #[test]
    fn chunked_batch_identical_across_thread_counts() {
        let kp = Keypair::from_seed(b"chunks");
        let hashes: Vec<[u8; 32]> = (0..23u32).map(|i| keccak256(&i.to_le_bytes())).collect();
        let expect: Vec<[u8; 65]> = hashes
            .iter()
            .map(|h| sign_prehashed(&kp.secret, h).to_bytes())
            .collect();
        for threads in [1usize, 2, 3, 5, 8] {
            let got: Vec<[u8; 65]> = sign_batch_parallel(&kp.secret, &hashes, threads)
                .iter()
                .map(|s| s.to_bytes())
                .collect();
            assert_eq!(got, expect, "threads = {threads}");
        }
    }

    #[test]
    fn batch_empty_and_single() {
        let kp = Keypair::from_seed(b"edge");
        assert!(sign_batch_parallel(&kp.secret, &[], 8).is_empty());
        let h = keccak256(b"one");
        let sigs = sign_batch_parallel(&kp.secret, &[h], 8);
        assert_eq!(sigs.len(), 1);
        assert_eq!(
            verify_batch_parallel(&kp.public, &[(h, sigs[0])], 8),
            Ok(())
        );
    }
}
