//! ECDSA over secp256k1 with RFC 6979 deterministic nonces and Ethereum-style
//! public-key recovery.
//!
//! Recovery is the primitive behind the Punishment contract's
//! `recoverSigner` (paper, Algorithm 2): given a signed off-chain response,
//! the contract recovers the signing address on-chain without needing the
//! public key in calldata.

use crate::error::CryptoError;
use crate::hash::HmacSha256;
use crate::keys::{Address, PublicKey, SecretKey};
use crate::secp256k1::scalar::N;
use crate::secp256k1::{
    batch_normalize, mul_double, mul_double_with_table, mul_generator, Affine, AffineTable, Fe,
    Jacobian, Scalar,
};

/// A recoverable ECDSA signature `(r, s, v)` with `s` normalized to the low
/// half of the order (malleability protection, as enforced by Ethereum).
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct Signature {
    /// x-coordinate of the nonce point, mod n.
    pub r: Scalar,
    /// Proof scalar, always in the low half.
    pub s: Scalar,
    /// Recovery id in 0..=3: bit 0 = parity of the nonce point's y; bit 1 =
    /// whether the nonce point's x overflowed the group order.
    pub v: u8,
}

impl Signature {
    /// Serialized length: `r (32) || s (32) || v (1)`.
    pub const LEN: usize = 65;

    /// Serializes to 65 bytes.
    pub fn to_bytes(&self) -> [u8; 65] {
        let mut out = [0u8; 65];
        out[..32].copy_from_slice(&self.r.to_be_bytes());
        out[32..64].copy_from_slice(&self.s.to_be_bytes());
        out[64] = self.v;
        out
    }

    /// Parses from 65 bytes, enforcing canonical (low-s, in-range) form.
    ///
    /// Rejected as [`CryptoError::InvalidSignature`]:
    /// - `r = 0` or `r ≥ n` (r is the nonce x mod n, never zero for a valid
    ///   signature, and any 32-byte encoding ≥ n is non-canonical);
    /// - `s = 0` or `s ≥ n` (same range rule);
    /// - `s > n/2` — **high-s policy**: for every valid `(r, s, v)` the twin
    ///   `(r, n - s, v ^ 1)` also verifies, so accepting both makes
    ///   signatures malleable. Like Ethereum (EIP-2), only the low half is
    ///   canonical; [`sign_prehashed`] always emits low s, and both this
    ///   parser and [`verify_prehashed`] reject the high twin.
    /// - `v > 3` (recovery id has only two meaningful bits).
    pub fn from_bytes(bytes: &[u8; 65]) -> Result<Signature, CryptoError> {
        let mut rb = [0u8; 32];
        let mut sb = [0u8; 32];
        rb.copy_from_slice(&bytes[..32]);
        sb.copy_from_slice(&bytes[32..64]);
        let r = Scalar::from_be_bytes_checked(&rb).ok_or(CryptoError::InvalidSignature)?;
        let s = Scalar::from_be_bytes_checked(&sb).ok_or(CryptoError::InvalidSignature)?;
        let v = bytes[64];
        if r.is_zero() || s.is_zero() || s.is_high() || v > 3 {
            return Err(CryptoError::InvalidSignature);
        }
        Ok(Signature { r, s, v })
    }
}

impl core::fmt::Debug for Signature {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "Signature(r=0x{}…, s=0x{}…, v={})",
            &self.r.to_u256().to_hex()[..8],
            &self.s.to_u256().to_hex()[..8],
            self.v
        )
    }
}

/// Derives the RFC 6979 deterministic nonce for `(secret, msg_hash)`.
///
/// Returns candidate scalars; the caller loops until one yields a valid
/// signature (the first candidate virtually always does).
struct Rfc6979 {
    k: [u8; 32],
    v: [u8; 32],
}

impl Rfc6979 {
    fn new(secret: &SecretKey, msg_hash: &[u8; 32]) -> Rfc6979 {
        // bits2octets(h1): reduce the hash mod n, then serialize.
        let h_reduced = Scalar::from_be_bytes_reduced(msg_hash).to_be_bytes();
        let x = secret.to_bytes();
        let mut k = [0u8; 32];
        let mut v = [1u8; 32];
        // K = HMAC_K(V || 0x00 || x || h)
        let mut mac = HmacSha256::new(&k);
        mac.update(&v);
        mac.update(&[0x00]);
        mac.update(&x);
        mac.update(&h_reduced);
        k = mac.finalize();
        // V = HMAC_K(V)
        v = crate::hash::hmac_sha256(&k, &v);
        // K = HMAC_K(V || 0x01 || x || h)
        let mut mac = HmacSha256::new(&k);
        mac.update(&v);
        mac.update(&[0x01]);
        mac.update(&x);
        mac.update(&h_reduced);
        k = mac.finalize();
        v = crate::hash::hmac_sha256(&k, &v);
        Rfc6979 { k, v }
    }

    /// Produces the next candidate nonce.
    fn next(&mut self) -> Option<Scalar> {
        self.v = crate::hash::hmac_sha256(&self.k, &self.v);
        let candidate = Scalar::from_be_bytes_checked(&self.v);
        // Prepare state for a potential retry.
        let mut mac = HmacSha256::new(&self.k);
        mac.update(&self.v);
        mac.update(&[0x00]);
        self.k = mac.finalize();
        self.v = crate::hash::hmac_sha256(&self.k, &self.v);
        match candidate {
            Some(k) if !k.is_zero() => Some(k),
            _ => None,
        }
    }
}

/// Signs a prehashed 32-byte message, returning a recoverable signature.
pub fn sign_prehashed(secret: &SecretKey, msg_hash: &[u8; 32]) -> Signature {
    let z = Scalar::from_be_bytes_reduced(msg_hash);
    let d = secret.scalar();
    let mut nonce_gen = Rfc6979::new(secret, msg_hash);
    loop {
        let Some(k) = nonce_gen.next() else { continue };
        let point = mul_generator(&k).to_affine();
        if point.infinity {
            continue;
        }
        let x_int = point.x.to_u256();
        let r = Scalar::from_u256(x_int);
        if r.is_zero() {
            continue;
        }
        let Some(k_inv) = k.invert() else { continue };
        let mut s = k_inv.mul(&z.add(&r.mul(d)));
        if s.is_zero() {
            continue;
        }
        let mut v = point.y.is_odd() as u8;
        if x_int >= N {
            v |= 2;
        }
        if s.is_high() {
            // Normalizing s to the low half negates the nonce point's y.
            s = s.neg();
            v ^= 1;
        }
        return Signature { r, s, v };
    }
}

/// Signs a batch of prehashed messages, amortizing the expensive per-item
/// inversions: the nonce-point affine conversions collapse into one shared
/// field inversion ([`batch_normalize`]) and the nonce inverses into one
/// shared scalar inversion ([`Scalar::batch_invert`]).
///
/// Output is **byte-identical** to calling [`sign_prehashed`] per item: the
/// fast path uses the same first RFC 6979 nonce candidate, and any
/// astronomically rare edge case (rejected nonce, `r = 0`, `s = 0`) falls
/// back to the per-item loop for that message.
pub fn sign_prehashed_batch(secret: &SecretKey, msg_hashes: &[[u8; 32]]) -> Vec<Signature> {
    let d = secret.scalar();
    let mut nonces = Vec::with_capacity(msg_hashes.len());
    let mut points = Vec::with_capacity(msg_hashes.len());
    for h in msg_hashes {
        match Rfc6979::new(secret, h).next() {
            Some(k) => {
                points.push(mul_generator(&k));
                nonces.push(Some(k));
            }
            None => {
                points.push(Jacobian::INFINITY);
                nonces.push(None);
            }
        }
    }
    let affines = batch_normalize(&points);
    let mut k_invs: Vec<Scalar> = nonces.iter().map(|k| k.unwrap_or(Scalar::ZERO)).collect();
    Scalar::batch_invert(&mut k_invs);
    msg_hashes
        .iter()
        .enumerate()
        .map(|(i, h)| {
            // Any deviation from the happy path defers to the per-item
            // signer so batch output stays bit-for-bit identical.
            if nonces[i].is_none() || affines[i].infinity || k_invs[i].is_zero() {
                return sign_prehashed(secret, h);
            }
            let point = affines[i];
            let x_int = point.x.to_u256();
            let r = Scalar::from_u256(x_int);
            if r.is_zero() {
                return sign_prehashed(secret, h);
            }
            let z = Scalar::from_be_bytes_reduced(h);
            let mut s = k_invs[i].mul(&z.add(&r.mul(d)));
            if s.is_zero() {
                return sign_prehashed(secret, h);
            }
            let mut v = point.y.is_odd() as u8;
            if x_int >= N {
                v |= 2;
            }
            if s.is_high() {
                s = s.neg();
                v ^= 1;
            }
            Signature { r, s, v }
        })
        .collect()
}

/// Checks whether a Jacobian point's affine x-coordinate is congruent to
/// `r` mod n **without leaving projective coordinates**: `x ≡ r (mod n)`
/// iff `X = x_cand · Z²` for `x_cand ∈ {r, r + n}` (the second candidate
/// only exists when `r + n < p`). Replaces the field inversion the old
/// affine comparison needed; the accepted set is unchanged.
fn proj_x_matches_r(point: &Jacobian, r: &Scalar) -> bool {
    let z2 = point.proj_z().square();
    let x = point.proj_x().to_be_bytes();
    let r_int = r.to_u256();
    if crate::ct::ct_eq(&x, &Fe::from_u256(r_int).mul(&z2).to_be_bytes()) {
        return true;
    }
    let (sum, carry) = r_int.overflowing_add(&N);
    if carry || sum >= crate::secp256k1::field::P {
        return false;
    }
    crate::ct::ct_eq(&x, &Fe::from_u256(sum).mul(&z2).to_be_bytes())
}

/// Verifies a signature over a prehashed message against a public key.
///
/// High-s signatures are rejected (see [`Signature::from_bytes`] for the
/// malleability policy). One-off verification; callers checking many
/// signatures under the same key should build an [`AffineTable`] for the
/// key once and use [`verify_prehashed_with_table`].
pub fn verify_prehashed(
    public: &PublicKey,
    msg_hash: &[u8; 32],
    sig: &Signature,
) -> Result<(), CryptoError> {
    verify_prehashed_with_table(&AffineTable::new(public.point()), msg_hash, sig)
}

/// Verifies a signature using a prebuilt odd-multiples table for the public
/// key, so the per-key precomputation is paid once per batch instead of
/// once per signature. The verification combination `u1·G + u2·Q` runs as
/// one Strauss–Shamir/GLV interleaved multiplication and the final
/// x-coordinate check stays projective (no inversion).
pub fn verify_prehashed_with_table(
    key_table: &AffineTable,
    msg_hash: &[u8; 32],
    sig: &Signature,
) -> Result<(), CryptoError> {
    if sig.r.is_zero() || sig.s.is_zero() || sig.s.is_high() {
        return Err(CryptoError::InvalidSignature);
    }
    let z = Scalar::from_be_bytes_reduced(msg_hash);
    let s_inv = sig.s.invert().ok_or(CryptoError::InvalidSignature)?;
    let u1 = z.mul(&s_inv);
    let u2 = sig.r.mul(&s_inv);
    let point = mul_double_with_table(&u1, &u2, key_table);
    if point.is_infinity() {
        return Err(CryptoError::VerificationFailed);
    }
    if proj_x_matches_r(&point, &sig.r) {
        Ok(())
    } else {
        Err(CryptoError::VerificationFailed)
    }
}

/// Verifies a batch of signatures under **one** public key, amortizing the
/// per-signature `s⁻¹` Fermat ladder into a single shared
/// [`Scalar::batch_invert`] on top of the cached-table savings of
/// [`verify_prehashed_with_table`].
///
/// Returns `Ok(())` if every signature verifies, otherwise the index of
/// the first (lowest-index) failure. Accept/reject decisions are identical
/// to calling [`verify_prehashed_with_table`] per item.
pub fn verify_prehashed_batch(
    key_table: &AffineTable,
    items: &[([u8; 32], Signature)],
) -> Result<(), usize> {
    let mut s_invs: Vec<Scalar> = items.iter().map(|(_, sig)| sig.s).collect();
    Scalar::batch_invert(&mut s_invs);
    for (i, ((msg_hash, sig), s_inv)) in items.iter().zip(&s_invs).enumerate() {
        // batch_invert leaves zero elements zero, so a zero s surfaces
        // here exactly like the per-item `invert()` failure.
        if sig.r.is_zero() || sig.s.is_zero() || sig.s.is_high() || s_inv.is_zero() {
            return Err(i);
        }
        let z = Scalar::from_be_bytes_reduced(msg_hash);
        let u1 = z.mul(s_inv);
        let u2 = sig.r.mul(s_inv);
        let point = mul_double_with_table(&u1, &u2, key_table);
        if point.is_infinity() || !proj_x_matches_r(&point, &sig.r) {
            return Err(i);
        }
    }
    Ok(())
}

/// Recovers the signer's public key from a signature over a prehashed
/// message.
///
/// When the recovery id carries bit 1 (`v` in `2..=3`), the nonce point's x
/// overflowed the group order — `x = r + n` rather than `x = r` — which is
/// only representable when `r < p - n`. Both candidates are honored here;
/// signatures produced by [`sign_prehashed`] set the bit automatically.
pub fn recover_prehashed(msg_hash: &[u8; 32], sig: &Signature) -> Result<PublicKey, CryptoError> {
    if sig.r.is_zero() || sig.s.is_zero() || sig.v > 3 {
        return Err(CryptoError::InvalidSignature);
    }
    // Reconstruct the nonce point's x as a field element; add n back if the
    // recovery id says it overflowed.
    let mut x_int = sig.r.to_u256();
    if sig.v & 2 != 0 {
        let (sum, carry) = x_int.overflowing_add(&N);
        // x + n must still be a valid field element (< p); since p > n this
        // only fails for a vanishingly small range, which we reject.
        if carry || sum >= crate::secp256k1::field::P {
            return Err(CryptoError::RecoveryFailed);
        }
        x_int = sum;
    }
    let x = Fe::from_u256(x_int);
    // lint: allow(ct) — recovery consumes a *public* signature: the v bit
    // tested here is attacker-supplied input, not secret material, and the
    // recovered nonce point is derived entirely from public (r, s, v, hash).
    let nonce_point = Affine::lift_x(x, sig.v & 1 == 1).ok_or(CryptoError::RecoveryFailed)?;
    let z = Scalar::from_be_bytes_reduced(msg_hash);
    let r_inv = sig.r.invert().ok_or(CryptoError::InvalidSignature)?;
    // Q = r^-1 (s*R - z*G) = (-z*r^-1)*G + (s*r^-1)*R — one Strauss–Shamir
    // double multiplication instead of two full multiplications.
    let u1 = z.mul(&r_inv).neg();
    let u2 = sig.s.mul(&r_inv);
    let q_affine = mul_double(&u1, &u2, &nonce_point).to_affine();
    if q_affine.infinity {
        return Err(CryptoError::RecoveryFailed);
    }
    PublicKey::from_point(q_affine)
}

/// Recovers the signer's address — the on-chain `recoverSigner` primitive.
pub fn recover_address(msg_hash: &[u8; 32], sig: &Signature) -> Result<Address, CryptoError> {
    Ok(recover_prehashed(msg_hash, sig)?.address())
}

pub mod reference {
    //! Pre-optimization ECDSA baselines built on the frozen 4-bit window
    //! paths in [`crate::secp256k1::point::reference`]: per-call Fermat
    //! inversions, two independent multiplications per verification, and an
    //! affine final comparison. Differential tests assert the fast paths
    //! produce **byte-identical signatures** and the **same accept/reject
    //! decisions**; the `repro -- signing` experiment measures these as the
    //! honest pre-PR baseline.

    use super::{CryptoError, PublicKey, Rfc6979, Scalar, SecretKey, Signature, N};
    use crate::secp256k1::point::reference as point_ref;

    /// [`super::sign_prehashed`] as it was before the comb table and batch
    /// inversion: 4-bit windowed `k·G`, one field inversion for the affine
    /// conversion, one Fermat scalar inversion per signature.
    pub fn sign_prehashed(secret: &SecretKey, msg_hash: &[u8; 32]) -> Signature {
        let z = Scalar::from_be_bytes_reduced(msg_hash);
        let d = secret.scalar();
        let mut nonce_gen = Rfc6979::new(secret, msg_hash);
        loop {
            let Some(k) = nonce_gen.next() else { continue };
            let point = point_ref::mul_generator(&k).to_affine();
            if point.infinity {
                continue;
            }
            let x_int = point.x.to_u256();
            let r = Scalar::from_u256(x_int);
            if r.is_zero() {
                continue;
            }
            let Some(k_inv) = k.invert() else { continue };
            let mut s = k_inv.mul(&z.add(&r.mul(d)));
            if s.is_zero() {
                continue;
            }
            let mut v = point.y.is_odd() as u8;
            if x_int >= N {
                v |= 2;
            }
            if s.is_high() {
                // Normalizing s to the low half negates the nonce point's y.
                s = s.neg();
                v ^= 1;
            }
            return Signature { r, s, v };
        }
    }

    /// [`super::verify_prehashed`] as it was before Strauss–Shamir: two
    /// independent scalar multiplications (the key's window table rebuilt
    /// per call) and an affine conversion for the final x comparison.
    pub fn verify_prehashed(
        public: &PublicKey,
        msg_hash: &[u8; 32],
        sig: &Signature,
    ) -> Result<(), CryptoError> {
        if sig.r.is_zero() || sig.s.is_zero() || sig.s.is_high() {
            return Err(CryptoError::InvalidSignature);
        }
        let z = Scalar::from_be_bytes_reduced(msg_hash);
        let s_inv = sig.s.invert().ok_or(CryptoError::InvalidSignature)?;
        let u1 = z.mul(&s_inv);
        let u2 = sig.r.mul(&s_inv);
        let point = point_ref::mul_generator(&u1)
            .add(&point_ref::mul_point(public.point(), &u2))
            .to_affine();
        if point.infinity {
            return Err(CryptoError::VerificationFailed);
        }
        let r_candidate = Scalar::from_u256(point.x.to_u256());
        if crate::ct::ct_eq(&r_candidate.to_be_bytes(), &sig.r.to_be_bytes()) {
            Ok(())
        } else {
            Err(CryptoError::VerificationFailed)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::keccak256;
    use crate::keys::Keypair;

    fn hash(msg: &[u8]) -> [u8; 32] {
        keccak256(msg)
    }

    #[test]
    fn sign_verify_roundtrip() {
        let kp = Keypair::from_seed(b"signer");
        let h = hash(b"hello wedgeblock");
        let sig = sign_prehashed(&kp.secret, &h);
        verify_prehashed(&kp.public, &h, &sig).unwrap();
    }

    #[test]
    fn signing_is_deterministic() {
        let kp = Keypair::from_seed(b"det");
        let h = hash(b"same message");
        assert_eq!(
            sign_prehashed(&kp.secret, &h).to_bytes(),
            sign_prehashed(&kp.secret, &h).to_bytes()
        );
    }

    #[test]
    fn wrong_message_fails() {
        let kp = Keypair::from_seed(b"wm");
        let sig = sign_prehashed(&kp.secret, &hash(b"a"));
        assert_eq!(
            verify_prehashed(&kp.public, &hash(b"b"), &sig),
            Err(CryptoError::VerificationFailed)
        );
    }

    #[test]
    fn wrong_key_fails() {
        let kp1 = Keypair::from_seed(b"k1");
        let kp2 = Keypair::from_seed(b"k2");
        let h = hash(b"msg");
        let sig = sign_prehashed(&kp1.secret, &h);
        assert!(verify_prehashed(&kp2.public, &h, &sig).is_err());
    }

    #[test]
    fn tampered_signature_fails() {
        let kp = Keypair::from_seed(b"tamper");
        let h = hash(b"msg");
        let sig = sign_prehashed(&kp.secret, &h);
        let tampered = Signature {
            r: sig.r.add(&Scalar::ONE),
            ..sig
        };
        assert!(verify_prehashed(&kp.public, &h, &tampered).is_err());
    }

    #[test]
    fn recovery_returns_signer() {
        for seed in [b"r1".as_slice(), b"r2", b"r3", b"r4", b"r5"] {
            let kp = Keypair::from_seed(seed);
            let h = hash(seed);
            let sig = sign_prehashed(&kp.secret, &h);
            let recovered = recover_prehashed(&h, &sig).unwrap();
            assert_eq!(recovered, kp.public, "seed {seed:?}");
            assert_eq!(recover_address(&h, &sig).unwrap(), kp.address);
        }
    }

    #[test]
    fn recovery_with_flipped_v_gives_other_key() {
        let kp = Keypair::from_seed(b"flip");
        let h = hash(b"m");
        let sig = sign_prehashed(&kp.secret, &h);
        let flipped = Signature {
            v: sig.v ^ 1,
            ..sig
        };
        // Either recovery fails or it yields a different key.
        if let Ok(pk) = recover_prehashed(&h, &flipped) {
            assert_ne!(pk, kp.public);
        }
    }

    #[test]
    fn signature_serialization_roundtrip() {
        let kp = Keypair::from_seed(b"ser");
        let h = hash(b"sermsg");
        let sig = sign_prehashed(&kp.secret, &h);
        let bytes = sig.to_bytes();
        let parsed = Signature::from_bytes(&bytes).unwrap();
        assert_eq!(parsed, sig);
    }

    #[test]
    fn high_s_rejected_on_parse() {
        let kp = Keypair::from_seed(b"hs");
        let h = hash(b"m");
        let sig = sign_prehashed(&kp.secret, &h);
        // Re-encode with s' = n - s (the high twin).
        let mut bytes = sig.to_bytes();
        let s_high = sig.s.neg();
        bytes[32..64].copy_from_slice(&s_high.to_be_bytes());
        assert_eq!(
            Signature::from_bytes(&bytes),
            Err(CryptoError::InvalidSignature)
        );
    }

    #[test]
    fn produced_signatures_are_low_s() {
        for i in 0..20u32 {
            let kp = Keypair::from_seed(&i.to_be_bytes());
            let sig = sign_prehashed(&kp.secret, &hash(&i.to_le_bytes()));
            assert!(!sig.s.is_high());
            assert!(sig.v <= 3);
        }
    }

    #[test]
    fn malformed_signature_bytes_rejected() {
        // r = 0
        let mut bytes = [0u8; 65];
        bytes[63] = 1; // s = 1
        assert!(Signature::from_bytes(&bytes).is_err());
        // v out of range
        let kp = Keypair::from_seed(b"vrange");
        let mut good = sign_prehashed(&kp.secret, &hash(b"x")).to_bytes();
        good[64] = 4;
        assert!(Signature::from_bytes(&good).is_err());
    }

    #[test]
    fn cross_message_recovery_mismatch() {
        // A signature recovered against the wrong message hash yields a key
        // that does not verify the original message — the property the
        // punishment contract relies on.
        let kp = Keypair::from_seed(b"cross");
        let h1 = hash(b"committed entry");
        let h2 = hash(b"forged entry");
        let sig = sign_prehashed(&kp.secret, &h1);
        if let Ok(pk) = recover_prehashed(&h2, &sig) {
            assert_ne!(pk.address(), kp.address);
        }
    }

    #[test]
    fn known_key_signature_verifies_with_generator_pubkey() {
        // secret = 1 → pubkey = G; exercise the minimal scalar path.
        let mut one = [0u8; 32];
        one[31] = 1;
        let sk = SecretKey::from_bytes(&one).unwrap();
        let pk = sk.public_key();
        assert_eq!(*pk.point(), Affine::GENERATOR);
        let h = hash(b"unit key");
        let sig = sign_prehashed(&sk, &h);
        verify_prehashed(&pk, &h, &sig).unwrap();
        assert_eq!(recover_prehashed(&h, &sig).unwrap(), pk);
    }

    /// Re-encodes a valid signature with one component replaced, returning
    /// the parse result.
    fn parse_with(sig: &Signature, r: Option<&[u8; 32]>, s: Option<&[u8; 32]>) -> bool {
        let mut bytes = sig.to_bytes();
        if let Some(rb) = r {
            bytes[..32].copy_from_slice(rb);
        }
        if let Some(sb) = s {
            bytes[32..64].copy_from_slice(sb);
        }
        Signature::from_bytes(&bytes).is_ok()
    }

    #[test]
    fn boundary_values_rejected_on_parse() {
        let kp = Keypair::from_seed(b"bounds");
        let sig = sign_prehashed(&kp.secret, &hash(b"boundary"));
        let zero = [0u8; 32];
        let n_bytes = N.to_be_bytes();
        let n_minus_1 = N.wrapping_sub(&crate::uint::U256::ONE).to_be_bytes();
        let n_plus_1 = N.wrapping_add(&crate::uint::U256::ONE).to_be_bytes();
        // r boundaries: 0, n, n+1 rejected; n-1 is in range and accepted.
        assert!(!parse_with(&sig, Some(&zero), None), "r = 0");
        assert!(!parse_with(&sig, Some(&n_bytes), None), "r = n");
        assert!(!parse_with(&sig, Some(&n_plus_1), None), "r = n + 1");
        assert!(parse_with(&sig, Some(&n_minus_1), None), "r = n - 1");
        // s boundaries: 0, n, n+1 rejected; n-1 is in range but HIGH, so the
        // malleability policy rejects it too.
        assert!(!parse_with(&sig, None, Some(&zero)), "s = 0");
        assert!(!parse_with(&sig, None, Some(&n_bytes)), "s = n");
        assert!(!parse_with(&sig, None, Some(&n_plus_1)), "s = n + 1");
        assert!(
            !parse_with(&sig, None, Some(&n_minus_1)),
            "s = n - 1 (high)"
        );
        // The original signature still parses.
        assert!(parse_with(&sig, None, None));
    }

    #[test]
    fn verify_rejects_zero_and_high_components() {
        let kp = Keypair::from_seed(b"vrej");
        let h = hash(b"m");
        let sig = sign_prehashed(&kp.secret, &h);
        for bad in [
            Signature {
                r: Scalar::ZERO,
                ..sig
            },
            Signature {
                s: Scalar::ZERO,
                ..sig
            },
            Signature {
                s: sig.s.neg(), // high twin
                ..sig
            },
        ] {
            assert_eq!(
                verify_prehashed(&kp.public, &h, &bad),
                Err(CryptoError::InvalidSignature)
            );
        }
    }

    /// Finds a curve point whose x-coordinate lies in `[n, p)` — the range
    /// where the nonce x overflows the group order, forcing recovery ids
    /// 2/3. Such points exist for roughly `(p - n) / 2 ≈ 2^128` x values,
    /// so scanning from n finds one immediately.
    fn overflowing_nonce_point() -> Affine {
        for t in 1u64..1000 {
            let x_int = N.wrapping_add(&crate::uint::U256::from_u64(t));
            if let Some(p) = Affine::lift_x(Fe::from_u256(x_int), false) {
                return p;
            }
        }
        unreachable!("a curve point with x in [n, p) exists within 1000 tries");
    }

    #[test]
    fn recovery_selects_second_x_candidate() {
        // Construct the edge-case vector directly: a nonce point R with
        // x = r + n. The verification equation defines the recovered key
        // Q = r^-1(sR - zG); recovery with v bit 1 set must reproduce it,
        // and verification must accept x ≡ r (mod n) via the second
        // candidate.
        let nonce_point = overflowing_nonce_point();
        let x_int = nonce_point.x.to_u256();
        assert!(x_int >= N, "vector must overflow the order");
        let r = Scalar::from_u256(x_int);
        assert!(!r.is_zero());
        let s = {
            let cand = Scalar::from_be_bytes_reduced(&hash(b"edge s"));
            if cand.is_high() {
                cand.neg()
            } else {
                cand
            }
        };
        let h = hash(b"overflowing nonce");
        let v = nonce_point.y.is_odd() as u8 | 2;
        let sig = Signature { r, s, v };
        // Recovery honors the second candidate…
        let recovered = recover_prehashed(&h, &sig).expect("recovery ids 2/3 select x = r + n");
        // …the recovered key verifies the signature (exercising the r + n
        // branch of the projective x check)…
        verify_prehashed(&recovered, &h, &sig).unwrap();
        assert_eq!(
            reference::verify_prehashed(&recovered, &h, &sig),
            Ok(()),
            "old affine check agrees"
        );
        // …and recover_address round-trips to the same signer.
        assert_eq!(recover_address(&h, &sig).unwrap(), recovered.address());
        // Without bit 1 the nonce x is taken as r itself, which names a
        // different (or no) nonce point — never the same key.
        if let Ok(other) = recover_prehashed(&h, &Signature { v: v & 1, ..sig }) {
            assert_ne!(other, recovered);
        }
    }

    #[test]
    fn batch_sign_matches_sequential() {
        let kp = Keypair::from_seed(b"batchsig");
        for len in [0usize, 1, 2, 7, 33] {
            let hashes: Vec<[u8; 32]> = (0..len).map(|i| hash(&(i as u64).to_be_bytes())).collect();
            let batch = sign_prehashed_batch(&kp.secret, &hashes);
            assert_eq!(batch.len(), len);
            for (h, sig) in hashes.iter().zip(&batch) {
                assert_eq!(
                    sig.to_bytes(),
                    sign_prehashed(&kp.secret, h).to_bytes(),
                    "batch output must be byte-identical"
                );
                assert_eq!(
                    sig.to_bytes(),
                    reference::sign_prehashed(&kp.secret, h).to_bytes(),
                    "and identical to the pre-optimization signer"
                );
            }
        }
    }

    #[test]
    fn table_verify_matches_plain_and_reference() {
        let kp = Keypair::from_seed(b"tblver");
        let other = Keypair::from_seed(b"not the signer");
        let table = AffineTable::new(kp.public.point());
        for i in 0..8u8 {
            let h = hash(&[i]);
            let sig = sign_prehashed(&kp.secret, &h);
            verify_prehashed_with_table(&table, &h, &sig).unwrap();
            let wrong = hash(&[i, 0xFF]);
            assert_eq!(
                verify_prehashed_with_table(&table, &wrong, &sig),
                reference::verify_prehashed(&kp.public, &wrong, &sig)
            );
            assert!(verify_prehashed(&other.public, &h, &sig).is_err());
        }
    }
}
