//! ECDSA over secp256k1 with RFC 6979 deterministic nonces and Ethereum-style
//! public-key recovery.
//!
//! Recovery is the primitive behind the Punishment contract's
//! `recoverSigner` (paper, Algorithm 2): given a signed off-chain response,
//! the contract recovers the signing address on-chain without needing the
//! public key in calldata.

use crate::error::CryptoError;
use crate::hash::HmacSha256;
use crate::keys::{Address, PublicKey, SecretKey};
use crate::secp256k1::scalar::N;
use crate::secp256k1::{mul_generator, mul_point, Affine, Fe, Scalar};

/// A recoverable ECDSA signature `(r, s, v)` with `s` normalized to the low
/// half of the order (malleability protection, as enforced by Ethereum).
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct Signature {
    /// x-coordinate of the nonce point, mod n.
    pub r: Scalar,
    /// Proof scalar, always in the low half.
    pub s: Scalar,
    /// Recovery id in 0..=3: bit 0 = parity of the nonce point's y; bit 1 =
    /// whether the nonce point's x overflowed the group order.
    pub v: u8,
}

impl Signature {
    /// Serialized length: `r (32) || s (32) || v (1)`.
    pub const LEN: usize = 65;

    /// Serializes to 65 bytes.
    pub fn to_bytes(&self) -> [u8; 65] {
        let mut out = [0u8; 65];
        out[..32].copy_from_slice(&self.r.to_be_bytes());
        out[32..64].copy_from_slice(&self.s.to_be_bytes());
        out[64] = self.v;
        out
    }

    /// Parses from 65 bytes, enforcing canonical (low-s, in-range) form.
    pub fn from_bytes(bytes: &[u8; 65]) -> Result<Signature, CryptoError> {
        let mut rb = [0u8; 32];
        let mut sb = [0u8; 32];
        rb.copy_from_slice(&bytes[..32]);
        sb.copy_from_slice(&bytes[32..64]);
        let r = Scalar::from_be_bytes_checked(&rb).ok_or(CryptoError::InvalidSignature)?;
        let s = Scalar::from_be_bytes_checked(&sb).ok_or(CryptoError::InvalidSignature)?;
        let v = bytes[64];
        if r.is_zero() || s.is_zero() || s.is_high() || v > 3 {
            return Err(CryptoError::InvalidSignature);
        }
        Ok(Signature { r, s, v })
    }
}

impl core::fmt::Debug for Signature {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "Signature(r=0x{}…, s=0x{}…, v={})",
            &self.r.to_u256().to_hex()[..8],
            &self.s.to_u256().to_hex()[..8],
            self.v
        )
    }
}

/// Derives the RFC 6979 deterministic nonce for `(secret, msg_hash)`.
///
/// Returns candidate scalars; the caller loops until one yields a valid
/// signature (the first candidate virtually always does).
struct Rfc6979 {
    k: [u8; 32],
    v: [u8; 32],
}

impl Rfc6979 {
    fn new(secret: &SecretKey, msg_hash: &[u8; 32]) -> Rfc6979 {
        // bits2octets(h1): reduce the hash mod n, then serialize.
        let h_reduced = Scalar::from_be_bytes_reduced(msg_hash).to_be_bytes();
        let x = secret.to_bytes();
        let mut k = [0u8; 32];
        let mut v = [1u8; 32];
        // K = HMAC_K(V || 0x00 || x || h)
        let mut mac = HmacSha256::new(&k);
        mac.update(&v);
        mac.update(&[0x00]);
        mac.update(&x);
        mac.update(&h_reduced);
        k = mac.finalize();
        // V = HMAC_K(V)
        v = crate::hash::hmac_sha256(&k, &v);
        // K = HMAC_K(V || 0x01 || x || h)
        let mut mac = HmacSha256::new(&k);
        mac.update(&v);
        mac.update(&[0x01]);
        mac.update(&x);
        mac.update(&h_reduced);
        k = mac.finalize();
        v = crate::hash::hmac_sha256(&k, &v);
        Rfc6979 { k, v }
    }

    /// Produces the next candidate nonce.
    fn next(&mut self) -> Option<Scalar> {
        self.v = crate::hash::hmac_sha256(&self.k, &self.v);
        let candidate = Scalar::from_be_bytes_checked(&self.v);
        // Prepare state for a potential retry.
        let mut mac = HmacSha256::new(&self.k);
        mac.update(&self.v);
        mac.update(&[0x00]);
        self.k = mac.finalize();
        self.v = crate::hash::hmac_sha256(&self.k, &self.v);
        match candidate {
            Some(k) if !k.is_zero() => Some(k),
            _ => None,
        }
    }
}

/// Signs a prehashed 32-byte message, returning a recoverable signature.
pub fn sign_prehashed(secret: &SecretKey, msg_hash: &[u8; 32]) -> Signature {
    let z = Scalar::from_be_bytes_reduced(msg_hash);
    let d = secret.scalar();
    let mut nonce_gen = Rfc6979::new(secret, msg_hash);
    loop {
        let Some(k) = nonce_gen.next() else { continue };
        let point = mul_generator(&k).to_affine();
        if point.infinity {
            continue;
        }
        let x_int = point.x.to_u256();
        let r = Scalar::from_u256(x_int);
        if r.is_zero() {
            continue;
        }
        let Some(k_inv) = k.invert() else { continue };
        let mut s = k_inv.mul(&z.add(&r.mul(d)));
        if s.is_zero() {
            continue;
        }
        let mut v = point.y.is_odd() as u8;
        if x_int >= N {
            v |= 2;
        }
        if s.is_high() {
            // Normalizing s to the low half negates the nonce point's y.
            s = s.neg();
            v ^= 1;
        }
        return Signature { r, s, v };
    }
}

/// Verifies a signature over a prehashed message against a public key.
pub fn verify_prehashed(
    public: &PublicKey,
    msg_hash: &[u8; 32],
    sig: &Signature,
) -> Result<(), CryptoError> {
    if sig.r.is_zero() || sig.s.is_zero() || sig.s.is_high() {
        return Err(CryptoError::InvalidSignature);
    }
    let z = Scalar::from_be_bytes_reduced(msg_hash);
    let s_inv = sig.s.invert().ok_or(CryptoError::InvalidSignature)?;
    let u1 = z.mul(&s_inv);
    let u2 = sig.r.mul(&s_inv);
    let point = mul_generator(&u1)
        .add(&mul_point(public.point(), &u2))
        .to_affine();
    if point.infinity {
        return Err(CryptoError::VerificationFailed);
    }
    let r_candidate = Scalar::from_u256(point.x.to_u256());
    if crate::ct::ct_eq(&r_candidate.to_be_bytes(), &sig.r.to_be_bytes()) {
        Ok(())
    } else {
        Err(CryptoError::VerificationFailed)
    }
}

/// Recovers the signer's public key from a signature over a prehashed
/// message.
pub fn recover_prehashed(msg_hash: &[u8; 32], sig: &Signature) -> Result<PublicKey, CryptoError> {
    if sig.r.is_zero() || sig.s.is_zero() || sig.v > 3 {
        return Err(CryptoError::InvalidSignature);
    }
    // Reconstruct the nonce point's x as a field element; add n back if the
    // recovery id says it overflowed.
    let mut x_int = sig.r.to_u256();
    if sig.v & 2 != 0 {
        let (sum, carry) = x_int.overflowing_add(&N);
        // x + n must still be a valid field element (< p); since p > n this
        // only fails for a vanishingly small range, which we reject.
        if carry || sum >= crate::secp256k1::field::P {
            return Err(CryptoError::RecoveryFailed);
        }
        x_int = sum;
    }
    let x = Fe::from_u256(x_int);
    let nonce_point = Affine::lift_x(x, sig.v & 1 == 1).ok_or(CryptoError::RecoveryFailed)?;
    let z = Scalar::from_be_bytes_reduced(msg_hash);
    let r_inv = sig.r.invert().ok_or(CryptoError::InvalidSignature)?;
    // Q = r^-1 (s*R - z*G)
    let s_r = mul_point(&nonce_point, &sig.s);
    let z_g = mul_generator(&z.neg());
    let q = s_r.add(&z_g);
    let q_affine = mul_point(&q.to_affine(), &r_inv).to_affine();
    if q_affine.infinity {
        return Err(CryptoError::RecoveryFailed);
    }
    PublicKey::from_point(q_affine)
}

/// Recovers the signer's address — the on-chain `recoverSigner` primitive.
pub fn recover_address(msg_hash: &[u8; 32], sig: &Signature) -> Result<Address, CryptoError> {
    Ok(recover_prehashed(msg_hash, sig)?.address())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::keccak256;
    use crate::keys::Keypair;

    fn hash(msg: &[u8]) -> [u8; 32] {
        keccak256(msg)
    }

    #[test]
    fn sign_verify_roundtrip() {
        let kp = Keypair::from_seed(b"signer");
        let h = hash(b"hello wedgeblock");
        let sig = sign_prehashed(&kp.secret, &h);
        verify_prehashed(&kp.public, &h, &sig).unwrap();
    }

    #[test]
    fn signing_is_deterministic() {
        let kp = Keypair::from_seed(b"det");
        let h = hash(b"same message");
        assert_eq!(
            sign_prehashed(&kp.secret, &h).to_bytes(),
            sign_prehashed(&kp.secret, &h).to_bytes()
        );
    }

    #[test]
    fn wrong_message_fails() {
        let kp = Keypair::from_seed(b"wm");
        let sig = sign_prehashed(&kp.secret, &hash(b"a"));
        assert_eq!(
            verify_prehashed(&kp.public, &hash(b"b"), &sig),
            Err(CryptoError::VerificationFailed)
        );
    }

    #[test]
    fn wrong_key_fails() {
        let kp1 = Keypair::from_seed(b"k1");
        let kp2 = Keypair::from_seed(b"k2");
        let h = hash(b"msg");
        let sig = sign_prehashed(&kp1.secret, &h);
        assert!(verify_prehashed(&kp2.public, &h, &sig).is_err());
    }

    #[test]
    fn tampered_signature_fails() {
        let kp = Keypair::from_seed(b"tamper");
        let h = hash(b"msg");
        let sig = sign_prehashed(&kp.secret, &h);
        let tampered = Signature {
            r: sig.r.add(&Scalar::ONE),
            ..sig
        };
        assert!(verify_prehashed(&kp.public, &h, &tampered).is_err());
    }

    #[test]
    fn recovery_returns_signer() {
        for seed in [b"r1".as_slice(), b"r2", b"r3", b"r4", b"r5"] {
            let kp = Keypair::from_seed(seed);
            let h = hash(seed);
            let sig = sign_prehashed(&kp.secret, &h);
            let recovered = recover_prehashed(&h, &sig).unwrap();
            assert_eq!(recovered, kp.public, "seed {seed:?}");
            assert_eq!(recover_address(&h, &sig).unwrap(), kp.address);
        }
    }

    #[test]
    fn recovery_with_flipped_v_gives_other_key() {
        let kp = Keypair::from_seed(b"flip");
        let h = hash(b"m");
        let sig = sign_prehashed(&kp.secret, &h);
        let flipped = Signature {
            v: sig.v ^ 1,
            ..sig
        };
        // Either recovery fails or it yields a different key.
        if let Ok(pk) = recover_prehashed(&h, &flipped) {
            assert_ne!(pk, kp.public);
        }
    }

    #[test]
    fn signature_serialization_roundtrip() {
        let kp = Keypair::from_seed(b"ser");
        let h = hash(b"sermsg");
        let sig = sign_prehashed(&kp.secret, &h);
        let bytes = sig.to_bytes();
        let parsed = Signature::from_bytes(&bytes).unwrap();
        assert_eq!(parsed, sig);
    }

    #[test]
    fn high_s_rejected_on_parse() {
        let kp = Keypair::from_seed(b"hs");
        let h = hash(b"m");
        let sig = sign_prehashed(&kp.secret, &h);
        // Re-encode with s' = n - s (the high twin).
        let mut bytes = sig.to_bytes();
        let s_high = sig.s.neg();
        bytes[32..64].copy_from_slice(&s_high.to_be_bytes());
        assert_eq!(
            Signature::from_bytes(&bytes),
            Err(CryptoError::InvalidSignature)
        );
    }

    #[test]
    fn produced_signatures_are_low_s() {
        for i in 0..20u32 {
            let kp = Keypair::from_seed(&i.to_be_bytes());
            let sig = sign_prehashed(&kp.secret, &hash(&i.to_le_bytes()));
            assert!(!sig.s.is_high());
            assert!(sig.v <= 3);
        }
    }

    #[test]
    fn malformed_signature_bytes_rejected() {
        // r = 0
        let mut bytes = [0u8; 65];
        bytes[63] = 1; // s = 1
        assert!(Signature::from_bytes(&bytes).is_err());
        // v out of range
        let kp = Keypair::from_seed(b"vrange");
        let mut good = sign_prehashed(&kp.secret, &hash(b"x")).to_bytes();
        good[64] = 4;
        assert!(Signature::from_bytes(&good).is_err());
    }

    #[test]
    fn cross_message_recovery_mismatch() {
        // A signature recovered against the wrong message hash yields a key
        // that does not verify the original message — the property the
        // punishment contract relies on.
        let kp = Keypair::from_seed(b"cross");
        let h1 = hash(b"committed entry");
        let h2 = hash(b"forged entry");
        let sig = sign_prehashed(&kp.secret, &h1);
        if let Ok(pk) = recover_prehashed(&h2, &sig) {
            assert_ne!(pk.address(), kp.address);
        }
    }

    #[test]
    fn known_key_signature_verifies_with_generator_pubkey() {
        // secret = 1 → pubkey = G; exercise the minimal scalar path.
        let mut one = [0u8; 32];
        one[31] = 1;
        let sk = SecretKey::from_bytes(&one).unwrap();
        let pk = sk.public_key();
        assert_eq!(*pk.point(), Affine::GENERATOR);
        let h = hash(b"unit key");
        let sig = sign_prehashed(&sk, &h);
        verify_prehashed(&pk, &h, &sig).unwrap();
        assert_eq!(recover_prehashed(&h, &sig).unwrap(), pk);
    }
}
