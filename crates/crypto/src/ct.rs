//! Constant-time comparison for secret-bearing bytes.
//!
//! `==` on slices short-circuits at the first mismatching byte, so the time
//! it takes leaks how long a prefix an attacker has guessed correctly — the
//! classic MAC-forgery side channel. Everything in this crate that compares
//! secret scalars, HMAC tags, or signature components goes through
//! [`ct_eq`] instead (enforced by lint L3, `cargo run -p xtask -- lint`).

/// Compares two byte slices in time independent of their contents.
///
/// Only the *lengths* are compared early — lengths are public for every
/// use in this crate (fixed-width scalars, 32-byte tags). The contents are
/// folded into a single accumulator with no data-dependent branches.
#[must_use]
pub fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut diff: u8 = 0;
    for (x, y) in a.iter().zip(b.iter()) {
        diff |= x ^ y;
    }
    // Collapse without branching on secret data: 0 -> true.
    diff == 0
}

#[cfg(test)]
mod tests {
    use super::ct_eq;

    #[test]
    fn equal_and_unequal() {
        assert!(ct_eq(b"", b""));
        assert!(ct_eq(b"abc", b"abc"));
        assert!(!ct_eq(b"abc", b"abd"));
        assert!(!ct_eq(b"abc", b"ab"));
        let a = [0u8; 32];
        let mut b = [0u8; 32];
        assert!(ct_eq(&a, &b));
        b[31] = 1;
        assert!(!ct_eq(&a, &b));
    }

    #[test]
    fn every_single_bit_flip_detected() {
        let base = [0x5Au8; 16];
        for byte in 0..16 {
            for bit in 0..8 {
                let mut other = base;
                other[byte] ^= 1 << bit;
                assert!(!ct_eq(&base, &other));
            }
        }
    }
}
