//! Fixed-width unsigned big integers used by the secp256k1 implementation.
//!
//! Only the operations required by field/scalar arithmetic are provided:
//! carry-propagating addition/subtraction, widening multiplication into a
//! [`U512`], comparisons, shifts, bit access, and big-endian byte/hex
//! conversions. Limbs are stored little-endian (`limbs[0]` is least
//! significant) as `u64`.

/// A 256-bit unsigned integer with little-endian `u64` limbs.
#[derive(Clone, Copy, PartialEq, Eq, Default)]
pub struct U256 {
    /// Little-endian limbs: `limbs[0]` holds bits 0..64.
    pub limbs: [u64; 4],
}

/// A 512-bit unsigned integer, used as the widening-multiplication target.
#[derive(Clone, Copy, PartialEq, Eq, Default)]
pub struct U512 {
    /// Little-endian limbs.
    pub limbs: [u64; 8],
}

impl U256 {
    /// The value zero.
    pub const ZERO: U256 = U256 { limbs: [0; 4] };
    /// The value one.
    pub const ONE: U256 = U256 {
        limbs: [1, 0, 0, 0],
    };
    /// The maximum representable value (2^256 - 1).
    pub const MAX: U256 = U256 {
        limbs: [u64::MAX; 4],
    };

    /// Constructs from a `u64`.
    #[inline]
    pub const fn from_u64(v: u64) -> Self {
        U256 {
            limbs: [v, 0, 0, 0],
        }
    }

    /// Constructs from little-endian limbs.
    #[inline]
    pub const fn from_limbs(limbs: [u64; 4]) -> Self {
        U256 { limbs }
    }

    /// Parses a big-endian hex string of exactly 64 nibbles (no `0x` prefix).
    ///
    /// Intended for compile-time curve constants; panics on malformed input.
    pub const fn from_be_hex(s: &str) -> Self {
        let bytes = s.as_bytes();
        assert!(bytes.len() == 64, "expected 64 hex characters");
        let mut limbs = [0u64; 4];
        let mut i = 0;
        while i < 64 {
            let c = bytes[i];
            let nibble = match c {
                b'0'..=b'9' => (c - b'0') as u64,
                b'a'..=b'f' => (c - b'a' + 10) as u64,
                b'A'..=b'F' => (c - b'A' + 10) as u64,
                // lint: allow(panic) — const fn evaluated at compile time
                // on curve-constant literals; a bad digit fails the build
                _ => panic!("invalid hex character"),
            };
            // Nibble `i` (from the most significant end) lands in bit
            // position 252 - 4*i, i.e. limb (252-4i)/64.
            let bitpos = 252 - 4 * i;
            limbs[bitpos / 64] |= nibble << (bitpos % 64);
            i += 1;
        }
        U256 { limbs }
    }

    /// True iff the value is zero.
    #[inline]
    pub fn is_zero(&self) -> bool {
        self.limbs == [0; 4]
    }

    /// True iff the least-significant bit is set.
    #[inline]
    pub fn is_odd(&self) -> bool {
        self.limbs[0] & 1 == 1
    }

    /// Returns bit `i` (0 = least significant).
    #[inline]
    pub fn bit(&self, i: usize) -> bool {
        debug_assert!(i < 256);
        (self.limbs[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Number of significant bits (0 for zero).
    pub fn bits(&self) -> usize {
        for i in (0..4).rev() {
            if self.limbs[i] != 0 {
                return 64 * i + (64 - self.limbs[i].leading_zeros() as usize);
            }
        }
        0
    }

    /// Addition with carry-out.
    #[inline]
    pub fn overflowing_add(&self, rhs: &U256) -> (U256, bool) {
        let mut out = [0u64; 4];
        let mut carry = false;
        for (i, o) in out.iter_mut().enumerate() {
            let (s1, c1) = self.limbs[i].overflowing_add(rhs.limbs[i]);
            let (s2, c2) = s1.overflowing_add(carry as u64);
            *o = s2;
            carry = c1 | c2;
        }
        (U256 { limbs: out }, carry)
    }

    /// Wrapping addition (mod 2^256).
    #[inline]
    pub fn wrapping_add(&self, rhs: &U256) -> U256 {
        self.overflowing_add(rhs).0
    }

    /// Subtraction with borrow-out.
    #[inline]
    pub fn overflowing_sub(&self, rhs: &U256) -> (U256, bool) {
        let mut out = [0u64; 4];
        let mut borrow = false;
        for (i, o) in out.iter_mut().enumerate() {
            let (d1, b1) = self.limbs[i].overflowing_sub(rhs.limbs[i]);
            let (d2, b2) = d1.overflowing_sub(borrow as u64);
            *o = d2;
            borrow = b1 | b2;
        }
        (U256 { limbs: out }, borrow)
    }

    /// Wrapping subtraction (mod 2^256).
    #[inline]
    pub fn wrapping_sub(&self, rhs: &U256) -> U256 {
        self.overflowing_sub(rhs).0
    }

    /// Widening multiplication: `self * rhs` as a full 512-bit product.
    pub fn mul_wide(&self, rhs: &U256) -> U512 {
        let mut out = [0u64; 8];
        for i in 0..4 {
            let mut carry = 0u128;
            for j in 0..4 {
                let acc =
                    out[i + j] as u128 + (self.limbs[i] as u128) * (rhs.limbs[j] as u128) + carry;
                out[i + j] = acc as u64;
                carry = acc >> 64;
            }
            // carry < 2^64; falls into limb i+4 which is within bounds.
            let mut k = i + 4;
            while carry != 0 {
                let acc = out[k] as u128 + carry;
                out[k] = acc as u64;
                carry = acc >> 64;
                k += 1;
            }
        }
        U512 { limbs: out }
    }

    /// Multiplies by a `u64`, producing a 320-bit result `(low 256, high 64)`.
    pub fn mul_u64(&self, rhs: u64) -> (U256, u64) {
        let mut out = [0u64; 4];
        let mut carry = 0u128;
        for (i, o) in out.iter_mut().enumerate() {
            let acc = (self.limbs[i] as u128) * (rhs as u128) + carry;
            *o = acc as u64;
            carry = acc >> 64;
        }
        (U256 { limbs: out }, carry as u64)
    }

    /// Logical right shift by `n < 256` bits.
    pub fn shr(&self, n: usize) -> U256 {
        debug_assert!(n < 256);
        let limb_shift = n / 64;
        let bit_shift = n % 64;
        let mut out = [0u64; 4];
        for (i, o) in out.iter_mut().enumerate().take(4 - limb_shift) {
            let mut v = self.limbs[i + limb_shift] >> bit_shift;
            if bit_shift != 0 && i + limb_shift + 1 < 4 {
                v |= self.limbs[i + limb_shift + 1] << (64 - bit_shift);
            }
            *o = v;
        }
        U256 { limbs: out }
    }

    /// Logical left shift by `n < 256` bits.
    pub fn shl(&self, n: usize) -> U256 {
        debug_assert!(n < 256);
        let limb_shift = n / 64;
        let bit_shift = n % 64;
        let mut out = [0u64; 4];
        for i in (limb_shift..4).rev() {
            let mut v = self.limbs[i - limb_shift] << bit_shift;
            if bit_shift != 0 && i > limb_shift {
                v |= self.limbs[i - limb_shift - 1] >> (64 - bit_shift);
            }
            out[i] = v;
        }
        U256 { limbs: out }
    }

    /// Big-endian byte serialization (32 bytes).
    pub fn to_be_bytes(&self) -> [u8; 32] {
        let mut out = [0u8; 32];
        for i in 0..4 {
            out[(3 - i) * 8..(3 - i) * 8 + 8].copy_from_slice(&self.limbs[i].to_be_bytes());
        }
        out
    }

    /// Parses from big-endian bytes (32 bytes).
    pub fn from_be_bytes(bytes: &[u8; 32]) -> U256 {
        let mut limbs = [0u64; 4];
        for i in 0..4 {
            let mut chunk = [0u8; 8];
            chunk.copy_from_slice(&bytes[(3 - i) * 8..(3 - i) * 8 + 8]);
            limbs[i] = u64::from_be_bytes(chunk);
        }
        U256 { limbs }
    }

    /// Lowercase hex string, 64 characters, big-endian.
    pub fn to_hex(&self) -> String {
        let mut s = String::with_capacity(64);
        for b in self.to_be_bytes() {
            s.push_str(&format!("{b:02x}"));
        }
        s
    }
}

impl Ord for U256 {
    fn cmp(&self, other: &Self) -> core::cmp::Ordering {
        for i in (0..4).rev() {
            match self.limbs[i].cmp(&other.limbs[i]) {
                core::cmp::Ordering::Equal => continue,
                ord => return ord,
            }
        }
        core::cmp::Ordering::Equal
    }
}

impl PartialOrd for U256 {
    fn partial_cmp(&self, other: &Self) -> Option<core::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl core::fmt::Debug for U256 {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "U256(0x{})", self.to_hex())
    }
}

impl U512 {
    /// The value zero.
    pub const ZERO: U512 = U512 { limbs: [0; 8] };

    /// Splits into `(low 256 bits, high 256 bits)`.
    #[inline]
    pub fn split(&self) -> (U256, U256) {
        let mut lo = [0u64; 4];
        let mut hi = [0u64; 4];
        lo.copy_from_slice(&self.limbs[..4]);
        hi.copy_from_slice(&self.limbs[4..]);
        (U256 { limbs: lo }, U256 { limbs: hi })
    }

    /// Constructs from low and high halves.
    #[inline]
    pub fn from_parts(lo: U256, hi: U256) -> U512 {
        let mut limbs = [0u64; 8];
        limbs[..4].copy_from_slice(&lo.limbs);
        limbs[4..].copy_from_slice(&hi.limbs);
        U512 { limbs }
    }

    /// Widens a `U256`.
    #[inline]
    pub fn from_u256(v: U256) -> U512 {
        U512::from_parts(v, U256::ZERO)
    }

    /// Wrapping 512-bit addition; overflow cannot occur for the reduction
    /// intermediates this type is used for (asserted in debug builds).
    pub fn add(&self, rhs: &U512) -> U512 {
        let mut out = [0u64; 8];
        let mut carry = false;
        for (i, o) in out.iter_mut().enumerate() {
            let (s1, c1) = self.limbs[i].overflowing_add(rhs.limbs[i]);
            let (s2, c2) = s1.overflowing_add(carry as u64);
            *o = s2;
            carry = c1 | c2;
        }
        debug_assert!(!carry, "U512 addition overflow");
        U512 { limbs: out }
    }
}

impl core::fmt::Debug for U512 {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let (lo, hi) = self.split();
        write!(f, "U512(0x{}{})", hi.to_hex(), lo.to_hex())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_roundtrip() {
        let v =
            U256::from_be_hex("79be667ef9dcbbac55a06295ce870b07029bfcdb2dce28d959f2815b16f81798");
        assert_eq!(
            v.to_hex(),
            "79be667ef9dcbbac55a06295ce870b07029bfcdb2dce28d959f2815b16f81798"
        );
    }

    #[test]
    fn bytes_roundtrip() {
        let v = U256::from_limbs([1, 2, 3, 4]);
        assert_eq!(U256::from_be_bytes(&v.to_be_bytes()), v);
    }

    #[test]
    fn add_sub_inverse() {
        let a = U256::from_limbs([u64::MAX, 5, 0, 7]);
        let b = U256::from_limbs([9, u64::MAX, 1, 0]);
        let (sum, _) = a.overflowing_add(&b);
        let (diff, borrow) = sum.overflowing_sub(&b);
        assert!(!borrow);
        assert_eq!(diff, a);
    }

    #[test]
    fn add_carry_propagates() {
        let a = U256::MAX;
        let (sum, carry) = a.overflowing_add(&U256::ONE);
        assert!(carry);
        assert_eq!(sum, U256::ZERO);
    }

    #[test]
    fn mul_wide_small() {
        let a = U256::from_u64(u64::MAX);
        let p = a.mul_wide(&a);
        let (lo, hi) = p.split();
        // (2^64-1)^2 = 2^128 - 2^65 + 1
        assert_eq!(lo.limbs, [1, u64::MAX - 1, 0, 0]);
        assert!(hi.is_zero());
    }

    #[test]
    fn mul_wide_max() {
        // (2^256-1)^2 = 2^512 - 2^257 + 1
        let p = U256::MAX.mul_wide(&U256::MAX);
        let (lo, hi) = p.split();
        assert_eq!(lo, U256::ONE);
        assert_eq!(hi, U256::MAX.wrapping_sub(&U256::ONE));
    }

    #[test]
    fn shifts() {
        let v =
            U256::from_be_hex("000000000000000000000000000000000000000000000000ffffffffffffffff");
        assert_eq!(v.shl(64).limbs, [0, u64::MAX, 0, 0]);
        assert_eq!(v.shl(1).limbs, [u64::MAX - 1, 1, 0, 0]);
        assert_eq!(v.shr(32).limbs, [0xFFFF_FFFF, 0, 0, 0]);
        assert_eq!(v.shl(192).shr(192), v);
    }

    #[test]
    fn ordering() {
        let a = U256::from_limbs([0, 0, 0, 1]);
        let b = U256::from_limbs([u64::MAX, u64::MAX, u64::MAX, 0]);
        assert!(a > b);
        assert!(U256::ZERO < U256::ONE);
    }

    #[test]
    fn bit_access() {
        let v = U256::ONE.shl(200);
        assert!(v.bit(200));
        assert!(!v.bit(199));
        assert_eq!(v.bits(), 201);
        assert_eq!(U256::ZERO.bits(), 0);
    }

    #[test]
    fn mul_u64_carry() {
        let (lo, hi) = U256::MAX.mul_u64(2);
        assert_eq!(hi, 1);
        assert_eq!(lo, U256::MAX.wrapping_sub(&U256::ONE));
    }
}
