//! A from-scratch implementation of the secp256k1 elliptic curve:
//! base-field and scalar arithmetic, Jacobian point operations, and the
//! windowed scalar multiplications ECDSA needs.

pub mod field;
pub mod point;
pub mod scalar;

pub use field::Fe;
pub use point::{
    batch_normalize, mul_double, mul_double_with_table, mul_generator, mul_point, Affine,
    AffineTable, Jacobian,
};
pub use scalar::Scalar;
