//! Arithmetic modulo the secp256k1 group order `n`.
//!
//! `n = 2^256 - D` with `D ≈ 2^129`, so wide values reduce by repeatedly
//! folding `hi·2^256 + lo → hi·D + lo`; three folds suffice for any 512-bit
//! input.

use crate::uint::{U256, U512};

/// The group order `n`.
pub const N: U256 =
    U256::from_be_hex("fffffffffffffffffffffffffffffffebaaedce6af48a03bbfd25e8cd0364141");

/// `D = 2^256 - n` (129 bits).
const D: U256 =
    U256::from_be_hex("000000000000000000000000000000014551231950b75fc4402da1732fc9bebf");

/// A scalar modulo the group order, kept fully reduced.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct Scalar(U256);

impl Scalar {
    /// Additive identity.
    pub const ZERO: Scalar = Scalar(U256::ZERO);
    /// Multiplicative identity.
    pub const ONE: Scalar = Scalar(U256::ONE);

    /// Builds a scalar, reducing mod n.
    pub fn from_u256(v: U256) -> Scalar {
        let mut v = v;
        while v >= N {
            v = v.wrapping_sub(&N);
        }
        Scalar(v)
    }

    /// Builds from big-endian bytes with reduction (as `bits2int` in
    /// RFC 6979 / Ethereum message-hash-to-scalar conversion).
    pub fn from_be_bytes_reduced(bytes: &[u8; 32]) -> Scalar {
        Scalar::from_u256(U256::from_be_bytes(bytes))
    }

    /// Builds from big-endian bytes, rejecting values >= n.
    pub fn from_be_bytes_checked(bytes: &[u8; 32]) -> Option<Scalar> {
        let v = U256::from_be_bytes(bytes);
        if v >= N {
            None
        } else {
            Some(Scalar(v))
        }
    }

    /// Builds from a small integer.
    pub fn from_u64(v: u64) -> Scalar {
        Scalar(U256::from_u64(v))
    }

    /// The canonical integer representative.
    #[inline]
    pub fn to_u256(self) -> U256 {
        self.0
    }

    /// Big-endian serialization.
    pub fn to_be_bytes(self) -> [u8; 32] {
        self.0.to_be_bytes()
    }

    /// True iff zero.
    #[inline]
    pub fn is_zero(&self) -> bool {
        self.0.is_zero()
    }

    /// True iff the representative exceeds `n/2` (a "high-s" value in ECDSA
    /// terms).
    pub fn is_high(&self) -> bool {
        self.0 > N.shr(1)
    }

    /// Scalar addition.
    pub fn add(&self, rhs: &Scalar) -> Scalar {
        let (sum, carry) = self.0.overflowing_add(&rhs.0);
        let mut v = sum;
        if carry {
            // sum = actual - 2^256; add D to compensate (2^256 ≡ D mod n).
            v = v.wrapping_add(&D);
        }
        while v >= N {
            v = v.wrapping_sub(&N);
        }
        Scalar(v)
    }

    /// Scalar negation.
    pub fn neg(&self) -> Scalar {
        if self.is_zero() {
            Scalar::ZERO
        } else {
            Scalar(N.wrapping_sub(&self.0))
        }
    }

    /// Scalar subtraction.
    pub fn sub(&self, rhs: &Scalar) -> Scalar {
        self.add(&rhs.neg())
    }

    /// Scalar multiplication.
    pub fn mul(&self, rhs: &Scalar) -> Scalar {
        Scalar(reduce512(self.0.mul_wide(&rhs.0)))
    }

    /// Exponentiation by a 256-bit exponent.
    fn pow(&self, exp: &U256) -> Scalar {
        let mut result = Scalar::ONE;
        let bits = exp.bits();
        for i in (0..bits).rev() {
            result = result.mul(&result);
            if exp.bit(i) {
                result = result.mul(self);
            }
        }
        result
    }

    /// Multiplicative inverse via Fermat (`a^(n-2)`; n is prime).
    ///
    /// Returns `None` for zero.
    pub fn invert(&self) -> Option<Scalar> {
        if self.is_zero() {
            return None;
        }
        Some(self.pow(&N.wrapping_sub(&U256::from_u64(2))))
    }

    /// Montgomery batch inversion: inverts every non-zero scalar in place
    /// for one Fermat ladder plus `3(n-1)` multiplications — the
    /// amortization that removes the per-signature `k⁻¹` ladder from the
    /// batch signing path. Zero entries are left as zero.
    pub fn batch_invert(elems: &mut [Scalar]) {
        let mut prefix = Vec::with_capacity(elems.len());
        let mut acc = Scalar::ONE;
        for e in elems.iter() {
            prefix.push(acc);
            if !e.is_zero() {
                acc = acc.mul(e);
            }
        }
        let Some(mut inv) = acc.invert() else {
            return;
        };
        for (e, pre) in elems.iter_mut().zip(prefix).rev() {
            if e.is_zero() {
                continue;
            }
            let e_inv = inv.mul(&pre);
            inv = inv.mul(e);
            *e = e_inv;
        }
    }

    /// The GLV endomorphism eigenvalue λ: `λ·(x, y) = (β·x, y)` for every
    /// curve point, with λ³ = 1 (mod n).
    pub const LAMBDA: Scalar = Scalar(U256::from_be_hex(
        "5363ad4cc05c30e0a5261c028812645a122e22ea20816678df02967c1b23bd72",
    ));

    /// Splits `k` into `(k1, k2)` with `k = k1 + λ·k2 (mod n)` and both
    /// magnitudes ≈ 128 bits, halving the doubling count of a scalar
    /// multiplication that exploits the endomorphism. Returns the two
    /// components as `(negated, magnitude)` pairs; the magnitudes are
    /// guaranteed < 2^129.
    ///
    /// Decomposition follows the lattice method with the canonical
    /// secp256k1 basis: `c_i = round(k·g_i / 2^384)`, `k2 = c1·(-b1) +
    /// c2·(-b2)`, `k1 = k - k2·λ`.
    pub fn split_glv(&self) -> GlvSplit {
        const G1: U256 =
            U256::from_be_hex("3086d221a7d46bcde86c90e49284eb153daa8a1471e8ca7fe893209a45dbb031");
        const G2: U256 =
            U256::from_be_hex("e4437ed6010e88286f547fa90abfe4c4221208ac9df506c61571b4ae8ac47f71");
        const MINUS_B1: Scalar = Scalar(U256::from_be_hex(
            "00000000000000000000000000000000e4437ed6010e88286f547fa90abfe4c3",
        ));
        const MINUS_B2: Scalar = Scalar(U256::from_be_hex(
            "fffffffffffffffffffffffffffffffe8a280ac50774346dd765cda83db1562c",
        ));
        let c1 = Scalar::from_u256(mul_shift_384(&self.0, &G1)).mul(&MINUS_B1);
        let c2 = Scalar::from_u256(mul_shift_384(&self.0, &G2)).mul(&MINUS_B2);
        let k2 = c1.add(&c2);
        let k1 = self.sub(&k2.mul(&Scalar::LAMBDA));
        GlvSplit {
            k1: signed_magnitude(&k1),
            k2: signed_magnitude(&k2),
        }
    }
}

/// A GLV decomposition `k = ±|k1| + λ·(±|k2|)` with both magnitudes
/// ≈ 128 bits.
#[derive(Clone, Copy, Debug)]
pub struct GlvSplit {
    /// `(negated, magnitude)` of the λ⁰ component.
    pub k1: (bool, U256),
    /// `(negated, magnitude)` of the λ¹ component.
    pub k2: (bool, U256),
}

/// Interprets a reduced scalar as a signed value (negative when above
/// `n/2`) and returns `(negated, magnitude)`.
fn signed_magnitude(s: &Scalar) -> (bool, U256) {
    if s.is_high() {
        (true, s.neg().0)
    } else {
        (false, s.0)
    }
}

/// `round(a·b / 2^384)` — the lattice-rounding primitive of
/// [`Scalar::split_glv`]. The result fits well inside 129 bits for the
/// constants it is used with.
fn mul_shift_384(a: &U256, b: &U256) -> U256 {
    let product = a.mul_wide(b);
    let shifted = U256::from_limbs([product.limbs[6], product.limbs[7], 0, 0]);
    let round = (product.limbs[5] >> 63) & 1;
    shifted.wrapping_add(&U256::from_u64(round))
}

/// Width-`w` non-adjacent form: returns little-endian digits, each either
/// zero or odd with `|d| < 2^(w-1)`, such that `v = Σ dᵢ·2^i`. At most one
/// of any `w` consecutive digits is non-zero, so a scalar multiplication
/// pays ~`bits/(w+1)` additions.
pub(crate) fn wnaf_digits(v: &U256, width: u32) -> Vec<i32> {
    debug_assert!((2..=8).contains(&width));
    let window = 1u64 << width;
    let half = 1u64 << (width - 1);
    let mut v = *v;
    let mut digits = Vec::with_capacity(260);
    while !v.is_zero() {
        if v.is_odd() {
            let m = v.limbs[0] & (window - 1);
            let d = if m >= half {
                m as i64 - window as i64
            } else {
                m as i64
            };
            if d > 0 {
                v = v.wrapping_sub(&U256::from_u64(d as u64));
            } else {
                // |d| < 2^(w-1) and v < n keeps this far from wrapping.
                v = v.wrapping_add(&U256::from_u64((-d) as u64));
            }
            digits.push(d as i32);
        } else {
            digits.push(0);
        }
        v = v.shr(1);
    }
    digits
}

/// Reduces a 512-bit product modulo n by folding the high half.
fn reduce512(x: U512) -> U256 {
    let (mut lo, mut hi) = x.split();
    // Each fold: x = hi*D + lo. |hi*D| shrinks by ~127 bits per fold; after
    // three folds hi is zero for any 512-bit input.
    while !hi.is_zero() {
        let folded = hi.mul_wide(&D).add(&U512::from_u256(lo));
        let (l, h) = folded.split();
        lo = l;
        hi = h;
    }
    while lo >= N {
        lo = lo.wrapping_sub(&N);
    }
    lo
}

impl core::fmt::Debug for Scalar {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "Scalar(0x{})", self.0.to_hex())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn n_plus_d_is_zero_mod_2_256() {
        let (sum, carry) = N.overflowing_add(&D);
        assert!(carry);
        assert!(sum.is_zero());
    }

    #[test]
    fn add_wraps() {
        let n_minus_1 = Scalar::from_u256(N.wrapping_sub(&U256::ONE));
        assert_eq!(n_minus_1.add(&Scalar::ONE), Scalar::ZERO);
        assert_eq!(n_minus_1.add(&Scalar::from_u64(3)), Scalar::from_u64(2));
    }

    #[test]
    fn add_max_operands() {
        // Largest possible reduced operands exercise the carry path.
        let a = Scalar::from_u256(N.wrapping_sub(&U256::ONE));
        let sum = a.add(&a);
        // 2(n-1) mod n = n - 2
        assert_eq!(sum, Scalar::from_u256(N.wrapping_sub(&U256::from_u64(2))));
    }

    #[test]
    fn mul_identity_and_commutativity() {
        let a = Scalar::from_be_bytes_reduced(&[0xAB; 32]);
        let b = Scalar::from_be_bytes_reduced(&[0x17; 32]);
        assert_eq!(a.mul(&Scalar::ONE), a);
        assert_eq!(a.mul(&b), b.mul(&a));
    }

    #[test]
    fn mul_near_order() {
        let n_minus_1 = Scalar::from_u256(N.wrapping_sub(&U256::ONE));
        // (n-1)^2 mod n = 1
        assert_eq!(n_minus_1.mul(&n_minus_1), Scalar::ONE);
    }

    #[test]
    fn reduce512_full_width() {
        // (n-1) * (n-1) exercised via mul; also reduce a max 512-bit value:
        // 2^512 - 1 mod n computed two ways.
        let max = U512 {
            limbs: [u64::MAX; 8],
        };
        let r = reduce512(max);
        // Cross-check: (2^256-1)*(2^256-1) + 2*(2^256-1) = 2^512 - 1.
        let m = U256::MAX;
        let a = Scalar::from_u256(m); // 2^256-1 mod n
        let expect = a.mul(&a).add(&a).add(&a);
        assert_eq!(Scalar(r), expect);
    }

    #[test]
    fn invert() {
        let a = Scalar::from_be_bytes_reduced(&[0x5A; 32]);
        let inv = a.invert().unwrap();
        assert_eq!(a.mul(&inv), Scalar::ONE);
        assert!(Scalar::ZERO.invert().is_none());
    }

    #[test]
    fn high_low_split() {
        assert!(!Scalar::ONE.is_high());
        let n_minus_1 = Scalar::from_u256(N.wrapping_sub(&U256::ONE));
        assert!(n_minus_1.is_high());
        // n/2 itself is not high; n/2 + 1 is.
        let half = Scalar::from_u256(N.shr(1));
        assert!(!half.is_high());
        assert!(half.add(&Scalar::ONE).is_high());
    }

    #[test]
    fn checked_parse_rejects_order() {
        assert!(Scalar::from_be_bytes_checked(&N.to_be_bytes()).is_none());
        let n_minus_1 = N.wrapping_sub(&U256::ONE);
        assert!(Scalar::from_be_bytes_checked(&n_minus_1.to_be_bytes()).is_some());
    }

    #[test]
    fn batch_invert_matches_invert() {
        let mut elems: Vec<Scalar> = (1u64..40).map(Scalar::from_u64).collect();
        elems.push(Scalar::from_u256(N.wrapping_sub(&U256::ONE)));
        let expect: Vec<Scalar> = elems.iter().map(|e| e.invert().unwrap()).collect();
        Scalar::batch_invert(&mut elems);
        assert_eq!(elems, expect);
    }

    #[test]
    fn batch_invert_skips_zeros() {
        let mut elems = vec![Scalar::from_u64(5), Scalar::ZERO, Scalar::from_u64(7)];
        Scalar::batch_invert(&mut elems);
        assert_eq!(elems[0], Scalar::from_u64(5).invert().unwrap());
        assert_eq!(elems[1], Scalar::ZERO);
        assert_eq!(elems[2], Scalar::from_u64(7).invert().unwrap());
        let mut zeros = vec![Scalar::ZERO; 2];
        Scalar::batch_invert(&mut zeros);
        assert_eq!(zeros, vec![Scalar::ZERO; 2]);
    }

    #[test]
    fn lambda_is_cube_root_of_unity() {
        let l = Scalar::LAMBDA;
        assert_eq!(l.mul(&l).mul(&l), Scalar::ONE);
        assert_ne!(l, Scalar::ONE);
    }

    fn reassemble(split: &GlvSplit) -> Scalar {
        let part = |&(neg, mag): &(bool, U256)| {
            let s = Scalar::from_u256(mag);
            if neg {
                s.neg()
            } else {
                s
            }
        };
        part(&split.k1).add(&part(&split.k2).mul(&Scalar::LAMBDA))
    }

    #[test]
    fn glv_split_reconstructs_and_is_short() {
        let samples = [
            Scalar::from_u64(1),
            Scalar::from_u64(0xDEAD_BEEF),
            Scalar::from_be_bytes_reduced(&[0xA7; 32]),
            Scalar::from_be_bytes_reduced(&[0x13; 32]),
            Scalar::from_u256(N.wrapping_sub(&U256::ONE)),
            Scalar::LAMBDA,
            Scalar::ZERO,
        ];
        let bound = U256::ONE.shl(129);
        for k in samples {
            let split = k.split_glv();
            assert_eq!(reassemble(&split), k, "{k:?}");
            assert!(split.k1.1 < bound, "k1 magnitude too large for {k:?}");
            assert!(split.k2.1 < bound, "k2 magnitude too large for {k:?}");
        }
    }

    #[test]
    fn wnaf_digits_reconstruct_value() {
        for (label, v) in [
            ("small", U256::from_u64(12345)),
            ("large", N.wrapping_sub(&U256::from_u64(3))),
            ("alternating", U256::from_be_bytes(&[0x55; 32])),
        ] {
            for width in [4u32, 5, 6] {
                let digits = wnaf_digits(&v, width);
                // Reconstruct Σ d_i 2^i in the scalar ring (values < n here).
                let mut acc = Scalar::ZERO;
                for &d in digits.iter().rev() {
                    acc = acc.add(&acc);
                    if d > 0 {
                        acc = acc.add(&Scalar::from_u64(d as u64));
                    } else if d < 0 {
                        acc = acc.sub(&Scalar::from_u64((-d) as u64));
                    }
                }
                assert_eq!(acc, Scalar::from_u256(v), "{label} w={width}");
                let half = 1i32 << (width - 1);
                for &d in &digits {
                    assert!(
                        d == 0 || (d % 2 != 0 && d.abs() < half),
                        "{label} digit {d}"
                    );
                }
            }
        }
        assert!(wnaf_digits(&U256::ZERO, 5).is_empty());
    }

    #[test]
    fn sub_neg_consistency() {
        let a = Scalar::from_u64(100);
        let b = Scalar::from_u64(250);
        assert_eq!(a.sub(&b).add(&b), a);
        assert_eq!(a.neg().neg(), a);
    }
}
