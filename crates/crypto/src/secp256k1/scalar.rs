//! Arithmetic modulo the secp256k1 group order `n`.
//!
//! `n = 2^256 - D` with `D ≈ 2^129`, so wide values reduce by repeatedly
//! folding `hi·2^256 + lo → hi·D + lo`; three folds suffice for any 512-bit
//! input.

use crate::uint::{U256, U512};

/// The group order `n`.
pub const N: U256 =
    U256::from_be_hex("fffffffffffffffffffffffffffffffebaaedce6af48a03bbfd25e8cd0364141");

/// `D = 2^256 - n` (129 bits).
const D: U256 =
    U256::from_be_hex("000000000000000000000000000000014551231950b75fc4402da1732fc9bebf");

/// A scalar modulo the group order, kept fully reduced.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct Scalar(U256);

impl Scalar {
    /// Additive identity.
    pub const ZERO: Scalar = Scalar(U256::ZERO);
    /// Multiplicative identity.
    pub const ONE: Scalar = Scalar(U256::ONE);

    /// Builds a scalar, reducing mod n.
    pub fn from_u256(v: U256) -> Scalar {
        let mut v = v;
        while v >= N {
            v = v.wrapping_sub(&N);
        }
        Scalar(v)
    }

    /// Builds from big-endian bytes with reduction (as `bits2int` in
    /// RFC 6979 / Ethereum message-hash-to-scalar conversion).
    pub fn from_be_bytes_reduced(bytes: &[u8; 32]) -> Scalar {
        Scalar::from_u256(U256::from_be_bytes(bytes))
    }

    /// Builds from big-endian bytes, rejecting values >= n.
    pub fn from_be_bytes_checked(bytes: &[u8; 32]) -> Option<Scalar> {
        let v = U256::from_be_bytes(bytes);
        if v >= N {
            None
        } else {
            Some(Scalar(v))
        }
    }

    /// Builds from a small integer.
    pub fn from_u64(v: u64) -> Scalar {
        Scalar(U256::from_u64(v))
    }

    /// The canonical integer representative.
    #[inline]
    pub fn to_u256(self) -> U256 {
        self.0
    }

    /// Big-endian serialization.
    pub fn to_be_bytes(self) -> [u8; 32] {
        self.0.to_be_bytes()
    }

    /// True iff zero.
    #[inline]
    pub fn is_zero(&self) -> bool {
        self.0.is_zero()
    }

    /// True iff the representative exceeds `n/2` (a "high-s" value in ECDSA
    /// terms).
    pub fn is_high(&self) -> bool {
        self.0 > N.shr(1)
    }

    /// Scalar addition.
    pub fn add(&self, rhs: &Scalar) -> Scalar {
        let (sum, carry) = self.0.overflowing_add(&rhs.0);
        let mut v = sum;
        if carry {
            // sum = actual - 2^256; add D to compensate (2^256 ≡ D mod n).
            v = v.wrapping_add(&D);
        }
        while v >= N {
            v = v.wrapping_sub(&N);
        }
        Scalar(v)
    }

    /// Scalar negation.
    pub fn neg(&self) -> Scalar {
        if self.is_zero() {
            Scalar::ZERO
        } else {
            Scalar(N.wrapping_sub(&self.0))
        }
    }

    /// Scalar subtraction.
    pub fn sub(&self, rhs: &Scalar) -> Scalar {
        self.add(&rhs.neg())
    }

    /// Scalar multiplication.
    pub fn mul(&self, rhs: &Scalar) -> Scalar {
        Scalar(reduce512(self.0.mul_wide(&rhs.0)))
    }

    /// Exponentiation by a 256-bit exponent.
    fn pow(&self, exp: &U256) -> Scalar {
        let mut result = Scalar::ONE;
        let bits = exp.bits();
        for i in (0..bits).rev() {
            result = result.mul(&result);
            if exp.bit(i) {
                result = result.mul(self);
            }
        }
        result
    }

    /// Multiplicative inverse via Fermat (`a^(n-2)`; n is prime).
    ///
    /// Returns `None` for zero.
    pub fn invert(&self) -> Option<Scalar> {
        if self.is_zero() {
            return None;
        }
        Some(self.pow(&N.wrapping_sub(&U256::from_u64(2))))
    }
}

/// Reduces a 512-bit product modulo n by folding the high half.
fn reduce512(x: U512) -> U256 {
    let (mut lo, mut hi) = x.split();
    // Each fold: x = hi*D + lo. |hi*D| shrinks by ~127 bits per fold; after
    // three folds hi is zero for any 512-bit input.
    while !hi.is_zero() {
        let folded = hi.mul_wide(&D).add(&U512::from_u256(lo));
        let (l, h) = folded.split();
        lo = l;
        hi = h;
    }
    while lo >= N {
        lo = lo.wrapping_sub(&N);
    }
    lo
}

impl core::fmt::Debug for Scalar {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "Scalar(0x{})", self.0.to_hex())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn n_plus_d_is_zero_mod_2_256() {
        let (sum, carry) = N.overflowing_add(&D);
        assert!(carry);
        assert!(sum.is_zero());
    }

    #[test]
    fn add_wraps() {
        let n_minus_1 = Scalar::from_u256(N.wrapping_sub(&U256::ONE));
        assert_eq!(n_minus_1.add(&Scalar::ONE), Scalar::ZERO);
        assert_eq!(n_minus_1.add(&Scalar::from_u64(3)), Scalar::from_u64(2));
    }

    #[test]
    fn add_max_operands() {
        // Largest possible reduced operands exercise the carry path.
        let a = Scalar::from_u256(N.wrapping_sub(&U256::ONE));
        let sum = a.add(&a);
        // 2(n-1) mod n = n - 2
        assert_eq!(sum, Scalar::from_u256(N.wrapping_sub(&U256::from_u64(2))));
    }

    #[test]
    fn mul_identity_and_commutativity() {
        let a = Scalar::from_be_bytes_reduced(&[0xAB; 32]);
        let b = Scalar::from_be_bytes_reduced(&[0x17; 32]);
        assert_eq!(a.mul(&Scalar::ONE), a);
        assert_eq!(a.mul(&b), b.mul(&a));
    }

    #[test]
    fn mul_near_order() {
        let n_minus_1 = Scalar::from_u256(N.wrapping_sub(&U256::ONE));
        // (n-1)^2 mod n = 1
        assert_eq!(n_minus_1.mul(&n_minus_1), Scalar::ONE);
    }

    #[test]
    fn reduce512_full_width() {
        // (n-1) * (n-1) exercised via mul; also reduce a max 512-bit value:
        // 2^512 - 1 mod n computed two ways.
        let max = U512 {
            limbs: [u64::MAX; 8],
        };
        let r = reduce512(max);
        // Cross-check: (2^256-1)*(2^256-1) + 2*(2^256-1) = 2^512 - 1.
        let m = U256::MAX;
        let a = Scalar::from_u256(m); // 2^256-1 mod n
        let expect = a.mul(&a).add(&a).add(&a);
        assert_eq!(Scalar(r), expect);
    }

    #[test]
    fn invert() {
        let a = Scalar::from_be_bytes_reduced(&[0x5A; 32]);
        let inv = a.invert().unwrap();
        assert_eq!(a.mul(&inv), Scalar::ONE);
        assert!(Scalar::ZERO.invert().is_none());
    }

    #[test]
    fn high_low_split() {
        assert!(!Scalar::ONE.is_high());
        let n_minus_1 = Scalar::from_u256(N.wrapping_sub(&U256::ONE));
        assert!(n_minus_1.is_high());
        // n/2 itself is not high; n/2 + 1 is.
        let half = Scalar::from_u256(N.shr(1));
        assert!(!half.is_high());
        assert!(half.add(&Scalar::ONE).is_high());
    }

    #[test]
    fn checked_parse_rejects_order() {
        assert!(Scalar::from_be_bytes_checked(&N.to_be_bytes()).is_none());
        let n_minus_1 = N.wrapping_sub(&U256::ONE);
        assert!(Scalar::from_be_bytes_checked(&n_minus_1.to_be_bytes()).is_some());
    }

    #[test]
    fn sub_neg_consistency() {
        let a = Scalar::from_u64(100);
        let b = Scalar::from_u64(250);
        assert_eq!(a.sub(&b).add(&b), a);
        assert_eq!(a.neg().neg(), a);
    }
}
