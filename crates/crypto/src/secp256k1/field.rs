//! Arithmetic in the secp256k1 base field GF(p), with
//! `p = 2^256 - 2^32 - 977`.
//!
//! Reduction exploits the Mersenne-like shape of `p`: for a 512-bit product
//! `hi·2^256 + lo`, we have `2^256 ≡ C (mod p)` with `C = 2^32 + 977`, so the
//! product reduces to `hi·C + lo` in two cheap folding passes.

use crate::uint::U256;

/// The field modulus `p`.
pub const P: U256 =
    U256::from_be_hex("fffffffffffffffffffffffffffffffffffffffffffffffffffffffefffffc2f");

/// `2^256 mod p = 2^32 + 977`.
const C: u64 = 0x1_0000_03D1;

/// An element of GF(p), kept fully reduced (`0 <= value < p`).
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct Fe(U256);

impl Fe {
    /// Additive identity.
    pub const ZERO: Fe = Fe(U256::ZERO);
    /// Multiplicative identity.
    pub const ONE: Fe = Fe(U256::ONE);

    /// The curve equation constant `b = 7` in `y^2 = x^3 + 7`.
    pub const SEVEN: Fe = Fe(U256::from_limbs([7, 0, 0, 0]));

    /// Builds a field element, reducing mod p if necessary.
    pub fn from_u256(v: U256) -> Fe {
        let mut v = v;
        while v >= P {
            v = v.wrapping_sub(&P);
        }
        Fe(v)
    }

    /// Builds from big-endian bytes; values >= p are reduced.
    pub fn from_be_bytes(bytes: &[u8; 32]) -> Fe {
        Fe::from_u256(U256::from_be_bytes(bytes))
    }

    /// Parses a 64-nibble big-endian hex constant.
    pub const fn from_be_hex(s: &str) -> Fe {
        // Constants must already be < p; checked in tests.
        Fe(U256::from_be_hex(s))
    }

    /// Builds from a small integer.
    pub fn from_u64(v: u64) -> Fe {
        Fe(U256::from_u64(v))
    }

    /// The canonical integer representative.
    #[inline]
    pub fn to_u256(self) -> U256 {
        self.0
    }

    /// Big-endian byte serialization.
    pub fn to_be_bytes(self) -> [u8; 32] {
        self.0.to_be_bytes()
    }

    /// True iff zero.
    #[inline]
    pub fn is_zero(&self) -> bool {
        self.0.is_zero()
    }

    /// True iff the canonical representative is odd.
    #[inline]
    pub fn is_odd(&self) -> bool {
        self.0.is_odd()
    }

    /// Field addition.
    #[inline]
    pub fn add(&self, rhs: &Fe) -> Fe {
        let (sum, carry) = self.0.overflowing_add(&rhs.0);
        let mut v = sum;
        if carry || v >= P {
            v = v.wrapping_sub(&P);
        }
        Fe(v)
    }

    /// Field negation.
    #[inline]
    pub fn neg(&self) -> Fe {
        if self.is_zero() {
            Fe::ZERO
        } else {
            Fe(P.wrapping_sub(&self.0))
        }
    }

    /// Field subtraction.
    #[inline]
    pub fn sub(&self, rhs: &Fe) -> Fe {
        self.add(&rhs.neg())
    }

    /// Field multiplication.
    pub fn mul(&self, rhs: &Fe) -> Fe {
        let wide = self.0.mul_wide(&rhs.0);
        Fe(reduce_wide(wide.split()))
    }

    /// Field squaring.
    #[inline]
    pub fn square(&self) -> Fe {
        self.mul(self)
    }

    /// Multiplies by a small constant.
    pub fn mul_u64(&self, k: u64) -> Fe {
        let (lo, hi) = self.0.mul_u64(k);
        Fe(reduce_wide((lo, U256::from_u64(hi))))
    }

    /// Doubles the element.
    #[inline]
    pub fn double(&self) -> Fe {
        self.add(self)
    }

    /// Exponentiation by an arbitrary 256-bit exponent (square-and-multiply).
    pub fn pow(&self, exp: &U256) -> Fe {
        let mut result = Fe::ONE;
        let bits = exp.bits();
        for i in (0..bits).rev() {
            result = result.square();
            if exp.bit(i) {
                result = result.mul(self);
            }
        }
        result
    }

    /// Multiplicative inverse via Fermat's little theorem (`a^(p-2)`).
    ///
    /// Returns `None` for zero.
    pub fn invert(&self) -> Option<Fe> {
        if self.is_zero() {
            return None;
        }
        let p_minus_2 = P.wrapping_sub(&U256::from_u64(2));
        Some(self.pow(&p_minus_2))
    }

    /// Square root, if one exists. Since `p ≡ 3 (mod 4)`, the candidate is
    /// `a^((p+1)/4)`; we verify and return `None` for non-residues.
    pub fn sqrt(&self) -> Option<Fe> {
        // p + 1 never overflows: p < 2^256 - 1.
        let exp = P.wrapping_add(&U256::ONE).shr(2);
        let candidate = self.pow(&exp);
        if candidate.square() == *self {
            Some(candidate)
        } else {
            None
        }
    }

    /// Montgomery batch inversion: inverts every non-zero element of
    /// `elems` in place for the cost of **one** Fermat inversion plus
    /// `3(n-1)` multiplications, instead of one ~380-multiplication ladder
    /// per element. Zero entries are left as zero (matching the
    /// `invert() -> None` convention without disturbing their neighbours).
    pub fn batch_invert(elems: &mut [Fe]) {
        // Prefix products over the non-zero entries.
        let mut prefix = Vec::with_capacity(elems.len());
        let mut acc = Fe::ONE;
        for e in elems.iter() {
            prefix.push(acc);
            if !e.is_zero() {
                acc = acc.mul(e);
            }
        }
        // One inversion of the grand product...
        let Some(mut inv) = acc.invert() else {
            // Every entry was zero; nothing to do.
            return;
        };
        // ...then walk backwards, peeling one element per step.
        for (e, pre) in elems.iter_mut().zip(prefix).rev() {
            if e.is_zero() {
                continue;
            }
            let e_inv = inv.mul(&pre);
            inv = inv.mul(e);
            *e = e_inv;
        }
    }
}

/// Reduces a 512-bit value `(lo, hi)` to a canonical field element using
/// `2^256 ≡ C (mod p)`.
fn reduce_wide((lo, hi): (U256, U256)) -> U256 {
    // Fold 1: acc = lo + hi * C. hi*C < 2^289, so acc < 2^290; track the
    // overflow limbs exactly.
    let (hi_c, hi_c_carry) = hi.mul_u64(C);
    let (acc, carry1) = lo.overflowing_add(&hi_c);
    // overflow beyond 256 bits: hi_c_carry + carry1 (both small).
    let overflow = hi_c_carry + carry1 as u64; // < 2^34

    // Fold 2: acc += overflow * C. overflow*C < 2^98 fits well within U256.
    let (of_c_lo, of_c_hi) = U256::from_u64(overflow).mul_u64(C);
    debug_assert_eq!(of_c_hi, 0);
    let (mut acc, carry2) = acc.overflowing_add(&of_c_lo);
    if carry2 {
        // Extremely rare: one more fold of a single 2^256 ≡ C.
        acc = acc.wrapping_add(&U256::from_u64(C));
    }
    while acc >= P {
        acc = acc.wrapping_sub(&P);
    }
    acc
}

impl core::fmt::Debug for Fe {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "Fe(0x{})", self.0.to_hex())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fe(v: u64) -> Fe {
        Fe::from_u64(v)
    }

    #[test]
    fn modulus_shape() {
        // p = 2^256 - C exactly.
        let (sum, carry) = P.overflowing_add(&U256::from_u64(C));
        assert!(carry);
        assert!(sum.is_zero());
    }

    #[test]
    fn add_wraps_modulus() {
        let p_minus_1 = Fe::from_u256(P.wrapping_sub(&U256::ONE));
        assert_eq!(p_minus_1.add(&Fe::ONE), Fe::ZERO);
        assert_eq!(p_minus_1.add(&fe(2)), Fe::ONE);
    }

    #[test]
    fn sub_and_neg() {
        let a = fe(5);
        let b = fe(9);
        // 5 - 9 = -4 = p - 4
        let expect = Fe::from_u256(P.wrapping_sub(&U256::from_u64(4)));
        assert_eq!(a.sub(&b), expect);
        assert_eq!(a.sub(&b).add(&b), a);
        assert_eq!(a.neg().add(&a), Fe::ZERO);
        assert_eq!(Fe::ZERO.neg(), Fe::ZERO);
    }

    #[test]
    fn mul_matches_repeated_addition() {
        let a = Fe::from_be_hex("00000000000000000000000000000000000000000000000000000000deadbeef");
        let mut sum = Fe::ZERO;
        for _ in 0..1000 {
            sum = sum.add(&a);
        }
        assert_eq!(a.mul_u64(1000), sum);
        assert_eq!(a.mul(&fe(1000)), sum);
    }

    #[test]
    fn mul_near_modulus() {
        // (p-1)^2 mod p = 1
        let p_minus_1 = Fe::from_u256(P.wrapping_sub(&U256::ONE));
        assert_eq!(p_minus_1.mul(&p_minus_1), Fe::ONE);
        // (p-1) * 2 = p - 2
        assert_eq!(
            p_minus_1.double(),
            Fe::from_u256(P.wrapping_sub(&U256::from_u64(2)))
        );
    }

    #[test]
    fn invert() {
        let a = Fe::from_be_hex("79be667ef9dcbbac55a06295ce870b07029bfcdb2dce28d959f2815b16f81798");
        let inv = a.invert().unwrap();
        assert_eq!(a.mul(&inv), Fe::ONE);
        assert!(Fe::ZERO.invert().is_none());
        assert_eq!(Fe::ONE.invert().unwrap(), Fe::ONE);
    }

    #[test]
    fn sqrt_roundtrip() {
        let a = fe(1234567);
        let sq = a.square();
        let root = sq.sqrt().expect("square must be a residue");
        assert!(root == a || root == a.neg());
    }

    #[test]
    fn sqrt_non_residue() {
        // For p ≡ 3 mod 4, exactly one of (a, -a) is a residue when a != 0;
        // find a non-residue and check it fails.
        let a = fe(5);
        let sq = a.square();
        assert!(sq.sqrt().is_some());
        // 7 is the curve b; y^2 = 7 has solutions iff 7 is a residue. Either
        // way, sqrt of a residue squared must verify; check a known
        // non-residue: p-1 (i.e. -1) is a non-residue when p ≡ 3 mod 4.
        let minus_one = Fe::ONE.neg();
        assert!(minus_one.sqrt().is_none());
    }

    #[test]
    fn pow_small_cases() {
        let a = fe(3);
        assert_eq!(a.pow(&U256::ZERO), Fe::ONE);
        assert_eq!(a.pow(&U256::ONE), a);
        assert_eq!(a.pow(&U256::from_u64(5)), fe(243));
    }

    #[test]
    fn batch_invert_matches_invert() {
        let mut elems: Vec<Fe> = (1u64..40).map(fe).collect();
        elems.push(Fe::from_u256(P.wrapping_sub(&U256::ONE)));
        let expect: Vec<Fe> = elems.iter().map(|e| e.invert().unwrap()).collect();
        Fe::batch_invert(&mut elems);
        assert_eq!(elems, expect);
    }

    #[test]
    fn batch_invert_skips_zeros() {
        let mut elems = vec![fe(2), Fe::ZERO, fe(3), Fe::ZERO];
        Fe::batch_invert(&mut elems);
        assert_eq!(elems[0], fe(2).invert().unwrap());
        assert_eq!(elems[1], Fe::ZERO);
        assert_eq!(elems[2], fe(3).invert().unwrap());
        assert_eq!(elems[3], Fe::ZERO);
        // All-zero and empty inputs are no-ops, not panics.
        let mut zeros = vec![Fe::ZERO; 3];
        Fe::batch_invert(&mut zeros);
        assert_eq!(zeros, vec![Fe::ZERO; 3]);
        Fe::batch_invert(&mut []);
    }

    #[test]
    fn from_u256_reduces() {
        assert_eq!(Fe::from_u256(P), Fe::ZERO);
        assert_eq!(Fe::from_u256(P.wrapping_add(&U256::ONE)), Fe::ONE);
        assert_eq!(Fe::from_u256(U256::MAX), Fe::from_u64(C - 1));
    }
}
