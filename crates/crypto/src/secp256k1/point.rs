//! Group arithmetic on the secp256k1 curve `y^2 = x^3 + 7` over GF(p).
//!
//! Points are manipulated in Jacobian projective coordinates
//! (`x = X/Z^2, y = Y/Z^3`) to avoid per-operation field inversions; a single
//! inversion converts back to affine, and [`batch_normalize`] amortizes that
//! inversion across many points via Montgomery's trick.
//!
//! Scalar multiplication comes in three speeds:
//!
//! - **Fixed base** ([`mul_generator`]): an 8-bit comb table (32 windows ×
//!   255 affine entries, built lazily with one shared inversion) reduces
//!   `k·G` to at most 32 mixed additions and zero doublings.
//! - **Variable base** ([`mul_point`], [`AffineTable`]): the scalar is split
//!   with the GLV endomorphism (`λ·(x, y) = (β·x, y)`) into two half-width
//!   parts, each driven through width-5 wNAF over a shared 8-entry
//!   odd-multiples table — ~129 doublings and ~43 additions instead of 256
//!   doublings and 64 additions.
//! - **Double-scalar** ([`mul_double`], [`mul_double_with_table`]):
//!   Strauss–Shamir interleaving shares one doubling run across all four
//!   GLV half-scalars of `a·G + b·Q`, which is the shape ECDSA verification
//!   and recovery need. Callers that verify many signatures under one key
//!   should build the key's [`AffineTable`] once and reuse it.
//!
//! The pre-existing 4-bit fixed-window implementations are preserved in
//! [`mod@reference`] as differential baselines; property tests pin the fast
//! paths to them bit-for-bit.

use std::sync::OnceLock;

use super::field::Fe;
use super::scalar::{wnaf_digits, Scalar};
use crate::uint::U256;

/// Generator x-coordinate.
const GX: Fe = Fe::from_be_hex("79be667ef9dcbbac55a06295ce870b07029bfcdb2dce28d959f2815b16f81798");
/// Generator y-coordinate.
const GY: Fe = Fe::from_be_hex("483ada7726a3c4655da4fbfc0e1108a8fd17b448a68554199c47d08ffb10d4b8");

/// β — the cube root of unity in GF(p) that realizes the GLV endomorphism:
/// `λ·(x, y) = (β·x, y)` for the [`Scalar::LAMBDA`] cube root of unity mod n.
const BETA: Fe =
    Fe::from_be_hex("7ae96a2b657c07106e64479eac3434e99cf0497512f58995c1396c28719501ee");

/// A point in affine coordinates, or the point at infinity.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Affine {
    /// x-coordinate (meaningless when `infinity`).
    pub x: Fe,
    /// y-coordinate (meaningless when `infinity`).
    pub y: Fe,
    /// Marker for the group identity.
    pub infinity: bool,
}

/// A point in Jacobian projective coordinates.
#[derive(Clone, Copy, Debug)]
pub struct Jacobian {
    x: Fe,
    y: Fe,
    z: Fe,
}

impl Affine {
    /// The group identity.
    pub const INFINITY: Affine = Affine {
        x: Fe::ZERO,
        y: Fe::ZERO,
        infinity: true,
    };

    /// The standard generator G.
    pub const GENERATOR: Affine = Affine {
        x: GX,
        y: GY,
        infinity: false,
    };

    /// Constructs a point from coordinates, verifying the curve equation.
    pub fn new(x: Fe, y: Fe) -> Option<Affine> {
        let p = Affine {
            x,
            y,
            infinity: false,
        };
        if p.is_on_curve() {
            Some(p)
        } else {
            None
        }
    }

    /// Checks `y^2 = x^3 + 7`.
    pub fn is_on_curve(&self) -> bool {
        if self.infinity {
            return true;
        }
        let lhs = self.y.square();
        let rhs = self.x.square().mul(&self.x).add(&Fe::SEVEN);
        lhs == rhs
    }

    /// Recovers a point from an x-coordinate and the parity of y.
    ///
    /// Returns `None` if `x^3 + 7` is a non-residue (x not on the curve).
    pub fn lift_x(x: Fe, y_is_odd: bool) -> Option<Affine> {
        let y2 = x.square().mul(&x).add(&Fe::SEVEN);
        let mut y = y2.sqrt()?;
        if y.is_odd() != y_is_odd {
            y = y.neg();
        }
        Some(Affine {
            x,
            y,
            infinity: false,
        })
    }

    /// Point negation.
    pub fn neg(&self) -> Affine {
        Affine {
            x: self.x,
            y: self.y.neg(),
            infinity: self.infinity,
        }
    }

    /// The GLV endomorphism `φ(x, y) = (β·x, y)`, equal to `λ·P` for one
    /// field multiplication instead of a scalar multiplication.
    pub fn endo(&self) -> Affine {
        Affine {
            x: self.x.mul(&BETA),
            y: self.y,
            infinity: self.infinity,
        }
    }

    /// Serializes as 64 uncompressed bytes `x || y` (no 0x04 prefix, the
    /// Ethereum convention for address derivation).
    pub fn to_bytes_uncompressed(&self) -> [u8; 64] {
        let mut out = [0u8; 64];
        out[..32].copy_from_slice(&self.x.to_be_bytes());
        out[32..].copy_from_slice(&self.y.to_be_bytes());
        out
    }

    /// Parses 64 uncompressed bytes, verifying the curve equation.
    pub fn from_bytes_uncompressed(bytes: &[u8; 64]) -> Option<Affine> {
        let mut xb = [0u8; 32];
        let mut yb = [0u8; 32];
        xb.copy_from_slice(&bytes[..32]);
        yb.copy_from_slice(&bytes[32..]);
        Affine::new(Fe::from_be_bytes(&xb), Fe::from_be_bytes(&yb))
    }

    /// Serializes as 33 compressed bytes (`02/03 || x`).
    pub fn to_bytes_compressed(&self) -> [u8; 33] {
        let mut out = [0u8; 33];
        out[0] = if self.y.is_odd() { 0x03 } else { 0x02 };
        out[1..].copy_from_slice(&self.x.to_be_bytes());
        out
    }

    /// Parses 33 compressed bytes.
    pub fn from_bytes_compressed(bytes: &[u8; 33]) -> Option<Affine> {
        let y_is_odd = match bytes[0] {
            0x02 => false,
            0x03 => true,
            _ => return None,
        };
        let mut xb = [0u8; 32];
        xb.copy_from_slice(&bytes[1..]);
        Affine::lift_x(Fe::from_be_bytes(&xb), y_is_odd)
    }

    /// Converts to Jacobian coordinates.
    pub fn to_jacobian(&self) -> Jacobian {
        if self.infinity {
            Jacobian::INFINITY
        } else {
            Jacobian {
                x: self.x,
                y: self.y,
                z: Fe::ONE,
            }
        }
    }
}

impl Jacobian {
    /// The group identity (Z = 0 convention).
    pub const INFINITY: Jacobian = Jacobian {
        x: Fe::ONE,
        y: Fe::ONE,
        z: Fe::ZERO,
    };

    /// True iff the identity.
    pub fn is_infinity(&self) -> bool {
        self.z.is_zero()
    }

    /// The projective X coordinate (`x_affine = X / Z²`).
    pub(crate) fn proj_x(&self) -> Fe {
        self.x
    }

    /// The projective Z coordinate.
    pub(crate) fn proj_z(&self) -> Fe {
        self.z
    }

    /// Converts back to affine (one field inversion).
    pub fn to_affine(&self) -> Affine {
        // `invert` only fails for z = 0, which is the infinity case.
        let Some(z_inv) = self.z.invert() else {
            return Affine::INFINITY;
        };
        let z_inv2 = z_inv.square();
        let z_inv3 = z_inv2.mul(&z_inv);
        Affine {
            x: self.x.mul(&z_inv2),
            y: self.y.mul(&z_inv3),
            infinity: false,
        }
    }

    /// Point doubling (a = 0 curve; standard dbl-2009-l formulas).
    pub fn double(&self) -> Jacobian {
        if self.is_infinity() || self.y.is_zero() {
            return Jacobian::INFINITY;
        }
        let a = self.x.square();
        let b = self.y.square();
        let c = b.square();
        // D = 2*((X+B)^2 - A - C)
        let d = self.x.add(&b).square().sub(&a).sub(&c).double();
        let e = a.mul_u64(3);
        let f = e.square();
        let x3 = f.sub(&d.double());
        let y3 = e.mul(&d.sub(&x3)).sub(&c.mul_u64(8));
        let z3 = self.y.mul(&self.z).double();
        Jacobian {
            x: x3,
            y: y3,
            z: z3,
        }
    }

    /// General Jacobian + Jacobian addition.
    pub fn add(&self, rhs: &Jacobian) -> Jacobian {
        if self.is_infinity() {
            return *rhs;
        }
        if rhs.is_infinity() {
            return *self;
        }
        let z1z1 = self.z.square();
        let z2z2 = rhs.z.square();
        let u1 = self.x.mul(&z2z2);
        let u2 = rhs.x.mul(&z1z1);
        let s1 = self.y.mul(&z2z2).mul(&rhs.z);
        let s2 = rhs.y.mul(&z1z1).mul(&self.z);
        if u1 == u2 {
            if s1 == s2 {
                return self.double();
            }
            return Jacobian::INFINITY;
        }
        let h = u2.sub(&u1);
        let i = h.double().square();
        let j = h.mul(&i);
        let r = s2.sub(&s1).double();
        let v = u1.mul(&i);
        let x3 = r.square().sub(&j).sub(&v.double());
        let y3 = r.mul(&v.sub(&x3)).sub(&s1.mul(&j).double());
        let z3 = self.z.add(&rhs.z).square().sub(&z1z1).sub(&z2z2).mul(&h);
        Jacobian {
            x: x3,
            y: y3,
            z: z3,
        }
    }

    /// Mixed addition with an affine point (cheaper: Z2 = 1).
    pub fn add_affine(&self, rhs: &Affine) -> Jacobian {
        if rhs.infinity {
            return *self;
        }
        if self.is_infinity() {
            return rhs.to_jacobian();
        }
        let z1z1 = self.z.square();
        let u2 = rhs.x.mul(&z1z1);
        let s2 = rhs.y.mul(&z1z1).mul(&self.z);
        if self.x == u2 {
            if self.y == s2 {
                return self.double();
            }
            return Jacobian::INFINITY;
        }
        let h = u2.sub(&self.x);
        let hh = h.square();
        let i = hh.double().double();
        let j = h.mul(&i);
        let r = s2.sub(&self.y).double();
        let v = self.x.mul(&i);
        let x3 = r.square().sub(&j).sub(&v.double());
        let y3 = r.mul(&v.sub(&x3)).sub(&self.y.mul(&j).double());
        let z3 = self.z.add(&h).square().sub(&z1z1).sub(&hh);
        Jacobian {
            x: x3,
            y: y3,
            z: z3,
        }
    }
}

/// Converts a slice of Jacobian points to affine with **one** shared field
/// inversion (Montgomery's trick via [`Fe::batch_invert`]) instead of one
/// inversion per point. Infinity inputs map to [`Affine::INFINITY`].
pub fn batch_normalize(points: &[Jacobian]) -> Vec<Affine> {
    let mut z_invs: Vec<Fe> = points.iter().map(|p| p.z).collect();
    Fe::batch_invert(&mut z_invs);
    points
        .iter()
        .zip(&z_invs)
        .map(|(p, z_inv)| {
            if z_inv.is_zero() {
                Affine::INFINITY
            } else {
                let z_inv2 = z_inv.square();
                Affine {
                    x: p.x.mul(&z_inv2),
                    y: p.y.mul(&z_inv2.mul(z_inv)),
                    infinity: false,
                }
            }
        })
        .collect()
}

/// Comb window width in bits for the fixed-base generator table.
const COMB_WINDOW: usize = 8;
/// Number of comb windows covering a 256-bit scalar.
const COMB_WINDOWS: usize = 256 / COMB_WINDOW;
/// Entries per comb window: multiples `1..=255` of the window base.
const COMB_TABLE_LEN: usize = (1 << COMB_WINDOW) - 1;

/// Precomputed comb table for the generator: for each of the 32 byte
/// positions `w`, the affine points `d · 256^w · G` for digit `d` in
/// `1..=255`. ~570 KiB, built once on first use; construction runs entirely
/// in Jacobian coordinates and normalizes all 8160 entries with a single
/// shared inversion via [`batch_normalize`].
struct CombTable {
    windows: Vec<[Affine; COMB_TABLE_LEN]>,
}

fn comb_table() -> &'static CombTable {
    static TABLE: OnceLock<CombTable> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut jac = Vec::with_capacity(COMB_WINDOWS * COMB_TABLE_LEN);
        let mut base = Affine::GENERATOR.to_jacobian();
        for _ in 0..COMB_WINDOWS {
            let mut acc = base;
            for _ in 0..COMB_TABLE_LEN {
                jac.push(acc);
                acc = acc.add(&base);
            }
            // acc is now 256 * base: the next window's base.
            base = acc;
        }
        let affine = batch_normalize(&jac);
        let windows = affine
            .chunks_exact(COMB_TABLE_LEN)
            .map(|chunk| {
                let mut entries = [Affine::INFINITY; COMB_TABLE_LEN];
                entries.copy_from_slice(chunk);
                entries
            })
            .collect();
        CombTable { windows }
    })
}

/// Multiplies the generator by a scalar using the precomputed comb table:
/// at most 32 mixed additions and no doublings.
pub fn mul_generator(k: &Scalar) -> Jacobian {
    if k.is_zero() {
        return Jacobian::INFINITY;
    }
    let table = comb_table();
    let bytes = k.to_be_bytes();
    let mut acc = Jacobian::INFINITY;
    // Window w covers byte w counting from the least-significant byte.
    for (w, window) in table.windows.iter().enumerate() {
        let byte = bytes[31 - w];
        if byte != 0 {
            acc = acc.add_affine(&window[(byte - 1) as usize]);
        }
    }
    acc
}

/// wNAF window width for variable-base multiplication: odd digits
/// `|d| ≤ 2^(width-1) - 1`.
const WNAF_WIDTH: u32 = 5;
/// Odd multiples stored per table: `1P, 3P, …, (2^(width-1) - 1)P`.
const ODD_ENTRIES: usize = 1 << (WNAF_WIDTH - 2);

/// Precomputed odd multiples of a point in affine form, plus their images
/// under the GLV endomorphism — everything a width-5 wNAF walk over a
/// GLV-split scalar needs.
///
/// Building the table costs one doubling, seven additions, and one shared
/// field inversion. Verifiers processing many signatures under the same
/// public key should build this once and call
/// [`mul_double_with_table`] per signature.
pub struct AffineTable {
    /// `(2i+1)·P` for `i` in `0..ODD_ENTRIES`.
    plain: [Affine; ODD_ENTRIES],
    /// `φ((2i+1)·P) = λ·(2i+1)·P` (one field mul per entry: x → β·x).
    endo: [Affine; ODD_ENTRIES],
    /// Whether the base point was the identity.
    infinity: bool,
}

impl AffineTable {
    /// Precomputes the odd-multiples table for `point`.
    pub fn new(point: &Affine) -> AffineTable {
        if point.infinity {
            return AffineTable {
                plain: [Affine::INFINITY; ODD_ENTRIES],
                endo: [Affine::INFINITY; ODD_ENTRIES],
                infinity: true,
            };
        }
        let twice = point.to_jacobian().double();
        let mut jac = Vec::with_capacity(ODD_ENTRIES);
        jac.push(point.to_jacobian());
        for i in 1..ODD_ENTRIES {
            jac.push(jac[i - 1].add(&twice));
        }
        let normalized = batch_normalize(&jac);
        let mut plain = [Affine::INFINITY; ODD_ENTRIES];
        plain.copy_from_slice(&normalized);
        let mut endo = plain;
        for entry in endo.iter_mut() {
            *entry = entry.endo();
        }
        AffineTable {
            plain,
            endo,
            infinity: false,
        }
    }

    /// Looks up the table entry for a signed odd wNAF digit, optionally
    /// under the endomorphism, with an extra negation for GLV half-scalars
    /// whose magnitude was sign-flipped.
    fn entry(&self, endo: bool, digit: i32, negate: bool) -> Affine {
        let idx = digit.unsigned_abs() as usize / 2;
        let entry = if endo {
            self.endo[idx]
        } else {
            self.plain[idx]
        };
        if (digit < 0) != negate {
            entry.neg()
        } else {
            entry
        }
    }

    /// Computes `k·P` via GLV splitting and interleaved width-5 wNAF:
    /// the two half-width scalars share one ~129-step doubling run.
    pub fn mul(&self, k: &Scalar) -> Jacobian {
        if self.infinity || k.is_zero() {
            return Jacobian::INFINITY;
        }
        let split = k.split_glv();
        let d1 = wnaf_digits(&split.k1.1, WNAF_WIDTH);
        let d2 = wnaf_digits(&split.k2.1, WNAF_WIDTH);
        let len = d1.len().max(d2.len());
        let mut acc = Jacobian::INFINITY;
        for i in (0..len).rev() {
            acc = acc.double();
            if let Some(&d) = d1.get(i) {
                if d != 0 {
                    acc = acc.add_affine(&self.entry(false, d, split.k1.0));
                }
            }
            if let Some(&d) = d2.get(i) {
                if d != 0 {
                    acc = acc.add_affine(&self.entry(true, d, split.k2.0));
                }
            }
        }
        acc
    }
}

/// Lazily built odd-multiples table for the generator, used to interleave
/// the fixed-base half of Strauss–Shamir double multiplications.
fn gen_wnaf_table() -> &'static AffineTable {
    static TABLE: OnceLock<AffineTable> = OnceLock::new();
    TABLE.get_or_init(|| AffineTable::new(&Affine::GENERATOR))
}

/// Multiplies an arbitrary point by a scalar (GLV split + width-5 wNAF over
/// a batch-normalized affine odd-multiples table).
pub fn mul_point(point: &Affine, k: &Scalar) -> Jacobian {
    if point.infinity || k.is_zero() {
        return Jacobian::INFINITY;
    }
    AffineTable::new(point).mul(k)
}

/// Computes `a·G + b·Q` (the ECDSA verification combination) with a
/// freshly built table for `Q`. Verifying many signatures under the same
/// key? Build [`AffineTable::new`] once and call [`mul_double_with_table`].
pub fn mul_double(a: &Scalar, b: &Scalar, q: &Affine) -> Jacobian {
    mul_double_with_table(a, b, &AffineTable::new(q))
}

/// Computes `a·G + b·Q` as ECDSA verification needs it.
///
/// The variable-base half `b·Q` runs as a Strauss–Shamir interleave of the
/// two GLV half-scalars over the caller's table (one shared ~129-step
/// doubling run); the fixed-base half `a·G` comes from the comb table,
/// which needs **no doublings at all** — so folding it in with one final
/// addition is strictly cheaper than interleaving it into the doubling
/// run.
pub fn mul_double_with_table(a: &Scalar, b: &Scalar, table: &AffineTable) -> Jacobian {
    if table.infinity || b.is_zero() {
        return mul_generator(a);
    }
    if a.is_zero() {
        return table.mul(b);
    }
    table.mul(b).add(&mul_generator(a))
}

/// Computes `a·G + b·Q` by Strauss–Shamir interleaving **without** the GLV
/// split: both full-width scalars share one 256-step doubling run. Slower
/// than [`mul_double_with_table`]; kept as an intermediate differential
/// baseline between [`reference::mul_double`] and the GLV path.
pub fn mul_double_strauss(a: &Scalar, b: &Scalar, q: &Affine) -> Jacobian {
    if q.infinity || b.is_zero() {
        return mul_generator(a);
    }
    let table = AffineTable::new(q);
    let gt = gen_wnaf_table();
    let da = wnaf_digits(&U256::from_be_bytes(&a.to_be_bytes()), WNAF_WIDTH);
    let db = wnaf_digits(&U256::from_be_bytes(&b.to_be_bytes()), WNAF_WIDTH);
    let len = da.len().max(db.len());
    let mut acc = Jacobian::INFINITY;
    for i in (0..len).rev() {
        acc = acc.double();
        if let Some(&d) = da.get(i) {
            if d != 0 {
                acc = acc.add_affine(&gt.entry(false, d, false));
            }
        }
        if let Some(&d) = db.get(i) {
            if d != 0 {
                acc = acc.add_affine(&table.entry(false, d, false));
            }
        }
    }
    acc
}

/// Returns the generator order-related helper: x-coordinate of `k*G` as an
/// integer (used by ECDSA signing for `r`).
pub fn generator_x(k: &Scalar) -> Option<(Fe, bool, bool)> {
    let point = mul_generator(k).to_affine();
    if point.infinity {
        return None;
    }
    // Returns (x, y_is_odd, x_overflows_n) — everything sign/recover need.
    let x_int = point.x.to_u256();
    let overflow = x_int >= super::scalar::N;
    Some((point.x, point.y.is_odd(), overflow))
}

pub mod reference {
    //! The pre-wNAF scalar-multiplication paths, frozen as differential
    //! baselines: a 4-bit fixed window over a per-call Jacobian table
    //! ([`mul_point`]), a 4-bit fixed-window generator table built with one
    //! inversion per entry ([`mul_generator`]), and the naive two-multiply
    //! [`mul_double`]. Property tests assert the optimized paths in the
    //! parent module match these bit-for-bit; the `repro -- signing`
    //! experiment uses them as the honest pre-optimization baseline.

    use std::sync::OnceLock;

    use super::{Affine, Jacobian, Scalar};

    /// Window width (bits) for scalar multiplication.
    const WINDOW: usize = 4;
    /// Table entries per window: we store the multiples 1..=15.
    const TABLE_LEN: usize = (1 << WINDOW) - 1;

    /// Multiplies an arbitrary point by a scalar (4-bit fixed window over a
    /// Jacobian table rebuilt on every call).
    pub fn mul_point(point: &Affine, k: &Scalar) -> Jacobian {
        if point.infinity || k.is_zero() {
            return Jacobian::INFINITY;
        }
        // Build 1P..15P on the fly.
        let mut table = [Jacobian::INFINITY; TABLE_LEN];
        table[0] = point.to_jacobian();
        for i in 1..TABLE_LEN {
            table[i] = table[i - 1].add_affine(point);
        }
        let bytes = k.to_be_bytes();
        let mut acc = Jacobian::INFINITY;
        for byte in bytes {
            for nibble in [byte >> 4, byte & 0x0F] {
                for _ in 0..WINDOW {
                    acc = acc.double();
                }
                if nibble != 0 {
                    acc = acc.add(&table[(nibble - 1) as usize]);
                }
            }
        }
        acc
    }

    /// Precomputed window table for the generator: for each of the 64 nibble
    /// positions, the affine points `d * 16^w * G` for digit `d` in 1..=15.
    struct GenTable {
        windows: Vec<[Affine; TABLE_LEN]>,
    }

    fn gen_table() -> &'static GenTable {
        static TABLE: OnceLock<GenTable> = OnceLock::new();
        TABLE.get_or_init(|| {
            let mut windows = Vec::with_capacity(64);
            let mut base = Affine::GENERATOR.to_jacobian();
            for _ in 0..64 {
                let mut entries = [Affine::INFINITY; TABLE_LEN];
                let mut acc = base;
                for slot in entries.iter_mut() {
                    *slot = acc.to_affine();
                    acc = acc.add(&base);
                }
                // Advance base to 16 * base: acc currently is 16*base.
                base = acc;
                windows.push(entries);
            }
            GenTable { windows }
        })
    }

    /// Multiplies the generator by a scalar using the 4-bit precomputed
    /// table (64 mixed additions, no doublings).
    pub fn mul_generator(k: &Scalar) -> Jacobian {
        if k.is_zero() {
            return Jacobian::INFINITY;
        }
        let table = gen_table();
        let bytes = k.to_be_bytes();
        let mut acc = Jacobian::INFINITY;
        // Window w covers nibble w counting from the least-significant nibble.
        for w in 0..64 {
            let byte = bytes[31 - w / 2];
            let nibble = if w % 2 == 0 { byte & 0x0F } else { byte >> 4 };
            if nibble != 0 {
                acc = acc.add_affine(&table.windows[w][(nibble - 1) as usize]);
            }
        }
        acc
    }

    /// Computes `a*G + b*Q` as two independent multiplications plus an
    /// addition — no shared doublings, no endomorphism.
    pub fn mul_double(a: &Scalar, b: &Scalar, q: &Affine) -> Jacobian {
        mul_generator(a).add(&mul_point(q, b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 2G, a classic known-answer vector.
    const G2X: &str = "c6047f9441ed7d6d3045406e95c07cd85c778e4b8cef3ca7abac09b95c709ee5";
    const G2Y: &str = "1ae168fea63dc339a3c58419466ceaeef7f632653266d0e1236431a950cfe52a";

    #[test]
    fn generator_on_curve() {
        assert!(Affine::GENERATOR.is_on_curve());
    }

    #[test]
    fn double_generator_known_answer() {
        let g2 = Affine::GENERATOR.to_jacobian().double().to_affine();
        assert_eq!(g2.x, Fe::from_be_hex(G2X));
        assert_eq!(g2.y, Fe::from_be_hex(G2Y));
        assert!(g2.is_on_curve());
    }

    #[test]
    fn add_equals_double() {
        let g = Affine::GENERATOR;
        let via_add = g.to_jacobian().add(&g.to_jacobian()).to_affine();
        let via_mixed = g.to_jacobian().add_affine(&g).to_affine();
        let via_double = g.to_jacobian().double().to_affine();
        assert_eq!(via_add, via_double);
        assert_eq!(via_mixed, via_double);
    }

    #[test]
    fn scalar_mul_small_multiples() {
        let g = Affine::GENERATOR;
        // 2G via mul matches doubling.
        let two = mul_point(&g, &Scalar::from_u64(2)).to_affine();
        assert_eq!(two.x, Fe::from_be_hex(G2X));
        // 5G = 2G + 2G + G
        let g2 = g.to_jacobian().double();
        let five_manual = g2.add(&g2).add_affine(&g).to_affine();
        let five = mul_point(&g, &Scalar::from_u64(5)).to_affine();
        assert_eq!(five, five_manual);
    }

    #[test]
    fn generator_table_matches_generic_mul() {
        for k in [1u64, 2, 3, 15, 16, 17, 255, 256, 1 << 40] {
            let s = Scalar::from_u64(k);
            assert_eq!(
                mul_generator(&s).to_affine(),
                mul_point(&Affine::GENERATOR, &s).to_affine(),
                "k = {k}"
            );
        }
    }

    #[test]
    fn generator_times_large_scalar() {
        let s = Scalar::from_be_bytes_reduced(&[0xA5; 32]);
        let a = mul_generator(&s).to_affine();
        let b = mul_point(&Affine::GENERATOR, &s).to_affine();
        assert_eq!(a, b);
        assert!(a.is_on_curve());
    }

    #[test]
    fn order_times_generator_is_infinity() {
        // (n-1)G + G = infinity.
        let n_minus_1 = Scalar::from_u64(1).neg();
        let p = mul_generator(&n_minus_1).add_affine(&Affine::GENERATOR);
        assert!(p.is_infinity());
    }

    #[test]
    fn point_plus_negation_is_infinity() {
        let p = mul_generator(&Scalar::from_u64(7)).to_affine();
        let sum = p.to_jacobian().add_affine(&p.neg());
        assert!(sum.is_infinity());
    }

    #[test]
    fn lift_x_parity() {
        let p = mul_generator(&Scalar::from_u64(9)).to_affine();
        let lifted = Affine::lift_x(p.x, p.y.is_odd()).unwrap();
        assert_eq!(lifted, p);
        let flipped = Affine::lift_x(p.x, !p.y.is_odd()).unwrap();
        assert_eq!(flipped, p.neg());
    }

    #[test]
    fn serialization_roundtrips() {
        let p = mul_generator(&Scalar::from_u64(12345)).to_affine();
        let unc = p.to_bytes_uncompressed();
        assert_eq!(Affine::from_bytes_uncompressed(&unc).unwrap(), p);
        let comp = p.to_bytes_compressed();
        assert_eq!(Affine::from_bytes_compressed(&comp).unwrap(), p);
    }

    #[test]
    fn invalid_points_rejected() {
        // x = y = 1 is not on the curve.
        assert!(Affine::new(Fe::ONE, Fe::ONE).is_none());
        let mut bad = [1u8; 64];
        bad[0] = 9;
        assert!(Affine::from_bytes_uncompressed(&bad).is_none());
        assert!(Affine::from_bytes_compressed(&[0x05; 33]).is_none());
    }

    #[test]
    fn mul_distributes_over_add() {
        // (a+b)G == aG + bG
        let a = Scalar::from_u64(0xDEADBEEF);
        let b = Scalar::from_u64(0xFEEDFACE);
        let lhs = mul_generator(&a.add(&b)).to_affine();
        let rhs = mul_generator(&a).add(&mul_generator(&b)).to_affine();
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn infinity_handling() {
        assert!(mul_point(&Affine::INFINITY, &Scalar::from_u64(3)).is_infinity());
        assert!(mul_point(&Affine::GENERATOR, &Scalar::ZERO).is_infinity());
        assert!(mul_generator(&Scalar::ZERO).is_infinity());
        let g = Affine::GENERATOR.to_jacobian();
        assert_eq!(g.add(&Jacobian::INFINITY).to_affine(), Affine::GENERATOR);
        assert_eq!(Jacobian::INFINITY.add(&g).to_affine(), Affine::GENERATOR);
        assert_eq!(Jacobian::INFINITY.to_affine(), Affine::INFINITY);
    }

    fn sample_scalars() -> Vec<Scalar> {
        vec![
            Scalar::from_u64(1),
            Scalar::from_u64(2),
            Scalar::from_u64(0xDEAD_BEEF),
            Scalar::from_be_bytes_reduced(&[0xA5; 32]),
            Scalar::from_be_bytes_reduced(&[0x5A; 32]),
            Scalar::from_u64(1).neg(), // n - 1
            Scalar::LAMBDA,
            Scalar::LAMBDA.neg(),
        ]
    }

    #[test]
    fn batch_normalize_matches_to_affine() {
        let mut points: Vec<Jacobian> = sample_scalars()
            .iter()
            .map(|s| mul_generator(s).double())
            .collect();
        points.insert(1, Jacobian::INFINITY);
        points.push(Jacobian::INFINITY);
        let expect: Vec<Affine> = points.iter().map(|p| p.to_affine()).collect();
        assert_eq!(batch_normalize(&points), expect);
        assert!(batch_normalize(&[]).is_empty());
    }

    #[test]
    fn comb_generator_matches_reference_table() {
        for s in sample_scalars() {
            assert_eq!(
                mul_generator(&s).to_affine(),
                reference::mul_generator(&s).to_affine(),
                "{s:?}"
            );
        }
    }

    #[test]
    fn glv_wnaf_mul_point_matches_reference() {
        let base = mul_generator(&Scalar::from_u64(31337)).to_affine();
        for s in sample_scalars() {
            assert_eq!(
                mul_point(&base, &s).to_affine(),
                reference::mul_point(&base, &s).to_affine(),
                "{s:?}"
            );
        }
    }

    #[test]
    fn endomorphism_is_lambda_multiplication() {
        let p = mul_generator(&Scalar::from_u64(777)).to_affine();
        let via_endo = p.endo();
        let via_scalar = mul_point(&p, &Scalar::LAMBDA).to_affine();
        assert_eq!(via_endo, via_scalar);
        assert!(via_endo.is_on_curve());
        assert_eq!(Affine::INFINITY.endo(), Affine::INFINITY);
    }

    #[test]
    fn mul_double_variants_agree() {
        let q = mul_generator(&Scalar::from_be_bytes_reduced(&[0x77; 32])).to_affine();
        let scalars = sample_scalars();
        for a in &scalars {
            for b in &scalars {
                let expect = reference::mul_double(a, b, &q).to_affine();
                assert_eq!(mul_double(a, b, &q).to_affine(), expect, "glv {a:?} {b:?}");
                assert_eq!(
                    mul_double_strauss(a, b, &q).to_affine(),
                    expect,
                    "strauss {a:?} {b:?}"
                );
            }
        }
    }

    #[test]
    fn mul_double_handles_zero_and_infinity() {
        let q = mul_generator(&Scalar::from_u64(99)).to_affine();
        let a = Scalar::from_u64(41);
        let b = Scalar::from_u64(43);
        assert_eq!(
            mul_double(&a, &Scalar::ZERO, &q).to_affine(),
            mul_generator(&a).to_affine()
        );
        assert_eq!(
            mul_double(&Scalar::ZERO, &b, &q).to_affine(),
            mul_point(&q, &b).to_affine()
        );
        assert!(mul_double(&Scalar::ZERO, &Scalar::ZERO, &q).is_infinity());
        assert_eq!(
            mul_double(&a, &b, &Affine::INFINITY).to_affine(),
            mul_generator(&a).to_affine()
        );
    }

    #[test]
    fn cached_table_reuse_matches_fresh() {
        let q = mul_generator(&Scalar::from_u64(1234567)).to_affine();
        let table = AffineTable::new(&q);
        for s in sample_scalars() {
            assert_eq!(table.mul(&s).to_affine(), mul_point(&q, &s).to_affine());
            let a = s.add(&Scalar::from_u64(17));
            assert_eq!(
                mul_double_with_table(&a, &s, &table).to_affine(),
                mul_double(&a, &s, &q).to_affine()
            );
        }
    }
}
