//! Group arithmetic on the secp256k1 curve `y^2 = x^3 + 7` over GF(p).
//!
//! Points are manipulated in Jacobian projective coordinates
//! (`x = X/Z^2, y = Y/Z^3`) to avoid per-operation field inversions; a single
//! inversion converts back to affine. Scalar multiplication uses a 4-bit
//! fixed window; multiplications by the generator use a lazily built
//! precomputed window table.

use std::sync::OnceLock;

use super::field::Fe;
use super::scalar::Scalar;

/// Generator x-coordinate.
const GX: Fe = Fe::from_be_hex("79be667ef9dcbbac55a06295ce870b07029bfcdb2dce28d959f2815b16f81798");
/// Generator y-coordinate.
const GY: Fe = Fe::from_be_hex("483ada7726a3c4655da4fbfc0e1108a8fd17b448a68554199c47d08ffb10d4b8");

/// A point in affine coordinates, or the point at infinity.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Affine {
    /// x-coordinate (meaningless when `infinity`).
    pub x: Fe,
    /// y-coordinate (meaningless when `infinity`).
    pub y: Fe,
    /// Marker for the group identity.
    pub infinity: bool,
}

/// A point in Jacobian projective coordinates.
#[derive(Clone, Copy, Debug)]
pub struct Jacobian {
    x: Fe,
    y: Fe,
    z: Fe,
}

impl Affine {
    /// The group identity.
    pub const INFINITY: Affine = Affine {
        x: Fe::ZERO,
        y: Fe::ZERO,
        infinity: true,
    };

    /// The standard generator G.
    pub const GENERATOR: Affine = Affine {
        x: GX,
        y: GY,
        infinity: false,
    };

    /// Constructs a point from coordinates, verifying the curve equation.
    pub fn new(x: Fe, y: Fe) -> Option<Affine> {
        let p = Affine {
            x,
            y,
            infinity: false,
        };
        if p.is_on_curve() {
            Some(p)
        } else {
            None
        }
    }

    /// Checks `y^2 = x^3 + 7`.
    pub fn is_on_curve(&self) -> bool {
        if self.infinity {
            return true;
        }
        let lhs = self.y.square();
        let rhs = self.x.square().mul(&self.x).add(&Fe::SEVEN);
        lhs == rhs
    }

    /// Recovers a point from an x-coordinate and the parity of y.
    ///
    /// Returns `None` if `x^3 + 7` is a non-residue (x not on the curve).
    pub fn lift_x(x: Fe, y_is_odd: bool) -> Option<Affine> {
        let y2 = x.square().mul(&x).add(&Fe::SEVEN);
        let mut y = y2.sqrt()?;
        if y.is_odd() != y_is_odd {
            y = y.neg();
        }
        Some(Affine {
            x,
            y,
            infinity: false,
        })
    }

    /// Point negation.
    pub fn neg(&self) -> Affine {
        Affine {
            x: self.x,
            y: self.y.neg(),
            infinity: self.infinity,
        }
    }

    /// Serializes as 64 uncompressed bytes `x || y` (no 0x04 prefix, the
    /// Ethereum convention for address derivation).
    pub fn to_bytes_uncompressed(&self) -> [u8; 64] {
        let mut out = [0u8; 64];
        out[..32].copy_from_slice(&self.x.to_be_bytes());
        out[32..].copy_from_slice(&self.y.to_be_bytes());
        out
    }

    /// Parses 64 uncompressed bytes, verifying the curve equation.
    pub fn from_bytes_uncompressed(bytes: &[u8; 64]) -> Option<Affine> {
        let mut xb = [0u8; 32];
        let mut yb = [0u8; 32];
        xb.copy_from_slice(&bytes[..32]);
        yb.copy_from_slice(&bytes[32..]);
        Affine::new(Fe::from_be_bytes(&xb), Fe::from_be_bytes(&yb))
    }

    /// Serializes as 33 compressed bytes (`02/03 || x`).
    pub fn to_bytes_compressed(&self) -> [u8; 33] {
        let mut out = [0u8; 33];
        out[0] = if self.y.is_odd() { 0x03 } else { 0x02 };
        out[1..].copy_from_slice(&self.x.to_be_bytes());
        out
    }

    /// Parses 33 compressed bytes.
    pub fn from_bytes_compressed(bytes: &[u8; 33]) -> Option<Affine> {
        let y_is_odd = match bytes[0] {
            0x02 => false,
            0x03 => true,
            _ => return None,
        };
        let mut xb = [0u8; 32];
        xb.copy_from_slice(&bytes[1..]);
        Affine::lift_x(Fe::from_be_bytes(&xb), y_is_odd)
    }

    /// Converts to Jacobian coordinates.
    pub fn to_jacobian(&self) -> Jacobian {
        if self.infinity {
            Jacobian::INFINITY
        } else {
            Jacobian {
                x: self.x,
                y: self.y,
                z: Fe::ONE,
            }
        }
    }
}

impl Jacobian {
    /// The group identity (Z = 0 convention).
    pub const INFINITY: Jacobian = Jacobian {
        x: Fe::ONE,
        y: Fe::ONE,
        z: Fe::ZERO,
    };

    /// True iff the identity.
    pub fn is_infinity(&self) -> bool {
        self.z.is_zero()
    }

    /// Converts back to affine (one field inversion).
    pub fn to_affine(&self) -> Affine {
        // `invert` only fails for z = 0, which is the infinity case.
        let Some(z_inv) = self.z.invert() else {
            return Affine::INFINITY;
        };
        let z_inv2 = z_inv.square();
        let z_inv3 = z_inv2.mul(&z_inv);
        Affine {
            x: self.x.mul(&z_inv2),
            y: self.y.mul(&z_inv3),
            infinity: false,
        }
    }

    /// Point doubling (a = 0 curve; standard dbl-2009-l formulas).
    pub fn double(&self) -> Jacobian {
        if self.is_infinity() || self.y.is_zero() {
            return Jacobian::INFINITY;
        }
        let a = self.x.square();
        let b = self.y.square();
        let c = b.square();
        // D = 2*((X+B)^2 - A - C)
        let d = self.x.add(&b).square().sub(&a).sub(&c).double();
        let e = a.mul_u64(3);
        let f = e.square();
        let x3 = f.sub(&d.double());
        let y3 = e.mul(&d.sub(&x3)).sub(&c.mul_u64(8));
        let z3 = self.y.mul(&self.z).double();
        Jacobian {
            x: x3,
            y: y3,
            z: z3,
        }
    }

    /// General Jacobian + Jacobian addition.
    pub fn add(&self, rhs: &Jacobian) -> Jacobian {
        if self.is_infinity() {
            return *rhs;
        }
        if rhs.is_infinity() {
            return *self;
        }
        let z1z1 = self.z.square();
        let z2z2 = rhs.z.square();
        let u1 = self.x.mul(&z2z2);
        let u2 = rhs.x.mul(&z1z1);
        let s1 = self.y.mul(&z2z2).mul(&rhs.z);
        let s2 = rhs.y.mul(&z1z1).mul(&self.z);
        if u1 == u2 {
            if s1 == s2 {
                return self.double();
            }
            return Jacobian::INFINITY;
        }
        let h = u2.sub(&u1);
        let i = h.double().square();
        let j = h.mul(&i);
        let r = s2.sub(&s1).double();
        let v = u1.mul(&i);
        let x3 = r.square().sub(&j).sub(&v.double());
        let y3 = r.mul(&v.sub(&x3)).sub(&s1.mul(&j).double());
        let z3 = self.z.add(&rhs.z).square().sub(&z1z1).sub(&z2z2).mul(&h);
        Jacobian {
            x: x3,
            y: y3,
            z: z3,
        }
    }

    /// Mixed addition with an affine point (cheaper: Z2 = 1).
    pub fn add_affine(&self, rhs: &Affine) -> Jacobian {
        if rhs.infinity {
            return *self;
        }
        if self.is_infinity() {
            return rhs.to_jacobian();
        }
        let z1z1 = self.z.square();
        let u2 = rhs.x.mul(&z1z1);
        let s2 = rhs.y.mul(&z1z1).mul(&self.z);
        if self.x == u2 {
            if self.y == s2 {
                return self.double();
            }
            return Jacobian::INFINITY;
        }
        let h = u2.sub(&self.x);
        let hh = h.square();
        let i = hh.double().double();
        let j = h.mul(&i);
        let r = s2.sub(&self.y).double();
        let v = self.x.mul(&i);
        let x3 = r.square().sub(&j).sub(&v.double());
        let y3 = r.mul(&v.sub(&x3)).sub(&self.y.mul(&j).double());
        let z3 = self.z.add(&h).square().sub(&z1z1).sub(&hh);
        Jacobian {
            x: x3,
            y: y3,
            z: z3,
        }
    }
}

/// Window width (bits) for scalar multiplication.
const WINDOW: usize = 4;
/// Table entries per window: odd multiples not needed for fixed window —
/// we store 1..=15 multiples.
const TABLE_LEN: usize = (1 << WINDOW) - 1;

/// Multiplies an arbitrary point by a scalar (4-bit fixed window).
pub fn mul_point(point: &Affine, k: &Scalar) -> Jacobian {
    if point.infinity || k.is_zero() {
        return Jacobian::INFINITY;
    }
    // Build 1P..15P on the fly.
    let mut table = [Jacobian::INFINITY; TABLE_LEN];
    table[0] = point.to_jacobian();
    for i in 1..TABLE_LEN {
        table[i] = table[i - 1].add_affine(point);
    }
    let bytes = k.to_be_bytes();
    let mut acc = Jacobian::INFINITY;
    for byte in bytes {
        for nibble in [byte >> 4, byte & 0x0F] {
            for _ in 0..WINDOW {
                acc = acc.double();
            }
            if nibble != 0 {
                acc = acc.add(&table[(nibble - 1) as usize]);
            }
        }
    }
    acc
}

/// Precomputed window table for the generator: for each of the 64 nibble
/// positions, the affine points `d * 16^w * G` for digit `d` in 1..=15.
struct GenTable {
    windows: Vec<[Affine; TABLE_LEN]>,
}

fn gen_table() -> &'static GenTable {
    static TABLE: OnceLock<GenTable> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut windows = Vec::with_capacity(64);
        let mut base = Affine::GENERATOR.to_jacobian();
        for _ in 0..64 {
            let mut entries = [Affine::INFINITY; TABLE_LEN];
            let mut acc = base;
            for slot in entries.iter_mut() {
                *slot = acc.to_affine();
                acc = acc.add(&base);
            }
            // Advance base to 16 * base: acc currently is 16*base.
            base = acc;
            windows.push(entries);
        }
        GenTable { windows }
    })
}

/// Multiplies the generator by a scalar using the precomputed table
/// (64 mixed additions, no doublings).
pub fn mul_generator(k: &Scalar) -> Jacobian {
    if k.is_zero() {
        return Jacobian::INFINITY;
    }
    let table = gen_table();
    let bytes = k.to_be_bytes();
    let mut acc = Jacobian::INFINITY;
    // Window w covers nibble w counting from the least-significant nibble.
    for w in 0..64 {
        let byte = bytes[31 - w / 2];
        let nibble = if w % 2 == 0 { byte & 0x0F } else { byte >> 4 };
        if nibble != 0 {
            acc = acc.add_affine(&table.windows[w][(nibble - 1) as usize]);
        }
    }
    acc
}

/// Computes `a*G + b*Q` (the ECDSA verification combination).
pub fn mul_double(a: &Scalar, b: &Scalar, q: &Affine) -> Jacobian {
    mul_generator(a).add(&mul_point(q, b))
}

/// Returns the generator order-related helper: x-coordinate of `k*G` as an
/// integer (used by ECDSA signing for `r`).
pub fn generator_x(k: &Scalar) -> Option<(Fe, bool, bool)> {
    let point = mul_generator(k).to_affine();
    if point.infinity {
        return None;
    }
    // Returns (x, y_is_odd, x_overflows_n) — everything sign/recover need.
    let x_int = point.x.to_u256();
    let overflow = x_int >= super::scalar::N;
    Some((point.x, point.y.is_odd(), overflow))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 2G, a classic known-answer vector.
    const G2X: &str = "c6047f9441ed7d6d3045406e95c07cd85c778e4b8cef3ca7abac09b95c709ee5";
    const G2Y: &str = "1ae168fea63dc339a3c58419466ceaeef7f632653266d0e1236431a950cfe52a";

    #[test]
    fn generator_on_curve() {
        assert!(Affine::GENERATOR.is_on_curve());
    }

    #[test]
    fn double_generator_known_answer() {
        let g2 = Affine::GENERATOR.to_jacobian().double().to_affine();
        assert_eq!(g2.x, Fe::from_be_hex(G2X));
        assert_eq!(g2.y, Fe::from_be_hex(G2Y));
        assert!(g2.is_on_curve());
    }

    #[test]
    fn add_equals_double() {
        let g = Affine::GENERATOR;
        let via_add = g.to_jacobian().add(&g.to_jacobian()).to_affine();
        let via_mixed = g.to_jacobian().add_affine(&g).to_affine();
        let via_double = g.to_jacobian().double().to_affine();
        assert_eq!(via_add, via_double);
        assert_eq!(via_mixed, via_double);
    }

    #[test]
    fn scalar_mul_small_multiples() {
        let g = Affine::GENERATOR;
        // 2G via mul matches doubling.
        let two = mul_point(&g, &Scalar::from_u64(2)).to_affine();
        assert_eq!(two.x, Fe::from_be_hex(G2X));
        // 5G = 2G + 2G + G
        let g2 = g.to_jacobian().double();
        let five_manual = g2.add(&g2).add_affine(&g).to_affine();
        let five = mul_point(&g, &Scalar::from_u64(5)).to_affine();
        assert_eq!(five, five_manual);
    }

    #[test]
    fn generator_table_matches_generic_mul() {
        for k in [1u64, 2, 3, 15, 16, 17, 255, 256, 1 << 40] {
            let s = Scalar::from_u64(k);
            assert_eq!(
                mul_generator(&s).to_affine(),
                mul_point(&Affine::GENERATOR, &s).to_affine(),
                "k = {k}"
            );
        }
    }

    #[test]
    fn generator_times_large_scalar() {
        let s = Scalar::from_be_bytes_reduced(&[0xA5; 32]);
        let a = mul_generator(&s).to_affine();
        let b = mul_point(&Affine::GENERATOR, &s).to_affine();
        assert_eq!(a, b);
        assert!(a.is_on_curve());
    }

    #[test]
    fn order_times_generator_is_infinity() {
        // (n-1)G + G = infinity.
        let n_minus_1 = Scalar::from_u64(1).neg();
        let p = mul_generator(&n_minus_1).add_affine(&Affine::GENERATOR);
        assert!(p.is_infinity());
    }

    #[test]
    fn point_plus_negation_is_infinity() {
        let p = mul_generator(&Scalar::from_u64(7)).to_affine();
        let sum = p.to_jacobian().add_affine(&p.neg());
        assert!(sum.is_infinity());
    }

    #[test]
    fn lift_x_parity() {
        let p = mul_generator(&Scalar::from_u64(9)).to_affine();
        let lifted = Affine::lift_x(p.x, p.y.is_odd()).unwrap();
        assert_eq!(lifted, p);
        let flipped = Affine::lift_x(p.x, !p.y.is_odd()).unwrap();
        assert_eq!(flipped, p.neg());
    }

    #[test]
    fn serialization_roundtrips() {
        let p = mul_generator(&Scalar::from_u64(12345)).to_affine();
        let unc = p.to_bytes_uncompressed();
        assert_eq!(Affine::from_bytes_uncompressed(&unc).unwrap(), p);
        let comp = p.to_bytes_compressed();
        assert_eq!(Affine::from_bytes_compressed(&comp).unwrap(), p);
    }

    #[test]
    fn invalid_points_rejected() {
        // x = y = 1 is not on the curve.
        assert!(Affine::new(Fe::ONE, Fe::ONE).is_none());
        let mut bad = [1u8; 64];
        bad[0] = 9;
        assert!(Affine::from_bytes_uncompressed(&bad).is_none());
        assert!(Affine::from_bytes_compressed(&[0x05; 33]).is_none());
    }

    #[test]
    fn mul_distributes_over_add() {
        // (a+b)G == aG + bG
        let a = Scalar::from_u64(0xDEADBEEF);
        let b = Scalar::from_u64(0xFEEDFACE);
        let lhs = mul_generator(&a.add(&b)).to_affine();
        let rhs = mul_generator(&a).add(&mul_generator(&b)).to_affine();
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn infinity_handling() {
        assert!(mul_point(&Affine::INFINITY, &Scalar::from_u64(3)).is_infinity());
        assert!(mul_generator(&Scalar::ZERO).is_infinity());
        let g = Affine::GENERATOR.to_jacobian();
        assert_eq!(g.add(&Jacobian::INFINITY).to_affine(), Affine::GENERATOR);
        assert_eq!(Jacobian::INFINITY.add(&g).to_affine(), Affine::GENERATOR);
        assert_eq!(Jacobian::INFINITY.to_affine(), Affine::INFINITY);
    }
}
