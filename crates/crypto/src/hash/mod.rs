//! Hash primitives implemented from scratch: Keccak-256 (Ethereum flavour),
//! SHA-256, and HMAC-SHA256.
//!
//! Keccak-256 comes in three throughput tiers, all byte-identical (proven
//! against the frozen [`reference`] module by the differential test suite):
//!
//! | path | use |
//! |---|---|
//! | [`keccak256`] / [`Keccak256`] | one-shot & streaming; sub-rate inputs auto-route to the fused path |
//! | [`keccak256_fixed`] / [`keccak256_prefixed`] | single-permutation digest for inputs under the 136-byte rate |
//! | [`keccak256_batch`] / [`keccak256_fixed_x4`] | ×4 lane-interleaved permutation, four digests per pass |

mod hmac;
mod keccak;
mod keccak4;
mod metrics;
pub mod reference;
mod sha256;

pub use hmac::{hmac_sha256, hmac_sha256_verify, HmacSha256};
pub use keccak::{keccak256, keccak256_fixed, keccak256_prefixed, Keccak256};
pub use keccak4::{
    keccak256_batch, keccak256_batch_prefixed, keccak256_fixed_x4, keccak256_x4_prefixed,
};
pub use metrics::{hash_batches_x4, hashes_computed};
pub use sha256::{sha256, Sha256};

/// A 32-byte digest newtype used across the workspace.
///
/// Wraps the raw output of [`keccak256`]/[`sha256`] with hex formatting and
/// ordering, so digests are not confused with arbitrary byte arrays.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Hash32(pub [u8; 32]);

impl Hash32 {
    /// The all-zero digest.
    pub const ZERO: Hash32 = Hash32([0; 32]);

    /// Keccak-256 of `data`.
    pub fn keccak(data: &[u8]) -> Hash32 {
        Hash32(keccak256(data))
    }

    /// Raw bytes view.
    #[inline]
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }

    /// True iff every byte is zero.
    pub fn is_zero(&self) -> bool {
        self.0 == [0; 32]
    }

    /// Lowercase hex, 64 characters.
    pub fn to_hex(&self) -> String {
        self.0.iter().map(|b| format!("{b:02x}")).collect()
    }

    /// Abbreviated hex (first 8 chars) for logs.
    pub fn short_hex(&self) -> String {
        self.to_hex()[..8].to_string()
    }
}

impl From<[u8; 32]> for Hash32 {
    fn from(v: [u8; 32]) -> Self {
        Hash32(v)
    }
}

impl AsRef<[u8]> for Hash32 {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl core::fmt::Debug for Hash32 {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "Hash32(0x{}…)", self.short_hex())
    }
}

impl core::fmt::Display for Hash32 {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "0x{}", self.to_hex())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash32_display_and_short() {
        let h = Hash32::keccak(b"x");
        assert_eq!(h.to_hex().len(), 64);
        assert!(h.to_string().starts_with("0x"));
        assert_eq!(h.short_hex().len(), 8);
    }

    #[test]
    fn hash32_zero() {
        assert!(Hash32::ZERO.is_zero());
        assert!(!Hash32::keccak(b"").is_zero());
    }
}
