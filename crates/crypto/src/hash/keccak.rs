//! Keccak-256 as used by Ethereum (original Keccak submission padding,
//! `0x01`, *not* the NIST SHA-3 domain byte `0x06`).
//!
//! Implements the full Keccak-f[1600] permutation with a 1088-bit rate
//! sponge. This is the hash behind transaction hashes, contract addresses,
//! Merkle digests and `recoverSigner` message hashes throughout the
//! workspace — profiled as the integrity layer's hard floor once signing
//! was amortized (see docs/perf.md, "Breaking the hashing wall").
//!
//! Two scalar paths live here, both byte-identical to the frozen
//! [`super::reference`] implementation (proven by
//! `crates/crypto/tests/hash_differential.rs`):
//!
//! * [`Keccak256`] — the incremental sponge for arbitrary-length and
//!   streamed input, rebuilt on a fully unrolled round function (no lane
//!   table walks, no bounds checks in the permutation);
//! * [`keccak256_fixed`] — the fused fast path for sub-rate one-shot
//!   inputs (`len < 136`): pad directly into one stack block, load it as
//!   the initial state, run a single permutation, squeeze. No sponge state
//!   machine, no buffered-byte bookkeeping. The 65-byte Merkle node shape
//!   and every fixed-size digest in the workspace take this path.
//!
//! The ×4 lane-interleaved batch paths are in [`super::keccak4`].

use super::metrics;

/// Round constants for Keccak-f[1600].
pub(crate) const RC: [u64; 24] = [
    0x0000000000000001,
    0x0000000000008082,
    0x800000000000808a,
    0x8000000080008000,
    0x000000000000808b,
    0x0000000080000001,
    0x8000000080008081,
    0x8000000000008009,
    0x000000000000008a,
    0x0000000000000088,
    0x0000000080008009,
    0x000000008000000a,
    0x000000008000808b,
    0x800000000000008b,
    0x8000000000008089,
    0x8000000000008003,
    0x8000000000008002,
    0x8000000000000080,
    0x000000000000800a,
    0x800000008000000a,
    0x8000000080008081,
    0x8000000000008080,
    0x0000000080000001,
    0x8000000080008008,
];

/// Rate in bytes for 256-bit output: (1600 - 2*256) / 8.
pub(crate) const RATE: usize = 136;

/// Applies the Keccak-f[1600] permutation in place.
///
/// The round body is fully unrolled with literal lane indices: theta's
/// column parities and chi's row rewrites run over `chunks_exact(5)` rows,
/// and the rho/pi cycle is written out as its 24 concrete (lane, rotation)
/// steps instead of walking the `PI`/`RHO` tables. That removes every
/// bounds check and table load from the innermost 24-round loop.
pub(crate) fn keccak_f(state: &mut [u64; 25]) {
    for rc in RC {
        // Theta: column parities, then fold d into every row.
        let mut c = [0u64; 5];
        for row in state.chunks_exact(5) {
            c[0] ^= row[0];
            c[1] ^= row[1];
            c[2] ^= row[2];
            c[3] ^= row[3];
            c[4] ^= row[4];
        }
        let d = [
            c[4] ^ c[1].rotate_left(1),
            c[0] ^ c[2].rotate_left(1),
            c[1] ^ c[3].rotate_left(1),
            c[2] ^ c[4].rotate_left(1),
            c[3] ^ c[0].rotate_left(1),
        ];
        for row in state.chunks_exact_mut(5) {
            row[0] ^= d[0];
            row[1] ^= d[1];
            row[2] ^= d[2];
            row[3] ^= d[3];
            row[4] ^= d[4];
        }
        // Rho and pi fused: the pi cycle unrolled with literal indices
        // (destination lane, rotation) — the same walk reference::keccak_f
        // drives through its PI/RHO tables.
        let mut last = state[1];
        let t = state[10];
        state[10] = last.rotate_left(1);
        last = t;
        let t = state[7];
        state[7] = last.rotate_left(3);
        last = t;
        let t = state[11];
        state[11] = last.rotate_left(6);
        last = t;
        let t = state[17];
        state[17] = last.rotate_left(10);
        last = t;
        let t = state[18];
        state[18] = last.rotate_left(15);
        last = t;
        let t = state[3];
        state[3] = last.rotate_left(21);
        last = t;
        let t = state[5];
        state[5] = last.rotate_left(28);
        last = t;
        let t = state[16];
        state[16] = last.rotate_left(36);
        last = t;
        let t = state[8];
        state[8] = last.rotate_left(45);
        last = t;
        let t = state[21];
        state[21] = last.rotate_left(55);
        last = t;
        let t = state[24];
        state[24] = last.rotate_left(2);
        last = t;
        let t = state[4];
        state[4] = last.rotate_left(14);
        last = t;
        let t = state[15];
        state[15] = last.rotate_left(27);
        last = t;
        let t = state[23];
        state[23] = last.rotate_left(41);
        last = t;
        let t = state[19];
        state[19] = last.rotate_left(56);
        last = t;
        let t = state[13];
        state[13] = last.rotate_left(8);
        last = t;
        let t = state[12];
        state[12] = last.rotate_left(25);
        last = t;
        let t = state[2];
        state[2] = last.rotate_left(43);
        last = t;
        let t = state[20];
        state[20] = last.rotate_left(62);
        last = t;
        let t = state[14];
        state[14] = last.rotate_left(18);
        last = t;
        let t = state[22];
        state[22] = last.rotate_left(39);
        last = t;
        let t = state[9];
        state[9] = last.rotate_left(61);
        last = t;
        let t = state[6];
        state[6] = last.rotate_left(20);
        last = t;
        state[1] = last.rotate_left(44);
        // Chi, row by row.
        for row in state.chunks_exact_mut(5) {
            let a = [row[0], row[1], row[2], row[3], row[4]];
            row[0] = a[0] ^ (!a[1] & a[2]);
            row[1] = a[1] ^ (!a[2] & a[3]);
            row[2] = a[2] ^ (!a[3] & a[4]);
            row[3] = a[3] ^ (!a[4] & a[0]);
            row[4] = a[4] ^ (!a[0] & a[1]);
        }
        // Iota.
        state[0] ^= rc;
    }
}

/// XORs one full rate block into the sponge state and permutes.
pub(crate) fn absorb_into(state: &mut [u64; 25], block: &[u8; RATE]) {
    // 17 rate lanes; the capacity lanes (17..25) are untouched by absorb.
    for (lane, chunk) in state.iter_mut().zip(block.chunks_exact(8)) {
        let mut bytes = [0u8; 8];
        bytes.copy_from_slice(chunk);
        *lane ^= u64::from_le_bytes(bytes);
    }
    keccak_f(state);
}

/// Copies the first four state lanes out as the 256-bit digest.
pub(crate) fn squeeze(state: &[u64; 25]) -> [u8; 32] {
    let mut out = [0u8; 32];
    for (chunk, lane) in out.chunks_exact_mut(8).zip(state.iter()) {
        chunk.copy_from_slice(&lane.to_le_bytes());
    }
    out
}

/// Streaming Keccak-256 hasher.
///
/// ```
/// use wedge_crypto::hash::Keccak256;
/// let mut h = Keccak256::new();
/// h.update(b"hello ");
/// h.update(b"world");
/// assert_eq!(h.finalize(), Keccak256::digest(b"hello world"));
/// ```
#[derive(Clone)]
pub struct Keccak256 {
    state: [u64; 25],
    /// Bytes buffered toward the next full rate block.
    buf: [u8; RATE],
    buf_len: usize,
}

impl Default for Keccak256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Keccak256 {
    /// Creates an empty hasher.
    pub fn new() -> Self {
        Keccak256 {
            state: [0; 25],
            buf: [0; RATE],
            buf_len: 0,
        }
    }

    /// Absorbs `data`.
    pub fn update(&mut self, mut data: &[u8]) {
        if self.buf_len > 0 {
            let take = (RATE - self.buf_len).min(data.len());
            let (head, rest) = data.split_at(take);
            if let Some(dst) = self.buf.get_mut(self.buf_len..self.buf_len + take) {
                dst.copy_from_slice(head);
            }
            self.buf_len += take;
            data = rest;
            if self.buf_len == RATE {
                let block = self.buf;
                absorb_into(&mut self.state, &block);
                self.buf_len = 0;
            }
        }
        while data.len() >= RATE {
            let (block, rest) = data.split_at(RATE);
            let mut arr = [0u8; RATE];
            arr.copy_from_slice(block);
            absorb_into(&mut self.state, &arr);
            data = rest;
        }
        if !data.is_empty() {
            let (dst, _) = self.buf.split_at_mut(data.len());
            dst.copy_from_slice(data);
            self.buf_len = data.len();
        }
    }

    /// Finishes the hash and returns the 32-byte digest.
    pub fn finalize(mut self) -> [u8; 32] {
        // Multi-rate padding with the legacy Keccak domain bit (0x01).
        // buf_len < RATE is a struct invariant (update() flushes full
        // blocks), so both pad writes land inside the block.
        let mut block = [0u8; RATE];
        let (filled, _) = self.buf.split_at(self.buf_len);
        let (dst, _) = block.split_at_mut(self.buf_len);
        dst.copy_from_slice(filled);
        if let Some(pad) = block.get_mut(self.buf_len) {
            *pad ^= 0x01;
        }
        block[135] ^= 0x80;
        absorb_into(&mut self.state, &block);
        metrics::count_hashes(1);
        squeeze(&self.state)
    }

    /// One-shot convenience digest.
    pub fn digest(data: &[u8]) -> [u8; 32] {
        let mut h = Keccak256::new();
        h.update(data);
        h.finalize()
    }
}

/// One-shot Keccak-256 of `data`.
///
/// Sub-rate inputs (`len < 136`) take the fused single-permutation path;
/// longer inputs run the incremental sponge. Both produce the digest the
/// frozen [`super::reference`] implementation produces.
pub fn keccak256(data: &[u8]) -> [u8; 32] {
    if data.len() < RATE {
        keccak256_fixed(data)
    } else {
        Keccak256::digest(data)
    }
}

/// Fused single-permutation Keccak-256 for sub-rate one-shot inputs.
///
/// For `data.len() < 136` the padded message is exactly one rate block and
/// the sponge state starts at zero, so the digest is one block load plus
/// one permutation — no incremental state machine, no buffering. Inputs of
/// 136 bytes or more fall back to the streaming sponge (their padding
/// spills into a second block), keeping the function total.
pub fn keccak256_fixed(data: &[u8]) -> [u8; 32] {
    if data.len() >= RATE {
        return Keccak256::digest(data);
    }
    let mut block = [0u8; RATE];
    let (dst, _) = block.split_at_mut(data.len());
    dst.copy_from_slice(data);
    if let Some(pad) = block.get_mut(data.len()) {
        *pad ^= 0x01;
    }
    block[135] ^= 0x80;
    // State starts all-zero, so absorbing is a plain load of the block.
    let mut state = [0u64; 25];
    absorb_into(&mut state, &block);
    metrics::count_hashes(1);
    squeeze(&state)
}

/// One-shot Keccak-256 of the logical message `prefix ++ data`, without
/// materializing the concatenation.
///
/// This is the shape of every domain-separated digest in the workspace
/// (`tag || payload` Merkle leaves in particular): when the whole message
/// is sub-rate it takes the fused single-permutation path, otherwise it
/// streams both parts through the sponge.
pub fn keccak256_prefixed(prefix: &[u8], data: &[u8]) -> [u8; 32] {
    let total = prefix.len() + data.len();
    if total < RATE {
        let mut block = [0u8; RATE];
        let (head, rest) = block.split_at_mut(prefix.len());
        head.copy_from_slice(prefix);
        let (mid, _) = rest.split_at_mut(data.len());
        mid.copy_from_slice(data);
        if let Some(pad) = block.get_mut(total) {
            *pad ^= 0x01;
        }
        block[135] ^= 0x80;
        let mut state = [0u64; 25];
        absorb_into(&mut state, &block);
        metrics::count_hashes(1);
        return squeeze(&state);
    }
    let mut h = Keccak256::new();
    h.update(prefix);
    h.update(data);
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn empty_vector() {
        // Well-known Keccak-256("") — e.g. the empty-account code hash on
        // Ethereum.
        assert_eq!(
            hex(&keccak256(b"")),
            "c5d2460186f7233c927e7db2dcc703c0e500b653ca82273b7bfad8045d85a470"
        );
    }

    #[test]
    fn abc_vector() {
        assert_eq!(
            hex(&keccak256(b"abc")),
            "4e03657aea45a94fc7d47ba826c8d667c0d1e6e33a64a036ec44f58fa12d6c45"
        );
    }

    #[test]
    fn streaming_matches_oneshot_across_block_boundary() {
        // 500 bytes spans multiple 136-byte rate blocks.
        let data: Vec<u8> = (0..500u32).map(|i| (i % 251) as u8).collect();
        for split in [0, 1, 135, 136, 137, 271, 272, 499, 500] {
            let mut h = Keccak256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), keccak256(&data), "split at {split}");
        }
    }

    #[test]
    fn rate_sized_input() {
        // Exactly one rate block forces the padding into a fresh block.
        let data = [0xABu8; 136];
        let mut h = Keccak256::new();
        h.update(&data);
        assert_eq!(h.finalize(), keccak256(&data));
    }

    #[test]
    fn fixed_path_matches_sponge_for_every_sub_rate_length() {
        // The satellite regression: every one-shot length 0..=136 produces
        // the same digest through keccak256, keccak256_fixed, and the
        // incremental sponge (136 exercises the fixed path's fallback).
        for len in 0..=136usize {
            let data: Vec<u8> = (0..len).map(|i| (i * 7 + len) as u8).collect();
            let sponge = Keccak256::digest(&data);
            assert_eq!(keccak256_fixed(&data), sponge, "fixed at len {len}");
            assert_eq!(keccak256(&data), sponge, "one-shot at len {len}");
        }
    }

    #[test]
    fn prefixed_matches_concatenation() {
        for (plen, dlen) in [
            (0, 0),
            (1, 0),
            (0, 5),
            (1, 64),
            (1, 134),
            (1, 135),
            (33, 200),
        ] {
            let prefix: Vec<u8> = (0..plen).map(|i| i as u8).collect();
            let data: Vec<u8> = (0..dlen).map(|i| (i ^ 0x5A) as u8).collect();
            let mut concat = prefix.clone();
            concat.extend_from_slice(&data);
            assert_eq!(
                keccak256_prefixed(&prefix, &data),
                keccak256(&concat),
                "prefix {plen} + data {dlen}"
            );
        }
    }

    #[test]
    fn distinct_inputs_distinct_digests() {
        assert_ne!(keccak256(b"wedge"), keccak256(b"block"));
        assert_ne!(keccak256(b"a"), keccak256(b"a\0"));
    }
}
