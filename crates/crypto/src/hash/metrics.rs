//! Process-wide digest-work counters.
//!
//! Relaxed atomics incremented by the Keccak one-shot and ×4 batch paths;
//! `wedge-core` samples them into `NodeStats` (the same pattern as
//! `wedge_pool::oversubscription_avoided`). Relaxed ordering is fine: these
//! are monotone telemetry counters, never synchronization.

use std::sync::atomic::{AtomicU64, Ordering};

static HASHES_COMPUTED: AtomicU64 = AtomicU64::new(0);
static HASH_BATCHES_X4: AtomicU64 = AtomicU64::new(0);

/// Records `n` Keccak-256 digests completed (any path).
#[inline]
pub(crate) fn count_hashes(n: u64) {
    HASHES_COMPUTED.fetch_add(n, Ordering::Relaxed);
}

/// Records one ×4 lane-interleaved permutation group (four digests).
#[inline]
pub(crate) fn count_x4_batch() {
    HASH_BATCHES_X4.fetch_add(1, Ordering::Relaxed);
}

/// Total Keccak-256 digests computed by this process (all paths).
pub fn hashes_computed() -> u64 {
    HASHES_COMPUTED.load(Ordering::Relaxed)
}

/// Total ×4 lane-interleaved groups executed (each covers four digests).
pub fn hash_batches_x4() -> u64 {
    HASH_BATCHES_X4.load(Ordering::Relaxed)
}
