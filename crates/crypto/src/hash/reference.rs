//! Frozen pre-PR scalar Keccak-256 — the differential-testing baseline.
//!
//! This module preserves, byte for byte, the loop-based single-state sponge
//! that shipped before the hashing-wall rework (the ×4 lane-interleaved
//! permutation and the fused single-permutation fast path in
//! [`super::keccak`] / [`super::keccak4`]). Every optimized path is pinned
//! against it by `crates/crypto/tests/hash_differential.rs`: same digest for
//! every input length, every rate boundary, every lane position, every batch
//! shape. **Do not optimize this module** — its value is that it stays the
//! slow, obviously-correct original. (The L1 indexing audit covers the
//! rebuilt `keccak*` modules, not this frozen text — see
//! `crates/xtask/src/lib.rs`.)

/// Round constants for Keccak-f[1600].
const RC: [u64; 24] = [
    0x0000000000000001,
    0x0000000000008082,
    0x800000000000808a,
    0x8000000080008000,
    0x000000000000808b,
    0x0000000080000001,
    0x8000000080008081,
    0x8000000000008009,
    0x000000000000008a,
    0x0000000000000088,
    0x0000000080008009,
    0x000000008000000a,
    0x000000008000808b,
    0x800000000000008b,
    0x8000000000008089,
    0x8000000000008003,
    0x8000000000008002,
    0x8000000000000080,
    0x000000000000800a,
    0x800000008000000a,
    0x8000000080008081,
    0x8000000000008080,
    0x0000000080000001,
    0x8000000080008008,
];

/// Rotation offsets applied during the rho step, in pi-permutation order.
const RHO: [u32; 24] = [
    1, 3, 6, 10, 15, 21, 28, 36, 45, 55, 2, 14, 27, 41, 56, 8, 25, 43, 62, 18, 39, 61, 20, 44,
];

/// Lane destination indices for the pi step.
const PI: [usize; 24] = [
    10, 7, 11, 17, 18, 3, 5, 16, 8, 21, 24, 4, 15, 23, 19, 13, 12, 2, 20, 14, 22, 9, 6, 1,
];

/// Rate in bytes for 256-bit output: (1600 - 2*256) / 8.
const RATE: usize = 136;

/// Applies the Keccak-f[1600] permutation in place (loop-based original).
fn keccak_f(state: &mut [u64; 25]) {
    for rc in RC {
        // Theta.
        let mut c = [0u64; 5];
        for x in 0..5 {
            c[x] = state[x] ^ state[x + 5] ^ state[x + 10] ^ state[x + 15] ^ state[x + 20];
        }
        for x in 0..5 {
            let d = c[(x + 4) % 5] ^ c[(x + 1) % 5].rotate_left(1);
            for y in 0..5 {
                state[x + 5 * y] ^= d;
            }
        }
        // Rho and pi fused: walk the pi cycle rotating as we go.
        let mut last = state[1];
        for i in 0..24 {
            let j = PI[i];
            let tmp = state[j];
            state[j] = last.rotate_left(RHO[i]);
            last = tmp;
        }
        // Chi.
        for y in 0..5 {
            let mut row = [0u64; 5];
            row.copy_from_slice(&state[5 * y..5 * y + 5]);
            for x in 0..5 {
                state[x + 5 * y] = row[x] ^ (!row[(x + 1) % 5] & row[(x + 2) % 5]);
            }
        }
        // Iota.
        state[0] ^= rc;
    }
}

/// The frozen streaming Keccak-256 hasher (pre-PR incremental sponge).
#[derive(Clone)]
pub struct Keccak256 {
    state: [u64; 25],
    /// Bytes buffered toward the next full rate block.
    buf: [u8; RATE],
    buf_len: usize,
}

impl Default for Keccak256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Keccak256 {
    /// Creates an empty hasher.
    pub fn new() -> Self {
        Keccak256 {
            state: [0; 25],
            buf: [0; RATE],
            buf_len: 0,
        }
    }

    /// Absorbs `data`.
    pub fn update(&mut self, mut data: &[u8]) {
        if self.buf_len > 0 {
            let take = (RATE - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == RATE {
                let block = self.buf;
                self.absorb_block(&block);
                self.buf_len = 0;
            }
        }
        while data.len() >= RATE {
            let (block, rest) = data.split_at(RATE);
            let mut arr = [0u8; RATE];
            arr.copy_from_slice(block);
            self.absorb_block(&arr);
            data = rest;
        }
        if !data.is_empty() {
            self.buf[..data.len()].copy_from_slice(data);
            self.buf_len = data.len();
        }
    }

    /// XORs a full rate block into the state and permutes.
    fn absorb_block(&mut self, block: &[u8; RATE]) {
        for (i, chunk) in block.chunks_exact(8).enumerate() {
            let mut lane = [0u8; 8];
            lane.copy_from_slice(chunk);
            self.state[i] ^= u64::from_le_bytes(lane);
        }
        keccak_f(&mut self.state);
    }

    /// Finishes the hash and returns the 32-byte digest.
    pub fn finalize(mut self) -> [u8; 32] {
        // Multi-rate padding with the legacy Keccak domain bit (0x01).
        let mut block = [0u8; RATE];
        block[..self.buf_len].copy_from_slice(&self.buf[..self.buf_len]);
        block[self.buf_len] ^= 0x01;
        block[RATE - 1] ^= 0x80;
        self.absorb_block(&block);
        let mut out = [0u8; 32];
        for i in 0..4 {
            out[i * 8..i * 8 + 8].copy_from_slice(&self.state[i].to_le_bytes());
        }
        out
    }

    /// One-shot convenience digest.
    pub fn digest(data: &[u8]) -> [u8; 32] {
        let mut h = Keccak256::new();
        h.update(data);
        h.finalize()
    }
}

/// One-shot Keccak-256 of `data` through the frozen scalar sponge.
pub fn keccak256(data: &[u8]) -> [u8; 32] {
    Keccak256::digest(data)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn frozen_empty_vector() {
        assert_eq!(
            hex(&keccak256(b"")),
            "c5d2460186f7233c927e7db2dcc703c0e500b653ca82273b7bfad8045d85a470"
        );
    }

    #[test]
    fn frozen_abc_vector() {
        assert_eq!(
            hex(&keccak256(b"abc")),
            "4e03657aea45a94fc7d47ba826c8d667c0d1e6e33a64a036ec44f58fa12d6c45"
        );
    }
}
