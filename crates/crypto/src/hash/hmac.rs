//! HMAC-SHA256 (RFC 2104), used by the RFC 6979 deterministic ECDSA nonce
//! derivation.

use super::sha256::Sha256;

/// Block size of SHA-256 in bytes.
const BLOCK: usize = 64;

/// Computes `HMAC-SHA256(key, message)`.
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> [u8; 32] {
    let mut mac = HmacSha256::new(key);
    mac.update(message);
    mac.finalize()
}

/// Streaming HMAC-SHA256.
#[derive(Clone)]
pub struct HmacSha256 {
    inner: Sha256,
    /// Key XORed with the opad, kept for the outer pass.
    opad_key: [u8; BLOCK],
}

impl HmacSha256 {
    /// Creates a MAC keyed with `key` (any length; hashed if over one block).
    pub fn new(key: &[u8]) -> Self {
        let mut k = [0u8; BLOCK];
        if key.len() > BLOCK {
            k[..32].copy_from_slice(&Sha256::digest(key));
        } else {
            k[..key.len()].copy_from_slice(key);
        }
        let mut ipad = [0u8; BLOCK];
        let mut opad = [0u8; BLOCK];
        for i in 0..BLOCK {
            ipad[i] = k[i] ^ 0x36;
            opad[i] = k[i] ^ 0x5c;
        }
        let mut inner = Sha256::new();
        inner.update(&ipad);
        HmacSha256 {
            inner,
            opad_key: opad,
        }
    }

    /// Absorbs message bytes.
    pub fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    /// Finishes and returns the 32-byte tag.
    pub fn finalize(self) -> [u8; 32] {
        let inner_digest = self.inner.finalize();
        let mut outer = Sha256::new();
        outer.update(&self.opad_key);
        outer.update(&inner_digest);
        outer.finalize()
    }

    /// Finishes and compares against an expected tag in constant time.
    ///
    /// Always prefer this over `finalize()` + `==`: slice equality
    /// short-circuits and leaks how long a prefix of the tag matched.
    #[must_use]
    pub fn verify(self, expected_tag: &[u8; 32]) -> bool {
        crate::ct::ct_eq(&self.finalize(), expected_tag)
    }
}

/// One-shot constant-time verification of `HMAC-SHA256(key, message)`.
#[must_use]
pub fn hmac_sha256_verify(key: &[u8], message: &[u8], expected_tag: &[u8; 32]) -> bool {
    let mut mac = HmacSha256::new(key);
    mac.update(message);
    mac.verify(expected_tag)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn rfc4231_case_1() {
        let key = [0x0b; 20];
        let tag = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            hex(&tag),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case_2() {
        let tag = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            hex(&tag),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case_3() {
        let key = [0xaa; 20];
        let data = [0xdd; 50];
        let tag = hmac_sha256(&key, &data);
        assert_eq!(
            hex(&tag),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn long_key_is_hashed() {
        // RFC 4231 case 6: 131-byte key, exercised through the key > block
        // path.
        let key = [0xaa; 131];
        let tag = hmac_sha256(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            hex(&tag),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn streaming_matches_oneshot() {
        let key = b"wedgeblock";
        let msg: Vec<u8> = (0..200u8).collect();
        let mut mac = HmacSha256::new(key);
        mac.update(&msg[..77]);
        mac.update(&msg[77..]);
        assert_eq!(mac.finalize(), hmac_sha256(key, &msg));
    }
}
