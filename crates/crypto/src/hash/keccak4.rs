//! ×4 lane-interleaved Keccak-256.
//!
//! The 25-lane Keccak-f[1600] state is widened to `[u64; 4]` per lane so
//! one pass of theta/rho/pi/chi/iota advances **four independent hashes**
//! at once. Every step is a lane-wise XOR/rotate/AND-NOT over the four
//! slots — straight-line safe Rust the compiler autovectorizes (two 128-bit
//! ops per lane op on baseline SSE2, one 256-bit op with AVX2) — and, even
//! without wide registers, four independent dependency chains fill the
//! scalar ALU pipes that a single-state sponge leaves idle.
//!
//! Byte-identity with the scalar path (and therefore with the frozen
//! [`super::reference`] baseline) is proven by
//! `crates/crypto/tests/hash_differential.rs` across lane positions, rate
//! boundaries, and ragged batch tails.
//!
//! Two entry tiers:
//!
//! * [`keccak256_fixed_x4`] / [`keccak256_x4_prefixed`] — four messages of
//!   equal padded block count (the Merkle ×4 node fold hits this with four
//!   65-byte sibling-pair preimages: one permutation, four digests);
//! * [`keccak256_batch`] / [`keccak256_batch_prefixed`] — arbitrary mixed
//!   batches. Inputs are bucketed by padded block count so each group of
//!   four absorbs in lockstep; remainders take the scalar one-shot path.
//!   Output order always matches input order.

use super::keccak::{keccak256_prefixed, RATE, RC};
use super::{metrics, Hash32};

/// Four interleaved u64 lanes — one per in-flight hash.
type L4 = [u64; 4];

#[inline(always)]
fn xor4(a: L4, b: L4) -> L4 {
    [a[0] ^ b[0], a[1] ^ b[1], a[2] ^ b[2], a[3] ^ b[3]]
}

#[inline(always)]
fn xor4_assign(a: &mut L4, b: L4) {
    a[0] ^= b[0];
    a[1] ^= b[1];
    a[2] ^= b[2];
    a[3] ^= b[3];
}

#[inline(always)]
fn rotl4(a: L4, r: u32) -> L4 {
    [
        a[0].rotate_left(r),
        a[1].rotate_left(r),
        a[2].rotate_left(r),
        a[3].rotate_left(r),
    ]
}

/// Chi combine: `a ^ (!b & c)`, lane-wise over the four slots.
#[inline(always)]
fn chi4(a: L4, b: L4, c: L4) -> L4 {
    [
        a[0] ^ (!b[0] & c[0]),
        a[1] ^ (!b[1] & c[1]),
        a[2] ^ (!b[2] & c[2]),
        a[3] ^ (!b[3] & c[3]),
    ]
}

/// Keccak-f[1600] over four interleaved states, mirroring the unrolled
/// scalar `keccak::keccak_f` step for step.
fn keccak_f4(state: &mut [L4; 25]) {
    for rc in RC {
        // Theta.
        let mut c = [[0u64; 4]; 5];
        for row in state.chunks_exact(5) {
            xor4_assign(&mut c[0], row[0]);
            xor4_assign(&mut c[1], row[1]);
            xor4_assign(&mut c[2], row[2]);
            xor4_assign(&mut c[3], row[3]);
            xor4_assign(&mut c[4], row[4]);
        }
        let d = [
            xor4(c[4], rotl4(c[1], 1)),
            xor4(c[0], rotl4(c[2], 1)),
            xor4(c[1], rotl4(c[3], 1)),
            xor4(c[2], rotl4(c[4], 1)),
            xor4(c[3], rotl4(c[0], 1)),
        ];
        for row in state.chunks_exact_mut(5) {
            xor4_assign(&mut row[0], d[0]);
            xor4_assign(&mut row[1], d[1]);
            xor4_assign(&mut row[2], d[2]);
            xor4_assign(&mut row[3], d[3]);
            xor4_assign(&mut row[4], d[4]);
        }
        // Rho and pi fused, same literal walk as the scalar permutation.
        let mut last = state[1];
        let t = state[10];
        state[10] = rotl4(last, 1);
        last = t;
        let t = state[7];
        state[7] = rotl4(last, 3);
        last = t;
        let t = state[11];
        state[11] = rotl4(last, 6);
        last = t;
        let t = state[17];
        state[17] = rotl4(last, 10);
        last = t;
        let t = state[18];
        state[18] = rotl4(last, 15);
        last = t;
        let t = state[3];
        state[3] = rotl4(last, 21);
        last = t;
        let t = state[5];
        state[5] = rotl4(last, 28);
        last = t;
        let t = state[16];
        state[16] = rotl4(last, 36);
        last = t;
        let t = state[8];
        state[8] = rotl4(last, 45);
        last = t;
        let t = state[21];
        state[21] = rotl4(last, 55);
        last = t;
        let t = state[24];
        state[24] = rotl4(last, 2);
        last = t;
        let t = state[4];
        state[4] = rotl4(last, 14);
        last = t;
        let t = state[15];
        state[15] = rotl4(last, 27);
        last = t;
        let t = state[23];
        state[23] = rotl4(last, 41);
        last = t;
        let t = state[19];
        state[19] = rotl4(last, 56);
        last = t;
        let t = state[13];
        state[13] = rotl4(last, 8);
        last = t;
        let t = state[12];
        state[12] = rotl4(last, 25);
        last = t;
        let t = state[2];
        state[2] = rotl4(last, 43);
        last = t;
        let t = state[20];
        state[20] = rotl4(last, 62);
        last = t;
        let t = state[14];
        state[14] = rotl4(last, 18);
        last = t;
        let t = state[22];
        state[22] = rotl4(last, 39);
        last = t;
        let t = state[9];
        state[9] = rotl4(last, 61);
        last = t;
        let t = state[6];
        state[6] = rotl4(last, 20);
        last = t;
        state[1] = rotl4(last, 44);
        // Chi.
        for row in state.chunks_exact_mut(5) {
            let a = [row[0], row[1], row[2], row[3], row[4]];
            row[0] = chi4(a[0], a[1], a[2]);
            row[1] = chi4(a[1], a[2], a[3]);
            row[2] = chi4(a[2], a[3], a[4]);
            row[3] = chi4(a[3], a[4], a[0]);
            row[4] = chi4(a[4], a[0], a[1]);
        }
        // Iota.
        xor4_assign(&mut state[0], [rc; 4]);
    }
}

/// Decodes one rate block into its 17 little-endian u64 lanes.
fn lanes_of(block: &[u8; RATE]) -> [u64; 17] {
    let mut lanes = [0u64; 17];
    for (lane, chunk) in lanes.iter_mut().zip(block.chunks_exact(8)) {
        let mut bytes = [0u8; 8];
        bytes.copy_from_slice(chunk);
        *lane = u64::from_le_bytes(bytes);
    }
    lanes
}

/// XORs four rate blocks (one per slot) into the interleaved state and
/// permutes.
fn absorb4(state: &mut [L4; 25], blocks: &[[u8; RATE]; 4]) {
    let l0 = lanes_of(&blocks[0]);
    let l1 = lanes_of(&blocks[1]);
    let l2 = lanes_of(&blocks[2]);
    let l3 = lanes_of(&blocks[3]);
    // Arrays iterate by value; the zip stops after the 17 rate lanes,
    // leaving the capacity lanes untouched.
    for ((((lane, a), b), c), d) in state.iter_mut().zip(l0).zip(l1).zip(l2).zip(l3) {
        lane[0] ^= a;
        lane[1] ^= b;
        lane[2] ^= c;
        lane[3] ^= d;
    }
    keccak_f4(state);
}

/// Extracts the four 32-byte digests from the interleaved state.
fn squeeze4(state: &[L4; 25]) -> [[u8; 32]; 4] {
    let top = [state[0], state[1], state[2], state[3]];
    let mut out = [[0u8; 32]; 4];
    for (slot, digest) in out.iter_mut().enumerate() {
        for (chunk, lane) in digest.chunks_exact_mut(8).zip(top.iter()) {
            let v = match slot {
                0 => lane[0],
                1 => lane[1],
                2 => lane[2],
                _ => lane[3],
            };
            chunk.copy_from_slice(&v.to_le_bytes());
        }
    }
    out
}

/// Number of rate blocks the padded message `prefix ++ data` occupies.
/// Multi-rate padding always adds at least one bit, so an exact multiple
/// of the rate spills a full extra block.
#[inline]
fn padded_blocks(total_len: usize) -> usize {
    total_len / RATE + 1
}

/// Writes block `block_idx` of the padded logical message `prefix ++ data`
/// into `out`, including the 0x01/0x80 multi-rate padding bytes when this
/// is the final block.
fn fill_block(out: &mut [u8; RATE], prefix: &[u8], data: &[u8], block_idx: usize) {
    *out = [0u8; RATE];
    let start = block_idx * RATE;
    let total = prefix.len() + data.len();
    // Overlap of [start, start+RATE) with the prefix bytes.
    let mut off = 0usize;
    if let Some(src) = prefix.get(start..) {
        let take = src.len().min(RATE);
        if let (Some(s), Some(d)) = (src.get(..take), out.get_mut(..take)) {
            d.copy_from_slice(s);
        }
        off = take;
    }
    // Then the data bytes that fall in this block.
    if off < RATE {
        let data_start = (start + off).saturating_sub(prefix.len());
        if let Some(src) = data.get(data_start..) {
            let take = src.len().min(RATE - off);
            if let (Some(s), Some(d)) = (src.get(..take), out.get_mut(off..off + take)) {
                d.copy_from_slice(s);
            }
        }
    }
    // Both padding bytes live in the final block (index total / RATE):
    // 0x01 right after the message, 0x80 in the last byte. They coincide
    // (0x81) when the message ends at offset 135 of the block.
    if block_idx == total / RATE {
        if let Some(pad) = out.get_mut(total % RATE) {
            *pad ^= 0x01;
        }
        out[135] ^= 0x80;
    }
}

/// Hashes four logical messages `prefix_i ++ data_i` that pad to the same
/// number of rate blocks, absorbing in lockstep. Callers must guarantee
/// equal block counts (the public entry points bucket for it).
fn x4_same_blocks(msgs: &[(&[u8], &[u8]); 4]) -> [[u8; 32]; 4] {
    let nblocks = padded_blocks(msgs[0].0.len() + msgs[0].1.len());
    debug_assert!(msgs
        .iter()
        .all(|(p, d)| padded_blocks(p.len() + d.len()) == nblocks));
    let mut state = [[0u64; 4]; 25];
    for block_idx in 0..nblocks {
        let mut blocks = [[0u8; RATE]; 4];
        for (block, (prefix, data)) in blocks.iter_mut().zip(msgs.iter()) {
            fill_block(block, prefix, data, block_idx);
        }
        absorb4(&mut state, &blocks);
    }
    metrics::count_x4_batch();
    metrics::count_hashes(4);
    squeeze4(&state)
}

/// Keccak-256 of four messages via the interleaved permutation.
///
/// All four must pad to the same number of rate blocks (always true for
/// equal lengths — e.g. four 64-byte Merkle sibling pairs, which cost one
/// single permutation total). Mixed block counts fall back to four scalar
/// one-shots, so the function is total and always byte-identical to
/// [`super::keccak256`] per message.
pub fn keccak256_fixed_x4(msgs: [&[u8]; 4]) -> [[u8; 32]; 4] {
    keccak256_x4_prefixed(&[], msgs)
}

/// Like [`keccak256_fixed_x4`], hashing `prefix ++ msgs[i]` for each slot
/// without materializing the concatenations (the domain-tag shape used by
/// Merkle leaf/node hashing).
pub fn keccak256_x4_prefixed(prefix: &[u8], msgs: [&[u8]; 4]) -> [[u8; 32]; 4] {
    let [m0, m1, m2, m3] = msgs;
    let nb = padded_blocks(prefix.len() + m0.len());
    if padded_blocks(prefix.len() + m1.len()) == nb
        && padded_blocks(prefix.len() + m2.len()) == nb
        && padded_blocks(prefix.len() + m3.len()) == nb
    {
        x4_same_blocks(&[(prefix, m0), (prefix, m1), (prefix, m2), (prefix, m3)])
    } else {
        [
            keccak256_prefixed(prefix, m0),
            keccak256_prefixed(prefix, m1),
            keccak256_prefixed(prefix, m2),
            keccak256_prefixed(prefix, m3),
        ]
    }
}

/// Keccak-256 of every input, ×4-interleaved where possible.
///
/// Output order matches input order. Internally the inputs are bucketed by
/// padded block count so each group of four absorbs in lockstep; the
/// (≤ 3 per bucket) remainders run the scalar one-shot path. Byte-identical
/// to calling [`super::keccak256`] on each input.
pub fn keccak256_batch(inputs: &[&[u8]]) -> Vec<Hash32> {
    keccak256_batch_prefixed(&[], inputs)
}

/// Like [`keccak256_batch`], hashing the logical message `prefix ++ input`
/// for every input (shared domain tag).
pub fn keccak256_batch_prefixed(prefix: &[u8], inputs: &[&[u8]]) -> Vec<Hash32> {
    let mut out = vec![Hash32::ZERO; inputs.len()];
    let input_at = |i: u32| -> &[u8] { inputs.get(i as usize).copied().unwrap_or(&[]) };
    let blocks_at = |i: u32| -> usize { padded_blocks(prefix.len() + input_at(i).len()) };

    // Bucket input indices by padded block count; the sort is stable so
    // equal-size runs keep input order (cache-friendly for the common
    // uniform case, where this is a no-op).
    let mut order: Vec<u32> = (0..inputs.len() as u32).collect();
    order.sort_by_key(|&i| blocks_at(i));

    let mut rest: &[u32] = &order;
    while let Some((&first, _)) = rest.split_first() {
        let nb = blocks_at(first);
        let run_len = rest.iter().take_while(|&&i| blocks_at(i) == nb).count();
        let (run, tail) = rest.split_at(run_len);
        rest = tail;
        let mut quads = run.chunks_exact(4);
        for quad in &mut quads {
            if let [a, b, c, d] = *quad {
                let digests = x4_same_blocks(&[
                    (prefix, input_at(a)),
                    (prefix, input_at(b)),
                    (prefix, input_at(c)),
                    (prefix, input_at(d)),
                ]);
                for (&idx, digest) in quad.iter().zip(digests.iter()) {
                    if let Some(slot) = out.get_mut(idx as usize) {
                        *slot = Hash32(*digest);
                    }
                }
            }
        }
        for &idx in quads.remainder() {
            if let Some(slot) = out.get_mut(idx as usize) {
                *slot = Hash32(keccak256_prefixed(prefix, input_at(idx)));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::super::keccak256;
    use super::*;

    #[test]
    fn x4_matches_scalar_equal_lengths() {
        let msgs: [&[u8]; 4] = [b"alpha", b"bravo", b"candy", b"delta"];
        let got = keccak256_fixed_x4(msgs);
        for (m, d) in msgs.iter().zip(got.iter()) {
            assert_eq!(*d, keccak256(m));
        }
    }

    #[test]
    fn x4_matches_scalar_multi_block_and_mixed() {
        let long_a = vec![0x11u8; 300];
        let long_b = vec![0x22u8; 407];
        let long_c = vec![0x33u8; 272];
        let long_d = vec![0x44u8; 273];
        // 300 and 407 both pad to 3 blocks; 272 pads to 3, 273 to 3 — all
        // lockstep. Then a mixed set forces the scalar fallback.
        let same: [&[u8]; 4] = [&long_a, &long_b, &long_c, &long_d];
        for (m, d) in same.iter().zip(keccak256_fixed_x4(same).iter()) {
            assert_eq!(*d, keccak256(m));
        }
        let mixed: [&[u8]; 4] = [&long_a, b"tiny", &long_b, b""];
        for (m, d) in mixed.iter().zip(keccak256_fixed_x4(mixed).iter()) {
            assert_eq!(*d, keccak256(m));
        }
    }

    #[test]
    fn batch_matches_sequential_with_ragged_tail() {
        let inputs: Vec<Vec<u8>> = (0..11usize)
            .map(|i| (0..i * 37).map(|b| (b % 256) as u8).collect())
            .collect();
        let refs: Vec<&[u8]> = inputs.iter().map(|v| v.as_slice()).collect();
        let got = keccak256_batch(&refs);
        assert_eq!(got.len(), refs.len());
        for (input, digest) in refs.iter().zip(got.iter()) {
            assert_eq!(digest.0, keccak256(input));
        }
    }

    #[test]
    fn batch_prefixed_matches_concatenation() {
        let prefix = [0x01u8];
        let inputs: Vec<Vec<u8>> = (0..9usize).map(|i| vec![i as u8; i * 31]).collect();
        let refs: Vec<&[u8]> = inputs.iter().map(|v| v.as_slice()).collect();
        for (input, digest) in refs.iter().zip(keccak256_batch_prefixed(&prefix, &refs)) {
            let mut concat = prefix.to_vec();
            concat.extend_from_slice(input);
            assert_eq!(digest.0, keccak256(&concat));
        }
    }

    #[test]
    fn batch_empty_and_single() {
        assert!(keccak256_batch(&[]).is_empty());
        let one = keccak256_batch(&[b"solo".as_slice()]);
        assert_eq!(one.len(), 1);
        assert_eq!(one.first().map(|h| h.0), Some(keccak256(b"solo")));
    }
}
