//! # wedge-crypto
//!
//! From-scratch cryptographic substrate for the WedgeBlock reproduction:
//!
//! - **Hashes**: Keccak-256 (Ethereum flavour), SHA-256, HMAC-SHA256.
//! - **secp256k1**: base-field and scalar arithmetic over hand-rolled 256-bit
//!   integers, Jacobian point operations, windowed scalar multiplication.
//! - **ECDSA**: RFC 6979 deterministic signing, verification, and — crucially
//!   for the Punishment contract's `recoverSigner` — public-key recovery.
//! - **Keys**: secret/public keypairs and Ethereum-style 20-byte addresses.
//! - **Batch helpers**: parallel signing/verification mirroring the paper's
//!   multi-core prototype.
//!
//! Nothing here depends on external crypto crates; every primitive is
//! implemented in this crate and validated against published test vectors
//! (FIPS 180-4, RFC 4231, the Bitcoin-ecosystem RFC 6979 secp256k1 vectors)
//! plus property-based tests.
//!
//! # Security scope
//!
//! This implementation targets *functional* correctness for a research
//! reproduction. It is **not** hardened against side channels: scalar
//! multiplication is not constant-time, and secrets are not zeroized on
//! drop. Do not use it to protect real funds.
//!
//! ```
//! use wedge_crypto::{Identity, recover_message_signer};
//!
//! let node = Identity::from_seed(b"offchain-node");
//! let sig = node.sign(b"log entry digest");
//! assert_eq!(recover_message_signer(b"log entry digest", &sig).unwrap(), node.address());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ct;
pub mod ecdsa;
pub mod error;
pub mod hash;
pub mod keys;
pub mod secp256k1;
pub mod signer;
pub mod uint;

pub use ct::ct_eq;
pub use ecdsa::{
    recover_address, recover_prehashed, sign_prehashed, sign_prehashed_batch, verify_prehashed,
    verify_prehashed_batch, verify_prehashed_with_table, Signature,
};
pub use error::CryptoError;
pub use hash::{
    keccak256, keccak256_batch, keccak256_batch_prefixed, keccak256_fixed, keccak256_fixed_x4,
    keccak256_prefixed, keccak256_x4_prefixed, sha256, Hash32,
};
pub use keys::{Address, Keypair, PublicKey, SecretKey};
pub use signer::{
    recover_message_signer, sign_batch_parallel, sign_message, verify_batch_parallel,
    verify_message, Identity,
};
