//! Error type for cryptographic operations.

use std::fmt;

/// Errors produced by key handling, signing, verification and recovery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CryptoError {
    /// The secret key is zero or not less than the group order.
    InvalidSecretKey,
    /// The encoded public key is not a valid curve point.
    InvalidPublicKey,
    /// A signature component (`r` or `s`) is zero or not less than the
    /// group order, or the recovery id is out of range.
    InvalidSignature,
    /// Signature verification failed (the signature does not match the
    /// message/key).
    VerificationFailed,
    /// Public-key recovery failed (no valid point for the given signature).
    RecoveryFailed,
    /// Input had an unexpected length.
    InvalidLength {
        /// Expected byte length.
        expected: usize,
        /// Actual byte length.
        actual: usize,
    },
}

impl fmt::Display for CryptoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CryptoError::InvalidSecretKey => write!(f, "invalid secret key"),
            CryptoError::InvalidPublicKey => write!(f, "invalid public key encoding"),
            CryptoError::InvalidSignature => write!(f, "malformed signature"),
            CryptoError::VerificationFailed => write!(f, "signature verification failed"),
            CryptoError::RecoveryFailed => write!(f, "public key recovery failed"),
            CryptoError::InvalidLength { expected, actual } => {
                write!(f, "invalid input length: expected {expected}, got {actual}")
            }
        }
    }
}

impl std::error::Error for CryptoError {}
