//! Key material and Ethereum-style addresses.

use crate::error::CryptoError;
use crate::hash::keccak256;
use crate::secp256k1::{mul_generator, Affine, Scalar};

/// A secp256k1 secret key (a non-zero scalar).
///
/// Equality is constant-time: see the manual [`PartialEq`] below.
#[derive(Clone, Copy)]
pub struct SecretKey(pub(crate) Scalar);

impl PartialEq for SecretKey {
    fn eq(&self, other: &SecretKey) -> bool {
        // A derived implementation would short-circuit limb by limb and
        // leak how much of the key matched; compare via ct_eq instead.
        crate::ct::ct_eq(&self.to_bytes(), &other.to_bytes())
    }
}

impl Eq for SecretKey {}

/// A secp256k1 public key (a non-identity curve point).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PublicKey(pub(crate) Affine);

/// A 20-byte account address, derived Ethereum-style as the last 20 bytes of
/// `keccak256(x || y)` of the uncompressed public key.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Address(pub [u8; 20]);

impl SecretKey {
    /// Builds a secret key from 32 big-endian bytes.
    ///
    /// Rejects zero and values >= the group order.
    pub fn from_bytes(bytes: &[u8; 32]) -> Result<SecretKey, CryptoError> {
        let scalar = Scalar::from_be_bytes_checked(bytes).ok_or(CryptoError::InvalidSecretKey)?;
        if scalar.is_zero() {
            return Err(CryptoError::InvalidSecretKey);
        }
        Ok(SecretKey(scalar))
    }

    /// Derives a secret key deterministically from a seed label.
    ///
    /// Convenient for tests and reproducible simulations: hashes the label
    /// (with a retry counter, in the cosmically unlikely event of an invalid
    /// scalar) until a valid key is produced.
    pub fn from_seed(label: &[u8]) -> SecretKey {
        let mut counter: u32 = 0;
        loop {
            let mut input = Vec::with_capacity(label.len() + 4);
            input.extend_from_slice(label);
            input.extend_from_slice(&counter.to_be_bytes());
            let digest = keccak256(&input);
            if let Ok(sk) = SecretKey::from_bytes(&digest) {
                return sk;
            }
            counter += 1;
        }
    }

    /// Generates a random secret key from the supplied entropy bytes.
    pub fn from_entropy(entropy: &[u8; 32]) -> Result<SecretKey, CryptoError> {
        SecretKey::from_bytes(entropy)
    }

    /// Serializes to 32 big-endian bytes.
    pub fn to_bytes(&self) -> [u8; 32] {
        self.0.to_be_bytes()
    }

    /// Computes the corresponding public key.
    pub fn public_key(&self) -> PublicKey {
        PublicKey(mul_generator(&self.0).to_affine())
    }

    /// The scalar view (crate-internal use by ECDSA).
    pub(crate) fn scalar(&self) -> &Scalar {
        &self.0
    }
}

impl core::fmt::Debug for SecretKey {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        // Never print key material.
        write!(f, "SecretKey(…)")
    }
}

impl PublicKey {
    /// Wraps an affine point; rejects the identity.
    pub fn from_point(point: Affine) -> Result<PublicKey, CryptoError> {
        if point.infinity || !point.is_on_curve() {
            return Err(CryptoError::InvalidPublicKey);
        }
        Ok(PublicKey(point))
    }

    /// Parses a 64-byte uncompressed encoding (`x || y`).
    pub fn from_bytes(bytes: &[u8; 64]) -> Result<PublicKey, CryptoError> {
        let point = Affine::from_bytes_uncompressed(bytes).ok_or(CryptoError::InvalidPublicKey)?;
        PublicKey::from_point(point)
    }

    /// Serializes to the 64-byte uncompressed encoding.
    pub fn to_bytes(&self) -> [u8; 64] {
        self.0.to_bytes_uncompressed()
    }

    /// Serializes to the 33-byte SEC1 compressed encoding (`02/03 || x`).
    pub fn to_bytes_compressed(&self) -> [u8; 33] {
        self.0.to_bytes_compressed()
    }

    /// Parses the 33-byte compressed encoding.
    pub fn from_bytes_compressed(bytes: &[u8; 33]) -> Result<PublicKey, CryptoError> {
        let point = Affine::from_bytes_compressed(bytes).ok_or(CryptoError::InvalidPublicKey)?;
        PublicKey::from_point(point)
    }

    /// The underlying curve point.
    pub fn point(&self) -> &Affine {
        &self.0
    }

    /// Derives the Ethereum-style address.
    pub fn address(&self) -> Address {
        let digest = keccak256(&self.to_bytes());
        let mut addr = [0u8; 20];
        addr.copy_from_slice(&digest[12..]);
        Address(addr)
    }
}

impl Address {
    /// The zero address (used as a burn/None sentinel, as on Ethereum).
    pub const ZERO: Address = Address([0; 20]);

    /// Raw bytes view.
    pub fn as_bytes(&self) -> &[u8; 20] {
        &self.0
    }

    /// Parses a `0x`-prefixed (or bare) 40-nibble hex address.
    pub fn from_hex(s: &str) -> Result<Address, CryptoError> {
        let s = s.strip_prefix("0x").unwrap_or(s);
        if s.len() != 40 {
            return Err(CryptoError::InvalidLength {
                expected: 40,
                actual: s.len(),
            });
        }
        let mut out = [0u8; 20];
        for (i, chunk) in s.as_bytes().chunks_exact(2).enumerate() {
            let hi = (chunk[0] as char).to_digit(16);
            let lo = (chunk[1] as char).to_digit(16);
            match (hi, lo) {
                (Some(h), Some(l)) => out[i] = (h * 16 + l) as u8,
                _ => {
                    return Err(CryptoError::InvalidLength {
                        expected: 40,
                        actual: s.len(),
                    })
                }
            }
        }
        Ok(Address(out))
    }

    /// Lowercase hex with `0x` prefix.
    pub fn to_hex(&self) -> String {
        let hex: String = self.0.iter().map(|b| format!("{b:02x}")).collect();
        format!("0x{hex}")
    }

    /// Abbreviated form for logs (`0x1234…abcd`).
    pub fn short_hex(&self) -> String {
        let h = self.to_hex();
        format!("{}…{}", &h[..6], &h[h.len() - 4..])
    }
}

impl core::fmt::Debug for Address {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "Address({})", self.to_hex())
    }
}

impl core::fmt::Display for Address {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}", self.to_hex())
    }
}

/// A secret/public key pair with its derived address.
#[derive(Clone)]
pub struct Keypair {
    /// The signing key.
    pub secret: SecretKey,
    /// The verification key.
    pub public: PublicKey,
    /// Cached Ethereum-style address of `public`.
    pub address: Address,
}

impl Keypair {
    /// Builds a keypair from a secret key.
    pub fn from_secret(secret: SecretKey) -> Keypair {
        let public = secret.public_key();
        let address = public.address();
        Keypair {
            secret,
            public,
            address,
        }
    }

    /// Deterministic keypair from a seed label (see [`SecretKey::from_seed`]).
    pub fn from_seed(label: &[u8]) -> Keypair {
        Keypair::from_secret(SecretKey::from_seed(label))
    }
}

impl core::fmt::Debug for Keypair {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "Keypair({})", self.address.to_hex())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn secret_key_one_gives_generator() {
        let mut bytes = [0u8; 32];
        bytes[31] = 1;
        let sk = SecretKey::from_bytes(&bytes).unwrap();
        assert_eq!(*sk.public_key().point(), Affine::GENERATOR);
    }

    #[test]
    fn zero_key_rejected() {
        assert_eq!(
            SecretKey::from_bytes(&[0; 32]),
            Err(CryptoError::InvalidSecretKey)
        );
    }

    #[test]
    fn order_key_rejected() {
        let n = crate::secp256k1::scalar::N.to_be_bytes();
        assert_eq!(
            SecretKey::from_bytes(&n),
            Err(CryptoError::InvalidSecretKey)
        );
    }

    #[test]
    fn public_key_roundtrip() {
        let kp = Keypair::from_seed(b"roundtrip");
        let bytes = kp.public.to_bytes();
        assert_eq!(PublicKey::from_bytes(&bytes).unwrap(), kp.public);
    }

    #[test]
    fn invalid_public_key_rejected() {
        assert!(PublicKey::from_bytes(&[1u8; 64]).is_err());
    }

    #[test]
    fn addresses_are_deterministic_and_distinct() {
        let a = Keypair::from_seed(b"alice");
        let a2 = Keypair::from_seed(b"alice");
        let b = Keypair::from_seed(b"bob");
        assert_eq!(a.address, a2.address);
        assert_ne!(a.address, b.address);
    }

    #[test]
    fn address_formatting() {
        let addr = Keypair::from_seed(b"fmt").address;
        let hex = addr.to_hex();
        assert!(hex.starts_with("0x"));
        assert_eq!(hex.len(), 42);
        assert!(addr.short_hex().contains('…'));
    }

    #[test]
    fn compressed_public_key_roundtrip() {
        let kp = Keypair::from_seed(b"compressed");
        let compact = kp.public.to_bytes_compressed();
        assert!(compact[0] == 0x02 || compact[0] == 0x03);
        assert_eq!(
            PublicKey::from_bytes_compressed(&compact).unwrap(),
            kp.public
        );
        assert!(PublicKey::from_bytes_compressed(&[0xFF; 33]).is_err());
    }

    #[test]
    fn address_hex_roundtrip() {
        let addr = Keypair::from_seed(b"hexrt").address;
        assert_eq!(Address::from_hex(&addr.to_hex()).unwrap(), addr);
        // Bare (unprefixed) form also parses.
        assert_eq!(Address::from_hex(&addr.to_hex()[2..]).unwrap(), addr);
        assert!(Address::from_hex("0x1234").is_err());
        assert!(Address::from_hex(&"zz".repeat(20)).is_err());
    }

    #[test]
    fn debug_does_not_leak_secret() {
        let kp = Keypair::from_seed(b"leak");
        assert_eq!(format!("{:?}", kp.secret), "SecretKey(…)");
    }
}
