//! Differential property tests for the hashing-wall rework: every rebuilt
//! Keccak-256 path — the unrolled scalar sponge, the fused
//! single-permutation `keccak256_fixed`, the prefixed one-shot, the ×4
//! lane-interleaved permutation, and the bucketed batch API — is pinned
//! byte-for-byte to the frozen pre-PR implementation in `hash::reference`.
//!
//! The adversarial shapes the issue calls out get dedicated coverage:
//! rate-boundary lengths (135/136/137 — padding in-block, padding spilling
//! into a fresh block, and a two-block message), all four interleave lane
//! positions, and ragged batch tails that force the scalar remainder path.

use proptest::prelude::*;
use wedge_crypto::hash::{
    keccak256, keccak256_batch, keccak256_batch_prefixed, keccak256_fixed, keccak256_fixed_x4,
    keccak256_prefixed, keccak256_x4_prefixed, reference, Keccak256,
};

/// The frozen baseline digest.
fn ref_hash(data: &[u8]) -> [u8; 32] {
    reference::keccak256(data)
}

fn ref_hash_cat(prefix: &[u8], data: &[u8]) -> [u8; 32] {
    let mut concat = prefix.to_vec();
    concat.extend_from_slice(data);
    ref_hash(&concat)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// One-shot digest (auto-routing scalar path) vs frozen reference,
    /// arbitrary lengths up to several rate blocks.
    #[test]
    fn oneshot_matches_reference(data in proptest::collection::vec(any::<u8>(), 0..600)) {
        prop_assert_eq!(keccak256(&data), ref_hash(&data));
    }

    /// The fused fixed path vs frozen reference (including its ≥ rate
    /// fallback).
    #[test]
    fn fixed_matches_reference(data in proptest::collection::vec(any::<u8>(), 0..300)) {
        prop_assert_eq!(keccak256_fixed(&data), ref_hash(&data));
    }

    /// Prefixed one-shot ≡ reference of the concatenation.
    #[test]
    fn prefixed_matches_reference(
        prefix in proptest::collection::vec(any::<u8>(), 0..70),
        data in proptest::collection::vec(any::<u8>(), 0..300),
    ) {
        prop_assert_eq!(keccak256_prefixed(&prefix, &data), ref_hash_cat(&prefix, &data));
    }

    /// Streaming sponge ≡ reference under arbitrary update chunkings.
    #[test]
    fn streaming_matches_reference(
        data in proptest::collection::vec(any::<u8>(), 0..600),
        splits in proptest::collection::vec(0usize..600, 0..6),
    ) {
        let mut cuts: Vec<usize> = splits.iter().map(|s| s % (data.len() + 1)).collect();
        cuts.sort_unstable();
        let mut h = Keccak256::new();
        let mut prev = 0;
        for cut in cuts {
            h.update(&data[prev..cut]);
            prev = cut;
        }
        h.update(&data[prev..]);
        prop_assert_eq!(h.finalize(), ref_hash(&data));
    }

    /// ×4 interleaved (equal block counts by construction: equal lengths)
    /// vs frozen reference, checking every lane slot.
    #[test]
    fn x4_matches_reference_all_lanes(
        len in 0usize..300,
        seeds in (any::<u8>(), any::<u8>(), any::<u8>(), any::<u8>()),
    ) {
        let msgs: Vec<Vec<u8>> = [seeds.0, seeds.1, seeds.2, seeds.3]
            .iter()
            .map(|&s| (0..len).map(|i| s.wrapping_add(i as u8)).collect())
            .collect();
        let got = keccak256_fixed_x4([&msgs[0], &msgs[1], &msgs[2], &msgs[3]]);
        for (lane, (msg, digest)) in msgs.iter().zip(got.iter()).enumerate() {
            prop_assert_eq!(*digest, ref_hash(msg), "lane {}", lane);
        }
    }

    /// ×4 with *different* lengths (mixed block counts exercise the scalar
    /// fallback; same-block different lengths exercise lockstep padding).
    #[test]
    fn x4_mixed_lengths_match_reference(
        lens in (0usize..600, 0usize..600, 0usize..600, 0usize..600),
    ) {
        let msgs: Vec<Vec<u8>> = [lens.0, lens.1, lens.2, lens.3]
            .iter()
            .enumerate()
            .map(|(lane, &len)| (0..len).map(|i| (i * 7 + lane) as u8).collect())
            .collect();
        let got = keccak256_fixed_x4([&msgs[0], &msgs[1], &msgs[2], &msgs[3]]);
        for (msg, digest) in msgs.iter().zip(got.iter()) {
            prop_assert_eq!(*digest, ref_hash(msg));
        }
    }

    /// ×4 prefixed ≡ reference of each concatenation.
    #[test]
    fn x4_prefixed_matches_reference(
        prefix in proptest::collection::vec(any::<u8>(), 0..40),
        lens in (0usize..200, 0usize..200, 0usize..200, 0usize..200),
    ) {
        let msgs: Vec<Vec<u8>> = [lens.0, lens.1, lens.2, lens.3]
            .iter()
            .enumerate()
            .map(|(lane, &len)| (0..len).map(|i| (i ^ lane) as u8).collect())
            .collect();
        let got = keccak256_x4_prefixed(&prefix, [&msgs[0], &msgs[1], &msgs[2], &msgs[3]]);
        for (msg, digest) in msgs.iter().zip(got.iter()) {
            prop_assert_eq!(*digest, ref_hash_cat(&prefix, msg));
        }
    }

    /// Batch ≡ sequential reference digests, arbitrary sizes and counts
    /// (ragged tails: any count not divisible by 4 leaves a scalar
    /// remainder; mixed lengths force block-count bucketing).
    #[test]
    fn batch_matches_reference(
        inputs in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..300),
            0..13,
        ),
    ) {
        let refs: Vec<&[u8]> = inputs.iter().map(|v| v.as_slice()).collect();
        let got = keccak256_batch(&refs);
        prop_assert_eq!(got.len(), refs.len());
        for (input, digest) in refs.iter().zip(got.iter()) {
            prop_assert_eq!(digest.0, ref_hash(input));
        }
    }

    /// Prefixed batch ≡ sequential reference digests of concatenations.
    #[test]
    fn batch_prefixed_matches_reference(
        prefix in proptest::collection::vec(any::<u8>(), 0..3),
        inputs in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..200),
            0..11,
        ),
    ) {
        let refs: Vec<&[u8]> = inputs.iter().map(|v| v.as_slice()).collect();
        let got = keccak256_batch_prefixed(&prefix, &refs);
        prop_assert_eq!(got.len(), refs.len());
        for (input, digest) in refs.iter().zip(got.iter()) {
            prop_assert_eq!(digest.0, ref_hash_cat(&prefix, input));
        }
    }
}

/// Every length from empty through two full rate blocks, deterministic
/// sweep: one-shot, fixed, prefixed, and ×4 all agree with the reference.
#[test]
fn exhaustive_length_sweep_0_to_272() {
    for len in 0..=272usize {
        let data: Vec<u8> = (0..len).map(|i| (i * 131 + 7) as u8).collect();
        let expect = ref_hash(&data);
        assert_eq!(keccak256(&data), expect, "oneshot len {len}");
        assert_eq!(keccak256_fixed(&data), expect, "fixed len {len}");
        let (head, tail) = data.split_at(len / 3);
        assert_eq!(keccak256_prefixed(head, tail), expect, "prefixed len {len}");
        let got = keccak256_fixed_x4([&data, &data, &data, &data]);
        for digest in got.iter() {
            assert_eq!(*digest, expect, "x4 len {len}");
        }
    }
}

/// The rate boundary dead-on: 135 (pad bytes coincide as 0x81), 136
/// (padding spills into a second block), 137 (two-block message).
#[test]
fn rate_boundary_lengths() {
    for len in [134usize, 135, 136, 137, 138, 271, 272, 273] {
        let data = vec![0x5Au8; len];
        let expect = ref_hash(&data);
        assert_eq!(keccak256(&data), expect, "len {len}");
        assert_eq!(keccak256_fixed(&data), expect, "fixed len {len}");
        let got = keccak256_fixed_x4([&data, &data, &data, &data]);
        for digest in got.iter() {
            assert_eq!(*digest, expect, "x4 len {len}");
        }
        let batch = keccak256_batch(&[&data, &data, &data, &data, &data]);
        for digest in batch.iter() {
            assert_eq!(digest.0, expect, "batch len {len}");
        }
    }
}

/// A batch straddling every bucket edge at once: lengths chosen so block
/// counts are 1, 1, 1, 2, 2, 2, 2, 3 — the 1-block bucket has a ragged
/// tail of 3, the 2-block bucket is one exact quad, the 3-block bucket is
/// a singleton.
#[test]
fn batch_bucket_edges() {
    let lens = [0usize, 64, 135, 136, 200, 250, 271, 272];
    let inputs: Vec<Vec<u8>> = lens
        .iter()
        .map(|&len| (0..len).map(|i| (i ^ len) as u8).collect())
        .collect();
    let refs: Vec<&[u8]> = inputs.iter().map(|v| v.as_slice()).collect();
    let got = keccak256_batch(&refs);
    for (input, digest) in refs.iter().zip(got.iter()) {
        assert_eq!(digest.0, ref_hash(input));
    }
}
