//! Known-answer tests for RFC 6979 deterministic ECDSA on secp256k1.
//!
//! These vectors circulate in the Bitcoin ecosystem (originally from the
//! bitcoin-core/libsecp256k1 and python-ecdsa test suites): private key,
//! SHA-256 message hash, and the resulting low-s signature `(r, s)`.

use wedge_crypto::ecdsa::{recover_prehashed, sign_prehashed, verify_prehashed};
use wedge_crypto::hash::sha256;
use wedge_crypto::SecretKey;

fn hex32(s: &str) -> [u8; 32] {
    let mut out = [0u8; 32];
    for i in 0..32 {
        out[i] = u8::from_str_radix(&s[2 * i..2 * i + 2], 16).unwrap();
    }
    out
}

fn check_vector(privkey_hex: &str, message: &str, r_hex: &str, s_hex: &str) {
    let key = SecretKey::from_bytes(&hex32(privkey_hex)).unwrap();
    let digest = sha256(message.as_bytes());
    let sig = sign_prehashed(&key, &digest);
    assert_eq!(
        sig.r.to_u256().to_hex(),
        r_hex.to_lowercase(),
        "r mismatch for message {message:?}"
    );
    assert_eq!(
        sig.s.to_u256().to_hex(),
        s_hex.to_lowercase(),
        "s mismatch for message {message:?}"
    );
    // And of course the signature verifies and recovers.
    verify_prehashed(&key.public_key(), &digest, &sig).unwrap();
    assert_eq!(recover_prehashed(&digest, &sig).unwrap(), key.public_key());
}

#[test]
fn vector_key1_satoshi() {
    // privkey = 1, message = "Satoshi Nakamoto"
    check_vector(
        "0000000000000000000000000000000000000000000000000000000000000001",
        "Satoshi Nakamoto",
        "934b1ea10a4b3c1757e2b0c017d0b6143ce3c9a7e6a4a49860d7a6ab210ee3d8",
        "2442ce9d2b916064108014783e923ec36b49743e2ffa1c4496f01a512aafd9e5",
    );
}

#[test]
fn vector_key1_all_those_moments() {
    // privkey = 1, message = "All those moments will be lost in time, like
    // tears in rain. Time to die..."
    check_vector(
        "0000000000000000000000000000000000000000000000000000000000000001",
        "All those moments will be lost in time, like tears in rain. Time to die...",
        "8600dbd41e348fe5c9465ab92d23e3db8b98b873beecd930736488696438cb6b",
        "547fe64427496db33bf66019dacbf0039c04199abb0122918601db38a72cfc21",
    );
}

#[test]
fn vector_keymax_satoshi() {
    // privkey = n - 1, message = "Satoshi Nakamoto"
    check_vector(
        "fffffffffffffffffffffffffffffffebaaedce6af48a03bbfd25e8cd0364140",
        "Satoshi Nakamoto",
        "fd567d121db66e382991534ada77a6bd3106f0a1098c231e47993447cd6af2d0",
        "6b39cd0eb1bc8603e159ef5c20a5c8ad685a45b06ce9bebed3f153d10d93bed5",
    );
}

#[test]
fn vector_key_alan_turing() {
    // privkey = 0xf8b8af8ce3c7cca5e300d33939540c10d45ce001b8f252bfbc57ba0342904181,
    // message = "Alan Turing"
    check_vector(
        "f8b8af8ce3c7cca5e300d33939540c10d45ce001b8f252bfbc57ba0342904181",
        "Alan Turing",
        "7063ae83e7f62bbb171798131b4a0564b956930092b33b07b395615d9ec7e15c",
        "58dfcc1e00a35e1572f366ffe34ba0fc47db1e7189759b9fb233c5b05ab388ea",
    );
}
