//! Differential property tests: every optimized scalar-multiplication and
//! ECDSA fast path is pinned to the frozen pre-optimization implementation
//! it replaced (`secp256k1::point::reference`, `ecdsa::reference`).
//!
//! These are the proof obligations of the "break the signing wall" change:
//! the comb/wNAF/GLV/batch paths may be faster, but they must be
//! **observationally identical** — same points, byte-identical signatures,
//! same accept/reject decisions — across random scalars, keys, messages,
//! and batch chunkings.

use proptest::prelude::*;
use wedge_crypto::ecdsa::{
    self, sign_prehashed, sign_prehashed_batch, verify_prehashed, verify_prehashed_with_table,
    Signature,
};
use wedge_crypto::keys::{Keypair, SecretKey};
use wedge_crypto::secp256k1::point::reference as point_ref;
use wedge_crypto::secp256k1::{
    mul_double, mul_double_with_table, mul_generator, mul_point, Affine, AffineTable, Scalar,
};
use wedge_crypto::{sign_batch_parallel, verify_batch_parallel};

fn arb_scalar() -> impl Strategy<Value = Scalar> {
    any::<[u8; 32]>().prop_map(|b| Scalar::from_be_bytes_reduced(&b))
}

fn arb_keypair() -> impl Strategy<Value = Keypair> {
    any::<[u8; 32]>().prop_filter_map("valid secret key", |b| {
        SecretKey::from_bytes(&b).ok().map(Keypair::from_secret)
    })
}

/// A random non-infinity curve point (as `seed·G` for a nonzero seed).
fn arb_point() -> impl Strategy<Value = Affine> {
    any::<[u8; 32]>().prop_filter_map("nonzero seed", |b| {
        let s = Scalar::from_be_bytes_reduced(&b);
        if s.is_zero() {
            None
        } else {
            Some(mul_generator(&s).to_affine())
        }
    })
}

proptest! {
    // Curve operations are expensive; keep the case count low (matches the
    // existing proptests suite).
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Comb `mul_generator` vs the frozen 4-bit window table.
    #[test]
    fn comb_generator_matches_reference(k in arb_scalar()) {
        prop_assert_eq!(
            mul_generator(&k).to_affine(),
            point_ref::mul_generator(&k).to_affine()
        );
    }

    /// GLV + wNAF `mul_point` vs the frozen 4-bit fixed window.
    #[test]
    fn wnaf_mul_point_matches_reference(p in arb_point(), k in arb_scalar()) {
        prop_assert_eq!(
            mul_point(&p, &k).to_affine(),
            point_ref::mul_point(&p, &k).to_affine()
        );
    }

    /// Strauss–Shamir/GLV `mul_double` (fresh and cached-table forms) vs
    /// the naive `a·G + b·Q`.
    #[test]
    fn strauss_mul_double_matches_naive(a in arb_scalar(), b in arb_scalar(), q in arb_point()) {
        let naive = point_ref::mul_double(&a, &b, &q).to_affine();
        prop_assert_eq!(mul_double(&a, &b, &q).to_affine(), naive);
        let table = AffineTable::new(&q);
        prop_assert_eq!(mul_double_with_table(&a, &b, &table).to_affine(), naive);
    }

    /// The fast signer (comb table) is byte-identical to the frozen one.
    #[test]
    fn fast_sign_matches_reference(kp in arb_keypair(), msg in any::<[u8; 32]>()) {
        prop_assert_eq!(
            sign_prehashed(&kp.secret, &msg).to_bytes(),
            ecdsa::reference::sign_prehashed(&kp.secret, &msg).to_bytes()
        );
    }

    /// Verification decisions agree with the frozen verifier for both valid
    /// signatures and tampered ones.
    #[test]
    fn fast_verify_matches_reference(
        kp in arb_keypair(),
        msg in any::<[u8; 32]>(),
        tamper in any::<[u8; 32]>(),
    ) {
        let sig = sign_prehashed(&kp.secret, &msg);
        let table = AffineTable::new(kp.public.point());
        for m in [&msg, &tamper] {
            let expect = ecdsa::reference::verify_prehashed(&kp.public, m, &sig).is_ok();
            prop_assert_eq!(verify_prehashed(&kp.public, m, &sig).is_ok(), expect);
            prop_assert_eq!(verify_prehashed_with_table(&table, m, &sig).is_ok(), expect);
        }
    }
}

proptest! {
    // Batch cases sign dozens of messages per case; keep the count lower
    // still.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Batch signing across random lengths and thread counts is
    /// byte-identical to sequential (and hence to the frozen signer, by the
    /// case above).
    #[test]
    fn batch_sign_matches_sequential(
        kp in arb_keypair(),
        len in 0usize..40,
        threads in 1usize..6,
        seed in any::<u8>(),
    ) {
        let hashes: Vec<[u8; 32]> = (0..len).map(|i| {
            let mut h = [seed; 32];
            h[0] = i as u8;
            h
        }).collect();
        let expect: Vec<[u8; 65]> = hashes
            .iter()
            .map(|h| sign_prehashed(&kp.secret, h).to_bytes())
            .collect();
        let direct: Vec<[u8; 65]> = sign_prehashed_batch(&kp.secret, &hashes)
            .iter()
            .map(Signature::to_bytes)
            .collect();
        prop_assert_eq!(&direct, &expect);
        let pooled: Vec<[u8; 65]> = sign_batch_parallel(&kp.secret, &hashes, threads)
            .iter()
            .map(Signature::to_bytes)
            .collect();
        prop_assert_eq!(&pooled, &expect);
    }

    /// Batch verification agrees with per-item reference verification on
    /// both clean batches and batches with an injected failure.
    #[test]
    fn batch_verify_matches_sequential(
        kp in arb_keypair(),
        len in 1usize..24,
        threads in 1usize..6,
        corrupt_at in 0usize..24,
    ) {
        let hashes: Vec<[u8; 32]> = (0..len).map(|i| {
            let mut h = [0xC3u8; 32];
            h[0] = i as u8;
            h
        }).collect();
        let mut items: Vec<([u8; 32], Signature)> = hashes
            .iter()
            .map(|h| (*h, sign_prehashed(&kp.secret, h)))
            .collect();
        prop_assert_eq!(verify_batch_parallel(&kp.public, &items, threads), Ok(()));
        // Corrupt one item: sign a different message.
        let at = corrupt_at % len;
        items[at].1 = sign_prehashed(&kp.secret, &[0xFFu8; 32]);
        let expect = items
            .iter()
            .position(|(h, sig)| {
                ecdsa::reference::verify_prehashed(&kp.public, h, sig).is_err()
            });
        prop_assert_eq!(
            verify_batch_parallel(&kp.public, &items, threads),
            expect.map_or(Ok(()), Err)
        );
        let table = AffineTable::new(kp.public.point());
        prop_assert_eq!(
            ecdsa::verify_prehashed_batch(&table, &items),
            expect.map_or(Ok(()), Err)
        );
    }
}
