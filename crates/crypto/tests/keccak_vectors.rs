//! Keccak-256 known-answer tests.
//!
//! The first three digests are published, externally verifiable constants
//! (the empty digest is ubiquitous on Ethereum — it is the code hash of
//! every externally-owned account). They pin the permutation, the padding
//! domain bit (legacy 0x01, *not* SHA-3's 0x06), and the rate. The
//! boundary vectors pin the three padding regimes around the 136-byte
//! rate; their digests were generated once from the frozen
//! `hash::reference` implementation (itself anchored by the external
//! vectors) and must never change.
//!
//! Every vector is checked through all four public paths: the streaming
//! sponge, the auto-routing one-shot, the fused fixed path, and one lane
//! of the ×4 interleaved permutation.

use wedge_crypto::hash::{keccak256, keccak256_fixed, keccak256_fixed_x4, Keccak256};

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

/// Asserts one vector across every digest path.
fn check(input: &[u8], expect_hex: &str) {
    assert_eq!(hex(&keccak256(input)), expect_hex, "one-shot");
    assert_eq!(hex(&keccak256_fixed(input)), expect_hex, "fixed path");
    let mut h = Keccak256::new();
    // Feed byte-by-byte to exercise the buffered sponge.
    for b in input {
        h.update(core::slice::from_ref(b));
    }
    assert_eq!(hex(&h.finalize()), expect_hex, "streaming");
    let x4 = keccak256_fixed_x4([input, input, input, input]);
    for digest in x4.iter() {
        assert_eq!(hex(digest), expect_hex, "x4 lane");
    }
}

#[test]
fn empty_input() {
    // keccak256("") — the Ethereum empty code hash.
    check(
        b"",
        "c5d2460186f7233c927e7db2dcc703c0e500b653ca82273b7bfad8045d85a470",
    );
}

#[test]
fn abc() {
    // Original Keccak submission test vector.
    check(
        b"abc",
        "4e03657aea45a94fc7d47ba826c8d667c0d1e6e33a64a036ec44f58fa12d6c45",
    );
}

#[test]
fn quick_brown_fox() {
    // Widely published Keccak-256 vector (e.g. the pre-NIST Keccak docs).
    check(
        b"The quick brown fox jumps over the lazy dog",
        "4d741b6f1eb29cb2a9b9911c82f56fa8d73b04959d3d9d222895df6c0b28aa15",
    );
}

#[test]
fn rate_boundary_135() {
    // 135 bytes: the final message byte is block offset 134, so the 0x01
    // padding bit and the trailing 0x80 coincide in byte 135 as 0x81.
    // Digest pinned from hash::reference.
    check(
        &[0x61u8; 135],
        "34367dc248bbd832f4e3e69dfaac2f92638bd0bbd18f2912ba4ef454919cf446",
    );
}

#[test]
fn rate_boundary_136() {
    // Exactly one rate block of message: the padding must spill into a
    // second, otherwise-empty block. Digest pinned from hash::reference.
    check(
        &[0x61u8; 136],
        "a6c4d403279fe3e0af03729caada8374b5ca54d8065329a3ebcaeb4b60aa386e",
    );
}

#[test]
fn rate_boundary_137() {
    // One full block plus one byte: a genuine two-block message. Digest
    // pinned from hash::reference.
    check(
        &[0x61u8; 137],
        "d869f639c7046b4929fc92a4d988a8b22c55fbadb802c0c66ebcd484f1915f39",
    );
}
