//! Property-based tests for the cryptographic substrate: field/scalar
//! algebra laws, curve group laws, and ECDSA end-to-end invariants.

use proptest::prelude::*;
use wedge_crypto::ecdsa::{recover_prehashed, sign_prehashed, verify_prehashed, Signature};
use wedge_crypto::keys::{Keypair, SecretKey};
use wedge_crypto::secp256k1::{mul_generator, mul_point, Affine, Fe, Scalar};
use wedge_crypto::uint::U256;

fn arb_u256() -> impl Strategy<Value = U256> {
    any::<[u8; 32]>().prop_map(|b| U256::from_be_bytes(&b))
}

fn arb_fe() -> impl Strategy<Value = Fe> {
    any::<[u8; 32]>().prop_map(|b| Fe::from_be_bytes(&b))
}

fn arb_scalar() -> impl Strategy<Value = Scalar> {
    any::<[u8; 32]>().prop_map(|b| Scalar::from_be_bytes_reduced(&b))
}

fn arb_keypair() -> impl Strategy<Value = Keypair> {
    any::<[u8; 32]>().prop_filter_map("valid secret key", |b| {
        SecretKey::from_bytes(&b).ok().map(Keypair::from_secret)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn u256_add_commutes(a in arb_u256(), b in arb_u256()) {
        prop_assert_eq!(a.overflowing_add(&b), b.overflowing_add(&a));
    }

    #[test]
    fn u256_mul_commutes(a in arb_u256(), b in arb_u256()) {
        prop_assert_eq!(a.mul_wide(&b), b.mul_wide(&a));
    }

    #[test]
    fn u256_shift_roundtrip(a in arb_u256(), n in 0usize..255) {
        // (a << n) >> n recovers the low bits of a.
        let masked = if n == 0 { a } else { a.shl(n).shr(n) };
        let expect = if n == 0 { a } else { a.shl(255 - (n - 1)).shr(255 - (n - 1)) };
        // Simpler check: shifting left then right never exceeds original.
        prop_assert!(masked <= a);
        let _ = expect;
    }

    #[test]
    fn fe_add_associative(a in arb_fe(), b in arb_fe(), c in arb_fe()) {
        prop_assert_eq!(a.add(&b).add(&c), a.add(&b.add(&c)));
    }

    #[test]
    fn fe_mul_distributes(a in arb_fe(), b in arb_fe(), c in arb_fe()) {
        prop_assert_eq!(a.mul(&b.add(&c)), a.mul(&b).add(&a.mul(&c)));
    }

    #[test]
    fn fe_inverse_law(a in arb_fe()) {
        if let Some(inv) = a.invert() {
            prop_assert_eq!(a.mul(&inv), Fe::ONE);
        } else {
            prop_assert!(a.is_zero());
        }
    }

    #[test]
    fn fe_square_matches_mul(a in arb_fe()) {
        prop_assert_eq!(a.square(), a.mul(&a));
    }

    #[test]
    fn fe_sqrt_of_square(a in arb_fe()) {
        let sq = a.square();
        let r = sq.sqrt().expect("squares are residues");
        prop_assert!(r == a || r == a.neg());
    }

    #[test]
    fn scalar_ring_laws(a in arb_scalar(), b in arb_scalar(), c in arb_scalar()) {
        prop_assert_eq!(a.add(&b), b.add(&a));
        prop_assert_eq!(a.mul(&b), b.mul(&a));
        prop_assert_eq!(a.mul(&b.add(&c)), a.mul(&b).add(&a.mul(&c)));
        prop_assert_eq!(a.sub(&a), Scalar::ZERO);
    }

    #[test]
    fn scalar_inverse_law(a in arb_scalar()) {
        if let Some(inv) = a.invert() {
            prop_assert_eq!(a.mul(&inv), Scalar::ONE);
        } else {
            prop_assert!(a.is_zero());
        }
    }

    #[test]
    fn scalar_bytes_roundtrip(a in arb_scalar()) {
        let bytes = a.to_be_bytes();
        prop_assert_eq!(Scalar::from_be_bytes_checked(&bytes).unwrap(), a);
    }
}

proptest! {
    // Curve/ECDSA cases are much more expensive; keep the case count low.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn group_mul_is_homomorphic(a in arb_scalar(), b in arb_scalar()) {
        // (a+b)G == aG + bG
        let lhs = mul_generator(&a.add(&b)).to_affine();
        let rhs = mul_generator(&a).add(&mul_generator(&b)).to_affine();
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn generator_multiples_stay_on_curve(a in arb_scalar()) {
        let p = mul_generator(&a).to_affine();
        prop_assert!(p.is_on_curve());
    }

    #[test]
    fn scalar_mul_matches_table_mul(a in arb_scalar()) {
        let generic = mul_point(&Affine::GENERATOR, &a).to_affine();
        let tabled = mul_generator(&a).to_affine();
        prop_assert_eq!(generic, tabled);
    }

    #[test]
    fn ecdsa_roundtrip(kp in arb_keypair(), msg in any::<[u8; 32]>()) {
        let sig = sign_prehashed(&kp.secret, &msg);
        prop_assert!(verify_prehashed(&kp.public, &msg, &sig).is_ok());
        let recovered = recover_prehashed(&msg, &sig).unwrap();
        prop_assert_eq!(recovered, kp.public);
        // Serialization roundtrip preserves the signature.
        let parsed = Signature::from_bytes(&sig.to_bytes()).unwrap();
        prop_assert_eq!(parsed, sig);
    }

    #[test]
    fn ecdsa_rejects_cross_messages(kp in arb_keypair(), m1 in any::<[u8; 32]>(), m2 in any::<[u8; 32]>()) {
        prop_assume!(m1 != m2);
        let sig = sign_prehashed(&kp.secret, &m1);
        prop_assert!(verify_prehashed(&kp.public, &m2, &sig).is_err());
    }
}
