//! RHL: rollup-inspired hybrid logging (paper §6.3).
//!
//! Stage 1 mirrors WedgeBlock: the off-chain node batches operations, builds
//! a digest, and returns signed acknowledgements immediately. But to enable
//! fraud proofs, the node must also post the *raw operations* on-chain
//! (costing like OCL), and nothing is final until the challenge window —
//! hours to days — expires.

use std::sync::Arc;
use std::time::{Duration, Instant};

use wedge_chain::{Address, Chain, Gas, Wei};
use wedge_contracts::RhlRollup;
use wedge_core::CoreError;
use wedge_crypto::signer::Identity;
use wedge_merkle::MerkleTree;

use crate::CommitCosts;

/// RHL tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct RhlConfig {
    /// Operations per on-chain batch posting.
    pub ops_per_batch: usize,
    /// Challenge window in simulated seconds (rollups: up to days).
    pub challenge_window: u64,
    /// Escrow backing fraud proofs.
    pub escrow: Wei,
}

impl Default for RhlConfig {
    fn default() -> Self {
        RhlConfig {
            ops_per_batch: 20,
            challenge_window: 86_400, // one day
            escrow: Wei::from_eth(5),
        }
    }
}

/// Result of an RHL commit run.
#[derive(Clone, Debug)]
pub struct RhlOutcome {
    /// Cost summary (posting raw ops on-chain).
    pub costs: CommitCosts,
    /// Wall time of stage-1 (digest + signed acks) — RHL's headline
    /// latency, comparable to WedgeBlock's.
    pub stage1_wall: Duration,
    /// Simulated time until all postings confirmed.
    pub posting_latency: Duration,
    /// Simulated time until finality: posting + challenge window.
    pub finality_latency: Duration,
}

impl RhlOutcome {
    /// Stage-1 throughput in MB per (real) second — the number RHL reports
    /// in Table 1.
    pub fn stage1_throughput_mb_s(&self) -> f64 {
        if self.stage1_wall.is_zero() {
            return 0.0;
        }
        self.costs.bytes as f64 / 1e6 / self.stage1_wall.as_secs_f64()
    }
}

/// The RHL system: a posting node and its rollup contract.
pub struct RhlSystem {
    chain: Arc<Chain>,
    poster: Identity,
    contract: Address,
    config: RhlConfig,
}

impl RhlSystem {
    /// Deploys the rollup contract (with escrow) and returns the handle.
    pub fn deploy(
        chain: Arc<Chain>,
        poster: Identity,
        config: RhlConfig,
    ) -> Result<RhlSystem, CoreError> {
        let (contract, tx) = chain.deploy(
            poster.secret_key(),
            Box::new(RhlRollup::new(poster.address(), config.challenge_window)),
            config.escrow,
            RhlRollup::CODE_LEN,
        )?;
        chain.wait_for_receipt(tx)?;
        Ok(RhlSystem {
            chain,
            poster,
            contract,
            config,
        })
    }

    /// The deployed contract address.
    pub fn contract(&self) -> Address {
        self.contract
    }

    /// Appends `payloads`: issues stage-1 acknowledgements (measured in
    /// wall time), posts all operations on-chain, and reports both the
    /// posting latency and the finality horizon.
    ///
    /// Stage 1 performs the same per-operation work a WedgeBlock node does,
    /// so the Table-1 throughput comparison is apples-to-apples: verify the
    /// client's request signature, build the batch tree, and return a
    /// signed per-op acknowledgement carrying the op's inclusion proof.
    pub fn append_and_commit(&self, payloads: &[Vec<u8>]) -> Result<RhlOutcome, CoreError> {
        let clock = self.chain.clock().clone();
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        // Clients sign their requests before submission (outside the node's
        // stage-1 timer, as in the WedgeBlock measurements).
        let client = Identity::from_seed(b"rhl-client");
        let numbered: Vec<(u64, Vec<u8>)> = (0..).zip(payloads.iter().cloned()).collect();
        let requests: Vec<wedge_core::AppendRequest> =
            wedge_core::parallel_map(&numbered, threads, |(seq, payload)| {
                wedge_core::AppendRequest::new(client.secret_key(), *seq, payload.clone())
            });

        let stage1_started = Instant::now();
        let mut digests = Vec::new();
        for chunk in requests.chunks(self.config.ops_per_batch.max(1)) {
            // Verify client signatures (parallel), as the honest node must.
            let ok = wedge_core::parallel_map(chunk, threads, |req| req.verify().is_ok());
            if ok.iter().any(|v| !v) {
                return Err(CoreError::RequestRejected("bad client signature"));
            }
            let leaves: Vec<Vec<u8>> = chunk.iter().map(|r| r.leaf_bytes()).collect();
            let tree = MerkleTree::from_leaves(&leaves)
                .map_err(|_| CoreError::RequestRejected("empty RHL batch"))?;
            let key = *self.poster.secret_key();
            let acks =
                wedge_core::parallel_map(&(0..chunk.len()).collect::<Vec<_>>(), threads, |&i| {
                    // lint: allow(panic) — `i < chunk.len()` == the tree's leaf count, so the proof index is in range by construction
                    let proof = tree.prove(i).expect("in range");
                    wedge_crypto::sign_message(&key, &proof.to_bytes())
                });
            std::hint::black_box(&acks);
            digests.push(tree.root());
        }
        let stage1_wall = stage1_started.elapsed();

        // Post operations + digests on-chain.
        let posting_started = clock.now();
        let mut costs = CommitCosts {
            bytes: payloads.iter().map(|p| p.len() as u64).sum(),
            operations: payloads.len() as u64,
            fees: Wei::ZERO,
        };
        let mut pending = Vec::new();
        for (chunk, digest) in payloads
            .chunks(self.config.ops_per_batch.max(1))
            .zip(&digests)
        {
            let calldata = RhlRollup::submit_calldata(chunk, digest);
            let words: u64 = chunk.iter().map(|e| e.len().div_ceil(32) as u64).sum();
            let gas_limit = Gas(120_000 + 30 * calldata.len() as u64 + 21_000 * words);
            let hash = self.chain.call_contract(
                self.poster.secret_key(),
                self.contract,
                Wei::ZERO,
                calldata,
                gas_limit,
            )?;
            pending.push(hash);
        }
        for hash in pending {
            let receipt = self.chain.wait_for_receipt(hash)?;
            if !receipt.status.is_success() {
                return Err(CoreError::RequestRejected("RHL posting reverted"));
            }
            // lint: allow(panic) — u128 fee accumulator cannot overflow before the simulated chain runs out of Wei; aborting the experiment is correct if it somehow does
            costs.fees = costs.fees.checked_add(receipt.fee).expect("fee overflow");
        }
        let posting_latency = clock.now().since(posting_started);
        Ok(RhlOutcome {
            costs,
            stage1_wall,
            posting_latency,
            finality_latency: posting_latency + Duration::from_secs(self.config.challenge_window),
        })
    }
}
