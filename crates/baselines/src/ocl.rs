//! OCL: on-chain logging. Every raw entry is written into contract storage;
//! an operation is committed only when its transaction confirms. Slow and
//! expensive by construction — the paper's strawman.

use std::sync::Arc;
use std::time::Duration;

use wedge_chain::{Address, Chain, Gas, Wei};
use wedge_contracts::OclLog;
use wedge_core::CoreError;
use wedge_crypto::signer::Identity;

use crate::CommitCosts;

/// OCL tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct OclConfig {
    /// Entries grouped into one transaction. Raw storage is so expensive
    /// (~700k gas per 1 KB entry) that only a handful fit under the block
    /// gas limit.
    pub entries_per_tx: usize,
}

impl Default for OclConfig {
    fn default() -> Self {
        OclConfig { entries_per_tx: 20 }
    }
}

/// Result of an OCL commit run.
#[derive(Clone, Debug)]
pub struct OclOutcome {
    /// Cost summary.
    pub costs: CommitCosts,
    /// Simulated time from first submission to last confirmed receipt.
    pub commit_latency: Duration,
    /// Transactions used.
    pub transactions: u64,
}

impl OclOutcome {
    /// Committed throughput in MB per (simulated) second.
    pub fn throughput_mb_s(&self) -> f64 {
        if self.commit_latency.is_zero() {
            return 0.0;
        }
        self.costs.bytes as f64 / 1e6 / self.commit_latency.as_secs_f64()
    }
}

/// The OCL system: a writer identity and its on-chain log contract.
pub struct OclSystem {
    chain: Arc<Chain>,
    writer: Identity,
    contract: Address,
    config: OclConfig,
}

impl OclSystem {
    /// Deploys the OCL contract and returns the system handle.
    pub fn deploy(
        chain: Arc<Chain>,
        writer: Identity,
        config: OclConfig,
    ) -> Result<OclSystem, CoreError> {
        let (contract, tx) = chain.deploy(
            writer.secret_key(),
            Box::new(OclLog::new()),
            Wei::ZERO,
            OclLog::CODE_LEN,
        )?;
        chain.wait_for_receipt(tx)?;
        Ok(OclSystem {
            chain,
            writer,
            contract,
            config,
        })
    }

    /// The deployed contract address.
    pub fn contract(&self) -> Address {
        self.contract
    }

    /// Writes `payloads` on-chain, waiting for every receipt (the paper's
    /// commit criterion for OCL). Requires a running miner.
    pub fn append_and_commit(&self, payloads: &[Vec<u8>]) -> Result<OclOutcome, CoreError> {
        let clock = self.chain.clock().clone();
        let started = clock.now();
        let mut costs = CommitCosts::default();
        let mut transactions = 0u64;
        let mut pending = Vec::new();
        for chunk in payloads.chunks(self.config.entries_per_tx.max(1)) {
            let calldata = OclLog::append_calldata(chunk);
            // Storage dominates: ~20k per 32B word, plus calldata + base.
            let words: u64 = chunk.iter().map(|e| e.len().div_ceil(32) as u64).sum();
            let gas_limit = Gas(100_000 + 30 * calldata.len() as u64 + 21_000 * words);
            let hash = self.chain.call_contract(
                self.writer.secret_key(),
                self.contract,
                Wei::ZERO,
                calldata,
                gas_limit,
            )?;
            transactions += 1;
            costs.operations += chunk.len() as u64;
            costs.bytes += chunk.iter().map(|e| e.len() as u64).sum::<u64>();
            pending.push(hash);
        }
        for hash in pending {
            let receipt = self.chain.wait_for_receipt(hash)?;
            if !receipt.status.is_success() {
                return Err(CoreError::RequestRejected("OCL append reverted"));
            }
            // lint: allow(panic) — u128 fee accumulator cannot overflow before the simulated chain runs out of Wei; aborting the experiment is correct if it somehow does
            costs.fees = costs.fees.checked_add(receipt.fee).expect("fee overflow");
        }
        Ok(OclOutcome {
            costs,
            commit_latency: clock.now().since(started),
            transactions,
        })
    }

    /// Reads one entry back (integrity check helper).
    pub fn read(&self, idx: u64) -> Result<Vec<u8>, CoreError> {
        Ok(self.chain.view(self.contract, &OclLog::get_calldata(idx))?)
    }
}
