//! SOCL: synchronous off-chain logging (paper's BPAL-style baseline).
//!
//! The architecture is WedgeBlock's — raw entries off-chain, digests in the
//! Root Record contract — but without lazy trust: a client considers nothing
//! committed until the digest is on-chain. Cost therefore matches
//! WedgeBlock's; latency matches the chain's.

use std::sync::Arc;
use std::time::Duration;

use wedge_chain::{Address, Chain};
use wedge_core::{CoreError, OffchainNode, Publisher, Stage2Verdict};
use wedge_crypto::signer::Identity;

use crate::CommitCosts;

/// Result of a SOCL commit run.
#[derive(Clone, Debug)]
pub struct SoclOutcome {
    /// Cost summary (stage-2 fees of the underlying node).
    pub costs: CommitCosts,
    /// Simulated time from submission until every digest confirmed — the
    /// client-visible commit latency under synchronous trust.
    pub commit_latency: Duration,
    /// Wall time of the off-chain (stage-1) part, for reference.
    pub stage1_wall: Duration,
}

impl SoclOutcome {
    /// Committed throughput in MB per (simulated) second.
    pub fn throughput_mb_s(&self) -> f64 {
        if self.commit_latency.is_zero() {
            return 0.0;
        }
        self.costs.bytes as f64 / 1e6 / self.commit_latency.as_secs_f64()
    }
}

/// The SOCL system: an Offchain Node plus a publisher that refuses lazy
/// trust.
pub struct SoclSystem {
    #[allow(dead_code)]
    chain: Arc<Chain>,
    node: Arc<OffchainNode>,
    publisher: Publisher,
}

impl SoclSystem {
    /// Wraps an existing node deployment in synchronous-trust clothing.
    pub fn new(
        chain: Arc<Chain>,
        node: Arc<OffchainNode>,
        client: Identity,
        root_record: Address,
    ) -> SoclSystem {
        let publisher = Publisher::new(
            client,
            Arc::clone(&node),
            Arc::clone(&chain),
            root_record,
            None,
        );
        SoclSystem {
            chain,
            node,
            publisher,
        }
    }

    /// Appends `payloads` and blocks until every log position they landed in
    /// is blockchain-committed (the SOCL trust criterion).
    ///
    /// Commit latency composes the two time domains explicitly: the real
    /// wall time of the off-chain stage-1 work plus the node's measured
    /// per-batch stage-2 latency in *simulated* seconds (flush →
    /// confirmation). On a compressed clock the chain overlaps real compute
    /// almost entirely, so reading one clock across both phases would
    /// under-report the wait a real SOCL client experiences.
    pub fn append_and_commit(&mut self, payloads: Vec<Vec<u8>>) -> Result<SoclOutcome, CoreError> {
        let fees_before = self.node.stats().stage2_fees;
        let commits_before = self.node.stats().stage2_latencies.len();
        let bytes: u64 = payloads.iter().map(|p| p.len() as u64).sum();
        let operations = payloads.len() as u64;
        let outcome = self.publisher.append_batch(payloads)?;
        let stage1_wall = outcome.stage1_commit;
        // Synchronous trust: wait for the *last* entry's digest (and verify
        // one response per distinct log position).
        let mut last_verdict = Stage2Verdict::NotYet;
        if let Some(last) = outcome.responses.last() {
            last_verdict = self
                .publisher
                .wait_blockchain_commit(last, Duration::from_secs(3600))?;
        }
        if last_verdict != Stage2Verdict::Committed {
            return Err(CoreError::NotYetBlockchainCommitted {
                log_id: outcome
                    .responses
                    .last()
                    .map(|r| r.entry_id.log_id)
                    .unwrap_or(0),
            });
        }
        for response in &outcome.responses {
            if self.publisher.verify_blockchain_commit(response)? != Stage2Verdict::Committed {
                // Earlier positions commit before later ones; by the time the
                // last is committed all must be. A miss here is a real error.
                return Err(CoreError::NotYetBlockchainCommitted {
                    log_id: response.entry_id.log_id,
                });
            }
        }
        // The view check above can race the node's own receipt bookkeeping;
        // settle the committer before reading its latency samples.
        self.node.wait_stage2_idle(Duration::from_secs(3600))?;
        let stats = self.node.stats();
        // Mean flush→confirmation latency of the batches this run created.
        let new_latencies = &stats.stage2_latencies[commits_before..];
        let stage2_mean = if new_latencies.is_empty() {
            Duration::ZERO
        } else {
            new_latencies.iter().sum::<Duration>() / new_latencies.len() as u32
        };
        Ok(SoclOutcome {
            costs: CommitCosts {
                bytes,
                operations,
                fees: stats.stage2_fees.saturating_sub(fees_before),
            },
            commit_latency: stage1_wall + stage2_mean,
            stage1_wall,
        })
    }
}
