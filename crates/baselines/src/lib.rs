//! # wedge-baselines
//!
//! End-to-end implementations of the three prior approaches WedgeBlock is
//! evaluated against in the paper's §6.3 / Table 1:
//!
//! - [`OclSystem`] — **on-chain logging**: raw entries written directly to a
//!   smart contract; committed when the transaction confirms.
//! - [`SoclSystem`] — **synchronous off-chain logging**: raw entries off
//!   chain, digest on-chain, but the client *waits* for the digest before
//!   trusting anything.
//! - [`RhlSystem`] — **rollup-inspired hybrid logging**: fast off-chain
//!   acknowledgement, but all operations are also posted on-chain to enable
//!   fraud-proof challenges, with finality delayed by the challenge window.
//!
//! Timing convention: on-chain waits are reported in **simulated seconds**
//! (the chain runs on a compressible clock), off-chain compute in **real
//! seconds**. Both approximate real-world durations; EXPERIMENTS.md
//! discusses the convention.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ocl;
mod rhl;
mod socl;

pub use ocl::{OclConfig, OclOutcome, OclSystem};
pub use rhl::{RhlConfig, RhlOutcome, RhlSystem};
pub use socl::{SoclOutcome, SoclSystem};

use wedge_chain::Wei;

/// A common cost/size summary for one committed workload.
#[derive(Clone, Copy, Debug, Default)]
pub struct CommitCosts {
    /// Total raw payload bytes committed.
    pub bytes: u64,
    /// Number of operations committed.
    pub operations: u64,
    /// Total on-chain fees paid.
    pub fees: Wei,
}

impl CommitCosts {
    /// Fee per operation in wei.
    pub fn cost_per_op(&self) -> Wei {
        if self.operations == 0 {
            Wei::ZERO
        } else {
            Wei(self.fees.0 / self.operations as u128)
        }
    }
}
