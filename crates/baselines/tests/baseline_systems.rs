//! System-level tests for the three baselines, including the Table-1
//! ordering sanity checks (who should win on what).

use std::sync::Arc;
use std::time::Duration;

use wedge_baselines::{OclConfig, OclSystem, RhlConfig, RhlSystem, SoclSystem};
use wedge_chain::{Chain, ChainConfig, Wei};
use wedge_core::{deploy_service, NodeConfig, OffchainNode, ServiceConfig};
use wedge_crypto::signer::Identity;
use wedge_sim::Clock;

fn chain_with_miner(tag: &str) -> (Arc<Chain>, Identity, wedge_chain::MinerHandle) {
    let clock = Clock::compressed(2000.0);
    let chain = Chain::new(clock, ChainConfig::default());
    let id = Identity::from_seed(format!("baseline-{tag}").as_bytes());
    chain.fund(id.address(), Wei::from_eth(1_000_000));
    let miner = chain.start_miner();
    (chain, id, miner)
}

fn payloads(n: usize, size: usize) -> Vec<Vec<u8>> {
    (0..n)
        .map(|i| {
            let mut p = format!("op-{i}-").into_bytes();
            p.resize(size, 0x5A);
            p
        })
        .collect()
}

#[test]
fn ocl_commits_and_charges_heavily() {
    let (chain, id, _miner) = chain_with_miner("ocl");
    let ocl = OclSystem::deploy(Arc::clone(&chain), id, OclConfig::default()).unwrap();
    let data = payloads(40, 1024);
    let outcome = ocl.append_and_commit(&data).unwrap();
    assert_eq!(outcome.costs.operations, 40);
    assert!(outcome.costs.fees > Wei::ZERO);
    assert!(
        outcome.commit_latency >= Duration::from_secs(13),
        "must span blocks"
    );
    // Entries are really on-chain.
    assert_eq!(ocl.read(7).unwrap(), data[7]);
    // ~700k gas/KB at 100 gwei ≈ 0.07 ETH per op: enormous.
    assert!(outcome.costs.cost_per_op() > Wei::from_eth_f64(0.01));
}

#[test]
fn socl_commit_waits_for_chain_but_costs_like_wedgeblock() {
    let (chain, node_id, _miner) = chain_with_miner("socl");
    let client = Identity::from_seed(b"socl-client");
    chain.fund(client.address(), Wei::from_eth(100));
    let deployment = deploy_service(
        &chain,
        &node_id,
        client.address(),
        &ServiceConfig {
            escrow: Wei::from_eth(1),
            payment_terms: None,
        },
    )
    .unwrap();
    let dir = std::env::temp_dir().join(format!("wedge-socl-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let node = Arc::new(
        OffchainNode::start(
            node_id,
            NodeConfig {
                batch_size: 50,
                batch_linger: Duration::from_millis(5),
                ..Default::default()
            },
            Arc::clone(&chain),
            deployment.root_record,
            &dir,
        )
        .unwrap(),
    );
    let mut socl = SoclSystem::new(
        Arc::clone(&chain),
        Arc::clone(&node),
        client,
        deployment.root_record,
    );
    let outcome = socl.append_and_commit(payloads(100, 1024)).unwrap();
    assert_eq!(outcome.costs.operations, 100);
    // Synchronous trust: latency spans inclusion + confirmations.
    assert!(outcome.commit_latency >= Duration::from_secs(20));
    // Cost is digest-only: orders cheaper than OCL per op.
    assert!(outcome.costs.cost_per_op() < Wei::from_eth_f64(0.001));
    assert!(outcome.stage1_wall < Duration::from_secs(5));
}

#[test]
fn rhl_fast_stage1_but_ocl_like_cost_and_day_long_finality() {
    let (chain, id, _miner) = chain_with_miner("rhl");
    let rhl = RhlSystem::deploy(Arc::clone(&chain), id, RhlConfig::default()).unwrap();
    let outcome = rhl.append_and_commit(&payloads(40, 1024)).unwrap();
    assert_eq!(outcome.costs.operations, 40);
    // Stage 1 is compute-only: sub-second for 40 ops.
    assert!(outcome.stage1_wall < Duration::from_secs(2));
    // But cost per op is OCL-like (raw ops on-chain)...
    assert!(outcome.costs.cost_per_op() > Wei::from_eth_f64(0.01));
    // ...and finality waits out the challenge window.
    assert!(outcome.finality_latency >= Duration::from_secs(86_400));
}

#[test]
fn table1_orderings_hold() {
    // The qualitative Table-1 claims, in one test: cost(WB/SOCL) ≪
    // cost(OCL/RHL); stage-1 latency (WB/RHL) ≪ commit latency (OCL/SOCL).
    let (chain, id, _miner) = chain_with_miner("t1");
    let data = payloads(40, 1024);

    let ocl = OclSystem::deploy(Arc::clone(&chain), id.clone(), OclConfig::default()).unwrap();
    let ocl_out = ocl.append_and_commit(&data).unwrap();

    let rhl_id = Identity::from_seed(b"t1-rhl");
    chain.fund(rhl_id.address(), Wei::from_eth(1_000_000));
    let rhl = RhlSystem::deploy(Arc::clone(&chain), rhl_id, RhlConfig::default()).unwrap();
    let rhl_out = rhl.append_and_commit(&data).unwrap();

    let node_id = Identity::from_seed(b"t1-node");
    let client = Identity::from_seed(b"t1-client");
    chain.fund(node_id.address(), Wei::from_eth(1000));
    chain.fund(client.address(), Wei::from_eth(1000));
    let deployment = deploy_service(
        &chain,
        &node_id,
        client.address(),
        &ServiceConfig {
            escrow: Wei::from_eth(1),
            payment_terms: None,
        },
    )
    .unwrap();
    let dir = std::env::temp_dir().join(format!("wedge-t1-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let node = Arc::new(
        OffchainNode::start(
            node_id,
            NodeConfig {
                batch_size: 40,
                batch_linger: Duration::from_millis(5),
                ..Default::default()
            },
            Arc::clone(&chain),
            deployment.root_record,
            &dir,
        )
        .unwrap(),
    );
    let mut socl = SoclSystem::new(
        Arc::clone(&chain),
        Arc::clone(&node),
        client,
        deployment.root_record,
    );
    let socl_out = socl.append_and_commit(data).unwrap();

    // Cost ordering (per op).
    let wb_socl_cost = socl_out.costs.cost_per_op().0 as f64;
    let ocl_cost = ocl_out.costs.cost_per_op().0 as f64;
    let rhl_cost = rhl_out.costs.cost_per_op().0 as f64;
    assert!(
        ocl_cost / wb_socl_cost > 50.0,
        "OCL {ocl_cost} vs WB/SOCL {wb_socl_cost}"
    );
    assert!(
        rhl_cost / wb_socl_cost > 50.0,
        "RHL {rhl_cost} vs WB/SOCL {wb_socl_cost}"
    );

    // Latency ordering: stage-1 (real, sub-second) vs chain commit (tens of
    // simulated seconds).
    assert!(rhl_out.stage1_wall < Duration::from_secs(2));
    assert!(socl_out.stage1_wall < Duration::from_secs(5));
    assert!(ocl_out.commit_latency >= Duration::from_secs(13));
    assert!(socl_out.commit_latency >= Duration::from_secs(13));
}
