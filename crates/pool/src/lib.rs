//! A small reusable work pool for data-parallel maps.
//!
//! Built on the vendored [`crossbeam`] scope — no registry dependencies.
//! A [`WorkPool`] owns nothing at rest: it records how many workers a map
//! may use (requested parallelism clamped to what the machine actually
//! has) and spawns scoped threads per call. That keeps the crate trivially
//! correct under fork/shutdown while still fixing the historical bug this
//! crate exists for: callers spawning one thread per chunk regardless of
//! core count.
//!
//! Panics raised inside worker tasks never hang the scope: [`WorkPool::map`]
//! joins every worker and re-raises the first payload on the caller's
//! thread, while [`WorkPool::try_map`] converts it into a [`PoolError`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};

/// Inputs shorter than this are always mapped inline; spawning threads for
/// a handful of items costs more than it saves.
const MIN_PARALLEL_ITEMS: usize = 4;

/// Global count of worker slots trimmed by the available-parallelism cap
/// (requested − granted, summed over every [`WorkPool::new`] call). This is
/// the "oversubscription avoided" stat: before this crate, each trimmed
/// slot would have been an ad-hoc thread spawned per batch call.
static OVERSUBSCRIPTION_AVOIDED: AtomicU64 = AtomicU64::new(0);

/// Worker slots trimmed by the available-parallelism cap since process
/// start, across all pools.
pub fn oversubscription_avoided() -> u64 {
    OVERSUBSCRIPTION_AVOIDED.load(Ordering::Relaxed)
}

/// Error surfaced by [`WorkPool::try_map`] when a worker task panicked.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PoolError {
    /// A task panicked; the payload's message (when it was a string) is
    /// preserved so callers can log the cause.
    TaskPanicked(String),
}

impl std::fmt::Display for PoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PoolError::TaskPanicked(msg) => write!(f, "pool task panicked: {msg}"),
        }
    }
}

impl std::error::Error for PoolError {}

type PanicPayload = Box<dyn std::any::Any + Send + 'static>;

fn payload_message(payload: &PanicPayload) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// A fixed-width work pool: `map` fans a slice out over at most
/// [`WorkPool::workers`] scoped threads and returns results in input order.
#[derive(Debug)]
pub struct WorkPool {
    workers: usize,
    chunks_dispatched: AtomicU64,
}

impl WorkPool {
    /// Creates a pool with `requested` workers, clamped to the machine's
    /// available parallelism (and to at least 1). The clamped-off excess is
    /// added to the global [`oversubscription_avoided`] counter.
    pub fn new(requested: usize) -> WorkPool {
        let hardware = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let workers = requested.min(hardware).max(1);
        if requested > workers {
            OVERSUBSCRIPTION_AVOIDED.fetch_add((requested - workers) as u64, Ordering::Relaxed);
        }
        WorkPool {
            workers,
            chunks_dispatched: AtomicU64::new(0),
        }
    }

    /// Creates a pool sized to the machine's available parallelism.
    pub fn with_available_parallelism() -> WorkPool {
        let hardware = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        WorkPool::new(hardware)
    }

    /// Number of workers a map may use.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Parallel chunks dispatched by this pool since creation (inline maps
    /// dispatch none).
    pub fn chunks_dispatched(&self) -> u64 {
        self.chunks_dispatched.load(Ordering::Relaxed)
    }

    /// How many parallel chunks a `map` over `len` items would dispatch:
    /// 0 when the map would run inline, the spawned-thread count otherwise.
    pub fn planned_chunks(&self, len: usize) -> usize {
        if self.workers <= 1 || len < MIN_PARALLEL_ITEMS {
            return 0;
        }
        let chunk = len.div_ceil(self.workers);
        len.div_ceil(chunk.max(1))
    }

    /// Maps `f` over `items` in input order, using up to
    /// [`WorkPool::workers`] threads. A panic in a task is re-raised on the
    /// calling thread after every worker has been joined — the scope never
    /// hangs and no other task's panic is lost silently (the first payload
    /// wins).
    pub fn map<T, U, F>(&self, items: &[T], f: F) -> Vec<U>
    where
        T: Sync,
        U: Send,
        F: Fn(&T) -> U + Sync,
    {
        match self.run(items, &f, false) {
            Ok(out) => out,
            Err(payload) => resume_unwind(payload),
        }
    }

    /// Like [`WorkPool::map`], but a panicking task yields
    /// [`PoolError::TaskPanicked`] instead of propagating the panic —
    /// including on the inline (single-worker) path.
    pub fn try_map<T, U, F>(&self, items: &[T], f: F) -> Result<Vec<U>, PoolError>
    where
        T: Sync,
        U: Send,
        F: Fn(&T) -> U + Sync,
    {
        self.run(items, &f, true)
            .map_err(|payload| PoolError::TaskPanicked(payload_message(&payload)))
    }

    /// Shared engine for `map`/`try_map`. `catch_inline` additionally wraps
    /// the inline path in `catch_unwind` (only `try_map` wants that; `map`
    /// lets an inline panic unwind naturally).
    fn run<T, U, F>(&self, items: &[T], f: &F, catch_inline: bool) -> Result<Vec<U>, PanicPayload>
    where
        T: Sync,
        U: Send,
        F: Fn(&T) -> U + Sync,
    {
        if self.workers <= 1 || items.len() < MIN_PARALLEL_ITEMS {
            return if catch_inline {
                catch_unwind(AssertUnwindSafe(|| items.iter().map(f).collect()))
            } else {
                Ok(items.iter().map(f).collect())
            };
        }
        let chunk = items.len().div_ceil(self.workers).max(1);
        let dispatched = items.len().div_ceil(chunk) as u64;
        self.chunks_dispatched
            .fetch_add(dispatched, Ordering::Relaxed);
        let scoped = crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = items
                .chunks(chunk)
                .map(|input| scope.spawn(move |_| input.iter().map(f).collect::<Vec<U>>()))
                .collect();
            let mut out: Vec<U> = Vec::with_capacity(items.len());
            let mut first_panic: Option<PanicPayload> = None;
            for handle in handles {
                match handle.join() {
                    Ok(part) => out.extend(part),
                    Err(payload) => {
                        if first_panic.is_none() {
                            first_panic = Some(payload);
                        }
                    }
                }
            }
            match first_panic {
                None => Ok(out),
                Some(payload) => Err(payload),
            }
        });
        // The outer Err arm covers a panic escaping the scope closure
        // itself, which cannot happen since every join is caught above;
        // routing it through keeps this crate panic-free regardless.
        match scoped {
            Ok(inner) => inner,
            Err(payload) => Err(payload),
        }
    }
}

impl Default for WorkPool {
    fn default() -> WorkPool {
        WorkPool::with_available_parallelism()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let pool = WorkPool::new(8);
        let items: Vec<u64> = (0..1000).collect();
        let out = pool.map(&items, |x| x * 2);
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn clamps_to_available_parallelism() {
        let hardware = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let before = oversubscription_avoided();
        let pool = WorkPool::new(hardware + 7);
        assert_eq!(pool.workers(), hardware);
        assert!(oversubscription_avoided() >= before + 7);
        assert_eq!(WorkPool::new(0).workers(), 1);
    }

    #[test]
    fn try_map_surfaces_panic_as_error() {
        let pool = WorkPool::new(4);
        let items: Vec<u32> = (0..64).collect();
        let err = pool
            .try_map(&items, |x| {
                assert!(*x != 13, "boom on 13");
                *x
            })
            .unwrap_err();
        let PoolError::TaskPanicked(msg) = err;
        assert!(msg.contains("boom"), "unexpected message: {msg}");
    }

    #[test]
    fn try_map_catches_inline_panics_too() {
        let pool = WorkPool::new(1);
        let items = vec![1u32, 2, 3];
        assert!(pool
            .try_map(&items, |_| -> u32 { panic!("inline") })
            .is_err());
    }

    #[test]
    fn map_reraises_worker_panic() {
        let pool = WorkPool::new(4);
        let items: Vec<u32> = (0..64).collect();
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.map(&items, |x| {
                assert!(*x != 40, "worker panic");
                *x
            })
        }));
        assert!(result.is_err());
    }

    #[test]
    fn planned_chunks_matches_dispatch() {
        let pool = WorkPool::new(4);
        let items: Vec<u32> = (0..100).collect();
        let planned = pool.planned_chunks(items.len());
        let before = pool.chunks_dispatched();
        let _ = pool.map(&items, |x| *x);
        assert_eq!(pool.chunks_dispatched() - before, planned as u64);
        // Tiny inputs run inline and dispatch nothing.
        assert_eq!(pool.planned_chunks(2), 0);
    }
}
