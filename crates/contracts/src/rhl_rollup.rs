//! Rollup-inspired hybrid logging contract — the RHL baseline (paper §6.3).
//!
//! Modelled on Ethereum optimistic rollups, adapted to logging: the off-chain
//! node posts each batch's *operations* on-chain together with a claimed
//! digest. Anyone may challenge a batch during the challenge window; the
//! contract recomputes the digest from the posted operations and, on
//! mismatch, pays the poster's escrow to the challenger (a fraud proof).
//! A batch finalizes only after its window closes — which is why RHL's
//! stage-2 latency is "hours to days" while its cost matches OCL's (all raw
//! operations hit calldata and storage).

use std::collections::HashMap;

use wedge_chain::{CallContext, Contract, Decoder, Encoder, Revert};
use wedge_crypto::hash::Hash32;
use wedge_crypto::keys::Address;
use wedge_merkle::MerkleTree;

/// Method selectors.
mod selector {
    /// Posts a batch (operations + claimed digest).
    pub const SUBMIT_BATCH: u8 = 0x01;
    /// Challenges a posted batch.
    pub const CHALLENGE: u8 = 0x02;
    /// Queries a batch's status.
    pub const BATCH_STATUS: u8 = 0x03;
}

/// Status of a posted batch.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BatchStatus {
    /// Inside the challenge window.
    Pending,
    /// Window elapsed; final.
    Finalized,
    /// Successfully challenged; escrow seized.
    Fraudulent,
}

#[derive(Clone)]
struct PostedBatch {
    operations: Vec<Vec<u8>>,
    claimed_digest: Hash32,
    posted_at: u64,
    fraudulent: bool,
}

/// The RHL contract.
#[derive(Clone)]
pub struct RhlRollup {
    /// The posting off-chain node.
    poster: Address,
    /// Challenge window in (simulated) seconds. Real rollups use days; the
    /// comparison experiments configure this.
    challenge_window: u64,
    batches: HashMap<u64, PostedBatch>,
    next_batch: u64,
}

impl RhlRollup {
    /// Notional deployed-code size for gas realism.
    pub const CODE_LEN: usize = 3_000;

    /// Creates the contract; escrow is the deploy endowment.
    pub fn new(poster: Address, challenge_window: u64) -> RhlRollup {
        RhlRollup {
            poster,
            challenge_window,
            batches: HashMap::new(),
            next_batch: 0,
        }
    }

    /// Encodes a batch submission.
    pub fn submit_calldata<D: AsRef<[u8]>>(operations: &[D], digest: &Hash32) -> Vec<u8> {
        let total: usize = operations.iter().map(|o| o.as_ref().len() + 4).sum();
        let mut enc = Encoder::with_capacity(45 + total);
        enc.u8(selector::SUBMIT_BATCH)
            .bytes(digest.as_bytes())
            .u64(operations.len() as u64);
        for op in operations {
            enc.bytes(op.as_ref());
        }
        enc.finish()
    }

    /// Encodes a challenge of `batch_id`.
    pub fn challenge_calldata(batch_id: u64) -> Vec<u8> {
        let mut enc = Encoder::with_capacity(9);
        enc.u8(selector::CHALLENGE).u64(batch_id);
        enc.finish()
    }

    /// Encodes a status query of `batch_id`.
    pub fn status_calldata(batch_id: u64) -> Vec<u8> {
        let mut enc = Encoder::with_capacity(9);
        enc.u8(selector::BATCH_STATUS).u64(batch_id);
        enc.finish()
    }

    /// Decodes a status query output.
    pub fn decode_status(output: &[u8]) -> Option<BatchStatus> {
        match output.first()? {
            0 => Some(BatchStatus::Pending),
            1 => Some(BatchStatus::Finalized),
            2 => Some(BatchStatus::Fraudulent),
            _ => None,
        }
    }

    /// The canonical digest over a batch's operations (a Merkle root, the
    /// same construction the honest node uses).
    pub fn compute_digest<D: AsRef<[u8]>>(operations: &[D]) -> Result<Hash32, Revert> {
        MerkleTree::from_leaves(operations)
            .map(|t| t.root())
            .map_err(|e| Revert::new(e.to_string()))
    }
}

impl Contract for RhlRollup {
    fn type_name(&self) -> &'static str {
        "RhlRollup"
    }

    fn call(&mut self, ctx: &mut CallContext<'_>, input: &[u8]) -> Result<Vec<u8>, Revert> {
        let mut dec = Decoder::new(input);
        let sel = dec.u8().map_err(|_| Revert::new("empty calldata"))?;
        match sel {
            selector::SUBMIT_BATCH => {
                if ctx.sender != self.poster {
                    return Err(Revert::new("caller is not the rollup poster"));
                }
                let digest: [u8; 32] = dec.bytes_fixed().map_err(|e| Revert::new(e.to_string()))?;
                let count = dec.u64().map_err(|e| Revert::new(e.to_string()))?;
                if count > dec.remaining() as u64 {
                    return Err(Revert::new("operation count exceeds calldata"));
                }
                let mut operations = Vec::with_capacity(count as usize);
                let mut total_words = 1; // digest word
                for _ in 0..count {
                    let op = dec.bytes().map_err(|e| Revert::new(e.to_string()))?;
                    total_words += op.len().div_ceil(32);
                    operations.push(op.to_vec());
                }
                dec.finish().map_err(|e| Revert::new(e.to_string()))?;
                if operations.is_empty() {
                    return Err(Revert::new("empty batch"));
                }
                // The rollup's defining cost: raw operations land in storage.
                ctx.charge_storage_set(total_words)?;
                ctx.charge_storage_reset(1)?;
                let id = self.next_batch;
                self.next_batch += 1;
                self.batches.insert(
                    id,
                    PostedBatch {
                        operations,
                        claimed_digest: Hash32(digest),
                        posted_at: ctx.timestamp,
                        fraudulent: false,
                    },
                );
                ctx.emit("BatchPosted", id.to_be_bytes().to_vec())?;
                Ok(id.to_be_bytes().to_vec())
            }
            selector::CHALLENGE => {
                let id = dec.u64().map_err(|e| Revert::new(e.to_string()))?;
                let batch = self
                    .batches
                    .get_mut(&id)
                    .ok_or_else(|| Revert::new("no such batch"))?;
                if batch.fraudulent {
                    return Err(Revert::new("already proven fraudulent"));
                }
                if ctx.timestamp >= batch.posted_at + self.challenge_window {
                    return Err(Revert::new("challenge window closed"));
                }
                // Fraud proof: recompute the digest from the on-chain ops.
                ctx.charge_storage_read(
                    batch.operations.iter().map(|o| o.len().div_ceil(32)).sum(),
                )?;
                let actual = RhlRollup::compute_digest(&batch.operations)?;
                if actual == batch.claimed_digest {
                    return Err(Revert::new("digest is correct; challenge failed"));
                }
                batch.fraudulent = true;
                let escrow = ctx.contract_balance();
                ctx.transfer_out(ctx.sender, escrow)?;
                ctx.emit("FraudProven", id.to_be_bytes().to_vec())?;
                Ok(vec![1])
            }
            selector::BATCH_STATUS => {
                let id = dec.u64().map_err(|e| Revert::new(e.to_string()))?;
                let batch = self
                    .batches
                    .get(&id)
                    .ok_or_else(|| Revert::new("no such batch"))?;
                ctx.charge_storage_read(1)?;
                let status = if batch.fraudulent {
                    2
                } else if ctx.timestamp >= batch.posted_at + self.challenge_window {
                    1
                } else {
                    0
                };
                Ok(vec![status])
            }
            other => Err(Revert::new(format!("unknown selector 0x{other:02x}"))),
        }
    }

    fn clone_box(&self) -> Box<dyn Contract> {
        Box::new(self.clone())
    }
}
