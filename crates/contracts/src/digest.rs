//! The canonical signed-response digest shared between the Offchain Node
//! and the Punishment contract.
//!
//! Algorithm 2 line 1 computes `msgHash ← hash(index, merkleRoot,
//! merkleProof, rawData)` and recovers the signer from the client-supplied
//! signature. The Offchain Node must sign *exactly* these bytes when it
//! off-chain-commits a response (paper §4.1's tuple `R`), so the encoding
//! lives here, in one place, used by both sides.

use wedge_chain::Encoder;
use wedge_crypto::hash::{keccak256, Hash32};

/// Computes the digest the Offchain Node signs for one response `R`:
/// the promise "`raw_data` lives at `index` under Merkle root `merkle_root`,
/// provable by `proof_bytes`".
pub fn response_digest(
    index: u64,
    merkle_root: &Hash32,
    proof_bytes: &[u8],
    raw_data: &[u8],
) -> [u8; 32] {
    keccak256(&response_digest_bytes(
        index,
        merkle_root,
        proof_bytes,
        raw_data,
    ))
}

/// The exact preimage [`response_digest`] hashes. Exposed so callers
/// producing many responses at once (the stage-1 batcher) can encode every
/// preimage first and push them through the ×4 `keccak256_batch` path
/// instead of hashing one response at a time.
pub fn response_digest_bytes(
    index: u64,
    merkle_root: &Hash32,
    proof_bytes: &[u8],
    raw_data: &[u8],
) -> Vec<u8> {
    let mut enc = Encoder::with_capacity(64 + proof_bytes.len() + raw_data.len());
    enc.u64(index)
        .bytes(merkle_root.as_bytes())
        .bytes(proof_bytes)
        .bytes(raw_data);
    enc.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_is_deterministic() {
        let root = Hash32([1; 32]);
        let a = response_digest(5, &root, b"proof", b"data");
        let b = response_digest(5, &root, b"proof", b"data");
        assert_eq!(a, b);
    }

    #[test]
    fn digest_binds_every_field() {
        let root = Hash32([1; 32]);
        let base = response_digest(5, &root, b"proof", b"data");
        assert_ne!(base, response_digest(6, &root, b"proof", b"data"));
        assert_ne!(
            base,
            response_digest(5, &Hash32([2; 32]), b"proof", b"data")
        );
        assert_ne!(base, response_digest(5, &root, b"proofX", b"data"));
        assert_ne!(base, response_digest(5, &root, b"proof", b"dataX"));
    }

    #[test]
    fn field_boundaries_are_unambiguous() {
        let root = Hash32([0; 32]);
        // Moving a byte between proof and data must change the digest.
        let a = response_digest(0, &root, b"ab", b"c");
        let b = response_digest(0, &root, b"a", b"bc");
        assert_ne!(a, b);
    }
}
