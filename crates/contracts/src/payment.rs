//! The Payment smart contract (paper §4.5, Algorithm 3): a subscription
//! micro-payment channel for the DApp-logging-as-a-service model.
//!
//! The client deposits ether; once `startPayment` runs, the deposit
//! *virtually* streams to the Offchain Node at `payment_per_period` wei per
//! `period` seconds. Nothing moves in the background — the division of the
//! balance is computed retrospectively from block timestamps whenever
//! `updatePaymentStatus` runs (it runs implicitly before any withdrawal, so
//! overdraws are impossible).
//!
//! Events (paper names):
//! - `PaymentStateUpdated(remaining_periods)` — deposit healthy.
//! - `DepositInsufficient(overdue_periods)` — client is behind.
//! - `ContractViolated` — overdue beyond `max_overdue_periods`; the whole
//!   balance is paid to the node and the contract terminates.

use wedge_chain::{CallContext, Contract, Decoder, Encoder, Revert, Wei};
use wedge_crypto::keys::Address;

/// Method selectors.
mod selector {
    /// Client starts the payment stream.
    pub const START_PAYMENT: u8 = 0x01;
    /// Recomputes the deposit split (Algorithm 3).
    pub const UPDATE_PAYMENT_STATUS: u8 = 0x02;
    /// Offchain Node withdraws its reserved amount.
    pub const WITHDRAW_EDGE: u8 = 0x03;
    /// Client withdraws unreserved deposit.
    pub const WITHDRAW_CLIENT: u8 = 0x04;
    /// Client terminates the subscription.
    pub const TERMINATE: u8 = 0x05;
    /// Status getter.
    pub const GET_STATUS: u8 = 0x06;
}

/// Immutable subscription terms fixed at deployment.
#[derive(Clone, Copy, Debug)]
pub struct PaymentTerms {
    /// The service provider being paid.
    pub offchain_address: Address,
    /// The paying client (a shared address if there are many publishers).
    pub client_address: Address,
    /// Billing period in (simulated) seconds.
    pub period: u64,
    /// Wei owed per period.
    pub payment_per_period: Wei,
    /// Overdue periods tolerated before the contract declares violation.
    pub max_overdue_periods: u64,
}

/// Decoded status snapshot (see [`Payment::decode_status`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PaymentStatus {
    /// `startPayment` has run.
    pub started: bool,
    /// Stream ended (violation or client termination).
    pub terminated: bool,
    /// Wei withdrawable only by the Offchain Node.
    pub reserved_for_edge: Wei,
    /// Total contract balance.
    pub balance: Wei,
    /// Anchor timestamp of the current stream window.
    pub payment_start_time: u64,
}

/// The Payment contract state.
#[derive(Clone)]
pub struct Payment {
    terms: PaymentTerms,
    /// `amount_reserved_for_edge` in the paper.
    reserved_for_edge: Wei,
    /// `payment_start_time` in the paper.
    payment_start_time: u64,
    started: bool,
    terminated: bool,
}

impl Payment {
    /// Notional deployed-code size for gas realism.
    pub const CODE_LEN: usize = 2_000;

    /// Creates the contract with its immutable terms.
    pub fn new(terms: PaymentTerms) -> Payment {
        assert!(terms.period > 0, "period must be positive");
        assert!(
            !terms.payment_per_period.is_zero(),
            "payment_per_period must be positive"
        );
        Payment {
            terms,
            reserved_for_edge: Wei::ZERO,
            payment_start_time: 0,
            started: false,
            terminated: false,
        }
    }

    /// Calldata builders (one per method).
    pub fn start_payment_calldata() -> Vec<u8> {
        vec![selector::START_PAYMENT]
    }
    /// `updatePaymentStatus` calldata.
    pub fn update_status_calldata() -> Vec<u8> {
        vec![selector::UPDATE_PAYMENT_STATUS]
    }
    /// Node withdrawal calldata.
    pub fn withdraw_edge_calldata() -> Vec<u8> {
        vec![selector::WITHDRAW_EDGE]
    }
    /// Client withdrawal calldata.
    pub fn withdraw_client_calldata(amount: Wei) -> Vec<u8> {
        let mut enc = Encoder::with_capacity(17);
        enc.u8(selector::WITHDRAW_CLIENT).u128(amount.0);
        enc.finish()
    }
    /// Client termination calldata.
    pub fn terminate_calldata() -> Vec<u8> {
        vec![selector::TERMINATE]
    }
    /// Status getter calldata.
    pub fn status_calldata() -> Vec<u8> {
        vec![selector::GET_STATUS]
    }

    /// Decodes the status getter output.
    pub fn decode_status(output: &[u8]) -> Option<PaymentStatus> {
        let mut dec = Decoder::new(output);
        let started = dec.u8().ok()? == 1;
        let terminated = dec.u8().ok()? == 1;
        let reserved = Wei(dec.u128().ok()?);
        let balance = Wei(dec.u128().ok()?);
        let start_time = dec.u64().ok()?;
        dec.finish().ok()?;
        Some(PaymentStatus {
            started,
            terminated,
            reserved_for_edge: reserved,
            balance,
            payment_start_time: start_time,
        })
    }

    /// Algorithm 3: recompute `amount_reserved_for_edge` from elapsed block
    /// time, emitting the appropriate event. Safe to call by anyone.
    fn update_payment_status(&mut self, ctx: &mut CallContext<'_>) -> Result<(), Revert> {
        if !self.started || self.terminated {
            return Ok(()); // nothing streams before start or after end
        }
        let now = ctx.timestamp;
        let elapsed = now.saturating_sub(self.payment_start_time);
        let periods_elapsed = elapsed / self.terms.period;
        if periods_elapsed == 0 {
            return Ok(());
        }
        let owed = self
            .terms
            .payment_per_period
            .saturating_mul(periods_elapsed as u128);
        let client_funds = ctx
            .contract_balance()
            .saturating_sub(self.reserved_for_edge);
        ctx.charge_storage_reset(2)?; // reserved + start_time rewrites

        if owed <= client_funds {
            // Deposit healthy: reserve what is owed and advance the anchor
            // by whole periods (partial-period progress is retained).
            self.reserved_for_edge = self
                .reserved_for_edge
                .checked_add(owed)
                .ok_or_else(|| Revert::new("reserve overflow"))?;
            self.payment_start_time += periods_elapsed * self.terms.period;
            let remaining_periods = (client_funds.0 - owed.0) / self.terms.payment_per_period.0;
            // Line 17: PaymentStateUpdated(periods the deposit still covers).
            ctx.emit(
                "PaymentStateUpdated",
                (remaining_periods as u64).to_be_bytes().to_vec(),
            )?;
        } else {
            // Client is behind: reserve every wei it can still cover.
            let payable_periods = client_funds.0 / self.terms.payment_per_period.0;
            let overdue = periods_elapsed - payable_periods as u64;
            let covered = self
                .terms
                .payment_per_period
                .saturating_mul(payable_periods);
            self.reserved_for_edge = self
                .reserved_for_edge
                .checked_add(covered)
                .ok_or_else(|| Revert::new("reserve overflow"))?;
            self.payment_start_time += payable_periods as u64 * self.terms.period;
            if overdue > self.terms.max_overdue_periods {
                // Line 14: violation — everything to the node, then die.
                let balance = ctx.contract_balance();
                self.reserved_for_edge = Wei::ZERO;
                self.terminated = true;
                ctx.transfer_out(self.terms.offchain_address, balance)?;
                ctx.emit("ContractViolated", overdue.to_be_bytes().to_vec())?;
            } else {
                // Line 10: remind the client.
                ctx.emit("DepositInsufficient", overdue.to_be_bytes().to_vec())?;
            }
        }
        Ok(())
    }
}

impl Contract for Payment {
    fn type_name(&self) -> &'static str {
        "Payment"
    }

    fn call(&mut self, ctx: &mut CallContext<'_>, input: &[u8]) -> Result<Vec<u8>, Revert> {
        let mut dec = Decoder::new(input);
        let sel = dec.u8().map_err(|_| Revert::new("empty calldata"))?;
        match sel {
            selector::START_PAYMENT => {
                if ctx.sender != self.terms.client_address {
                    return Err(Revert::new("only the client may start payments"));
                }
                if self.started {
                    return Err(Revert::new("payments already started"));
                }
                if self.terminated {
                    return Err(Revert::new("contract terminated"));
                }
                ctx.charge_storage_set(2)?;
                self.started = true;
                self.payment_start_time = ctx.timestamp;
                ctx.emit("PaymentStarted", ctx.timestamp.to_be_bytes().to_vec())?;
                Ok(Vec::new())
            }
            selector::UPDATE_PAYMENT_STATUS => {
                self.update_payment_status(ctx)?;
                Ok(Vec::new())
            }
            selector::WITHDRAW_EDGE => {
                if ctx.sender != self.terms.offchain_address {
                    return Err(Revert::new("only the offchain node may withdraw"));
                }
                self.update_payment_status(ctx)?;
                let amount = self.reserved_for_edge;
                if amount.is_zero() {
                    return Err(Revert::new("nothing reserved to withdraw"));
                }
                self.reserved_for_edge = Wei::ZERO;
                // Paper: withdrawal resets the payment anchor to this block's
                // timestamp.
                if !self.terminated {
                    self.payment_start_time = ctx.timestamp;
                }
                ctx.charge_storage_reset(2)?;
                ctx.transfer_out(self.terms.offchain_address, amount)?;
                ctx.emit("EdgeWithdrawal", amount.0.to_be_bytes().to_vec())?;
                Ok(Vec::new())
            }
            selector::WITHDRAW_CLIENT => {
                if ctx.sender != self.terms.client_address {
                    return Err(Revert::new("only the client may withdraw"));
                }
                let amount = Wei(dec.u128().map_err(|e| Revert::new(e.to_string()))?);
                self.update_payment_status(ctx)?;
                let free = ctx
                    .contract_balance()
                    .saturating_sub(self.reserved_for_edge);
                if amount > free {
                    return Err(Revert::new(format!(
                        "overdraw prevented: {amount} requested, {free} unreserved"
                    )));
                }
                ctx.transfer_out(self.terms.client_address, amount)?;
                ctx.emit("ClientWithdrawal", amount.0.to_be_bytes().to_vec())?;
                Ok(Vec::new())
            }
            selector::TERMINATE => {
                if ctx.sender != self.terms.client_address {
                    return Err(Revert::new("only the client may terminate"));
                }
                if self.terminated {
                    return Err(Revert::new("already terminated"));
                }
                // Settle up to now, pay the node its reserve, refund the rest.
                self.update_payment_status(ctx)?;
                if self.terminated {
                    return Ok(Vec::new()); // update escalated to violation
                }
                self.terminated = true;
                ctx.charge_storage_reset(1)?;
                let to_edge = self.reserved_for_edge;
                self.reserved_for_edge = Wei::ZERO;
                if !to_edge.is_zero() {
                    ctx.transfer_out(self.terms.offchain_address, to_edge)?;
                }
                let refund = ctx.contract_balance();
                if !refund.is_zero() {
                    ctx.transfer_out(self.terms.client_address, refund)?;
                }
                ctx.emit("SubscriptionTerminated", to_edge.0.to_be_bytes().to_vec())?;
                Ok(Vec::new())
            }
            selector::GET_STATUS => {
                ctx.charge_storage_read(3)?;
                let mut enc = Encoder::with_capacity(42);
                enc.u8(self.started as u8)
                    .u8(self.terminated as u8)
                    .u128(self.reserved_for_edge.0)
                    .u128(ctx.contract_balance().0)
                    .u64(self.payment_start_time);
                Ok(enc.finish())
            }
            other => Err(Revert::new(format!("unknown selector 0x{other:02x}"))),
        }
    }

    fn clone_box(&self) -> Box<dyn Contract> {
        Box::new(self.clone())
    }
}
