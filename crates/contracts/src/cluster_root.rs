//! The Cluster Root contract: one root-of-roots commit per epoch.
//!
//! A sharded deployment runs N Offchain Nodes, each producing batch roots
//! at stage-1 speed. Instead of N `RootRecord` transactions per group, the
//! epoch coordinator folds every shard's epoch root into a single Merkle
//! *root-of-roots* and commits it here — one transaction per epoch
//! regardless of shard count, amortizing the on-chain base cost N×.
//!
//! Invariants, mirroring [`RootRecord`](crate::RootRecord)'s Definition
//! 3.2 discipline:
//!
//! 1. only the configured `coordinator` address may commit,
//! 2. epochs commit strictly sequentially (`epoch == tail_epoch`),
//! 3. each epoch is written **at most once** — there is no update path,
//! 4. the stored digest is *recomputed on-chain* from the submitted shard
//!    roots, so the coordinator cannot record a root that disagrees with
//!    the shard roots it claims to aggregate.
//!
//! Calldata carries the full shard-root vector (32 bytes per shard) — the
//! per-shard marginal cost is calldata + hashing, not storage, which is
//! where the N× amortization comes from.

use std::collections::HashMap;

use wedge_chain::{CallContext, Contract, Decoder, Encoder, Gas, Revert};
use wedge_crypto::hash::Hash32;
use wedge_crypto::keys::Address;
use wedge_merkle::MerkleTree;

/// Method selectors.
mod selector {
    /// `Commit-Epoch(epoch, shard_roots)`.
    pub const COMMIT_EPOCH: u8 = 0x01;
    /// `Get-Epoch-Root(epoch)`.
    pub const GET_EPOCH_ROOT: u8 = 0x02;
    /// Returns `tail_epoch`.
    pub const GET_TAIL_EPOCH: u8 = 0x03;
    /// `Get-Shard-Count(epoch)`.
    pub const GET_SHARD_COUNT: u8 = 0x04;
}

/// Modeled keccak cost per shard root folded into the root-of-roots
/// (one leaf hash plus amortized interior nodes).
const HASH_GAS_PER_SHARD: u64 = 72;

/// The Cluster Root contract state.
#[derive(Clone)]
pub struct ClusterRoot {
    /// The only address allowed to commit epochs (immutable).
    coordinator: Address,
    /// epoch → root-of-roots digest.
    epoch_roots: HashMap<u64, Hash32>,
    /// epoch → number of shard leaves under that digest.
    shard_counts: HashMap<u64, u64>,
    /// Next epoch to be committed.
    tail_epoch: u64,
}

impl ClusterRoot {
    /// Notional deployed-code size, for deploy-gas realism (the on-chain
    /// Merkle fold makes it a little larger than `RootRecord`).
    pub const CODE_LEN: usize = 1_700;

    /// Creates the contract bound to its epoch coordinator.
    pub fn new(coordinator: Address) -> ClusterRoot {
        ClusterRoot {
            coordinator,
            epoch_roots: HashMap::new(),
            shard_counts: HashMap::new(),
            tail_epoch: 0,
        }
    }

    /// Recomputes the root-of-roots exactly as the contract does: a Merkle
    /// tree whose leaf `i` is shard `i`'s epoch root bytes. Coordinators
    /// use this off-chain to build matching proofs.
    ///
    /// The 32-byte shard-root leaves are hashed through the ×4 batch path
    /// (`wedge_merkle::hash_leaves`) and folded by the ×4-aware builder —
    /// byte-identical to the pre-rework per-leaf sponge.
    pub fn fold_roots(shard_roots: &[Hash32]) -> Option<Hash32> {
        let leaves: Vec<&[u8]> = shard_roots
            .iter()
            .map(|r| r.as_bytes().as_slice())
            .collect();
        MerkleTree::from_leaf_hashes(wedge_merkle::hash_leaves(&leaves))
            .ok()
            .map(|t| t.root())
    }

    /// Encodes `Commit-Epoch(epoch, shard_roots)` calldata.
    pub fn commit_epoch_calldata(epoch: u64, shard_roots: &[Hash32]) -> Vec<u8> {
        let mut enc = Encoder::with_capacity(17 + shard_roots.len() * 36);
        enc.u8(selector::COMMIT_EPOCH)
            .u64(epoch)
            .u64(shard_roots.len() as u64);
        for root in shard_roots {
            enc.bytes(root.as_bytes());
        }
        enc.finish()
    }

    /// Encodes `Get-Epoch-Root(epoch)` calldata.
    pub fn get_epoch_root_calldata(epoch: u64) -> Vec<u8> {
        let mut enc = Encoder::with_capacity(9);
        enc.u8(selector::GET_EPOCH_ROOT).u64(epoch);
        enc.finish()
    }

    /// Encodes `tail_epoch` getter calldata.
    pub fn get_tail_epoch_calldata() -> Vec<u8> {
        vec![selector::GET_TAIL_EPOCH]
    }

    /// Encodes `Get-Shard-Count(epoch)` calldata.
    pub fn get_shard_count_calldata(epoch: u64) -> Vec<u8> {
        let mut enc = Encoder::with_capacity(9);
        enc.u8(selector::GET_SHARD_COUNT).u64(epoch);
        enc.finish()
    }

    /// Decodes `Get-Epoch-Root` output: `None` when the epoch has no
    /// digest yet.
    pub fn decode_root(output: &[u8]) -> Option<Hash32> {
        if output.len() != 32 {
            return None;
        }
        let mut h = [0u8; 32];
        h.copy_from_slice(output);
        let h = Hash32(h);
        if h.is_zero() {
            None
        } else {
            Some(h)
        }
    }

    /// Decodes the tail-epoch / shard-count getters.
    pub fn decode_u64(output: &[u8]) -> Option<u64> {
        Some(u64::from_be_bytes(output.try_into().ok()?))
    }

    /// `Commit-Epoch`: sequential, single-write, root recomputed on-chain.
    fn commit_epoch(
        &mut self,
        ctx: &mut CallContext<'_>,
        input: &mut Decoder<'_>,
    ) -> Result<Vec<u8>, Revert> {
        if ctx.sender != self.coordinator {
            return Err(Revert::new("caller is not the epoch coordinator"));
        }
        let epoch = input.u64().map_err(|e| Revert::new(e.to_string()))?;
        if epoch != self.tail_epoch {
            return Err(Revert::new(format!(
                "non-sequential epoch: {epoch} != tail_epoch {}",
                self.tail_epoch
            )));
        }
        let count = input.u64().map_err(|e| Revert::new(e.to_string()))?;
        if count == 0 {
            return Err(Revert::new("epoch with zero shards"));
        }
        // Every shard root consumes >= 36 calldata bytes, so a count beyond
        // the remaining input is hostile.
        if count > input.remaining() as u64 {
            return Err(Revert::new("shard count exceeds calldata"));
        }
        let mut shard_roots = Vec::with_capacity(count as usize);
        for _ in 0..count {
            let root: [u8; 32] = input
                .bytes_fixed()
                .map_err(|e| Revert::new(e.to_string()))?;
            shard_roots.push(Hash32(root));
        }
        input.finish().map_err(|e| Revert::new(e.to_string()))?;
        // The fold itself is metered: one leaf hash per shard plus the
        // interior nodes, modeled as a flat per-shard keccak cost.
        ctx.charge(Gas(HASH_GAS_PER_SHARD * count))?;
        let root = ClusterRoot::fold_roots(&shard_roots)
            .ok_or_else(|| Revert::new("root-of-roots fold failed"))?;
        // Two fresh storage words (digest + shard count), one rewritten
        // (tail) — constant regardless of shard count.
        ctx.charge_storage_set(2)?;
        ctx.charge_storage_reset(1)?;
        debug_assert!(
            !self.epoch_roots.contains_key(&epoch),
            "single-write invariant"
        );
        self.epoch_roots.insert(epoch, root);
        self.shard_counts.insert(epoch, count);
        self.tail_epoch = epoch + 1;
        ctx.emit("EpochCommitted", {
            let mut enc = Encoder::with_capacity(48);
            enc.u64(epoch).u64(count).bytes(root.as_bytes());
            enc.finish()
        })?;
        Ok(root.as_bytes().to_vec())
    }
}

impl Contract for ClusterRoot {
    fn type_name(&self) -> &'static str {
        "ClusterRoot"
    }

    fn call(&mut self, ctx: &mut CallContext<'_>, input: &[u8]) -> Result<Vec<u8>, Revert> {
        let mut dec = Decoder::new(input);
        let selector = dec.u8().map_err(|_| Revert::new("empty calldata"))?;
        match selector {
            selector::COMMIT_EPOCH => self.commit_epoch(ctx, &mut dec),
            selector::GET_EPOCH_ROOT => {
                let epoch = dec.u64().map_err(|e| Revert::new(e.to_string()))?;
                ctx.charge_storage_read(1)?;
                let root = self
                    .epoch_roots
                    .get(&epoch)
                    .copied()
                    .unwrap_or(Hash32::ZERO);
                Ok(root.as_bytes().to_vec())
            }
            selector::GET_TAIL_EPOCH => {
                ctx.charge_storage_read(1)?;
                Ok(self.tail_epoch.to_be_bytes().to_vec())
            }
            selector::GET_SHARD_COUNT => {
                let epoch = dec.u64().map_err(|e| Revert::new(e.to_string()))?;
                ctx.charge_storage_read(1)?;
                let count = self.shard_counts.get(&epoch).copied().unwrap_or(0);
                Ok(count.to_be_bytes().to_vec())
            }
            other => Err(Revert::new(format!("unknown selector 0x{other:02x}"))),
        }
    }

    fn clone_box(&self) -> Box<dyn Contract> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use wedge_chain::{Chain, Wei};
    use wedge_crypto::Keypair;
    use wedge_sim::Clock;

    fn setup() -> (Arc<Chain>, Keypair, Keypair, Address) {
        let chain = Chain::with_defaults(Clock::manual());
        let coordinator = Keypair::from_seed(b"epoch-coordinator");
        let stranger = Keypair::from_seed(b"stranger");
        chain.fund(coordinator.address, Wei::from_eth(100));
        chain.fund(stranger.address, Wei::from_eth(100));
        let (addr, _) = chain
            .deploy(
                &coordinator.secret,
                Box::new(ClusterRoot::new(coordinator.address)),
                Wei::ZERO,
                ClusterRoot::CODE_LEN,
            )
            .unwrap();
        chain.mine_block();
        (chain, coordinator, stranger, addr)
    }

    fn shard_roots(n: u8) -> Vec<Hash32> {
        (1..=n).map(|i| Hash32([i; 32])).collect()
    }

    #[test]
    fn sequential_epochs_accepted_and_root_recomputed() {
        let (chain, coord, _, addr) = setup();
        for epoch in 0..3u64 {
            let roots = shard_roots(4);
            let tx = chain
                .call_contract(
                    &coord.secret,
                    addr,
                    Wei::ZERO,
                    ClusterRoot::commit_epoch_calldata(epoch, &roots),
                    Gas(400_000),
                )
                .unwrap();
            chain.mine_block();
            assert!(chain.receipt(tx).unwrap().status.is_success());
            let out = chain
                .view(addr, &ClusterRoot::get_epoch_root_calldata(epoch))
                .unwrap();
            assert_eq!(
                ClusterRoot::decode_root(&out),
                ClusterRoot::fold_roots(&roots),
                "on-chain digest is the Merkle fold of the shard roots"
            );
            let count = chain
                .view(addr, &ClusterRoot::get_shard_count_calldata(epoch))
                .unwrap();
            assert_eq!(ClusterRoot::decode_u64(&count), Some(4));
        }
        let tail = chain
            .view(addr, &ClusterRoot::get_tail_epoch_calldata())
            .unwrap();
        assert_eq!(ClusterRoot::decode_u64(&tail), Some(3));
    }

    #[test]
    fn non_coordinator_rejected() {
        let (chain, _, stranger, addr) = setup();
        let tx = chain
            .call_contract(
                &stranger.secret,
                addr,
                Wei::ZERO,
                ClusterRoot::commit_epoch_calldata(0, &shard_roots(2)),
                Gas(400_000),
            )
            .unwrap();
        chain.mine_block();
        assert!(!chain.receipt(tx).unwrap().status.is_success());
        let out = chain
            .view(addr, &ClusterRoot::get_epoch_root_calldata(0))
            .unwrap();
        assert_eq!(ClusterRoot::decode_root(&out), None);
    }

    #[test]
    fn epoch_gap_and_replay_rejected() {
        let (chain, coord, _, addr) = setup();
        // Gap: epoch 2 before 0/1.
        let gap = chain
            .call_contract(
                &coord.secret,
                addr,
                Wei::ZERO,
                ClusterRoot::commit_epoch_calldata(2, &shard_roots(2)),
                Gas(400_000),
            )
            .unwrap();
        chain.mine_block();
        assert!(!chain.receipt(gap).unwrap().status.is_success());
        // Commit epoch 0, then try to rewrite it (stale replay).
        chain
            .call_contract(
                &coord.secret,
                addr,
                Wei::ZERO,
                ClusterRoot::commit_epoch_calldata(0, &shard_roots(2)),
                Gas(400_000),
            )
            .unwrap();
        chain.mine_block();
        let replay = chain
            .call_contract(
                &coord.secret,
                addr,
                Wei::ZERO,
                ClusterRoot::commit_epoch_calldata(0, &[Hash32([0xEE; 32])]),
                Gas(400_000),
            )
            .unwrap();
        chain.mine_block();
        assert!(!chain.receipt(replay).unwrap().status.is_success());
        let out = chain
            .view(addr, &ClusterRoot::get_epoch_root_calldata(0))
            .unwrap();
        assert_eq!(
            ClusterRoot::decode_root(&out),
            ClusterRoot::fold_roots(&shard_roots(2)),
            "original digest intact"
        );
    }

    #[test]
    fn zero_shards_rejected() {
        let (chain, coord, _, addr) = setup();
        let tx = chain
            .call_contract(
                &coord.secret,
                addr,
                Wei::ZERO,
                ClusterRoot::commit_epoch_calldata(0, &[]),
                Gas(400_000),
            )
            .unwrap();
        chain.mine_block();
        assert!(!chain.receipt(tx).unwrap().status.is_success());
    }

    #[test]
    fn storage_cost_constant_in_shard_count() {
        // The amortization claim: marginal cost per extra shard is calldata
        // + hashing only, far below one RootRecord storage word.
        let (chain, coord, _, addr) = setup();
        let one = chain
            .call_contract(
                &coord.secret,
                addr,
                Wei::ZERO,
                ClusterRoot::commit_epoch_calldata(0, &shard_roots(1)),
                Gas(10_000_000),
            )
            .unwrap();
        chain.mine_block();
        let g1 = chain.receipt(one).unwrap().gas_used.0;
        let sixteen = chain
            .call_contract(
                &coord.secret,
                addr,
                Wei::ZERO,
                ClusterRoot::commit_epoch_calldata(1, &shard_roots(16)),
                Gas(10_000_000),
            )
            .unwrap();
        chain.mine_block();
        let g16 = chain.receipt(sixteen).unwrap().gas_used.0;
        let marginal = (g16 - g1) / 15;
        assert!(
            marginal < 5_000,
            "marginal per-shard gas {marginal} should be calldata+hash only (g1={g1}, g16={g16})"
        );
    }

    #[test]
    fn malformed_calldata_reverts() {
        let (chain, _, _, addr) = setup();
        assert!(chain.view(addr, &[]).is_err());
        assert!(chain.view(addr, &[0x99]).is_err());
        assert!(chain.view(addr, &[selector::GET_EPOCH_ROOT, 1]).is_err());
        // Hostile shard count far beyond calldata.
        let mut enc = Encoder::with_capacity(32);
        enc.u8(selector::COMMIT_EPOCH).u64(0).u64(u64::MAX);
        assert!(chain.view(addr, &enc.finish()).is_err());
    }
}
