//! The Root Record smart contract (paper §4.4, Algorithm 1).
//!
//! An on-chain store mapping log positions to Merkle-root digests. Three
//! invariants drive WedgeBlock's blockchain-committed safety (Definition
//! 3.2):
//!
//! 1. only the configured `offchain_address` may write,
//! 2. roots are written strictly sequentially (`start_idx == tail_idx`),
//! 3. each position is written **at most once** — there is no update path.

use std::collections::HashMap;

use wedge_chain::{CallContext, Contract, Decoder, Encoder, Revert};
use wedge_crypto::hash::Hash32;
use wedge_crypto::keys::Address;

/// Method selectors.
mod selector {
    /// `Update-Records` (Algorithm 1).
    pub const UPDATE_RECORDS: u8 = 0x01;
    /// `Get-Root-At-Index`.
    pub const GET_ROOT_AT_INDEX: u8 = 0x02;
    /// Returns `tail_idx`.
    pub const GET_TAIL: u8 = 0x03;
}

/// The Root Record contract state.
#[derive(Clone)]
pub struct RootRecord {
    /// The only address allowed to append digests (immutable).
    offchain_address: Address,
    /// `record_map`: log position → MRoot.
    record_map: HashMap<u64, Hash32>,
    /// Next position to be written.
    tail_idx: u64,
}

impl RootRecord {
    /// Notional deployed-code size, for deploy-gas realism (a comparable
    /// Solidity contract compiles to roughly this many bytes).
    pub const CODE_LEN: usize = 1_200;

    /// Creates the contract bound to its Offchain Node.
    pub fn new(offchain_address: Address) -> RootRecord {
        RootRecord {
            offchain_address,
            record_map: HashMap::new(),
            tail_idx: 0,
        }
    }

    /// Encodes `Update-Records(start_idx, roots)` calldata.
    pub fn update_records_calldata(start_idx: u64, roots: &[Hash32]) -> Vec<u8> {
        let mut enc = Encoder::with_capacity(16 + roots.len() * 36);
        enc.u8(selector::UPDATE_RECORDS)
            .u64(start_idx)
            .u64(roots.len() as u64);
        for root in roots {
            enc.bytes(root.as_bytes());
        }
        enc.finish()
    }

    /// Encodes `Get-Root-At-Index(idx)` calldata.
    pub fn get_root_calldata(idx: u64) -> Vec<u8> {
        let mut enc = Encoder::with_capacity(9);
        enc.u8(selector::GET_ROOT_AT_INDEX).u64(idx);
        enc.finish()
    }

    /// Encodes `tail_idx` getter calldata.
    pub fn get_tail_calldata() -> Vec<u8> {
        vec![selector::GET_TAIL]
    }

    /// Decodes the output of `Get-Root-At-Index`: `None` when the position
    /// has no digest yet.
    pub fn decode_root(output: &[u8]) -> Option<Hash32> {
        if output.len() != 32 {
            return None;
        }
        let mut h = [0u8; 32];
        h.copy_from_slice(output);
        let h = Hash32(h);
        if h.is_zero() {
            None
        } else {
            Some(h)
        }
    }

    /// Decodes the output of the tail getter.
    pub fn decode_tail(output: &[u8]) -> Option<u64> {
        Some(u64::from_be_bytes(output.try_into().ok()?))
    }

    /// Algorithm 1, transcribed.
    fn update_records(
        &mut self,
        ctx: &mut CallContext<'_>,
        input: &mut Decoder<'_>,
    ) -> Result<Vec<u8>, Revert> {
        // Line 1: if Txn.sender != offchain_address then fail.
        if ctx.sender != self.offchain_address {
            return Err(Revert::new("caller is not the offchain node"));
        }
        let start_idx = input.u64().map_err(|e| Revert::new(e.to_string()))?;
        let count = input.u64().map_err(|e| Revert::new(e.to_string()))?;
        // Line 4: if start_idx != tail_idx then fail.
        if start_idx != self.tail_idx {
            return Err(Revert::new(format!(
                "non-sequential write: start_idx {start_idx} != tail_idx {}",
                self.tail_idx
            )));
        }
        // Lines 7-9: record_map[start_idx + i] <- root_i.
        // Guard the allocation: every digest consumes >= 36 calldata bytes,
        // so a count beyond the remaining input is hostile.
        if count > input.remaining() as u64 {
            return Err(Revert::new("digest count exceeds calldata"));
        }
        let mut roots = Vec::with_capacity(count as usize);
        for _ in 0..count {
            let root: [u8; 32] = input
                .bytes_fixed()
                .map_err(|e| Revert::new(e.to_string()))?;
            roots.push(Hash32(root));
        }
        input.finish().map_err(|e| Revert::new(e.to_string()))?;
        // One fresh storage word per digest.
        ctx.charge_storage_set(roots.len())?;
        for (i, root) in roots.into_iter().enumerate() {
            let position = start_idx + i as u64;
            debug_assert!(
                !self.record_map.contains_key(&position),
                "single-write invariant"
            );
            self.record_map.insert(position, root);
        }
        // Line 10: tail_idx <- start_idx + n (one rewritten word).
        ctx.charge_storage_reset(1)?;
        self.tail_idx = start_idx + count;
        ctx.emit("RecordsUpdated", {
            let mut enc = Encoder::with_capacity(16);
            enc.u64(start_idx).u64(count);
            enc.finish()
        })?;
        Ok(Vec::new())
    }
}

impl Contract for RootRecord {
    fn type_name(&self) -> &'static str {
        "RootRecord"
    }

    fn call(&mut self, ctx: &mut CallContext<'_>, input: &[u8]) -> Result<Vec<u8>, Revert> {
        let mut dec = Decoder::new(input);
        let selector = dec.u8().map_err(|_| Revert::new("empty calldata"))?;
        match selector {
            selector::UPDATE_RECORDS => self.update_records(ctx, &mut dec),
            selector::GET_ROOT_AT_INDEX => {
                let idx = dec.u64().map_err(|e| Revert::new(e.to_string()))?;
                ctx.charge_storage_read(1)?;
                // Missing entries read as the zero word, as in Solidity.
                let root = self.record_map.get(&idx).copied().unwrap_or(Hash32::ZERO);
                Ok(root.as_bytes().to_vec())
            }
            selector::GET_TAIL => {
                ctx.charge_storage_read(1)?;
                Ok(self.tail_idx.to_be_bytes().to_vec())
            }
            other => Err(Revert::new(format!("unknown selector 0x{other:02x}"))),
        }
    }

    fn clone_box(&self) -> Box<dyn Contract> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use wedge_chain::{Chain, Gas, Wei};
    use wedge_crypto::Keypair;
    use wedge_sim::Clock;

    fn setup() -> (Arc<Chain>, Keypair, Keypair, Address) {
        let chain = Chain::with_defaults(Clock::manual());
        let node = Keypair::from_seed(b"offchain-node");
        let stranger = Keypair::from_seed(b"stranger");
        chain.fund(node.address, Wei::from_eth(100));
        chain.fund(stranger.address, Wei::from_eth(100));
        let (addr, _) = chain
            .deploy(
                &node.secret,
                Box::new(RootRecord::new(node.address)),
                Wei::ZERO,
                RootRecord::CODE_LEN,
            )
            .unwrap();
        chain.mine_block();
        (chain, node, stranger, addr)
    }

    fn roots(n: u8) -> Vec<Hash32> {
        (1..=n).map(|i| Hash32([i; 32])).collect()
    }

    #[test]
    fn sequential_updates_accepted() {
        let (chain, node, _, addr) = setup();
        let tx = chain
            .call_contract(
                &node.secret,
                addr,
                Wei::ZERO,
                RootRecord::update_records_calldata(0, &roots(3)),
                Gas(200_000),
            )
            .unwrap();
        chain.mine_block();
        assert!(chain.receipt(tx).unwrap().status.is_success());
        for i in 0..3u64 {
            let out = chain.view(addr, &RootRecord::get_root_calldata(i)).unwrap();
            assert_eq!(
                RootRecord::decode_root(&out),
                Some(Hash32([i as u8 + 1; 32]))
            );
        }
        let tail = chain.view(addr, &RootRecord::get_tail_calldata()).unwrap();
        assert_eq!(RootRecord::decode_tail(&tail), Some(3));
    }

    #[test]
    fn non_offchain_caller_rejected() {
        let (chain, _, stranger, addr) = setup();
        let tx = chain
            .call_contract(
                &stranger.secret,
                addr,
                Wei::ZERO,
                RootRecord::update_records_calldata(0, &roots(1)),
                Gas(200_000),
            )
            .unwrap();
        chain.mine_block();
        let receipt = chain.receipt(tx).unwrap();
        assert!(!receipt.status.is_success());
        let out = chain.view(addr, &RootRecord::get_root_calldata(0)).unwrap();
        assert_eq!(RootRecord::decode_root(&out), None);
    }

    #[test]
    fn gap_rejected() {
        let (chain, node, _, addr) = setup();
        let tx = chain
            .call_contract(
                &node.secret,
                addr,
                Wei::ZERO,
                RootRecord::update_records_calldata(5, &roots(1)),
                Gas(200_000),
            )
            .unwrap();
        chain.mine_block();
        assert!(!chain.receipt(tx).unwrap().status.is_success());
    }

    #[test]
    fn rewrite_rejected_single_write_invariant() {
        let (chain, node, _, addr) = setup();
        chain
            .call_contract(
                &node.secret,
                addr,
                Wei::ZERO,
                RootRecord::update_records_calldata(0, &roots(2)),
                Gas(200_000),
            )
            .unwrap();
        chain.mine_block();
        // Attempting to overwrite position 0 fails the sequential check.
        let tx = chain
            .call_contract(
                &node.secret,
                addr,
                Wei::ZERO,
                RootRecord::update_records_calldata(0, &[Hash32([0xEE; 32])]),
                Gas(200_000),
            )
            .unwrap();
        chain.mine_block();
        assert!(!chain.receipt(tx).unwrap().status.is_success());
        let out = chain.view(addr, &RootRecord::get_root_calldata(0)).unwrap();
        assert_eq!(
            RootRecord::decode_root(&out),
            Some(Hash32([1; 32])),
            "original intact"
        );
    }

    #[test]
    fn batched_digest_write_amortizes_gas() {
        // Core of the paper's Figure 3 (right): per-digest gas falls as more
        // digests share one transaction's base cost.
        let (chain, node, _, addr) = setup();
        let single = chain
            .call_contract(
                &node.secret,
                addr,
                Wei::ZERO,
                RootRecord::update_records_calldata(0, &roots(1)),
                Gas(10_000_000),
            )
            .unwrap();
        chain.mine_block();
        let g1 = chain.receipt(single).unwrap().gas_used.0;
        let ten: Vec<Hash32> = (10..20).map(|i| Hash32([i; 32])).collect();
        let batch = chain
            .call_contract(
                &node.secret,
                addr,
                Wei::ZERO,
                RootRecord::update_records_calldata(1, &ten),
                Gas(10_000_000),
            )
            .unwrap();
        chain.mine_block();
        let g10 = chain.receipt(batch).unwrap().gas_used.0;
        assert!(
            (g10 as f64 / 10.0) < g1 as f64 * 0.6,
            "per-digest gas {g1} vs {}",
            g10 / 10
        );
    }

    #[test]
    fn missing_root_reads_as_none() {
        let (chain, _, _, addr) = setup();
        let out = chain
            .view(addr, &RootRecord::get_root_calldata(99))
            .unwrap();
        assert_eq!(RootRecord::decode_root(&out), None);
    }

    #[test]
    fn malformed_calldata_reverts() {
        let (chain, _, _, addr) = setup();
        assert!(chain.view(addr, &[]).is_err());
        assert!(chain.view(addr, &[0x99]).is_err());
        assert!(chain
            .view(addr, &[selector::GET_ROOT_AT_INDEX, 1, 2])
            .is_err());
    }
}
