//! The Punishment smart contract (paper §4.4, Algorithm 2).
//!
//! Holds the Offchain Node's escrow and implements the all-or-nothing (AoN)
//! punishment strategy of §3.3: the first proven malicious act drains the
//! *entire* escrow to the client and terminates the contract.
//!
//! A response `R` is provably malicious in exactly two ways (paper):
//! 1. its signed Merkle root differs from the one blockchain-committed at
//!    that index in the Root Record contract (equivocation), or
//! 2. its Merkle proof does not reproduce its own signed root (bogus proof).
//!
//! Both checks require only the signed response — none of the raw batch data
//! needs to be on-chain, which is what makes WedgeBlock's punishments cheap
//! compared to rollup-style fraud proofs.

use wedge_chain::{CallContext, Contract, Decoder, Encoder, Revert};
use wedge_crypto::ecdsa::{recover_prehashed, Signature};
use wedge_crypto::hash::Hash32;
use wedge_crypto::keys::Address;
use wedge_merkle::MerkleProof;

use crate::digest::response_digest;
use crate::root_record::RootRecord;

/// Method selectors.
mod selector {
    /// `Invoke-Punishment` (Algorithm 2).
    pub const INVOKE_PUNISHMENT: u8 = 0x01;
    /// Client signals the end of the service engagement.
    pub const TERMINATE: u8 = 0x02;
    /// Offchain Node reclaims the escrow of a cleanly terminated contract.
    pub const WITHDRAW_ESCROW: u8 = 0x03;
    /// Status getter.
    pub const GET_STATUS: u8 = 0x04;
}

/// Lifecycle of the punishment contract.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PunishmentStatus {
    /// Escrow armed; service in progress.
    Active,
    /// Punishment fired; escrow paid to the client.
    Punished,
    /// Ended cleanly by the client; escrow reclaimable by the node.
    Terminated,
    /// Escrow reclaimed after clean termination.
    Refunded,
}

/// The Punishment contract state.
#[derive(Clone)]
pub struct Punishment {
    /// Immutable at deployment: the client compensated on punishment.
    client_address: Address,
    /// Immutable at deployment: the accused Offchain Node.
    offchain_address: Address,
    /// Immutable at deployment: the Root Record contract consulted for the
    /// blockchain-committed digest.
    root_contract: Address,
    status: PunishmentStatus,
}

impl Punishment {
    /// Notional deployed-code size for gas realism.
    pub const CODE_LEN: usize = 2_400;

    /// Creates the contract; the escrow is the deploy endowment (plus any
    /// later plain transfers).
    pub fn new(
        client_address: Address,
        offchain_address: Address,
        root_contract: Address,
    ) -> Punishment {
        Punishment {
            client_address,
            offchain_address,
            root_contract,
            status: PunishmentStatus::Active,
        }
    }

    /// Encodes `Invoke-Punishment` calldata from the components of a signed
    /// response `R`.
    pub fn invoke_calldata(
        index: u64,
        merkle_root: &Hash32,
        proof_bytes: &[u8],
        raw_data: &[u8],
        signature: &Signature,
    ) -> Vec<u8> {
        let mut enc = Encoder::with_capacity(128 + proof_bytes.len() + raw_data.len());
        enc.u8(selector::INVOKE_PUNISHMENT)
            .u64(index)
            .bytes(merkle_root.as_bytes())
            .bytes(proof_bytes)
            .bytes(raw_data)
            .bytes(&signature.to_bytes());
        enc.finish()
    }

    /// Encodes the client's terminate call.
    pub fn terminate_calldata() -> Vec<u8> {
        vec![selector::TERMINATE]
    }

    /// Encodes the node's escrow-withdrawal call.
    pub fn withdraw_calldata() -> Vec<u8> {
        vec![selector::WITHDRAW_ESCROW]
    }

    /// Encodes the status getter.
    pub fn status_calldata() -> Vec<u8> {
        vec![selector::GET_STATUS]
    }

    /// Decodes the status getter output.
    pub fn decode_status(output: &[u8]) -> Option<PunishmentStatus> {
        match output.first()? {
            0 => Some(PunishmentStatus::Active),
            1 => Some(PunishmentStatus::Punished),
            2 => Some(PunishmentStatus::Terminated),
            3 => Some(PunishmentStatus::Refunded),
            _ => None,
        }
    }

    /// Decodes the output of `Invoke-Punishment`: `true` iff the escrow was
    /// seized.
    pub fn decode_invoke_result(output: &[u8]) -> Option<bool> {
        match output.first()? {
            0 => Some(false),
            1 => Some(true),
            _ => None,
        }
    }

    /// Pays the whole escrow to the client (AoN) and terminates.
    fn punish(&mut self, ctx: &mut CallContext<'_>, why: &'static str) -> Result<Vec<u8>, Revert> {
        let escrow = ctx.contract_balance();
        ctx.transfer_out(self.client_address, escrow)?;
        self.status = PunishmentStatus::Punished;
        ctx.charge_storage_reset(1)?;
        ctx.emit("Punished", {
            let mut enc = Encoder::with_capacity(64);
            enc.bytes(why.as_bytes()).u128(escrow.0);
            enc.finish()
        })?;
        Ok(vec![1])
    }

    /// Algorithm 2, transcribed.
    fn invoke_punishment(
        &mut self,
        ctx: &mut CallContext<'_>,
        input: &mut Decoder<'_>,
    ) -> Result<Vec<u8>, Revert> {
        if self.status != PunishmentStatus::Active {
            return Err(Revert::new("punishment contract is not active"));
        }
        let index = input.u64().map_err(|e| Revert::new(e.to_string()))?;
        let merkle_root: [u8; 32] = input
            .bytes_fixed()
            .map_err(|e| Revert::new(e.to_string()))?;
        let merkle_root = Hash32(merkle_root);
        let proof_bytes = input
            .bytes()
            .map_err(|e| Revert::new(e.to_string()))?
            .to_vec();
        let raw_data = input
            .bytes()
            .map_err(|e| Revert::new(e.to_string()))?
            .to_vec();
        let sig_bytes: [u8; 65] = input
            .bytes_fixed()
            .map_err(|e| Revert::new(e.to_string()))?;
        input.finish().map_err(|e| Revert::new(e.to_string()))?;
        let signature = Signature::from_bytes(&sig_bytes)
            .map_err(|e| Revert::new(format!("malformed signature: {e}")))?;

        // Line 1: msgHash <- hash(index, merkleRoot, merkleProof, rawData).
        let msg_hash = response_digest(index, &merkle_root, &proof_bytes, &raw_data);
        // ECDSA recovery costs ~3k gas on Ethereum (ecrecover precompile).
        ctx.charge(wedge_chain::Gas(3_000))?;
        // Line 2: recoverSigner(msgHash, signature) != offchain_address?
        let signer = recover_prehashed(&msg_hash, &signature)
            .map_err(|_| Revert::new("signature recovery failed"))?
            .address();
        if signer != self.offchain_address {
            return Err(Revert::new("signature is not from the offchain node"));
        }

        // Line 5: recordedRoot <- rootContract.getRootAtIndex(index).
        let out = ctx.call_view(self.root_contract, &RootRecord::get_root_calldata(index))?;
        let recorded = RootRecord::decode_root(&out);
        match recorded {
            // No digest committed yet: a mismatch cannot be adjudicated.
            // (Stage 2 is asynchronous; punishing before commitment would
            // let clients seize escrow for mere latency.)
            None => return Err(Revert::new("index not yet blockchain-committed")),
            // Line 6: recordedRoot != merkleRoot -> punish (equivocation:
            // the node signed one root and committed another).
            Some(root) if root != merkle_root => {
                return self.punish(ctx, "committed root differs from signed root");
            }
            Some(_) => {}
        }

        // Line 9: reconstruct the root from the proof.
        let proof = MerkleProof::from_bytes(&proof_bytes)
            .map_err(|e| Revert::new(format!("malformed proof: {e}")))?;
        let reconstructed = proof.compute_root(&raw_data);
        // Line 10: reconstructedRoot != merkleRoot -> punish (the node signed
        // a proof that does not validate its own root).
        if reconstructed != merkle_root {
            return self.punish(ctx, "merkle proof does not reproduce signed root");
        }
        // Response was consistent: no punishment.
        Ok(vec![0])
    }
}

impl Contract for Punishment {
    fn type_name(&self) -> &'static str {
        "Punishment"
    }

    fn call(&mut self, ctx: &mut CallContext<'_>, input: &[u8]) -> Result<Vec<u8>, Revert> {
        let mut dec = Decoder::new(input);
        let sel = dec.u8().map_err(|_| Revert::new("empty calldata"))?;
        match sel {
            selector::INVOKE_PUNISHMENT => self.invoke_punishment(ctx, &mut dec),
            selector::TERMINATE => {
                if ctx.sender != self.client_address {
                    return Err(Revert::new("only the client may terminate"));
                }
                if self.status != PunishmentStatus::Active {
                    return Err(Revert::new("not active"));
                }
                self.status = PunishmentStatus::Terminated;
                ctx.charge_storage_reset(1)?;
                ctx.emit("Terminated", Vec::new())?;
                Ok(Vec::new())
            }
            selector::WITHDRAW_ESCROW => {
                if ctx.sender != self.offchain_address {
                    return Err(Revert::new("only the offchain node may withdraw"));
                }
                if self.status != PunishmentStatus::Terminated {
                    return Err(Revert::new("service not cleanly terminated"));
                }
                let escrow = ctx.contract_balance();
                ctx.transfer_out(self.offchain_address, escrow)?;
                self.status = PunishmentStatus::Refunded;
                ctx.charge_storage_reset(1)?;
                ctx.emit("EscrowRefunded", escrow.0.to_be_bytes().to_vec())?;
                Ok(Vec::new())
            }
            selector::GET_STATUS => {
                ctx.charge_storage_read(1)?;
                Ok(vec![match self.status {
                    PunishmentStatus::Active => 0,
                    PunishmentStatus::Punished => 1,
                    PunishmentStatus::Terminated => 2,
                    PunishmentStatus::Refunded => 3,
                }])
            }
            other => Err(Revert::new(format!("unknown selector 0x{other:02x}"))),
        }
    }

    fn clone_box(&self) -> Box<dyn Contract> {
        Box::new(self.clone())
    }
}
