//! On-chain logging contract — the OCL baseline (paper §6.3).
//!
//! Raw log entries are written directly into contract storage, exactly as
//! the "writing directly on chain" strawman the paper compares against. Cost
//! scales with entry bytes (calldata + one storage word per 32 bytes), which
//! is what produces OCL's ~310× cost disadvantage in Table 1.

use wedge_chain::{CallContext, Contract, Decoder, Encoder, Revert};

/// Method selectors.
mod selector {
    /// Appends a batch of raw entries.
    pub const APPEND: u8 = 0x01;
    /// Reads one entry.
    pub const GET: u8 = 0x02;
    /// Returns the log length.
    pub const LEN: u8 = 0x03;
}

/// The OCL contract: an on-chain append-only log of raw entries.
#[derive(Clone, Default)]
pub struct OclLog {
    entries: Vec<Vec<u8>>,
}

impl OclLog {
    /// Notional deployed-code size for gas realism.
    pub const CODE_LEN: usize = 800;

    /// Creates an empty log.
    pub fn new() -> OclLog {
        OclLog::default()
    }

    /// Encodes an append of raw `entries`.
    pub fn append_calldata<D: AsRef<[u8]>>(entries: &[D]) -> Vec<u8> {
        let total: usize = entries.iter().map(|e| e.as_ref().len() + 4).sum();
        let mut enc = Encoder::with_capacity(9 + total);
        enc.u8(selector::APPEND).u64(entries.len() as u64);
        for e in entries {
            enc.bytes(e.as_ref());
        }
        enc.finish()
    }

    /// Encodes a read of entry `idx`.
    pub fn get_calldata(idx: u64) -> Vec<u8> {
        let mut enc = Encoder::with_capacity(9);
        enc.u8(selector::GET).u64(idx);
        enc.finish()
    }

    /// Encodes the length getter.
    pub fn len_calldata() -> Vec<u8> {
        vec![selector::LEN]
    }
}

impl Contract for OclLog {
    fn type_name(&self) -> &'static str {
        "OclLog"
    }

    fn call(&mut self, ctx: &mut CallContext<'_>, input: &[u8]) -> Result<Vec<u8>, Revert> {
        let mut dec = Decoder::new(input);
        let sel = dec.u8().map_err(|_| Revert::new("empty calldata"))?;
        match sel {
            selector::APPEND => {
                let count = dec.u64().map_err(|e| Revert::new(e.to_string()))?;
                if count > dec.remaining() as u64 {
                    return Err(Revert::new("entry count exceeds calldata"));
                }
                let mut total_words = 0usize;
                let mut batch = Vec::with_capacity(count as usize);
                for _ in 0..count {
                    let entry = dec.bytes().map_err(|e| Revert::new(e.to_string()))?;
                    total_words += entry.len().div_ceil(32);
                    batch.push(entry.to_vec());
                }
                dec.finish().map_err(|e| Revert::new(e.to_string()))?;
                // Every 32-byte word of raw data is a fresh storage word.
                ctx.charge_storage_set(total_words)?;
                // Plus the length-slot rewrite.
                ctx.charge_storage_reset(1)?;
                self.entries.extend(batch);
                Ok((self.entries.len() as u64).to_be_bytes().to_vec())
            }
            selector::GET => {
                let idx = dec.u64().map_err(|e| Revert::new(e.to_string()))? as usize;
                let entry = self
                    .entries
                    .get(idx)
                    .ok_or_else(|| Revert::new("no such entry"))?;
                ctx.charge_storage_read(entry.len().div_ceil(32))?;
                Ok(entry.clone())
            }
            selector::LEN => {
                ctx.charge_storage_read(1)?;
                Ok((self.entries.len() as u64).to_be_bytes().to_vec())
            }
            other => Err(Revert::new(format!("unknown selector 0x{other:02x}"))),
        }
    }

    fn clone_box(&self) -> Box<dyn Contract> {
        Box::new(self.clone())
    }
}
