//! # wedge-contracts
//!
//! The WedgeBlock smart contracts (paper §4.4–4.5), transcribed from the
//! paper's Algorithms 1–3 and run by the `wedge-chain` contract host:
//!
//! - [`RootRecord`] — the on-chain digest store (Algorithm 1).
//! - [`Punishment`] — escrow + AoN punishment via `recoverSigner`
//!   (Algorithm 2).
//! - [`Payment`] — the logging-as-a-service subscription stream
//!   (Algorithm 3).
//! - [`ClusterRoot`] — the sharded cluster's per-epoch root-of-roots
//!   commit (one transaction covers every shard's group).
//!
//! Plus the two baseline contracts the evaluation compares against:
//!
//! - [`OclLog`] — raw on-chain logging (OCL).
//! - [`RhlRollup`] — rollup-inspired hybrid logging with fraud-proof
//!   challenges (RHL).
//!
//! [`response_digest`] defines the exact bytes an Offchain Node signs in a
//! stage-1 response, shared with the Punishment contract's verification.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cluster_root;
mod digest;
mod ocl_log;
mod payment;
mod punishment;
mod rhl_rollup;
mod root_record;

pub use cluster_root::ClusterRoot;
pub use digest::{response_digest, response_digest_bytes};
pub use ocl_log::OclLog;
pub use payment::{Payment, PaymentStatus, PaymentTerms};
pub use punishment::{Punishment, PunishmentStatus};
pub use rhl_rollup::{BatchStatus, RhlRollup};
pub use root_record::RootRecord;
