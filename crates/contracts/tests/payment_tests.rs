//! Payment-contract lifecycle tests (Algorithm 3) on a manual clock, so
//! period accounting is fully deterministic.

use std::sync::Arc;
use std::time::Duration;

use wedge_chain::{Chain, Gas, Wei};
use wedge_contracts::{Payment, PaymentTerms};
use wedge_crypto::Keypair;
use wedge_sim::Clock;

struct Harness {
    chain: Arc<Chain>,
    clock: Clock,
    node: Keypair,
    client: Keypair,
    payment: wedge_chain::Address,
}

/// 100 wei per 60-second period, 3 overdue periods tolerated.
fn terms(node: &Keypair, client: &Keypair) -> PaymentTerms {
    PaymentTerms {
        offchain_address: node.address,
        client_address: client.address,
        period: 60,
        payment_per_period: Wei(100),
        max_overdue_periods: 3,
    }
}

fn setup(deposit: Wei) -> Harness {
    let clock = Clock::manual();
    let chain = Chain::with_defaults(clock.clone());
    let node = Keypair::from_seed(b"pay-node");
    let client = Keypair::from_seed(b"pay-client");
    chain.fund(node.address, Wei::from_eth(100));
    chain.fund(client.address, Wei::from_eth(100));
    let (payment, _) = chain
        .deploy(
            &node.secret,
            Box::new(Payment::new(terms(&node, &client))),
            Wei::ZERO,
            Payment::CODE_LEN,
        )
        .unwrap();
    chain.mine_block();
    // Client deposits by plain transfer, then starts the stream.
    chain.transfer(&client.secret, payment, deposit).unwrap();
    chain.mine_block();
    chain
        .call_contract(
            &client.secret,
            payment,
            Wei::ZERO,
            Payment::start_payment_calldata(),
            Gas(200_000),
        )
        .unwrap();
    chain.mine_block();
    Harness {
        chain,
        clock,
        node,
        client,
        payment,
    }
}

fn advance_and_update(h: &Harness, secs: u64) -> wedge_chain::Receipt {
    h.clock.advance(Duration::from_secs(secs));
    let tx = h
        .chain
        .call_contract(
            &h.client.secret,
            h.payment,
            Wei::ZERO,
            Payment::update_status_calldata(),
            Gas(500_000),
        )
        .unwrap();
    h.chain.mine_block();
    h.chain.receipt(tx).unwrap()
}

fn status(h: &Harness) -> wedge_contracts::PaymentStatus {
    Payment::decode_status(
        &h.chain
            .view(h.payment, &Payment::status_calldata())
            .unwrap(),
    )
    .unwrap()
}

#[test]
fn deposit_streams_per_period() {
    let h = setup(Wei(1000)); // covers 10 periods
                              // After 2.5 periods, exactly 2 periods' worth is reserved.
    let receipt = advance_and_update(&h, 150);
    assert!(receipt.status.is_success());
    let s = status(&h);
    assert_eq!(s.reserved_for_edge, Wei(200));
    assert!(s.started && !s.terminated);
    // PaymentStateUpdated should report 8 remaining periods.
    let log = receipt
        .logs
        .iter()
        .find(|l| l.name == "PaymentStateUpdated")
        .expect("healthy update emits PaymentStateUpdated");
    assert_eq!(log.data, 8u64.to_be_bytes());
}

#[test]
fn partial_period_progress_is_retained() {
    let h = setup(Wei(1000));
    advance_and_update(&h, 90); // 1.5 periods -> 1 reserved
    assert_eq!(status(&h).reserved_for_edge, Wei(100));
    advance_and_update(&h, 30); // the half period completes
    assert_eq!(status(&h).reserved_for_edge, Wei(200));
}

#[test]
fn node_withdraws_only_reserved_amount() {
    let h = setup(Wei(1000));
    h.clock.advance(Duration::from_secs(300)); // 5 periods
    let node_before = h.chain.balance(h.node.address);
    let tx = h
        .chain
        .call_contract(
            &h.node.secret,
            h.payment,
            Wei::ZERO,
            Payment::withdraw_edge_calldata(),
            Gas(500_000),
        )
        .unwrap();
    h.chain.mine_block();
    let receipt = h.chain.receipt(tx).unwrap();
    assert!(receipt.status.is_success());
    let gained = h
        .chain
        .balance(h.node.address)
        .checked_add(receipt.fee)
        .unwrap()
        .checked_sub(node_before)
        .unwrap();
    assert_eq!(gained, Wei(500), "exactly 5 periods of pay");
    let s = status(&h);
    assert_eq!(s.reserved_for_edge, Wei::ZERO);
    assert_eq!(s.balance, Wei(500));
}

#[test]
fn client_cannot_overdraw_reserved_funds() {
    let h = setup(Wei(1000));
    h.clock.advance(Duration::from_secs(300)); // 5 periods reserved on touch
                                               // 600 > 500 unreserved: must revert.
    let tx = h
        .chain
        .call_contract(
            &h.client.secret,
            h.payment,
            Wei::ZERO,
            Payment::withdraw_client_calldata(Wei(600)),
            Gas(500_000),
        )
        .unwrap();
    h.chain.mine_block();
    assert!(!h.chain.receipt(tx).unwrap().status.is_success());
    // 500 is fine.
    let tx = h
        .chain
        .call_contract(
            &h.client.secret,
            h.payment,
            Wei::ZERO,
            Payment::withdraw_client_calldata(Wei(500)),
            Gas(500_000),
        )
        .unwrap();
    h.chain.mine_block();
    assert!(h.chain.receipt(tx).unwrap().status.is_success());
    assert_eq!(status(&h).balance, Wei(500));
}

#[test]
fn insufficient_deposit_emits_reminder() {
    let h = setup(Wei(250)); // covers 2.5 periods
                             // 4 periods elapse; only 2 coverable -> 2 overdue (within tolerance 3).
    let receipt = advance_and_update(&h, 240);
    assert!(receipt.status.is_success());
    let log = receipt
        .logs
        .iter()
        .find(|l| l.name == "DepositInsufficient")
        .expect("overdue update emits DepositInsufficient");
    assert_eq!(log.data, 2u64.to_be_bytes());
    let s = status(&h);
    assert_eq!(s.reserved_for_edge, Wei(200));
    assert!(!s.terminated);
}

#[test]
fn prolonged_nonpayment_violates_contract() {
    let h = setup(Wei(250));
    // 10 periods elapse; 2 coverable -> 8 overdue > 3: violation.
    let node_before = h.chain.balance(h.node.address);
    let receipt = advance_and_update(&h, 600);
    assert!(receipt.status.is_success());
    assert!(receipt.logs.iter().any(|l| l.name == "ContractViolated"));
    let s = status(&h);
    assert!(s.terminated);
    assert_eq!(s.balance, Wei::ZERO);
    // Entire balance went to the node.
    assert_eq!(
        h.chain
            .balance(h.node.address)
            .checked_sub(node_before)
            .unwrap(),
        Wei(250)
    );
}

#[test]
fn client_termination_settles_both_sides() {
    let h = setup(Wei(1000));
    h.clock.advance(Duration::from_secs(180)); // 3 periods owed
    let node_before = h.chain.balance(h.node.address);
    let client_before = h.chain.balance(h.client.address);
    let tx = h
        .chain
        .call_contract(
            &h.client.secret,
            h.payment,
            Wei::ZERO,
            Payment::terminate_calldata(),
            Gas(500_000),
        )
        .unwrap();
    h.chain.mine_block();
    let receipt = h.chain.receipt(tx).unwrap();
    assert!(receipt.status.is_success());
    let s = status(&h);
    assert!(s.terminated);
    assert_eq!(s.balance, Wei::ZERO);
    assert_eq!(
        h.chain
            .balance(h.node.address)
            .checked_sub(node_before)
            .unwrap(),
        Wei(300),
        "node paid for 3 elapsed periods"
    );
    let client_gained = h
        .chain
        .balance(h.client.address)
        .checked_add(receipt.fee)
        .unwrap()
        .checked_sub(client_before)
        .unwrap();
    assert_eq!(client_gained, Wei(700), "client refunded the remainder");
}

#[test]
fn stranger_cannot_start_or_withdraw() {
    let h = setup(Wei(1000));
    let stranger = Keypair::from_seed(b"pay-stranger");
    h.chain.fund(stranger.address, Wei::from_eth(1));
    h.clock.advance(Duration::from_secs(120));
    for calldata in [
        Payment::withdraw_edge_calldata(),
        Payment::withdraw_client_calldata(Wei(1)),
        Payment::terminate_calldata(),
        Payment::start_payment_calldata(),
    ] {
        let tx = h
            .chain
            .call_contract(
                &stranger.secret,
                h.payment,
                Wei::ZERO,
                calldata,
                Gas(500_000),
            )
            .unwrap();
        h.chain.mine_block();
        assert!(!h.chain.receipt(tx).unwrap().status.is_success());
    }
}

#[test]
fn double_start_rejected() {
    let h = setup(Wei(1000));
    let tx = h
        .chain
        .call_contract(
            &h.client.secret,
            h.payment,
            Wei::ZERO,
            Payment::start_payment_calldata(),
            Gas(200_000),
        )
        .unwrap();
    h.chain.mine_block();
    assert!(!h.chain.receipt(tx).unwrap().status.is_success());
}

#[test]
fn withdraw_resets_payment_anchor() {
    let h = setup(Wei(1000));
    h.clock.advance(Duration::from_secs(90)); // 1.5 periods
    h.chain
        .call_contract(
            &h.node.secret,
            h.payment,
            Wei::ZERO,
            Payment::withdraw_edge_calldata(),
            Gas(500_000),
        )
        .unwrap();
    h.chain.mine_block();
    // Anchor reset to "now": the half-period progress is discarded (paper:
    // "essentially resetting the payment calculation").
    let s = status(&h);
    assert_eq!(s.payment_start_time, h.clock.now().as_secs());
    advance_and_update(&h, 30); // only half a period since reset
    assert_eq!(status(&h).reserved_for_edge, Wei::ZERO);
}

#[test]
fn update_before_start_is_a_noop() {
    let h = setup(Wei(1000));
    // setup() already started; build a fresh un-started contract instead.
    let fresh = Keypair::from_seed(b"fresh-pay-node");
    h.chain.fund(fresh.address, Wei::from_eth(1));
    let (addr, _) = h
        .chain
        .deploy(
            &fresh.secret,
            Box::new(Payment::new(terms(&fresh, &h.client))),
            Wei::ZERO,
            Payment::CODE_LEN,
        )
        .unwrap();
    h.chain.mine_block();
    h.clock.advance(Duration::from_secs(600));
    let tx = h
        .chain
        .call_contract(
            &h.client.secret,
            addr,
            Wei::ZERO,
            Payment::update_status_calldata(),
            Gas(300_000),
        )
        .unwrap();
    h.chain.mine_block();
    // Succeeds but reserves nothing: the stream has not started.
    assert!(h.chain.receipt(tx).unwrap().status.is_success());
    let status =
        Payment::decode_status(&h.chain.view(addr, &Payment::status_calldata()).unwrap()).unwrap();
    assert!(!status.started);
    assert_eq!(status.reserved_for_edge, Wei::ZERO);
}

#[test]
fn terminated_contract_rejects_restart_and_withdrawals() {
    let h = setup(Wei(1000));
    h.clock.advance(Duration::from_secs(60));
    h.chain
        .call_contract(
            &h.client.secret,
            h.payment,
            Wei::ZERO,
            Payment::terminate_calldata(),
            Gas(500_000),
        )
        .unwrap();
    h.chain.mine_block();
    assert!(status(&h).terminated);
    for calldata in [
        Payment::start_payment_calldata(),
        Payment::terminate_calldata(),
        Payment::withdraw_edge_calldata(),
    ] {
        let sender = if calldata == Payment::withdraw_edge_calldata() {
            &h.node.secret
        } else {
            &h.client.secret
        };
        let tx = h
            .chain
            .call_contract(sender, h.payment, Wei::ZERO, calldata, Gas(500_000))
            .unwrap();
        h.chain.mine_block();
        assert!(!h.chain.receipt(tx).unwrap().status.is_success());
    }
}
