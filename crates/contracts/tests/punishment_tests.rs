//! Adversarial tests for the Punishment contract: every clause of
//! Algorithm 2 exercised against a live chain with real ECDSA signatures
//! and Merkle proofs.

use std::sync::Arc;

use wedge_chain::{Chain, Gas, Wei};
use wedge_contracts::{response_digest, Punishment, PunishmentStatus, RootRecord};
use wedge_crypto::ecdsa::sign_prehashed;
use wedge_crypto::hash::Hash32;
use wedge_crypto::{Keypair, Signature};
use wedge_merkle::MerkleTree;
use wedge_sim::Clock;

struct Harness {
    chain: Arc<Chain>,
    node: Keypair,
    client: Keypair,
    root_record: wedge_chain::Address,
    punishment: wedge_chain::Address,
}

const ESCROW: Wei = Wei::from_eth(10);

fn setup() -> Harness {
    let chain = Chain::with_defaults(Clock::manual());
    let node = Keypair::from_seed(b"punish-node");
    let client = Keypair::from_seed(b"punish-client");
    chain.fund(node.address, Wei::from_eth(100));
    chain.fund(client.address, Wei::from_eth(100));
    let (root_record, _) = chain
        .deploy(
            &node.secret,
            Box::new(RootRecord::new(node.address)),
            Wei::ZERO,
            RootRecord::CODE_LEN,
        )
        .unwrap();
    let (punishment, _) = chain
        .deploy(
            &node.secret,
            Box::new(Punishment::new(client.address, node.address, root_record)),
            ESCROW,
            Punishment::CODE_LEN,
        )
        .unwrap();
    chain.mine_block();
    Harness {
        chain,
        node,
        client,
        root_record,
        punishment,
    }
}

/// Builds a batch, blockchain-commits its root at index 0, and returns the
/// tree plus batch data.
fn commit_batch(h: &Harness, batch: &[Vec<u8>]) -> MerkleTree {
    let tree = MerkleTree::from_leaves(batch).unwrap();
    h.chain
        .call_contract(
            &h.node.secret,
            h.root_record,
            Wei::ZERO,
            RootRecord::update_records_calldata(0, &[tree.root()]),
            Gas(1_000_000),
        )
        .unwrap();
    h.chain.mine_block();
    tree
}

/// Signs a response tuple exactly as the honest/malicious node would.
fn sign_response(
    node: &Keypair,
    index: u64,
    root: &Hash32,
    proof_bytes: &[u8],
    raw: &[u8],
) -> Signature {
    sign_prehashed(
        &node.secret,
        &response_digest(index, root, proof_bytes, raw),
    )
}

fn invoke(h: &Harness, calldata: Vec<u8>) -> wedge_chain::Receipt {
    let tx = h
        .chain
        .call_contract(
            &h.client.secret,
            h.punishment,
            Wei::ZERO,
            calldata,
            Gas(5_000_000),
        )
        .unwrap();
    h.chain.mine_block();
    h.chain.receipt(tx).unwrap()
}

fn status(h: &Harness) -> PunishmentStatus {
    let out = h
        .chain
        .view(h.punishment, &Punishment::status_calldata())
        .unwrap();
    Punishment::decode_status(&out).unwrap()
}

#[test]
fn honest_response_is_not_punished() {
    let h = setup();
    let batch: Vec<Vec<u8>> = (0..8).map(|i| format!("entry-{i}").into_bytes()).collect();
    let tree = commit_batch(&h, &batch);
    let proof = tree.prove(3).unwrap().to_bytes();
    let sig = sign_response(&h.node, 0, &tree.root(), &proof, &batch[3]);
    let receipt = invoke(
        &h,
        Punishment::invoke_calldata(0, &tree.root(), &proof, &batch[3], &sig),
    );
    assert!(receipt.status.is_success());
    assert_eq!(
        Punishment::decode_invoke_result(&receipt.output),
        Some(false)
    );
    assert_eq!(status(&h), PunishmentStatus::Active);
    assert_eq!(h.chain.balance(h.punishment), ESCROW, "escrow intact");
}

#[test]
fn equivocation_drains_escrow_to_client() {
    // The node signed a response for root R' but blockchain-committed R.
    let h = setup();
    let honest: Vec<Vec<u8>> = (0..8).map(|i| format!("entry-{i}").into_bytes()).collect();
    commit_batch(&h, &honest);
    // The lie: a different batch, consistent within itself.
    let forged: Vec<Vec<u8>> = (0..8).map(|i| format!("forged-{i}").into_bytes()).collect();
    let forged_tree = MerkleTree::from_leaves(&forged).unwrap();
    let proof = forged_tree.prove(3).unwrap().to_bytes();
    let sig = sign_response(&h.node, 0, &forged_tree.root(), &proof, &forged[3]);

    let client_before = h.chain.balance(h.client.address);
    let receipt = invoke(
        &h,
        Punishment::invoke_calldata(0, &forged_tree.root(), &proof, &forged[3], &sig),
    );
    assert!(receipt.status.is_success());
    assert_eq!(
        Punishment::decode_invoke_result(&receipt.output),
        Some(true)
    );
    assert_eq!(status(&h), PunishmentStatus::Punished);
    assert_eq!(h.chain.balance(h.punishment), Wei::ZERO);
    // Client received the full escrow (minus its own gas fee).
    let gained = h
        .chain
        .balance(h.client.address)
        .checked_add(receipt.fee)
        .unwrap()
        .checked_sub(client_before)
        .unwrap();
    assert_eq!(gained, ESCROW);
    assert!(receipt.logs.iter().any(|l| l.name == "Punished"));
}

#[test]
fn bogus_proof_drains_escrow() {
    // The node signed a (root, proof, data) tuple whose proof does not
    // reproduce the root.
    let h = setup();
    let batch: Vec<Vec<u8>> = (0..8).map(|i| format!("entry-{i}").into_bytes()).collect();
    let tree = commit_batch(&h, &batch);
    // Proof for leaf 3 but data from leaf 4: reconstruction mismatches.
    let proof = tree.prove(3).unwrap().to_bytes();
    let sig = sign_response(&h.node, 0, &tree.root(), &proof, &batch[4]);
    let receipt = invoke(
        &h,
        Punishment::invoke_calldata(0, &tree.root(), &proof, &batch[4], &sig),
    );
    assert!(receipt.status.is_success());
    assert_eq!(
        Punishment::decode_invoke_result(&receipt.output),
        Some(true)
    );
    assert_eq!(status(&h), PunishmentStatus::Punished);
}

#[test]
fn forged_signature_cannot_trigger_punishment() {
    // A malicious *client* fabricates a response and signs it itself.
    let h = setup();
    let batch: Vec<Vec<u8>> = (0..8).map(|i| format!("entry-{i}").into_bytes()).collect();
    commit_batch(&h, &batch);
    let forged_root = Hash32([0xEE; 32]);
    let fake_tree = MerkleTree::from_leaves(&[b"fake".to_vec()]).unwrap();
    let proof = fake_tree.prove(0).unwrap().to_bytes();
    // Signed by the CLIENT, not the node.
    let sig = sign_prehashed(
        &h.client.secret,
        &response_digest(0, &forged_root, &proof, b"fake"),
    );
    let receipt = invoke(
        &h,
        Punishment::invoke_calldata(0, &forged_root, &proof, b"fake", &sig),
    );
    assert!(!receipt.status.is_success(), "must revert: wrong signer");
    assert_eq!(status(&h), PunishmentStatus::Active);
    assert_eq!(h.chain.balance(h.punishment), ESCROW);
}

#[test]
fn replayed_signature_over_different_fields_fails() {
    // Take an honest signature but swap the raw data: recovery yields a
    // different address, so the contract rejects it.
    let h = setup();
    let batch: Vec<Vec<u8>> = (0..8).map(|i| format!("entry-{i}").into_bytes()).collect();
    let tree = commit_batch(&h, &batch);
    let proof = tree.prove(3).unwrap().to_bytes();
    let sig = sign_response(&h.node, 0, &tree.root(), &proof, &batch[3]);
    let receipt = invoke(
        &h,
        Punishment::invoke_calldata(0, &tree.root(), &proof, b"swapped data", &sig),
    );
    assert!(!receipt.status.is_success());
    assert_eq!(status(&h), PunishmentStatus::Active);
}

#[test]
fn uncommitted_index_cannot_be_punished() {
    // Stage 2 has not happened for index 7; punishing would penalize mere
    // latency, so the contract reverts.
    let h = setup();
    let batch: Vec<Vec<u8>> = (0..4).map(|i| format!("e{i}").into_bytes()).collect();
    let tree = MerkleTree::from_leaves(&batch).unwrap();
    let proof = tree.prove(0).unwrap().to_bytes();
    let sig = sign_response(&h.node, 7, &tree.root(), &proof, &batch[0]);
    let receipt = invoke(
        &h,
        Punishment::invoke_calldata(7, &tree.root(), &proof, &batch[0], &sig),
    );
    assert!(!receipt.status.is_success());
    assert!(matches!(
        receipt.status,
        wedge_chain::ExecStatus::Reverted(ref r) if r.contains("not yet blockchain-committed")
    ));
}

#[test]
fn punishment_fires_only_once() {
    let h = setup();
    let honest: Vec<Vec<u8>> = (0..4).map(|i| format!("e{i}").into_bytes()).collect();
    commit_batch(&h, &honest);
    let forged_tree = MerkleTree::from_leaves(&[b"lie".to_vec()]).unwrap();
    let proof = forged_tree.prove(0).unwrap().to_bytes();
    let sig = sign_response(&h.node, 0, &forged_tree.root(), &proof, b"lie");
    let calldata = Punishment::invoke_calldata(0, &forged_tree.root(), &proof, b"lie", &sig);
    let first = invoke(&h, calldata.clone());
    assert!(first.status.is_success());
    // AoN: the contract is dead; a second invocation reverts.
    let second = invoke(&h, calldata);
    assert!(!second.status.is_success());
}

#[test]
fn clean_termination_refunds_escrow_to_node() {
    let h = setup();
    // Client ends the engagement.
    let tx = h
        .chain
        .call_contract(
            &h.client.secret,
            h.punishment,
            Wei::ZERO,
            Punishment::terminate_calldata(),
            Gas(200_000),
        )
        .unwrap();
    h.chain.mine_block();
    assert!(h.chain.receipt(tx).unwrap().status.is_success());
    assert_eq!(status(&h), PunishmentStatus::Terminated);
    // Node reclaims the escrow.
    let node_before = h.chain.balance(h.node.address);
    let tx = h
        .chain
        .call_contract(
            &h.node.secret,
            h.punishment,
            Wei::ZERO,
            Punishment::withdraw_calldata(),
            Gas(200_000),
        )
        .unwrap();
    h.chain.mine_block();
    let receipt = h.chain.receipt(tx).unwrap();
    assert!(receipt.status.is_success());
    assert_eq!(status(&h), PunishmentStatus::Refunded);
    let gained = h
        .chain
        .balance(h.node.address)
        .checked_add(receipt.fee)
        .unwrap()
        .checked_sub(node_before)
        .unwrap();
    assert_eq!(gained, ESCROW);
}

#[test]
fn node_cannot_withdraw_before_termination() {
    let h = setup();
    let tx = h
        .chain
        .call_contract(
            &h.node.secret,
            h.punishment,
            Wei::ZERO,
            Punishment::withdraw_calldata(),
            Gas(200_000),
        )
        .unwrap();
    h.chain.mine_block();
    assert!(!h.chain.receipt(tx).unwrap().status.is_success());
    assert_eq!(h.chain.balance(h.punishment), ESCROW);
}

#[test]
fn stranger_cannot_terminate() {
    let h = setup();
    let stranger = Keypair::from_seed(b"stranger-terminate");
    h.chain.fund(stranger.address, Wei::from_eth(1));
    let tx = h
        .chain
        .call_contract(
            &stranger.secret,
            h.punishment,
            Wei::ZERO,
            Punishment::terminate_calldata(),
            Gas(200_000),
        )
        .unwrap();
    h.chain.mine_block();
    assert!(!h.chain.receipt(tx).unwrap().status.is_success());
    assert_eq!(status(&h), PunishmentStatus::Active);
}
