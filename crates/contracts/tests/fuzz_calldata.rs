//! Adversarial calldata fuzzing: arbitrary bytes thrown at every contract
//! must revert cleanly (never panic, never corrupt state, never move money).

use std::sync::Arc;

use proptest::prelude::*;
use wedge_chain::{Chain, Gas, Wei};
use wedge_contracts::{OclLog, Payment, PaymentTerms, Punishment, RhlRollup, RootRecord};
use wedge_crypto::Keypair;
use wedge_sim::Clock;

struct Fixture {
    chain: Arc<Chain>,
    user: Keypair,
    root_record: wedge_chain::Address,
    punishment: wedge_chain::Address,
    payment: wedge_chain::Address,
    ocl: wedge_chain::Address,
    rhl: wedge_chain::Address,
}

fn fixture() -> Fixture {
    let chain = Chain::with_defaults(Clock::manual());
    let user = Keypair::from_seed(b"fuzz-user");
    let client = Keypair::from_seed(b"fuzz-client");
    chain.fund(user.address, Wei::from_eth(1000));
    chain.fund(client.address, Wei::from_eth(1000));
    let (root_record, _) = chain
        .deploy(
            &user.secret,
            Box::new(RootRecord::new(user.address)),
            Wei::ZERO,
            100,
        )
        .unwrap();
    let (punishment, _) = chain
        .deploy(
            &user.secret,
            Box::new(Punishment::new(client.address, user.address, root_record)),
            Wei::from_eth(5),
            100,
        )
        .unwrap();
    let terms = PaymentTerms {
        offchain_address: user.address,
        client_address: client.address,
        period: 60,
        payment_per_period: Wei(100),
        max_overdue_periods: 10,
    };
    let (payment, _) = chain
        .deploy(&user.secret, Box::new(Payment::new(terms)), Wei::ZERO, 100)
        .unwrap();
    let (ocl, _) = chain
        .deploy(&user.secret, Box::new(OclLog::new()), Wei::ZERO, 100)
        .unwrap();
    let (rhl, _) = chain
        .deploy(
            &user.secret,
            Box::new(RhlRollup::new(user.address, 3600)),
            Wei::from_eth(1),
            100,
        )
        .unwrap();
    chain.mine_block();
    Fixture {
        chain,
        user,
        root_record,
        punishment,
        payment,
        ocl,
        rhl,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn arbitrary_calldata_never_panics_or_pays(calldata in prop::collection::vec(any::<u8>(), 0..512)) {
        let f = fixture();
        let contracts = [f.root_record, f.punishment, f.payment, f.ocl, f.rhl];
        let balances_before: Vec<Wei> =
            contracts.iter().map(|c| f.chain.balance(*c)).collect();
        for &contract in &contracts {
            // View path (no state): must return or revert, never panic.
            let _ = f.chain.view(contract, &calldata);
            // Transaction path: mined receipt, success or clean revert.
            let tx = f
                .chain
                .call_contract(&f.user.secret, contract, Wei::ZERO, calldata.clone(), Gas(5_000_000))
                .unwrap();
            f.chain.mine_block();
            let receipt = f.chain.receipt(tx).unwrap();
            // Random bytes should essentially never form a valid call that
            // moves contract balances (no signatures / wrong senders).
            let _ = receipt;
        }
        // Escrowed balances are exactly where they were — random bytes
        // cannot loot the Punishment/RHL escrows or the Payment pot.
        for (contract, before) in contracts.iter().zip(balances_before) {
            prop_assert_eq!(f.chain.balance(*contract), before, "contract {} balance moved", contract);
        }
    }

    #[test]
    fn punishment_selector_with_garbage_payload_reverts(payload in prop::collection::vec(any::<u8>(), 0..256)) {
        let f = fixture();
        // Selector 0x01 (Invoke-Punishment) followed by garbage.
        let mut calldata = vec![0x01];
        calldata.extend_from_slice(&payload);
        let tx = f
            .chain
            .call_contract(&f.user.secret, f.punishment, Wei::ZERO, calldata, Gas(5_000_000))
            .unwrap();
        f.chain.mine_block();
        let receipt = f.chain.receipt(tx).unwrap();
        prop_assert!(!receipt.status.is_success(), "garbage evidence must revert");
        prop_assert_eq!(f.chain.balance(f.punishment), Wei::from_eth(5));
    }

    #[test]
    fn root_record_update_with_random_roots_respects_acl(
        roots in prop::collection::vec(any::<[u8; 32]>(), 1..8),
        start in any::<u64>(),
    ) {
        let f = fixture();
        let stranger = Keypair::from_seed(b"fuzz-stranger");
        f.chain.fund(stranger.address, Wei::from_eth(10));
        let hashes: Vec<wedge_crypto::Hash32> =
            roots.iter().map(|r| wedge_crypto::Hash32(*r)).collect();
        let calldata = RootRecord::update_records_calldata(start, &hashes);
        let tx = f
            .chain
            .call_contract(&stranger.secret, f.root_record, Wei::ZERO, calldata, Gas(5_000_000))
            .unwrap();
        f.chain.mine_block();
        // A non-node caller can never write, whatever the arguments.
        prop_assert!(!f.chain.receipt(tx).unwrap().status.is_success());
        let tail = f.chain.view(f.root_record, &RootRecord::get_tail_calldata()).unwrap();
        prop_assert_eq!(RootRecord::decode_tail(&tail), Some(0));
    }
}
