//! Tests for the baseline contracts: OCL raw logging and RHL rollup with
//! fraud-proof challenges.

use std::sync::Arc;
use std::time::Duration;

use wedge_chain::{Chain, Gas, Wei};
use wedge_contracts::{BatchStatus, OclLog, RhlRollup, RootRecord};
use wedge_crypto::hash::Hash32;
use wedge_crypto::Keypair;
use wedge_sim::Clock;

fn setup() -> (Arc<Chain>, Clock, Keypair) {
    let clock = Clock::manual();
    let chain = Chain::with_defaults(clock.clone());
    let user = Keypair::from_seed(b"baseline-user");
    chain.fund(user.address, Wei::from_eth(10_000));
    (chain, clock, user)
}

fn entries(n: usize, size: usize) -> Vec<Vec<u8>> {
    (0..n)
        .map(|i| {
            let mut e = format!("op-{i}-").into_bytes();
            e.resize(size, 0xAB);
            e
        })
        .collect()
}

#[test]
fn ocl_append_and_read() {
    let (chain, _, user) = setup();
    let (addr, _) = chain
        .deploy(
            &user.secret,
            Box::new(OclLog::new()),
            Wei::ZERO,
            OclLog::CODE_LEN,
        )
        .unwrap();
    chain.mine_block();
    let batch = entries(5, 64);
    let tx = chain
        .call_contract(
            &user.secret,
            addr,
            Wei::ZERO,
            OclLog::append_calldata(&batch),
            Gas(10_000_000),
        )
        .unwrap();
    chain.mine_block();
    assert!(chain.receipt(tx).unwrap().status.is_success());
    assert_eq!(
        chain.view(addr, &OclLog::get_calldata(2)).unwrap(),
        batch[2]
    );
    assert_eq!(
        chain.view(addr, &OclLog::len_calldata()).unwrap(),
        5u64.to_be_bytes()
    );
    assert!(chain.view(addr, &OclLog::get_calldata(9)).is_err());
}

#[test]
fn ocl_cost_scales_with_raw_bytes_while_root_record_does_not() {
    // The Table-1 cost story at contract level.
    let (chain, _, user) = setup();
    let (ocl, _) = chain
        .deploy(
            &user.secret,
            Box::new(OclLog::new()),
            Wei::ZERO,
            OclLog::CODE_LEN,
        )
        .unwrap();
    let (rr, _) = chain
        .deploy(
            &user.secret,
            Box::new(RootRecord::new(user.address)),
            Wei::ZERO,
            RootRecord::CODE_LEN,
        )
        .unwrap();
    chain.mine_block();
    let batch = entries(20, 1024);
    let ocl_tx = chain
        .call_contract(
            &user.secret,
            ocl,
            Wei::ZERO,
            OclLog::append_calldata(&batch),
            Gas(30_000_000),
        )
        .unwrap();
    let root = wedge_merkle::MerkleTree::from_leaves(&batch)
        .unwrap()
        .root();
    let rr_tx = chain
        .call_contract(
            &user.secret,
            rr,
            Wei::ZERO,
            RootRecord::update_records_calldata(0, &[root]),
            Gas(1_000_000),
        )
        .unwrap();
    chain.mine_block();
    let ocl_gas = chain.receipt(ocl_tx).unwrap().gas_used.0;
    let rr_gas = chain.receipt(rr_tx).unwrap().gas_used.0;
    assert!(
        ocl_gas > rr_gas * 100,
        "raw logging ({ocl_gas}) must dwarf digest logging ({rr_gas})"
    );
}

#[test]
fn rhl_honest_batch_finalizes_after_window() {
    let (chain, clock, poster) = setup();
    let window = 86_400; // one simulated day, as optimistic rollups suggest
    let (addr, _) = chain
        .deploy(
            &poster.secret,
            Box::new(RhlRollup::new(poster.address, window)),
            Wei::from_eth(5),
            RhlRollup::CODE_LEN,
        )
        .unwrap();
    chain.mine_block();
    let ops = entries(8, 128);
    let digest = RhlRollup::compute_digest(&ops).unwrap();
    let tx = chain
        .call_contract(
            &poster.secret,
            addr,
            Wei::ZERO,
            RhlRollup::submit_calldata(&ops, &digest),
            Gas(10_000_000),
        )
        .unwrap();
    chain.mine_block();
    assert!(chain.receipt(tx).unwrap().status.is_success());
    let st = RhlRollup::decode_status(&chain.view(addr, &RhlRollup::status_calldata(0)).unwrap());
    assert_eq!(st, Some(BatchStatus::Pending));
    clock.advance(Duration::from_secs(window + 1));
    let st = RhlRollup::decode_status(&chain.view(addr, &RhlRollup::status_calldata(0)).unwrap());
    assert_eq!(st, Some(BatchStatus::Finalized));
}

#[test]
fn rhl_fraud_proof_seizes_escrow() {
    let (chain, _, poster) = setup();
    let challenger = Keypair::from_seed(b"challenger");
    chain.fund(challenger.address, Wei::from_eth(10));
    let escrow = Wei::from_eth(5);
    let (addr, _) = chain
        .deploy(
            &poster.secret,
            Box::new(RhlRollup::new(poster.address, 86_400)),
            escrow,
            RhlRollup::CODE_LEN,
        )
        .unwrap();
    chain.mine_block();
    // Poster lies: digest does not match the posted operations.
    let ops = entries(8, 128);
    let wrong_digest = Hash32([0x66; 32]);
    chain
        .call_contract(
            &poster.secret,
            addr,
            Wei::ZERO,
            RhlRollup::submit_calldata(&ops, &wrong_digest),
            Gas(10_000_000),
        )
        .unwrap();
    chain.mine_block();
    let before = chain.balance(challenger.address);
    let tx = chain
        .call_contract(
            &challenger.secret,
            addr,
            Wei::ZERO,
            RhlRollup::challenge_calldata(0),
            Gas(10_000_000),
        )
        .unwrap();
    chain.mine_block();
    let receipt = chain.receipt(tx).unwrap();
    assert!(receipt.status.is_success());
    assert_eq!(
        RhlRollup::decode_status(&chain.view(addr, &RhlRollup::status_calldata(0)).unwrap()),
        Some(BatchStatus::Fraudulent)
    );
    let gained = chain
        .balance(challenger.address)
        .checked_add(receipt.fee)
        .unwrap()
        .checked_sub(before)
        .unwrap();
    assert_eq!(gained, escrow);
}

#[test]
fn rhl_honest_batch_survives_challenge() {
    let (chain, _, poster) = setup();
    let challenger = Keypair::from_seed(b"challenger-2");
    chain.fund(challenger.address, Wei::from_eth(10));
    let (addr, _) = chain
        .deploy(
            &poster.secret,
            Box::new(RhlRollup::new(poster.address, 86_400)),
            Wei::from_eth(5),
            RhlRollup::CODE_LEN,
        )
        .unwrap();
    chain.mine_block();
    let ops = entries(8, 128);
    let digest = RhlRollup::compute_digest(&ops).unwrap();
    chain
        .call_contract(
            &poster.secret,
            addr,
            Wei::ZERO,
            RhlRollup::submit_calldata(&ops, &digest),
            Gas(10_000_000),
        )
        .unwrap();
    chain.mine_block();
    let tx = chain
        .call_contract(
            &challenger.secret,
            addr,
            Wei::ZERO,
            RhlRollup::challenge_calldata(0),
            Gas(10_000_000),
        )
        .unwrap();
    chain.mine_block();
    assert!(
        !chain.receipt(tx).unwrap().status.is_success(),
        "honest digest: challenge fails"
    );
    assert_eq!(chain.balance(addr), Wei::from_eth(5), "escrow intact");
}

#[test]
fn rhl_challenge_window_closes() {
    let (chain, clock, poster) = setup();
    let challenger = Keypair::from_seed(b"late-challenger");
    chain.fund(challenger.address, Wei::from_eth(10));
    let (addr, _) = chain
        .deploy(
            &poster.secret,
            Box::new(RhlRollup::new(poster.address, 3600)),
            Wei::from_eth(5),
            RhlRollup::CODE_LEN,
        )
        .unwrap();
    chain.mine_block();
    let ops = entries(4, 64);
    let wrong = Hash32([0x77; 32]);
    chain
        .call_contract(
            &poster.secret,
            addr,
            Wei::ZERO,
            RhlRollup::submit_calldata(&ops, &wrong),
            Gas(10_000_000),
        )
        .unwrap();
    chain.mine_block();
    clock.advance(Duration::from_secs(3601));
    let tx = chain
        .call_contract(
            &challenger.secret,
            addr,
            Wei::ZERO,
            RhlRollup::challenge_calldata(0),
            Gas(10_000_000),
        )
        .unwrap();
    chain.mine_block();
    // Too late: even a fraudulent batch is final (the rollup trade-off).
    assert!(!chain.receipt(tx).unwrap().status.is_success());
    assert_eq!(
        RhlRollup::decode_status(&chain.view(addr, &RhlRollup::status_calldata(0)).unwrap()),
        Some(BatchStatus::Finalized)
    );
}

#[test]
fn rhl_only_poster_submits() {
    let (chain, _, poster) = setup();
    let stranger = Keypair::from_seed(b"rhl-stranger");
    chain.fund(stranger.address, Wei::from_eth(10));
    let (addr, _) = chain
        .deploy(
            &poster.secret,
            Box::new(RhlRollup::new(poster.address, 3600)),
            Wei::from_eth(1),
            RhlRollup::CODE_LEN,
        )
        .unwrap();
    chain.mine_block();
    let ops = entries(2, 32);
    let digest = RhlRollup::compute_digest(&ops).unwrap();
    let tx = chain
        .call_contract(
            &stranger.secret,
            addr,
            Wei::ZERO,
            RhlRollup::submit_calldata(&ops, &digest),
            Gas(10_000_000),
        )
        .unwrap();
    chain.mine_block();
    assert!(!chain.receipt(tx).unwrap().status.is_success());
}
