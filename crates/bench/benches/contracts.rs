//! Criterion benches for contract execution: the `Update-Records` call at
//! different digest-group sizes (the minimum-writing / batching ablation
//! behind Figure 3 right) and the punishment verification path.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wedge_chain::{Chain, Gas, Wei};
use wedge_contracts::{response_digest, Punishment, RootRecord};
use wedge_crypto::ecdsa::sign_prehashed;
use wedge_crypto::hash::Hash32;
use wedge_crypto::Keypair;
use wedge_merkle::MerkleTree;
use wedge_sim::Clock;

fn world() -> (Arc<Chain>, Keypair) {
    let chain = Chain::with_defaults(Clock::manual());
    let node = Keypair::from_seed(b"contract-bench");
    chain.fund(node.address, Wei::from_eth(1_000_000));
    (chain, node)
}

fn bench_update_records(c: &mut Criterion) {
    let mut group = c.benchmark_group("update_records_submit_and_mine");
    group.sample_size(20);
    for group_size in [1usize, 4, 16, 64] {
        group.bench_with_input(
            BenchmarkId::from_parameter(group_size),
            &group_size,
            |b, &group_size| {
                b.iter_batched(
                    || {
                        let (chain, node) = world();
                        let (addr, _) = chain
                            .deploy(
                                &node.secret,
                                Box::new(RootRecord::new(node.address)),
                                Wei::ZERO,
                                RootRecord::CODE_LEN,
                            )
                            .unwrap();
                        chain.mine_block();
                        let roots: Vec<Hash32> =
                            (0..group_size).map(|i| Hash32([i as u8 + 1; 32])).collect();
                        (chain, node, addr, roots)
                    },
                    |(chain, node, addr, roots)| {
                        chain
                            .call_contract(
                                &node.secret,
                                addr,
                                Wei::ZERO,
                                RootRecord::update_records_calldata(0, &roots),
                                Gas(10_000_000),
                            )
                            .unwrap();
                        chain.mine_block()
                    },
                    criterion::BatchSize::SmallInput,
                )
            },
        );
    }
    group.finish();
}

fn bench_invoke_punishment(c: &mut Criterion) {
    // The full on-chain fraud-verification path: ecrecover + cross-contract
    // root lookup + Merkle reconstruction.
    let mut group = c.benchmark_group("invoke_punishment");
    group.sample_size(20);
    group.bench_function("honest_response_no_payout", |b| {
        b.iter_batched(
            || {
                let (chain, node) = world();
                let client = Keypair::from_seed(b"pb-client");
                chain.fund(client.address, Wei::from_eth(100));
                let (rr, _) = chain
                    .deploy(
                        &node.secret,
                        Box::new(RootRecord::new(node.address)),
                        Wei::ZERO,
                        RootRecord::CODE_LEN,
                    )
                    .unwrap();
                let (pun, _) = chain
                    .deploy(
                        &node.secret,
                        Box::new(Punishment::new(client.address, node.address, rr)),
                        Wei::from_eth(10),
                        Punishment::CODE_LEN,
                    )
                    .unwrap();
                chain.mine_block();
                let batch: Vec<Vec<u8>> =
                    (0..64).map(|i| format!("entry-{i}").into_bytes()).collect();
                let tree = MerkleTree::from_leaves(&batch).unwrap();
                chain
                    .call_contract(
                        &node.secret,
                        rr,
                        Wei::ZERO,
                        RootRecord::update_records_calldata(0, &[tree.root()]),
                        Gas(1_000_000),
                    )
                    .unwrap();
                chain.mine_block();
                let proof = tree.prove(3).unwrap().to_bytes();
                let sig = sign_prehashed(
                    &node.secret,
                    &response_digest(0, &tree.root(), &proof, &batch[3]),
                );
                let calldata =
                    Punishment::invoke_calldata(0, &tree.root(), &proof, &batch[3], &sig);
                (chain, client, pun, calldata)
            },
            |(chain, client, pun, calldata)| {
                chain
                    .call_contract(&client.secret, pun, Wei::ZERO, calldata, Gas(5_000_000))
                    .unwrap();
                chain.mine_block()
            },
            criterion::BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_update_records, bench_invoke_punishment);
criterion_main!(benches);
