//! Criterion benches for the chain substrate: transaction signing +
//! submission, block execution throughput, and view-call latency.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use wedge_chain::{Chain, Gas, Wei};
use wedge_contracts::RootRecord;
use wedge_crypto::hash::Hash32;
use wedge_crypto::Keypair;
use wedge_sim::Clock;

fn funded_chain() -> (Arc<Chain>, Keypair) {
    let chain = Chain::with_defaults(Clock::manual());
    let user = Keypair::from_seed(b"chain-bench");
    chain.fund(user.address, Wei::from_eth(1_000_000_000));
    (chain, user)
}

fn bench_submit(c: &mut Criterion) {
    let (chain, user) = funded_chain();
    let bob = Keypair::from_seed(b"chain-bench-bob").address;
    c.bench_function("tx_sign_and_submit", |b| {
        b.iter(|| chain.transfer(&user.secret, bob, Wei(1)).unwrap())
    });
    // Drain what we queued so the fixture doesn't grow unboundedly.
    while chain.pending_count() > 0 {
        chain.mine_block();
    }
}

fn bench_block_execution(c: &mut Criterion) {
    let mut group = c.benchmark_group("mine_block");
    group.sample_size(20);
    for tx_count in [10usize, 100, 500] {
        group.throughput(Throughput::Elements(tx_count as u64));
        group.bench_with_input(
            BenchmarkId::new("transfers", tx_count),
            &tx_count,
            |b, &tx_count| {
                b.iter_batched(
                    || {
                        let (chain, user) = funded_chain();
                        let bob = Keypair::from_seed(b"bb").address;
                        for _ in 0..tx_count {
                            chain.transfer(&user.secret, bob, Wei(1)).unwrap();
                        }
                        chain
                    },
                    |chain| chain.mine_block(),
                    criterion::BatchSize::SmallInput,
                )
            },
        );
    }
    group.finish();
}

fn bench_view_calls(c: &mut Criterion) {
    let (chain, user) = funded_chain();
    let (addr, _) = chain
        .deploy(
            &user.secret,
            Box::new(RootRecord::new(user.address)),
            Wei::ZERO,
            RootRecord::CODE_LEN,
        )
        .unwrap();
    chain.mine_block();
    let roots: Vec<Hash32> = (0..64).map(|i| Hash32([i as u8 + 1; 32])).collect();
    chain
        .call_contract(
            &user.secret,
            addr,
            Wei::ZERO,
            RootRecord::update_records_calldata(0, &roots),
            Gas(10_000_000),
        )
        .unwrap();
    chain.mine_block();
    c.bench_function("view_get_root_at_index", |b| {
        let mut i = 0u64;
        b.iter(|| {
            let out = chain
                .view(addr, &RootRecord::get_root_calldata(i % 64))
                .unwrap();
            i += 1;
            out
        })
    });
}

criterion_group!(
    benches,
    bench_submit,
    bench_block_execution,
    bench_view_calls
);
criterion_main!(benches);
