//! Criterion benches for the cryptographic hot path: hashing, signing,
//! verification, recovery — and the parallel-signing ablation (the paper's
//! prototype parallelizes ECDSA across all cores).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use wedge_crypto::ecdsa::{recover_prehashed, sign_prehashed, verify_prehashed};
use wedge_crypto::hash::{keccak256, sha256};
use wedge_crypto::{sign_batch_parallel, Keypair};

fn bench_hashes(c: &mut Criterion) {
    let mut group = c.benchmark_group("hash");
    for size in [32usize, 1088, 16 * 1024] {
        let data = vec![0xABu8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::new("keccak256", size), &data, |b, d| {
            b.iter(|| keccak256(d))
        });
        group.bench_with_input(BenchmarkId::new("sha256", size), &data, |b, d| {
            b.iter(|| sha256(d))
        });
    }
    group.finish();
}

fn bench_ecdsa(c: &mut Criterion) {
    let kp = Keypair::from_seed(b"bench");
    let hash = keccak256(b"bench message");
    let sig = sign_prehashed(&kp.secret, &hash);
    let mut group = c.benchmark_group("ecdsa");
    group.bench_function("sign", |b| b.iter(|| sign_prehashed(&kp.secret, &hash)));
    group.bench_function("verify", |b| {
        b.iter(|| verify_prehashed(&kp.public, &hash, &sig).unwrap())
    });
    group.bench_function("recover", |b| {
        b.iter(|| recover_prehashed(&hash, &sig).unwrap())
    });
    group.finish();
}

fn bench_parallel_signing(c: &mut Criterion) {
    // Ablation: single-threaded vs multi-core batch signing, the design
    // choice the paper's §5 calls out.
    let kp = Keypair::from_seed(b"parallel");
    let hashes: Vec<[u8; 32]> = (0..256u32).map(|i| keccak256(&i.to_be_bytes())).collect();
    let mut group = c.benchmark_group("batch_sign_256");
    group.throughput(Throughput::Elements(hashes.len() as u64));
    for threads in [1usize, 4, 8, 16] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| b.iter(|| sign_batch_parallel(&kp.secret, &hashes, threads)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_hashes, bench_ecdsa, bench_parallel_signing);
criterion_main!(benches);
