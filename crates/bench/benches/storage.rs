//! Criterion benches for the storage engine: append throughput per sync
//! policy (the durability ablation) and point-read latency.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use wedge_storage::{LogStore, StoreConfig, SyncPolicy};

fn scratch(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("wedge-bench-store-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn bench_append_sync_policies(c: &mut Criterion) {
    let record = vec![0xEEu8; 1088];
    let mut group = c.benchmark_group("append_1kb");
    group.throughput(Throughput::Bytes(record.len() as u64));
    group.sample_size(20);
    for (name, sync) in [
        ("never", SyncPolicy::Never),
        ("on_rotate", SyncPolicy::OnRotate),
        ("always", SyncPolicy::Always),
    ] {
        let store = LogStore::open(
            scratch(name),
            StoreConfig {
                sync,
                ..Default::default()
            },
        )
        .unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(name), &store, |b, s| {
            b.iter(|| s.append(&record).unwrap())
        });
    }
    group.finish();
}

fn bench_batch_append(c: &mut Criterion) {
    let batch: Vec<Vec<u8>> = (0..100).map(|_| vec![0xEEu8; 1088]).collect();
    let store = LogStore::open(scratch("batch"), StoreConfig::default()).unwrap();
    let mut group = c.benchmark_group("append_batch_100x1kb");
    group.throughput(Throughput::Elements(100));
    group.sample_size(20);
    group.bench_function("batch", |b| b.iter(|| store.append_batch(&batch).unwrap()));
    group.finish();
}

fn bench_point_reads(c: &mut Criterion) {
    let store = LogStore::open(scratch("reads"), StoreConfig::default()).unwrap();
    for i in 0..10_000u32 {
        store
            .append(format!("record-{i}-{}", "x".repeat(1000)).as_bytes())
            .unwrap();
    }
    store.sync().unwrap();
    let mut group = c.benchmark_group("point_read_1kb");
    let mut i = 0u64;
    group.bench_function("sequential", |b| {
        b.iter(|| {
            let data = store.read(i % 10_000).unwrap();
            i += 1;
            data
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_append_sync_policies,
    bench_batch_append,
    bench_point_reads
);
criterion_main!(benches);
