//! Criterion benches for the Merkle substrate: tree construction at the
//! paper's batch sizes, proof generation, verification, and the
//! range-proof-vs-per-leaf audit ablation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use wedge_merkle::{MerkleTree, RangeProof};

fn leaves(n: usize, size: usize) -> Vec<Vec<u8>> {
    (0..n)
        .map(|i| {
            let mut l = format!("leaf-{i}-").into_bytes();
            l.resize(size, 0x7F);
            l
        })
        .collect()
}

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("tree_build_1kb_leaves");
    group.sample_size(10);
    for n in [500usize, 2000, 10_000] {
        let data = leaves(n, 1088);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &data, |b, d| {
            b.iter(|| MerkleTree::from_leaves(d).unwrap())
        });
    }
    group.finish();
}

fn bench_prove_verify(c: &mut Criterion) {
    let mut group = c.benchmark_group("proofs");
    for n in [500usize, 2000, 10_000] {
        let data = leaves(n, 1088);
        let tree = MerkleTree::from_leaves(&data).unwrap();
        let root = tree.root();
        let proof = tree.prove(n / 2).unwrap();
        group.bench_with_input(BenchmarkId::new("prove", n), &tree, |b, t| {
            b.iter(|| t.prove(n / 2).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("verify", n), &proof, |b, p| {
            b.iter(|| p.verify(&data[n / 2], &root).unwrap())
        });
    }
    group.finish();
}

fn bench_audit_strategies(c: &mut Criterion) {
    // Ablation: verifying a 500-entry scan with per-leaf proofs vs one
    // range multiproof.
    let n = 2000;
    let data = leaves(n, 1088);
    let tree = MerkleTree::from_leaves(&data).unwrap();
    let root = tree.root();
    let span = 500;
    let per_leaf: Vec<_> = (0..span).map(|i| tree.prove(i).unwrap()).collect();
    let range = RangeProof::generate(&tree, 0, span).unwrap();
    let mut group = c.benchmark_group("audit_500_of_2000");
    group.bench_function("per_leaf_proofs", |b| {
        b.iter(|| {
            for (i, proof) in per_leaf.iter().enumerate() {
                proof.verify(&data[i], &root).unwrap();
            }
        })
    });
    group.bench_function("range_multiproof", |b| {
        b.iter(|| range.verify(&data[..span], &root).unwrap())
    });
    group.finish();
}

fn bench_proof_generation_strategies(c: &mut Criterion) {
    // Ablation (DESIGN.md §6): the node retains each batch's full tree so
    // read-path proofs are O(log n) lookups. The alternative — keeping only
    // the leaf hashes and rebuilding on demand — saves ~2× memory but pays
    // a full O(n) rebuild per proof.
    let n = 2000;
    let data = leaves(n, 1088);
    let tree = MerkleTree::from_leaves(&data).unwrap();
    let leaf_hashes: Vec<_> = (0..n).map(|i| wedge_merkle::hash_leaf(&data[i])).collect();
    let mut group = c.benchmark_group("proof_generation_strategy_2000_leaves");
    group.bench_function("retained_tree", |b| {
        let mut i = 0;
        b.iter(|| {
            let proof = tree.prove(i % n).unwrap();
            i += 1;
            proof
        })
    });
    group.bench_function("rebuild_from_leaf_hashes", |b| {
        let mut i = 0;
        b.iter(|| {
            let rebuilt = MerkleTree::from_leaf_hashes(leaf_hashes.clone()).unwrap();
            let proof = rebuilt.prove(i % n).unwrap();
            i += 1;
            proof
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_build,
    bench_prove_verify,
    bench_audit_strategies,
    bench_proof_generation_strategies
);
criterion_main!(benches);
