//! `repro` — regenerates the paper's evaluation tables and figures.
//!
//! ```text
//! cargo run -p wedge-bench --release --bin repro -- all [--full]
//! cargo run -p wedge-bench --release --bin repro -- fig3
//! ```
//!
//! Experiments: `fig3 fig4 fig5 fig6 fig7 fig8 fig9 table1 stage1 signing
//! hashing net punish latency faults reads tiers cluster`.
//! Results are printed and also written to `results/<exp>.md`.

use std::time::Instant;

use wedge_bench::harness::{self, Table};
use wedge_bench::workload::Profile;

fn write_result(name: &str, table: &Table) {
    let _ = std::fs::create_dir_all("results");
    let path = format!("results/{name}.md");
    if let Err(e) = std::fs::write(&path, table.to_markdown()) {
        eprintln!("warning: could not write {path}: {e}");
    }
}

fn run(name: &str, profile: Profile) {
    let started = Instant::now();
    let table: Table = match name {
        "fig3" => harness::fig3(profile),
        "fig4" => harness::fig4(profile),
        "fig5" => harness::fig5(profile),
        "fig6" => harness::fig6(profile),
        "fig7" => harness::fig7(profile),
        "fig8" => harness::fig8(profile),
        "fig9" => harness::fig9(profile),
        "table1" => harness::table1(profile),
        "stage1" => harness::stage1(profile),
        "signing" => harness::signing(profile),
        "hashing" => harness::hashing(profile),
        "net" => harness::net(profile),
        "punish" => harness::punishment_economics(),
        "latency" => harness::latency_ablation(profile),
        "faults" => harness::fault_tolerance(profile),
        "reads" => harness::reads(profile),
        "tiers" => harness::tiers(profile),
        "cluster" => harness::cluster(profile),
        other => {
            eprintln!("unknown experiment: {other}");
            std::process::exit(2);
        }
    };
    println!("{}", table.to_markdown());
    println!(
        "[{name} completed in {:.1} s]\n",
        started.elapsed().as_secs_f64()
    );
    write_result(name, &table);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let profile = if args.iter().any(|a| a == "--full") {
        Profile::Full
    } else {
        Profile::Quick
    };
    let targets: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(|s| s.as_str())
        .collect();
    let all = [
        "fig3", "fig4", "fig5", "fig6", "fig7", "table1", "fig8", "fig9", "reads", "stage1",
        "signing", "hashing", "net", "punish", "latency", "faults", "tiers", "cluster",
    ];
    let selected: Vec<&str> = if targets.is_empty() || targets == ["all"] {
        all.to_vec()
    } else {
        targets
    };
    println!(
        "# WedgeBlock reproduction — profile: {profile:?}\n\
         (on-chain latencies are reported in simulated seconds; off-chain\n\
         compute in real time. See EXPERIMENTS.md.)\n"
    );
    for name in selected {
        run(name, profile);
    }
}
