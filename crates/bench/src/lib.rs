//! # wedge-bench
//!
//! Shared experiment harness for regenerating every table and figure of the
//! paper's evaluation (see DESIGN.md §4 for the experiment index). The
//! `repro` binary drives the experiments; Criterion benches cover the hot
//! primitives.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod harness;
pub mod workload;
