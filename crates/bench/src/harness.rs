//! Experiment implementations — one function per paper table/figure.
//!
//! Every function returns a [`Table`] whose rows mirror the series the paper
//! plots, and prints nothing itself; the `repro` binary handles output.
//! See DESIGN.md §4 for the experiment index and EXPERIMENTS.md for
//! paper-vs-measured results.
//!
//! lint: allow-file(panic) — measurement harness: a failed experiment setup must abort loudly, not limp on and publish skewed numbers

use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::unbounded;
use wedge_baselines::{OclConfig, OclSystem, RhlConfig, RhlSystem, SoclSystem};
use wedge_chain::Wei;
use wedge_core::AppendRequest;
use wedge_core::{Auditor, NodeConfig, Reader};
use wedge_crypto::signer::Identity;
use wedge_crypto::Hash32;

use crate::workload::{kv_payloads, Profile, World, KEY_SIZE, VALUE_SIZE};

/// A printable result table.
#[derive(Clone, Debug)]
pub struct Table {
    /// Experiment id, e.g. "Figure 3".
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Renders as GitHub markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = format!("### {}\n\n", self.title);
        out.push_str(&format!("| {} |\n", self.headers.join(" | ")));
        out.push_str(&format!(
            "|{}\n",
            self.headers.iter().map(|_| "---|").collect::<String>()
        ));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out
    }
}

fn fmt_dur(d: Duration) -> String {
    if d >= Duration::from_secs(1) {
        format!("{:.2} s", d.as_secs_f64())
    } else {
        format!("{:.1} ms", d.as_secs_f64() * 1e3)
    }
}

fn fmt_eth(wei: Wei) -> String {
    format!("{:.3e}", wei.as_eth_f64())
}

/// Formats a throughput with sensible precision across magnitudes.
fn fmt_rate(v: f64) -> String {
    if v >= 0.01 {
        format!("{v:.2}")
    } else {
        format!("{v:.2e}")
    }
}

/// The batch sizes swept by Figures 3/4 (paper values).
pub const BATCH_SIZES: [usize; 6] = [500, 1000, 2000, 4000, 8000, 10_000];
/// The value sizes swept by Figures 5/6 and Table 1.
pub const VALUE_SIZES: [usize; 4] = [512, 1024, 2048, 4096];

/// One throughput/cost run: appends `n` entries of `value_size` through a
/// node batching at `batch_size` with `replicas`, returning
/// (ops/s, MB/s, cost-per-op, publisher latencies, stage-2 mean).
struct RunResult {
    ops_per_sec: f64,
    mb_per_sec: f64,
    cost_per_op: Wei,
    first_response: Duration,
    last_response: Duration,
    stage1_commit: Duration,
    stage2_mean: Duration,
}

fn run_append(
    tag: &str,
    batch_size: usize,
    value_size: usize,
    n: usize,
    replicas: usize,
) -> RunResult {
    let config = NodeConfig {
        batch_size,
        batch_linger: Duration::from_millis(30),
        replicas,
        ..Default::default()
    };
    let mut world = World::new(tag, config, 2000.0);
    let payloads = kv_payloads(n, KEY_SIZE, value_size, 42);
    let bytes: usize = payloads.iter().map(|p| p.len()).sum();
    let outcome = world.publisher.append_batch(payloads).expect("append");
    world.settle();
    let stats = world.node.stats();
    // Node-side ingestion throughput: ops over the time the node was
    // actively serving (submission to last response).
    let elapsed = outcome.last_response.as_secs_f64().max(1e-9);
    RunResult {
        ops_per_sec: n as f64 / elapsed,
        mb_per_sec: bytes as f64 / 1e6 / elapsed,
        cost_per_op: stats.cost_per_op(),
        first_response: outcome.first_response,
        last_response: outcome.last_response,
        stage1_commit: outcome.stage1_commit,
        stage2_mean: stats.mean_stage2_latency().unwrap_or_default(),
    }
}

/// Figure 3: Offchain Node throughput (with and without replication) and
/// monetary cost per operation, varying the batch size.
pub fn fig3(profile: Profile) -> Table {
    let mut table = Table {
        title: "Figure 3 — throughput and cost per op vs batch size (1088 B entries)".into(),
        headers: vec![
            "batch size".into(),
            "throughput (ops/s)".into(),
            "throughput, 2 replicas (ops/s)".into(),
            "cost per op (ETH)".into(),
            "stage-2 mean (sim)".into(),
        ],
        rows: Vec::new(),
    };
    for &batch_size in &BATCH_SIZES {
        let n = profile.scale(batch_size * 10, (batch_size * 2).max(4000));
        let solo = run_append(&format!("fig3-{batch_size}"), batch_size, VALUE_SIZE, n, 0);
        let repl = run_append(&format!("fig3r-{batch_size}"), batch_size, VALUE_SIZE, n, 2);
        table.rows.push(vec![
            batch_size.to_string(),
            format!("{:.0}", solo.ops_per_sec),
            format!("{:.0}", repl.ops_per_sec),
            fmt_eth(solo.cost_per_op),
            fmt_dur(solo.stage2_mean),
        ]);
    }
    table
}

/// Figure 4: publisher latency vs batch size (first / last / stage-1
/// commitment delay).
pub fn fig4(profile: Profile) -> Table {
    let mut table = Table {
        title: "Figure 4 — publisher latency vs batch size".into(),
        headers: vec![
            "batch size".into(),
            "first op delay".into(),
            "last op delay".into(),
            "stage-1 commitment delay".into(),
            "stage-2 mean (sim)".into(),
        ],
        rows: Vec::new(),
    };
    for &batch_size in &BATCH_SIZES {
        // The paper's publisher sends 10 000 operations regardless of the
        // node's batch size.
        let n = 10_000;
        let _ = profile;
        let run = run_append(&format!("fig4-{batch_size}"), batch_size, VALUE_SIZE, n, 0);
        table.rows.push(vec![
            batch_size.to_string(),
            fmt_dur(run.first_response),
            fmt_dur(run.last_response),
            fmt_dur(run.stage1_commit),
            fmt_dur(run.stage2_mean),
        ]);
    }
    table
}

/// Figure 5: throughput (MB/s, ± replication) and cost per op vs value
/// size, batch size fixed at 2000.
pub fn fig5(profile: Profile) -> Table {
    let mut table = Table {
        title: "Figure 5 — throughput and cost per op vs value size (batch = 2000)".into(),
        headers: vec![
            "value size (B)".into(),
            "throughput (MB/s)".into(),
            "throughput, 2 replicas (MB/s)".into(),
            "cost per op (ETH)".into(),
        ],
        rows: Vec::new(),
    };
    for &value_size in &VALUE_SIZES {
        let n = profile.scale(20_000, 4000);
        let solo = run_append(&format!("fig5-{value_size}"), 2000, value_size, n, 0);
        let repl = run_append(&format!("fig5r-{value_size}"), 2000, value_size, n, 2);
        table.rows.push(vec![
            value_size.to_string(),
            fmt_rate(solo.mb_per_sec),
            fmt_rate(repl.mb_per_sec),
            fmt_eth(solo.cost_per_op),
        ]);
    }
    table
}

/// Figure 6: publisher latency vs value size, batch size fixed at 2000.
pub fn fig6(profile: Profile) -> Table {
    let mut table = Table {
        title: "Figure 6 — publisher latency vs value size (batch = 2000)".into(),
        headers: vec![
            "value size (B)".into(),
            "first op delay".into(),
            "last op delay".into(),
            "stage-1 commitment delay".into(),
        ],
        rows: Vec::new(),
    };
    for &value_size in &VALUE_SIZES {
        let n = profile.scale(10_000, 4000);
        let run = run_append(&format!("fig6-{value_size}"), 2000, value_size, n, 0);
        table.rows.push(vec![
            value_size.to_string(),
            fmt_dur(run.first_response),
            fmt_dur(run.last_response),
            fmt_dur(run.stage1_commit),
        ]);
    }
    table
}

/// Figure 7: stage-1 commit throughput vs offered request frequency
/// (open-loop load).
pub fn fig7(profile: Profile) -> Table {
    // First estimate the node's capacity with a closed-loop burst.
    let burst_n = profile.scale(20_000, 4000);
    let capacity = run_append("fig7-cap", 2000, VALUE_SIZE, burst_n, 0).ops_per_sec;

    let mut table = Table {
        title: "Figure 7 — stage-1 throughput vs offered request frequency".into(),
        headers: vec![
            "offered rate (req/s)".into(),
            "stage-1 throughput (ops/s)".into(),
            "of capacity".into(),
        ],
        rows: Vec::new(),
    };
    // A longer window amortizes the final batch's drain tail, so the
    // sub-capacity points track the offered rate closely.
    let window = Duration::from_secs(profile.scale(20, 8) as u64);
    for fraction in [0.2, 0.4, 0.6, 0.8, 1.0, 1.2, 1.4] {
        let rate = (capacity * fraction).max(1.0);
        let n = (rate * window.as_secs_f64()) as usize;
        let config = NodeConfig {
            batch_size: 2000,
            batch_linger: Duration::from_millis(30),
            ..Default::default()
        };
        let world = World::new(&format!("fig7-{fraction}"), config, 2000.0);
        // Pre-sign requests so client-side signing doesn't gate the offered
        // rate.
        let publisher_id = Identity::from_seed(b"fig7-publisher");
        let payloads = kv_payloads(n, KEY_SIZE, VALUE_SIZE, 7);
        let requests: Vec<AppendRequest> = {
            let items: Vec<(u64, Vec<u8>)> = (0..).zip(payloads).collect();
            wedge_core::parallel_map(&items, 16, |(seq, payload)| {
                AppendRequest::new(publisher_id.secret_key(), *seq, payload.clone())
            })
        };
        let (reply_tx, reply_rx) = unbounded();
        let started = Instant::now();
        // Paced submission: 100 ticks/s.
        let tick = Duration::from_millis(10);
        let per_tick = (rate * tick.as_secs_f64()).max(1.0) as usize;
        let node = Arc::clone(&world.node);
        let submitter = std::thread::spawn(move || {
            let mut sent = 0usize;
            let mut next_tick = Instant::now();
            for request in requests {
                node.submit(request, reply_tx.clone()).expect("submit");
                sent += 1;
                if sent.is_multiple_of(per_tick) {
                    next_tick += tick;
                    let now = Instant::now();
                    if next_tick > now {
                        std::thread::sleep(next_tick - now);
                    }
                }
            }
        });
        let mut received = 0usize;
        while received < n {
            match reply_rx.recv_timeout(Duration::from_secs(60)) {
                Ok(_) => received += 1,
                Err(_) => break,
            }
        }
        submitter.join().unwrap();
        let elapsed = started.elapsed().as_secs_f64().max(1e-9);
        let throughput = received as f64 / elapsed;
        table.rows.push(vec![
            format!("{rate:.0}"),
            format!("{throughput:.0}"),
            format!("{:.0}%", fraction * 100.0),
        ]);
    }
    table
}

/// Table 1: commitment throughput and cost per operation of OCL, SOCL, RHL
/// and WedgeBlock at 1024 B and 2048 B values.
pub fn table1(profile: Profile) -> Table {
    let mut table = Table {
        title: "Table 1 — commitment throughput and cost vs prior approaches".into(),
        headers: vec![
            "value size / system".into(),
            "throughput (MB/s)".into(),
            "cost per op (ETH)".into(),
            "commit latency".into(),
        ],
        rows: Vec::new(),
    };
    for &value_size in &[1024usize, 2048] {
        // --- OCL: raw entries on-chain; commit = confirmed receipt.
        {
            let world = World::new(
                &format!("t1-ocl-{value_size}"),
                NodeConfig::default(),
                2000.0,
            );
            let ocl = OclSystem::deploy(
                Arc::clone(&world.chain),
                world.node_identity.clone(),
                OclConfig::default(),
            )
            .expect("deploy ocl");
            let n = profile.scale(200, 40);
            let payloads = kv_payloads(n, KEY_SIZE, value_size, 1);
            let out = ocl.append_and_commit(&payloads).expect("ocl commit");
            table.rows.push(vec![
                format!("{value_size} (OCL)"),
                fmt_rate(out.throughput_mb_s()),
                fmt_eth(out.costs.cost_per_op()),
                format!("{} (sim)", fmt_dur(out.commit_latency)),
            ]);
        }
        // --- SOCL: off-chain + digest, but commit waits for the chain.
        {
            let config = NodeConfig {
                batch_size: 2000,
                batch_linger: Duration::from_millis(30),
                ..Default::default()
            };
            let world = World::new(&format!("t1-socl-{value_size}"), config, 2000.0);
            let client = Identity::from_seed(b"t1-socl-client");
            world.chain.fund(client.address(), Wei::from_eth(1000));
            let mut socl = SoclSystem::new(
                Arc::clone(&world.chain),
                Arc::clone(&world.node),
                client,
                world.root_record,
            );
            let n = profile.scale(10_000, 2000);
            let payloads = kv_payloads(n, KEY_SIZE, value_size, 2);
            let out = socl.append_and_commit(payloads).expect("socl commit");
            table.rows.push(vec![
                format!("{value_size} (SOCL)"),
                fmt_rate(out.throughput_mb_s()),
                fmt_eth(out.costs.cost_per_op()),
                format!("{} (sim)", fmt_dur(out.commit_latency)),
            ]);
        }
        // --- RHL: fast stage-1 ack; ops posted on-chain; day-long finality.
        {
            let world = World::new(
                &format!("t1-rhl-{value_size}"),
                NodeConfig::default(),
                2000.0,
            );
            let rhl = RhlSystem::deploy(
                Arc::clone(&world.chain),
                world.node_identity.clone(),
                RhlConfig::default(),
            )
            .expect("deploy rhl");
            let n = profile.scale(200, 40);
            let payloads = kv_payloads(n, KEY_SIZE, value_size, 3);
            let out = rhl.append_and_commit(&payloads).expect("rhl commit");
            table.rows.push(vec![
                format!("{value_size} (RHL)"),
                fmt_rate(out.stage1_throughput_mb_s()),
                fmt_eth(out.costs.cost_per_op()),
                format!(
                    "{} stage-1; finality {} (sim)",
                    fmt_dur(out.stage1_wall),
                    fmt_dur(out.finality_latency)
                ),
            ]);
        }
        // --- WB: stage-1 commit is the receipt (lazy trust).
        {
            let n = profile.scale(10_000, 2000);
            let run = run_append(&format!("t1-wb-{value_size}"), 2000, value_size, n, 0);
            table.rows.push(vec![
                format!("{value_size} (WB)"),
                fmt_rate(run.mb_per_sec),
                fmt_eth(run.cost_per_op),
                format!("{} stage-1 (real)", fmt_dur(run.stage1_commit)),
            ]);
        }
    }
    table
}

/// Builds a preloaded world for the read experiments. Request verification
/// is disabled during preload (all requests are self-generated); reads still
/// verify everything.
fn preloaded_world(tag: &str, batch_size: usize, entries: usize) -> (World, Identity) {
    let config = NodeConfig {
        batch_size,
        batch_linger: Duration::from_millis(30),
        verify_requests: false,
        ..Default::default()
    };
    let mut world = World::new(tag, config, 2000.0);
    let mut remaining = entries;
    while remaining > 0 {
        let chunk = remaining.min(20_000);
        let payloads = kv_payloads(chunk, KEY_SIZE, VALUE_SIZE, remaining as u64);
        world.publisher.append_batch(payloads).expect("preload");
        remaining -= chunk;
    }
    world.settle();
    let publisher_id = Identity::from_seed(format!("bench-client-{tag}").as_bytes());
    (world, publisher_id)
}

/// Figure 8: random-key read throughput vs the batch size the log was
/// stored with.
pub fn fig8(profile: Profile) -> Table {
    use rand::{Rng, SeedableRng};
    let entries = profile.scale(10_000_000, 40_000);
    let reads = profile.scale(50_000, 4_000);
    let mut table = Table {
        title: format!(
            "Figure 8 — random read throughput vs store batch size \
             ({entries} entries preloaded, {reads} reads incl. verification)"
        ),
        headers: vec!["store batch size".into(), "read throughput (ops/s)".into()],
        rows: Vec::new(),
    };
    for &batch_size in &BATCH_SIZES {
        let (world, publisher_id) =
            preloaded_world(&format!("fig8-{batch_size}"), batch_size, entries);
        let reader = Reader::new(
            Arc::clone(&world.node),
            Arc::clone(&world.chain),
            world.root_record,
        );
        let mut rng = rand::rngs::SmallRng::seed_from_u64(88);
        let sequences: Vec<u64> = (0..reads)
            .map(|_| rng.gen_range(0..entries as u64))
            .collect();
        let started = Instant::now();
        for &seq in &sequences {
            let entry = reader
                .read_by_sequence(publisher_id.address(), seq)
                .expect("read");
            std::hint::black_box(&entry);
        }
        let elapsed = started.elapsed().as_secs_f64().max(1e-9);
        table.rows.push(vec![
            batch_size.to_string(),
            format!("{:.0}", reads as f64 / elapsed),
        ]);
    }
    table
}

/// Figure 9: audit latency (total vs verification share) for growing
/// numbers of audited operations; plus the range-proof extension.
pub fn fig9(profile: Profile) -> Table {
    let budgets_full = [10_000usize, 50_000, 100_000, 200_000];
    let budgets_quick = [2_000usize, 5_000, 10_000, 20_000];
    let budgets = match profile {
        Profile::Full => budgets_full,
        Profile::Quick => budgets_quick,
    };
    let entries = *budgets.last().expect("non-empty");
    let (world, _publisher) = preloaded_world("fig9", 2000, entries);
    let auditor = Auditor::new(
        Arc::clone(&world.node),
        Arc::clone(&world.chain),
        world.root_record,
    );
    let mut table = Table {
        title: "Figure 9 — audit latency vs number of operations".into(),
        headers: vec![
            "operations".into(),
            "total latency".into(),
            "verification time".into(),
            "verify share".into(),
            "range-proof audit (ext.)".into(),
        ],
        rows: Vec::new(),
    };
    for &budget in &budgets {
        let report = auditor.audit(0, budget).expect("audit");
        assert!(report.is_clean(), "audit must be clean");
        let range = auditor
            .audit_with_range_proofs(0, budget)
            .expect("range audit");
        assert!(range.is_clean());
        table.rows.push(vec![
            budget.to_string(),
            fmt_dur(report.total_time),
            fmt_dur(report.verify_time),
            format!("{:.0}%", report.verify_fraction() * 100.0),
            fmt_dur(range.total_time),
        ]);
    }
    table
}

/// Percentile over a sorted latency sample (nearest-rank).
fn percentile(sorted: &[Duration], q: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let rank = ((sorted.len() as f64) * q).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

fn fmt_us(d: Duration) -> String {
    format!("{:.1} µs", d.as_secs_f64() * 1e6)
}

/// Extra (not in the paper, companion to Figures 8–9): read latency
/// percentiles on the snapshot read path — idle, and with stage-1 ingestion
/// flushing concurrently. Every read loads one published snapshot (no lock
/// guard on the hot path), so the percentiles should hold steady while the
/// ingestion column shows the pipeline still sustaining its throughput.
pub fn reads(profile: Profile) -> Table {
    use rand::{Rng, SeedableRng};
    let entries = profile.scale(500_000, 20_000);
    let reads_per_thread = profile.scale(50_000, 4_000);
    let ingest_n = profile.scale(100_000, 10_000);
    let mut table = Table {
        title: format!(
            "Reads under ingestion (extension) — node-side read latency \
             ({entries} entries preloaded, {reads_per_thread} reads/thread \
             incl. proof + response signing)"
        ),
        headers: vec![
            "scenario".into(),
            "read p50".into(),
            "read p90".into(),
            "read p99".into(),
            "read max".into(),
            "read throughput (ops/s)".into(),
            "concurrent stage-1 (ops/s)".into(),
        ],
        rows: Vec::new(),
    };

    let (world, publisher_id) = preloaded_world("reads", 2000, entries);
    let publisher_address = publisher_id.address();
    for (label, reader_threads, ingest) in [
        ("1 reader, idle node", 1usize, false),
        ("4 readers, idle node", 4, false),
        ("4 readers + ingestion", 4, true),
    ] {
        let node = &world.node;
        // Pre-signed ingestion workload from a second publisher (the node
        // runs with request verification off, as in Figure 8's preload).
        let ingest_requests: Vec<AppendRequest> = if ingest {
            let ingest_id = Identity::from_seed(b"bench-reads-ingest");
            let payloads = kv_payloads(ingest_n, KEY_SIZE, VALUE_SIZE, 0x8ead);
            let items: Vec<(u64, Vec<u8>)> = (0..).zip(payloads).collect();
            wedge_core::parallel_map(&items, 16, |(seq, payload)| {
                AppendRequest::new(ingest_id.secret_key(), *seq, payload.clone())
            })
        } else {
            Vec::new()
        };

        let mut stage1_rate = None;
        let mut samples: Vec<Duration> = Vec::new();
        let read_wall = crossbeam::thread::scope(|scope| {
            let ingest_handle = (!ingest_requests.is_empty()).then(|| {
                let requests = &ingest_requests;
                scope.spawn(move |_| {
                    let (tx, rx) = unbounded();
                    let started = Instant::now();
                    for request in requests.iter().cloned() {
                        node.submit(request, tx.clone()).expect("submit");
                    }
                    for _ in 0..requests.len() {
                        let _ = rx.recv_timeout(Duration::from_secs(120));
                    }
                    started.elapsed()
                })
            });
            let started = Instant::now();
            let reader_handles: Vec<_> = (0..reader_threads)
                .map(|t| {
                    scope.spawn(move |_| {
                        let mut rng = rand::rngs::SmallRng::seed_from_u64(0x8ead + t as u64);
                        let mut lat = Vec::with_capacity(reads_per_thread);
                        for _ in 0..reads_per_thread {
                            let seq = rng.gen_range(0..entries as u64);
                            let read_started = Instant::now();
                            let response = node
                                .read_by_sequence(publisher_address, seq)
                                .expect("preloaded sequence reads");
                            lat.push(read_started.elapsed());
                            std::hint::black_box(&response);
                        }
                        lat
                    })
                })
                .collect();
            for handle in reader_handles {
                samples.extend(handle.join().expect("reader thread"));
            }
            let wall = started.elapsed();
            if let Some(handle) = ingest_handle {
                let ingest_elapsed = handle.join().expect("ingest thread");
                stage1_rate = Some(ingest_n as f64 / ingest_elapsed.as_secs_f64().max(1e-9));
            }
            wall
        })
        .expect("read scenario threads");

        samples.sort_unstable();
        let total_reads = samples.len() as f64;
        table.rows.push(vec![
            label.into(),
            fmt_us(percentile(&samples, 0.50)),
            fmt_us(percentile(&samples, 0.90)),
            fmt_us(percentile(&samples, 0.99)),
            fmt_us(*samples.last().expect("non-empty sample")),
            format!("{:.0}", total_reads / read_wall.as_secs_f64().max(1e-9)),
            stage1_rate.map_or("—".into(), |r| format!("{r:.0}")),
        ]);
    }
    table
}

/// Extra (not in the paper): how simulated network latency shifts the
/// publisher-visible latencies — the term separating our in-process numbers
/// from the paper's RPC numbers.
pub fn latency_ablation(profile: Profile) -> Table {
    use wedge_sim::LatencyModel;
    let n = profile.scale(10_000, 4000);
    let mut table = Table {
        title: "Network-latency ablation — publisher latencies (batch = 2000, 1 KB entries)".into(),
        headers: vec![
            "request/response link".into(),
            "first op delay".into(),
            "last op delay".into(),
            "stage-1 commitment delay".into(),
        ],
        rows: Vec::new(),
    };
    let links: [(&str, LatencyModel, LatencyModel); 3] = [
        ("none (in-process)", LatencyModel::Zero, LatencyModel::Zero),
        (
            "LAN: 0.2 ms + 10 µs/KB",
            LatencyModel::Link {
                base: Duration::from_micros(200),
                per_kb: Duration::from_micros(10),
            },
            LatencyModel::Link {
                base: Duration::from_micros(200),
                per_kb: Duration::from_micros(10),
            },
        ),
        (
            "WAN: 20 ms + 80 µs/KB",
            LatencyModel::Link {
                base: Duration::from_millis(20),
                per_kb: Duration::from_micros(80),
            },
            LatencyModel::Link {
                base: Duration::from_millis(20),
                per_kb: Duration::from_micros(80),
            },
        ),
    ];
    for (label, request_model, response_model) in links {
        let config = NodeConfig {
            batch_size: 2000,
            batch_linger: Duration::from_millis(30),
            response_latency: response_model,
            ..Default::default()
        };
        let world = World::new(&format!("lat-{label}"), config, 2000.0);
        // Rebind the publisher with the request-side link model.
        let client = Identity::from_seed(format!("bench-client-lat-{label}").as_bytes());
        world.chain.fund(client.address(), Wei::from_eth(1000));
        let mut publisher = wedge_core::Publisher::new(
            client,
            std::sync::Arc::clone(&world.node),
            std::sync::Arc::clone(&world.chain),
            world.root_record,
            None,
        )
        .with_request_latency(request_model);
        let outcome = publisher
            .append_batch(kv_payloads(n, KEY_SIZE, VALUE_SIZE, 5))
            .expect("append");
        table.rows.push(vec![
            label.into(),
            fmt_dur(outcome.first_response),
            fmt_dur(outcome.last_response),
            fmt_dur(outcome.stage1_commit),
        ]);
    }
    table
}

/// Extra (not in the paper): stage-2 resilience under chain fault bursts —
/// how many retries/re-queues a burst of dropped submissions and forced
/// reverts costs, and how far the stage-2 commit latency degrades, with no
/// commitment ever lost.
pub fn fault_tolerance(profile: Profile) -> Table {
    let n = profile.scale(10_000, 2000);
    let mut table = Table {
        title: "Stage-2 fault tolerance (extension) — injected chain fault bursts".into(),
        headers: vec![
            "fault burst (drops + reverts)".into(),
            "retries".into(),
            "re-queued groups".into(),
            "backoff histogram".into(),
            "stage-2 mean (sim)".into(),
            "committed / failed".into(),
        ],
        rows: Vec::new(),
    };
    for &(drops, reverts) in &[(0u64, 0u64), (2, 1), (4, 2), (8, 4)] {
        let config = NodeConfig {
            batch_size: 2000,
            batch_linger: Duration::from_millis(30),
            // A retry budget that outlasts the longest burst swept here
            // (12 consecutive failures), so no row abandons its group.
            stage2_retry: wedge_core::Stage2RetryPolicy {
                max_attempts: 20,
                base_backoff: Duration::from_secs(1),
                max_backoff: Duration::from_secs(10),
                jitter: 0.2,
            },
            ..Default::default()
        };
        let mut world = World::new(&format!("faults-{drops}-{reverts}"), config, 2000.0);
        world.chain.faults().drop_next_submissions(drops);
        world.chain.faults().revert_next_calls(reverts);
        world
            .publisher
            .append_batch(kv_payloads(n, KEY_SIZE, VALUE_SIZE, 11))
            .expect("append");
        world.settle();
        let stats = world.node.stats();
        table.rows.push(vec![
            format!("{drops} + {reverts}"),
            stats.stage2_retries.to_string(),
            stats.stage2_requeued.to_string(),
            format!("{:?}", stats.stage2_backoff_hist),
            fmt_dur(stats.mean_stage2_latency().unwrap_or_default()),
            format!("{} / {}", stats.stage2_committed, stats.stage2_failed),
        ]);
    }
    table
}

/// One persist-path configuration for the `stage1` experiment.
struct PersistPathConfig {
    label: &'static str,
    sync: wedge_storage::SyncPolicy,
    overlap: bool,
    merkle_cutoff: usize,
}

/// Drives the node's persist+deliver stages directly against a
/// [`wedge_storage::LogStore`] + 2-replica [`wedge_storage::Replicator`]:
/// a producer thread hashes (Merkle), replicates, and appends batches while
/// a consumer thread enforces the reply-release rule (`ensure_durable`) a
/// couple of batches behind, exactly like the pipelined deliver stage.
/// Returns (records/s, sync stats).
fn run_persist_path(
    tag: &str,
    batch_size: usize,
    batches: usize,
    cfg: &PersistPathConfig,
) -> (f64, wedge_storage::SyncStats) {
    use wedge_storage::{LogStore, Replicator, StoreConfig, SyncPolicy};

    let dir = std::env::temp_dir().join(format!("wedge-stage1-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = Arc::new(
        LogStore::open(
            dir.join("store"),
            StoreConfig {
                sync: cfg.sync,
                ..Default::default()
            },
        )
        .expect("open store"),
    );
    let replicator = Replicator::spawn(
        &dir,
        2,
        StoreConfig {
            sync: SyncPolicy::Never,
            ..Default::default()
        },
        Duration::from_micros(200),
    )
    .expect("spawn replicas");
    let pool = wedge_pool::WorkPool::with_available_parallelism();
    let payloads = Arc::new(kv_payloads(batch_size, KEY_SIZE, VALUE_SIZE, 0x57a6e1));
    let total = batch_size * batches;

    let (release_tx, release_rx) = crossbeam::channel::bounded::<u64>(2);
    let started = Instant::now();
    crossbeam::thread::scope(|scope| {
        let producer_store = Arc::clone(&store);
        let payloads = Arc::clone(&payloads);
        let replicator = &replicator;
        let pool = &pool;
        scope.spawn(move |_| {
            for _ in 0..batches {
                let tree = wedge_merkle::MerkleTree::from_leaves_parallel(
                    &payloads[..],
                    pool,
                    cfg.merkle_cutoff,
                )
                .expect("non-empty batch");
                std::hint::black_box(tree.root());
                let first = if cfg.overlap {
                    // Replicas chew on the batch while we pay the local
                    // append (+ any covering fsync): cost = max, not sum.
                    let handle = replicator.replicate_begin(Arc::clone(&payloads));
                    let first = producer_store
                        .append_batch(&payloads[..])
                        .expect("append batch");
                    handle.wait();
                    first
                } else {
                    // Pre-PR shape: local persist, then replication, each
                    // paid in full (including the per-batch clone the old
                    // sequential path made for the replicas).
                    let first = producer_store
                        .append_batch(&payloads[..])
                        .expect("append batch");
                    replicator.replicate_sync((*payloads).clone());
                    first
                };
                if release_tx.send(first + batch_size as u64 - 1).is_err() {
                    return;
                }
            }
        });
        // Consumer (deliver stage): the reply-release gate.
        while let Ok(last_record) = release_rx.recv() {
            store.ensure_durable(last_record).expect("durability");
        }
    })
    .expect("persist-path threads");
    let elapsed = started.elapsed().as_secs_f64().max(1e-9);
    let stats = store.sync_stats();
    let _ = std::fs::remove_dir_all(&dir);
    (total as f64 / elapsed, stats)
}

/// Extra (not in the paper): the stage-1 hardware-speed path introduced by
/// this PR — parallel Merkle construction, replication overlapped with local
/// durability, and fsync group-commit — measured two ways:
///
/// * **persist path** rows drive the storage + replication layers directly
///   (no signing, no chain) and compare the pre-PR durable configuration
///   (fsync per batch, sequential replication, serial Merkle) against the
///   PR's (group commit, overlapped replication, parallel Merkle);
/// * **end-to-end** rows run the full node + publisher and compare the
///   pre-PR pipeline shape (sequential replication, serial Merkle) against
///   the PR's, plus a durable-replies variant under group commit.
pub fn stage1(profile: Profile) -> Table {
    use wedge_storage::SyncPolicy;

    let mut table = Table {
        title: "Stage-1 hardware-speed path (extension) — parallel Merkle, \
                overlapped replication, fsync group-commit"
            .into(),
        headers: vec![
            "scenario".into(),
            "batch".into(),
            "throughput (ops/s)".into(),
            "vs pre-PR".into(),
            "fsyncs".into(),
            "coalesced".into(),
            "repl overlap (ms)".into(),
            "merkle par chunks".into(),
            "merkle hash (ms)".into(),
            "hash ×4 groups".into(),
        ],
        rows: Vec::new(),
    };

    let batch_sizes = [256usize, 1000, 2000];

    // --- Persist-path rows: durable stage-1, storage layer head-to-head.
    let pre = PersistPathConfig {
        label: "persist path — pre-PR (fsync/batch, sequential repl, serial merkle)",
        sync: SyncPolicy::Always,
        overlap: false,
        merkle_cutoff: usize::MAX,
    };
    let post = PersistPathConfig {
        label: "persist path — this PR (group commit, overlapped repl, parallel merkle)",
        sync: SyncPolicy::GroupCommit {
            max_batches: 4,
            max_delay: Duration::from_millis(2),
        },
        overlap: true,
        merkle_cutoff: 256,
    };
    for &batch in &batch_sizes {
        let batches = profile.scale(64, 12);
        let (pre_rate, pre_stats) = run_persist_path(&format!("pre-{batch}"), batch, batches, &pre);
        let (post_rate, post_stats) =
            run_persist_path(&format!("post-{batch}"), batch, batches, &post);
        table.rows.push(vec![
            pre.label.into(),
            batch.to_string(),
            format!("{pre_rate:.0}"),
            "1.00×".into(),
            pre_stats.fsyncs.to_string(),
            pre_stats.fsyncs_coalesced.to_string(),
            "—".into(),
            "—".into(),
            "—".into(),
            "—".into(),
        ]);
        table.rows.push(vec![
            post.label.into(),
            batch.to_string(),
            format!("{post_rate:.0}"),
            format!("{:.2}×", post_rate / pre_rate.max(1e-9)),
            post_stats.fsyncs.to_string(),
            post_stats.fsyncs_coalesced.to_string(),
            "—".into(),
            "—".into(),
            "—".into(),
            "—".into(),
        ]);
    }

    // --- End-to-end rows: full node + publisher, stage-1 throughput.
    for &batch in &batch_sizes {
        let n = profile.scale(batch * 10, (batch * 2).max(2000));
        let mut pre_rate = 0.0;
        for (label, overlap, cutoff, sync) in [
            (
                "end-to-end — pre-PR (sequential repl, serial merkle)",
                false,
                usize::MAX,
                SyncPolicy::OnRotate,
            ),
            (
                "end-to-end — this PR (overlapped repl, parallel merkle)",
                true,
                256usize,
                SyncPolicy::OnRotate,
            ),
            (
                "end-to-end — this PR + durable replies (group commit)",
                true,
                256,
                SyncPolicy::GroupCommit {
                    max_batches: 8,
                    max_delay: Duration::from_millis(2),
                },
            ),
        ] {
            let config = NodeConfig {
                batch_size: batch,
                batch_linger: Duration::from_millis(30),
                verify_requests: false,
                replicas: 2,
                overlap_replication: overlap,
                merkle_parallel_cutoff: cutoff,
                store: wedge_storage::StoreConfig {
                    sync,
                    ..Default::default()
                },
                ..Default::default()
            };
            // Best-of-N: a shared box makes single runs noisy; the best run
            // is the least-perturbed measurement of the pipeline itself.
            let repeats = profile.scale(3, 2);
            let mut rate = 0.0;
            let mut stats = None;
            let mut x4_groups = 0u64;
            for rep in 0..repeats {
                // The crypto hash counters are process-wide; snapshot before
                // the run so the table shows this run's ×4 groups only.
                let x4_before = wedge_crypto::hash::hash_batches_x4();
                let mut world = World::new(
                    &format!("stage1-{batch}-{rep}-{label}"),
                    config.clone(),
                    2000.0,
                );
                let payloads = kv_payloads(n, KEY_SIZE, VALUE_SIZE, 0x57a6e2);
                let outcome = world.publisher.append_batch(payloads).expect("append");
                world.settle();
                let elapsed = outcome.last_response.as_secs_f64().max(1e-9);
                let rep_rate = n as f64 / elapsed;
                if rep_rate > rate {
                    rate = rep_rate;
                    stats = Some(world.node.stats());
                    x4_groups = wedge_crypto::hash::hash_batches_x4() - x4_before;
                }
            }
            let stats = stats.expect("at least one repeat");
            if pre_rate == 0.0 {
                pre_rate = rate;
            }
            table.rows.push(vec![
                label.into(),
                batch.to_string(),
                format!("{rate:.0}"),
                format!("{:.2}×", rate / pre_rate.max(1e-9)),
                "—".into(),
                stats.fsyncs_coalesced.to_string(),
                format!("{:.2}", stats.replication_overlap_ns as f64 / 1e6),
                stats.merkle_par_chunks.to_string(),
                format!("{:.2}", stats.merkle_hash_ns as f64 / 1e6),
                x4_groups.to_string(),
            ]);
        }
    }
    table
}

/// Extra (not in the paper): the "signing wall" micro-benchmark — ECDSA
/// throughput before and after the comb/wNAF/GLV scalar-multiplication
/// rework. The pre-PR columns run the frozen baselines
/// (`secp256k1::point::reference`, `ecdsa::reference`: 4-bit window tables,
/// one Fermat inversion per signature, two independent multiplications per
/// verification); the this-PR columns run the shipped paths (8-bit comb
/// fixed-base table, Montgomery batch inversion shared per chunk,
/// Strauss–Shamir/GLV double multiplication over a cached per-key table).
/// Differential tests (`crates/crypto/tests/differential.rs`) prove both
/// columns produce byte-identical signatures and decisions.
pub fn signing(profile: Profile) -> Table {
    use wedge_crypto::ecdsa::{
        reference, sign_prehashed, sign_prehashed_batch, verify_prehashed, verify_prehashed_batch,
        Signature,
    };
    use wedge_crypto::keys::Keypair;
    use wedge_crypto::secp256k1::AffineTable;

    let n = profile.scale(2048, 512);
    let repeats = profile.scale(5, 3);
    let kp = Keypair::from_seed(b"signing-wall");
    let hashes: Vec<[u8; 32]> = (0..n)
        .map(|i| wedge_crypto::keccak256(&(i as u64).to_be_bytes()))
        .collect();

    // Warm both generator tables outside the timed regions: table builds
    // are one-time costs a long-running node never sees again.
    let _ = sign_prehashed(&kp.secret, &hashes[0]);
    let _ = reference::sign_prehashed(&kp.secret, &hashes[0]);

    // Best-of-N ops/s for a closure processing all `n` items.
    let rate = |work: &mut dyn FnMut()| -> f64 {
        let mut best = 0.0f64;
        for _ in 0..repeats {
            let started = Instant::now();
            work();
            let r = n as f64 / started.elapsed().as_secs_f64().max(1e-9);
            best = best.max(r);
        }
        best
    };

    let pre_sign = rate(&mut || {
        for h in &hashes {
            std::hint::black_box(reference::sign_prehashed(&kp.secret, h));
        }
    });
    let new_sign_batch = rate(&mut || {
        std::hint::black_box(sign_prehashed_batch(&kp.secret, &hashes));
    });
    let new_sign_item = rate(&mut || {
        for h in &hashes {
            std::hint::black_box(sign_prehashed(&kp.secret, h));
        }
    });

    let sigs: Vec<Signature> = sign_prehashed_batch(&kp.secret, &hashes);
    let items: Vec<([u8; 32], Signature)> = hashes.iter().copied().zip(sigs.clone()).collect();
    let pre_verify = rate(&mut || {
        for (h, sig) in hashes.iter().zip(&sigs) {
            reference::verify_prehashed(&kp.public, h, sig).expect("valid");
        }
    });
    let new_verify_batch = rate(&mut || {
        // The per-key table build is charged to the batch (it is what a
        // verifier pays once per key, not per signature).
        let table = AffineTable::new(kp.public.point());
        verify_prehashed_batch(&table, &items).expect("valid");
    });
    let new_verify_item = rate(&mut || {
        for (h, sig) in hashes.iter().zip(&sigs) {
            verify_prehashed(&kp.public, h, sig).expect("valid");
        }
    });

    let mut table = Table {
        title: "Signing wall (extension) — comb fixed-base table, shared batch \
                inversion, Strauss–Shamir/GLV verification (single thread)"
            .into(),
        headers: vec![
            "operation".into(),
            "items".into(),
            "pre-PR (ops/s)".into(),
            "this PR (ops/s)".into(),
            "speedup".into(),
        ],
        rows: Vec::new(),
    };
    let mut row = |op: &str, pre: f64, post: f64| {
        table.rows.push(vec![
            op.into(),
            n.to_string(),
            format!("{pre:.0}"),
            format!("{post:.0}"),
            format!("{:.2}×", post / pre.max(1e-9)),
        ]);
    };
    row(
        "sign — batch API (shared inversions)",
        pre_sign,
        new_sign_batch,
    );
    row(
        "sign — per-item API (comb table only)",
        pre_sign,
        new_sign_item,
    );
    row(
        "verify — batch, cached per-key table",
        pre_verify,
        new_verify_batch,
    );
    row(
        "verify — per-item API (table rebuilt per call)",
        pre_verify,
        new_verify_item,
    );
    table
}

/// Extra (not in the paper): the "hashing wall" micro-benchmark — Keccak-256
/// throughput before and after the multi-lane rework, on the exact shapes the
/// persist path hashes. The pre-PR column runs the frozen scalar sponge
/// (`hash::reference`); the this-PR columns run the shipped paths: the fused
/// single-permutation digest for sub-rate inputs, the ×4 lane-interleaved
/// permutation (four digests per pass), and the rebuilt (unrolled) streaming
/// sponge for bulk input. Differential tests
/// (`crates/crypto/tests/hash_differential.rs`) prove every column produces
/// byte-identical digests.
pub fn hashing(profile: Profile) -> Table {
    use wedge_crypto::hash::reference;
    use wedge_crypto::{keccak256_batch, keccak256_fixed, keccak256_fixed_x4};
    use wedge_merkle::{hash_leaf, hash_leaves, hash_node, hash_node_x4, MerkleTree};

    let n = profile.scale(32_768, 8_192); // digests per timed pass
    let repeats = profile.scale(7, 4);

    // Best-of-N MB/s for a closure hashing `bytes` per pass.
    let rate = |bytes: usize, work: &mut dyn FnMut()| -> f64 {
        let mut best = 0.0f64;
        for _ in 0..repeats {
            let started = Instant::now();
            work();
            let mbps = bytes as f64 / 1e6 / started.elapsed().as_secs_f64().max(1e-9);
            best = best.max(mbps);
        }
        best
    };

    let mut table = Table {
        title: "Hashing wall (extension) — fused single-permutation fast path and \
                ×4 lane-interleaved Keccak-f[1600] (single thread, byte-identical \
                digests)"
            .into(),
        headers: vec![
            "shape".into(),
            "path".into(),
            "digests".into(),
            "MB/s".into(),
            "vs reference".into(),
        ],
        rows: Vec::new(),
    };
    let mut row = |shape: &str, path: &str, items: usize, mbps: f64, baseline: f64| {
        table.rows.push(vec![
            shape.into(),
            path.into(),
            items.to_string(),
            format!("{mbps:.1}"),
            format!("{:.2}×", mbps / baseline.max(1e-9)),
        ]);
    };

    // --- The acceptance shape: hash_node's 64-byte two-child input
    // (65-byte tagged preimage), the digest that dominates tree folding.
    let children: Vec<Hash32> = (0..n)
        .map(|i| Hash32(wedge_crypto::keccak256(&(i as u64).to_be_bytes())))
        .collect();
    let pairs = n / 2;
    let node_bytes = pairs * 65;
    let mut preimages: Vec<[u8; 65]> = Vec::with_capacity(pairs);
    for pair in children.chunks_exact(2) {
        let mut buf = [0u8; 65];
        buf[0] = 0x01;
        buf[1..33].copy_from_slice(pair[0].as_bytes());
        buf[33..].copy_from_slice(pair[1].as_bytes());
        preimages.push(buf);
    }
    let node_ref = rate(node_bytes, &mut || {
        for p in &preimages {
            std::hint::black_box(reference::keccak256(p));
        }
    });
    let node_fixed = rate(node_bytes, &mut || {
        for pair in children.chunks_exact(2) {
            std::hint::black_box(hash_node(&pair[0], &pair[1]));
        }
    });
    let node_x4 = rate(node_bytes, &mut || {
        for oct in children.chunks_exact(8) {
            std::hint::black_box(hash_node_x4(oct));
        }
    });
    row(
        "node (65-B preimage)",
        "reference sponge",
        pairs,
        node_ref,
        node_ref,
    );
    row(
        "node (65-B preimage)",
        "fused fixed path",
        pairs,
        node_fixed,
        node_ref,
    );
    row(
        "node (65-B preimage)",
        "×4 interleaved",
        pairs,
        node_x4,
        node_ref,
    );

    // --- Leaf shape: the tagged kv payload stage-1 hashes once per entry.
    let payloads = kv_payloads(n, KEY_SIZE, VALUE_SIZE, 0x4a5c);
    let leaf_bytes: usize = payloads.iter().map(|p| p.len() + 1).sum();
    let mut tagged: Vec<Vec<u8>> = Vec::with_capacity(n);
    for p in &payloads {
        let mut msg = Vec::with_capacity(p.len() + 1);
        msg.push(0x00);
        msg.extend_from_slice(p);
        tagged.push(msg);
    }
    let leaf_ref = rate(leaf_bytes, &mut || {
        for msg in &tagged {
            std::hint::black_box(reference::keccak256(msg));
        }
    });
    let leaf_fixed = rate(leaf_bytes, &mut || {
        for p in &payloads {
            std::hint::black_box(hash_leaf(p));
        }
    });
    let leaf_x4 = rate(leaf_bytes, &mut || {
        std::hint::black_box(hash_leaves(&payloads));
    });
    let shape = format!("leaf ({}-B payload)", KEY_SIZE + VALUE_SIZE);
    row(&shape, "reference sponge", n, leaf_ref, leaf_ref);
    row(&shape, "fused fixed path", n, leaf_fixed, leaf_ref);
    row(&shape, "×4 batch (hash_leaves)", n, leaf_x4, leaf_ref);

    // --- Mixed-length batch: entry-id/tx digests of varying size driven
    // through the bucketing batch API (ragged tails included).
    let mixed: Vec<Vec<u8>> = (0..n)
        .map(|i| vec![(i % 251) as u8; 24 + (i * 37) % 200])
        .collect();
    let mixed_refs: Vec<&[u8]> = mixed.iter().map(|v| v.as_slice()).collect();
    let mixed_bytes: usize = mixed.iter().map(|v| v.len()).sum();
    let mixed_ref_rate = rate(mixed_bytes, &mut || {
        for m in &mixed {
            std::hint::black_box(reference::keccak256(m));
        }
    });
    let mixed_batch = rate(mixed_bytes, &mut || {
        std::hint::black_box(keccak256_batch(&mixed_refs));
    });
    row(
        "mixed 24–223 B",
        "reference sponge",
        n,
        mixed_ref_rate,
        mixed_ref_rate,
    );
    row(
        "mixed 24–223 B",
        "×4 bucketed batch",
        n,
        mixed_batch,
        mixed_ref_rate,
    );

    // --- Bulk streaming: the rebuilt (unrolled) sponge on a 64 KiB blob,
    // isolating the scalar permutation win.
    let blob = vec![0xC3u8; 64 * 1024];
    let passes = profile.scale(64, 16);
    let stream_bytes = blob.len() * passes;
    let stream_ref = rate(stream_bytes, &mut || {
        for _ in 0..passes {
            std::hint::black_box(reference::keccak256(&blob));
        }
    });
    let stream_new = rate(stream_bytes, &mut || {
        for _ in 0..passes {
            std::hint::black_box(wedge_crypto::keccak256(&blob));
        }
    });
    row(
        "64 KiB stream",
        "reference sponge",
        passes,
        stream_ref,
        stream_ref,
    );
    row(
        "64 KiB stream",
        "unrolled sponge",
        passes,
        stream_new,
        stream_ref,
    );

    // --- Whole-tree build: serial Merkle construction end to end (leaves
    // + every interior level), reference fold vs the shipped ×4 builder.
    let tree_leaves = kv_payloads(profile.scale(8_192, 2_048), KEY_SIZE, VALUE_SIZE, 0x4a5d);
    let tree_bytes: usize = tree_leaves.iter().map(|p| p.len() + 1).sum();
    let tree_ref = rate(tree_bytes, &mut || {
        // Naive fold on the frozen sponge — the pre-PR builder's work.
        let mut level: Vec<Hash32> = tagged_ref_leaves(&tree_leaves);
        while level.len() > 1 {
            let mut next = Vec::with_capacity(level.len().div_ceil(2));
            let mut pairs = level.chunks_exact(2);
            for pair in pairs.by_ref() {
                let mut msg = [0u8; 65];
                msg[0] = 0x01;
                msg[1..33].copy_from_slice(pair[0].as_bytes());
                msg[33..].copy_from_slice(pair[1].as_bytes());
                next.push(Hash32(reference::keccak256(&msg)));
            }
            if let [odd] = pairs.remainder() {
                next.push(*odd);
            }
            level = next;
        }
        std::hint::black_box(level[0]);
    });
    let tree_new = rate(tree_bytes, &mut || {
        std::hint::black_box(
            MerkleTree::from_leaves(&tree_leaves)
                .expect("non-empty")
                .root(),
        );
    });
    row(
        "merkle build (serial)",
        "reference sponge",
        tree_leaves.len(),
        tree_ref,
        tree_ref,
    );
    row(
        "merkle build (serial)",
        "×4 + fixed builder",
        tree_leaves.len(),
        tree_new,
        tree_ref,
    );

    // Sanity: the ×4 fixed path really ran interleaved (counter moved).
    let before = wedge_crypto::hash::hash_batches_x4();
    let _ = keccak256_fixed_x4([b"a", b"b", b"c", b"d"]);
    let _ = keccak256_fixed(b"warm");
    assert!(wedge_crypto::hash::hash_batches_x4() > before);
    table
}

/// Leaf digests for the reference Merkle fold in [`hashing`].
fn tagged_ref_leaves(leaves: &[Vec<u8>]) -> Vec<Hash32> {
    use wedge_crypto::hash::reference;
    leaves
        .iter()
        .map(|p| {
            let mut msg = Vec::with_capacity(p.len() + 1);
            msg.push(0x00);
            msg.extend_from_slice(p);
            Hash32(reference::keccak256(&msg))
        })
        .collect()
}

/// Append burst size for the `net` experiment: clients submit this many
/// requests, flush once, then await every reply.
const NET_BURST: usize = 32;

/// One client worker's latency samples from the `net` experiment.
struct NetClientSamples {
    append: Vec<Duration>,
    read: Vec<Duration>,
}

/// Drives `clients` concurrent closed-loop workers against `service`:
/// each appends `appends` pre-signed entries in bursts of `burst`
/// (submit burst → flush → await every reply, timing each op from submit
/// to callback), then reads its own entries back by sequence one at a
/// time. Returns (append wall, read wall, merged samples).
fn run_net_clients(
    service: &Arc<dyn wedge_core::LogService>,
    tag: &str,
    clients: usize,
    appends: usize,
    reads: usize,
    value_size: usize,
) -> (Duration, Duration, NetClientSamples) {
    use rand::{Rng, SeedableRng};
    let burst = NET_BURST;
    let mut merged = NetClientSamples {
        append: Vec::new(),
        read: Vec::new(),
    };
    let mut append_wall = Duration::ZERO;
    let mut read_wall = Duration::ZERO;
    crossbeam::thread::scope(|scope| {
        let started = Instant::now();
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let service = Arc::clone(service);
                let tag = tag.to_string();
                scope.spawn(move |_| {
                    let identity = Identity::from_seed(format!("net-{tag}-{c}").as_bytes());
                    let payloads = kv_payloads(appends, KEY_SIZE, value_size, c as u64);
                    let requests: Vec<AppendRequest> = (0..)
                        .zip(&payloads)
                        .map(|(seq, p)| AppendRequest::new(identity.secret_key(), seq, p.clone()))
                        .collect();
                    let mut samples = NetClientSamples {
                        append: Vec::with_capacity(appends),
                        read: Vec::with_capacity(reads),
                    };
                    let (tx, rx) = crossbeam::channel::bounded::<Duration>(burst);
                    for chunk in requests.chunks(burst) {
                        for request in chunk {
                            let tx = tx.clone();
                            let submitted = Instant::now();
                            service
                                .submit_request(
                                    request.clone(),
                                    Box::new(move |result| {
                                        result.expect("append reply");
                                        let _ = tx.send(submitted.elapsed());
                                    }),
                                )
                                .expect("submit");
                        }
                        // One flush per burst: buffered transports write the
                        // whole burst out here; in-process/autoflush paths
                        // already delivered and treat this as a no-op.
                        service.flush();
                        for _ in chunk {
                            samples
                                .append
                                .push(rx.recv_timeout(Duration::from_secs(120)).expect("reply"));
                        }
                    }
                    let append_done = Instant::now();
                    let mut rng = rand::rngs::SmallRng::seed_from_u64(0x9e7 + c as u64);
                    let address = identity.address();
                    for _ in 0..reads {
                        let seq = rng.gen_range(0..appends as u64);
                        let read_started = Instant::now();
                        let response = service
                            .read_entry_by_sequence(address, seq)
                            .expect("read own entry");
                        samples.read.push(read_started.elapsed());
                        std::hint::black_box(&response);
                    }
                    (samples, append_done)
                })
            })
            .collect();
        let mut last_append_done = started;
        for handle in handles {
            let (samples, append_done) = handle.join().expect("net client");
            merged.append.extend(samples.append);
            merged.read.extend(samples.read);
            last_append_done = last_append_done.max(append_done);
        }
        append_wall = last_append_done - started;
        read_wall = started.elapsed() - append_wall;
    })
    .expect("net client threads");
    merged.append.sort_unstable();
    merged.read.sort_unstable();
    (append_wall, read_wall, merged)
}

/// Extra (not in the paper): the wire-speed RPC plane, old path vs new
/// path in the same run. Both servers front the **same** node; only the
/// transport differs:
///
/// * **old** — pre-PR wire shape: one reply per write (`coalesce = 1`),
///   no frame-buffer pooling, every client sharing one `RemoteNode` whose
///   appends flush per submission;
/// * **new** — this PR: coalescing writers draining bounded reply queues
///   into pooled buffers, and a striped [`wedge_net::RemoteNodePool`]
///   client with buffered per-burst flushes.
pub fn net(profile: Profile) -> Table {
    use wedge_net::{NodeServer, PoolConfig, RemoteNode, RemoteNodePool, ServerConfig};

    let mut table = Table {
        title: "RPC plane (extension) — coalescing writers + striped client vs pre-PR wire path"
            .into(),
        headers: vec![
            "clients".into(),
            "payload (B)".into(),
            "path".into(),
            "append ops/s".into(),
            "append p50".into(),
            "append p99".into(),
            "read ops/s".into(),
            "read p50".into(),
            "read p99".into(),
            "replies/write".into(),
            "coalesced".into(),
            "pool hit".into(),
            "shed".into(),
        ],
        rows: Vec::new(),
    };
    for &clients in &[1usize, 8, 64] {
        for &value_size in &[256usize, 1024] {
            let total_appends = profile.scale(24_576, 4_096).max(clients);
            let appends = (total_appends / clients).max(NET_BURST);
            let reads = appends;
            let config = NodeConfig {
                batch_size: 500,
                batch_linger: Duration::from_millis(5),
                verify_requests: false,
                ..Default::default()
            };
            let world = World::new(&format!("net-{clients}-{value_size}"), config, 2000.0);
            let node = Arc::clone(&world.node);

            // Old wire shape: per-reply writes, no buffer pool, one shared
            // connection with per-submit flushes.
            let old_server = NodeServer::bind_with_config(
                "127.0.0.1:0",
                Arc::clone(&node) as _,
                ServerConfig {
                    coalesce_max_replies: 1,
                    pool_max_buffers: 0,
                    ..ServerConfig::default()
                },
            )
            .expect("bind old-path server");
            let old_client: Arc<dyn wedge_core::LogService> =
                Arc::new(RemoteNode::connect(old_server.local_addr()).expect("connect old"));
            let (old_aw, old_rw, old_samples) = run_net_clients(
                &old_client,
                &format!("old-{clients}-{value_size}"),
                clients,
                appends,
                reads,
                value_size,
            );
            drop(old_client);
            let old_stats = old_server.stats();

            // New wire shape: defaults (coalescing + pooling) and a striped
            // client pool with buffered appends.
            let new_server = NodeServer::bind_with_config(
                "127.0.0.1:0",
                Arc::clone(&node) as _,
                ServerConfig::default(),
            )
            .expect("bind new-path server");
            let new_client: Arc<dyn wedge_core::LogService> = Arc::new(
                RemoteNodePool::connect_with_config(
                    new_server.local_addr(),
                    PoolConfig {
                        stripes: clients.min(8),
                        ..PoolConfig::default()
                    },
                )
                .expect("connect pool"),
            );
            let (new_aw, new_rw, new_samples) = run_net_clients(
                &new_client,
                &format!("new-{clients}-{value_size}"),
                clients,
                appends,
                reads,
                value_size,
            );
            drop(new_client);
            let new_stats = new_server.stats();

            let total_ops = (appends * clients) as f64;
            let total_reads = (reads * clients) as f64;
            for (path, aw, rw, samples, stats) in [
                ("old", old_aw, old_rw, &old_samples, &old_stats),
                ("new", new_aw, new_rw, &new_samples, &new_stats),
            ] {
                table.rows.push(vec![
                    clients.to_string(),
                    value_size.to_string(),
                    path.into(),
                    format!("{:.0}", total_ops / aw.as_secs_f64().max(1e-9)),
                    fmt_us(percentile(&samples.append, 0.50)),
                    fmt_us(percentile(&samples.append, 0.99)),
                    format!("{:.0}", total_reads / rw.as_secs_f64().max(1e-9)),
                    fmt_us(percentile(&samples.read, 0.50)),
                    fmt_us(percentile(&samples.read, 0.99)),
                    format!(
                        "{:.2}",
                        stats.replies_sent as f64 / stats.writes_issued.max(1) as f64
                    ),
                    stats.replies_coalesced.to_string(),
                    format!("{:.0}%", stats.buffer_pool_hit_rate() * 100.0),
                    stats.queue_shed.to_string(),
                ]);
            }
        }
    }
    table
}

/// Extra (not in the paper): end-to-end punishment cost — what a client pays
/// in gas to prove a lie, and what it recovers.
pub fn punishment_economics() -> Table {
    use wedge_core::NodeBehavior;
    let config = NodeConfig {
        batch_size: 100,
        batch_linger: Duration::from_millis(10),
        behavior: NodeBehavior::CommitWrongRoot { from_log: 0 },
        ..Default::default()
    };
    let mut world = World::new("punish-econ", config, 2000.0);
    let outcome = world
        .publisher
        .append_batch(kv_payloads(100, KEY_SIZE, VALUE_SIZE, 9))
        .expect("append");
    world.settle();
    let receipt = world
        .publisher
        .verify_all_and_punish(&outcome.responses)
        .expect("punish path")
        .expect("mismatch found");
    Table {
        title: "Punishment economics (extension)".into(),
        headers: vec!["metric".into(), "value".into()],
        rows: vec![
            vec![
                "gas to prove the lie".into(),
                format!("{}", receipt.gas_used),
            ],
            vec!["fee paid by client".into(), format!("{}", receipt.fee)],
            vec!["escrow recovered".into(), "32 ETH".into()],
            vec![
                "evidence size (bytes)".into(),
                format!(
                    "{}",
                    outcome.responses[0].proof.to_bytes().len()
                        + outcome.responses[0].leaf.len()
                        + 65
                        + 40
                ),
            ],
        ],
    }
}

/// Per-entry payload for the tiered-storage experiment: large enough that
/// per-byte work (hashing, I/O) dominates per-entry fixed costs.
const TIER_PAYLOAD: usize = 64 * 1024;

/// Hot-vs-cold scan throughput at the storage layer: fill a store, scan it
/// while every segment is hot, seal everything below the tail, scan again.
/// Returns (hot MB/s, cold MB/s, cold segment count).
fn tier_scan_rates(tag: &str, total_bytes: u64) -> (f64, f64, u64) {
    use wedge_storage::{LogStore, StoreConfig, SyncPolicy};
    let dir = std::env::temp_dir().join(format!("wedge-tiers-scan-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = LogStore::open(
        &dir,
        StoreConfig {
            max_segment_bytes: 4 * 1024 * 1024,
            sync: SyncPolicy::OnRotate,
            ..Default::default()
        },
    )
    .expect("open scan store");
    let record = vec![0xA5u8; TIER_PAYLOAD];
    let mut written = 0u64;
    while written < total_bytes {
        let batch: Vec<Vec<u8>> = (0..16).map(|_| record.clone()).collect();
        store.append_batch(&batch).expect("append");
        written += (record.len() * 16) as u64;
    }
    store.sync().expect("sync");

    let scan = |label: &str| -> f64 {
        let started = Instant::now();
        let mut bytes = 0u64;
        for rec in store.iter() {
            bytes += rec.expect(label).len() as u64;
        }
        bytes as f64 / 1e6 / started.elapsed().as_secs_f64().max(1e-9)
    };
    let hot = scan("hot record");
    let sealed = store.seal_up_to(store.len()).expect("seal") as u64;
    let cold = scan("cold record");
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);
    (hot, cold, sealed)
}

/// Tiered storage & two-plane checkpoints: restart time and replayed
/// records with a checkpoint vs a full log replay, plus cold-vs-hot scan
/// throughput, as the log grows.
pub fn tiers(profile: Profile) -> Table {
    use wedge_chain::{Chain, ChainConfig};
    use wedge_core::{deploy_service, OffchainNode, Publisher, ServiceConfig, TierConfig};
    use wedge_sim::Clock;
    use wedge_storage::{StoreConfig, SyncPolicy};

    let sizes_mb: &[u64] = match profile {
        Profile::Quick => &[8, 16, 32],
        Profile::Full => &[64, 128, 256],
    };
    let mut table = Table {
        title: "Tiered storage: O(tail) restart and cold scans".into(),
        headers: vec![
            "log MB".into(),
            "records".into(),
            "restart (ckpt)".into(),
            "replayed (ckpt)".into(),
            "restart (full replay)".into(),
            "replayed (full)".into(),
            "hot scan MB/s".into(),
            "cold scan MB/s".into(),
            "cold segments".into(),
        ],
        rows: Vec::new(),
    };

    for &mb in sizes_mb {
        let total_bytes = mb * 1024 * 1024;
        let tag = format!("tiers-{mb}");

        // Node-level restart measurement over a persistent directory.
        let clock = Clock::compressed(2000.0);
        let chain = Chain::new(clock, ChainConfig::default());
        let node_identity = Identity::from_seed(format!("tiers-node-{mb}").as_bytes());
        let client_identity = Identity::from_seed(format!("tiers-client-{mb}").as_bytes());
        chain.fund(node_identity.address(), Wei::from_eth(1_000_000));
        chain.fund(client_identity.address(), Wei::from_eth(1_000_000));
        let miner = chain.start_miner();
        let deployment = deploy_service(
            &chain,
            &node_identity,
            client_identity.address(),
            &ServiceConfig {
                escrow: Wei::from_eth(32),
                payment_terms: None,
            },
        )
        .expect("deploy service");
        let dir = std::env::temp_dir().join(format!("wedge-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let config = NodeConfig {
            batch_size: 16,
            batch_linger: Duration::from_millis(5),
            verify_requests: false,
            stage2_max_group: 4,
            tier: TierConfig {
                seal_on_commit: true,
                checkpoint_every_groups: 2,
                ..Default::default()
            },
            store: StoreConfig {
                max_segment_bytes: 4 * 1024 * 1024,
                sync: SyncPolicy::GroupCommit {
                    max_batches: 4,
                    max_delay: Duration::from_millis(2),
                },
                ..Default::default()
            },
            ..Default::default()
        };
        let start_node = |chain: &Arc<Chain>| {
            Arc::new(
                OffchainNode::start(
                    node_identity.clone(),
                    config.clone(),
                    Arc::clone(chain),
                    deployment.root_record,
                    &dir,
                )
                .expect("start node"),
            )
        };

        let node = start_node(&chain);
        {
            let mut publisher = Publisher::new(
                client_identity.clone(),
                Arc::clone(&node),
                Arc::clone(&chain),
                deployment.root_record,
                None,
            );
            let entries = (total_bytes as usize).div_ceil(TIER_PAYLOAD);
            let payloads: Vec<Vec<u8>> = (0..entries).map(|_| vec![0x5Au8; TIER_PAYLOAD]).collect();
            publisher.append_batch(payloads).expect("append");
            node.wait_stage2_idle(Duration::from_secs(3600))
                .expect("settle");
        }
        let records = node.entry_count() + node.log_positions();
        drop(node); // clean shutdown: final checkpoint + store sync

        // Restart with the checkpoint in place: O(tail).
        let started = Instant::now();
        let node = start_node(&chain);
        let restart_ckpt = started.elapsed();
        let replayed_ckpt = node.stats().restart_replayed_records;
        drop(node);

        // Delete the checkpoints and restart again: full O(log) replay.
        let _ = std::fs::remove_dir_all(dir.join("checkpoints"));
        let started = Instant::now();
        let node = start_node(&chain);
        let restart_full = started.elapsed();
        let replayed_full = node.stats().restart_replayed_records;
        drop(node);
        drop(miner);
        let _ = std::fs::remove_dir_all(&dir);

        // Storage-level scan throughput over the same byte volume.
        let (hot, cold, cold_segments) = tier_scan_rates(&tag, total_bytes);

        table.rows.push(vec![
            mb.to_string(),
            records.to_string(),
            fmt_dur(restart_ckpt),
            replayed_ckpt.to_string(),
            fmt_dur(restart_full),
            replayed_full.to_string(),
            fmt_rate(hot),
            fmt_rate(cold),
            cold_segments.to_string(),
        ]);
    }
    table
}

/// Entry payload bytes for the `cluster` experiment (1 KB values, as in
/// the paper's workload).
const CLUSTER_VALUE_SIZE: usize = VALUE_SIZE;

/// Extension (not in the paper): sharded cluster scaling with a
/// root-of-roots commit. Sweeps the shard count with the *total* workload
/// held constant and reports aggregate stage-1 append throughput, the
/// epoch/transaction economics (one on-chain tx per epoch regardless of
/// N), and an end-to-end two-level proof check against the on-chain
/// cluster root.
///
/// The run is latency-bound by design: every shard's deliver stage pays a
/// constant simulated response-network delay per flushed batch, so the
/// single-shard row serializes those delays while an N-shard cluster pays
/// them in parallel — the same reason a real multi-node deployment scales
/// before it saturates CPU.
pub fn cluster(profile: Profile) -> Table {
    use wedge_cluster::{identity_on_shard, ClusterConfig, LocalCluster};
    use wedge_sim::LatencyModel;

    let total = profile.scale(16_384, 4_096);
    let batch = 64;
    let mut table = Table {
        title: format!(
            "Cluster scaling (extension) — {total} appends total, root-of-roots commit per epoch"
        ),
        headers: vec![
            "shards".into(),
            "per-shard appends".into(),
            "append wall".into(),
            "aggregate ops/s".into(),
            "speedup vs 1".into(),
            "epochs".into(),
            "on-chain txs".into(),
            "txs / epoch".into(),
            "groups folded".into(),
            "gas / entry".into(),
            "two-level proof".into(),
        ],
        rows: Vec::new(),
    };
    let mut base_rate: Option<f64> = None;
    for shards in [1usize, 2, 4, 8] {
        let per_shard = (total / shards).max(batch);
        let config = ClusterConfig {
            shards,
            node: NodeConfig {
                batch_size: batch,
                batch_linger: Duration::from_millis(10),
                verify_requests: false,
                // The per-batch response link every shard pays; batches on
                // different shards pay it concurrently.
                response_latency: LatencyModel::Constant(Duration::from_millis(15)),
                ..Default::default()
            },
            epoch_max_group: 32,
            ..Default::default()
        };
        let mut cluster =
            LocalCluster::start(&format!("bench-{shards}"), config).expect("cluster start");

        // Pre-sign every request outside the timed region: one publisher
        // pinned per shard, sequences contiguous within its shard log.
        let payloads = kv_payloads(per_shard, KEY_SIZE, CLUSTER_VALUE_SIZE, 77);
        let publishers: Vec<Identity> = (0..shards)
            .map(|shard| {
                identity_on_shard(
                    cluster.router.shard_map(),
                    shard,
                    &format!("cluster-bench-{shards}"),
                )
            })
            .collect();
        let requests: Vec<Vec<AppendRequest>> = publishers
            .iter()
            .map(|publisher| {
                payloads
                    .iter()
                    .enumerate()
                    .map(|(seq, payload)| {
                        AppendRequest::new(publisher.secret_key(), seq as u64, payload.clone())
                    })
                    .collect()
            })
            .collect();

        let (reply_tx, reply_rx) = unbounded();
        let sent = shards * per_shard;
        let started = Instant::now();
        for shard_requests in requests {
            for request in shard_requests {
                let reply_tx = reply_tx.clone();
                cluster
                    .router
                    .submit(
                        request,
                        Box::new(move |result| {
                            let _ = reply_tx.send(result.map(|_| ()));
                        }),
                    )
                    .expect("route append");
            }
        }
        cluster.router.flush();
        for _ in 0..sent {
            reply_rx
                .recv_timeout(Duration::from_secs(600))
                .expect("stage-1 reply")
                .expect("stage-1 response");
        }
        let elapsed = started.elapsed();

        // Epoch commits run on the compressed simulated chain and are not
        // part of the stage-1 measurement.
        cluster.settle(Duration::from_secs(36_000)).expect("settle");
        let stats = cluster.coordinator.stats();
        let groups: usize = cluster
            .coordinator
            .records()
            .iter()
            .map(|record| {
                record
                    .shards
                    .iter()
                    .map(|slice| slice.roots.len())
                    .sum::<usize>()
            })
            .sum();

        // End-to-end: one entry proven against the *on-chain* cluster root.
        let sample = cluster
            .router
            .read_by_sequence(publishers[0].address(), 0)
            .expect("read sample entry");
        let proof = cluster
            .coordinator
            .prove(&cluster.router, 0, sample.entry_id)
            .expect("assemble cluster proof");
        let on_chain = cluster
            .coordinator
            .on_chain_root(proof.epoch)
            .expect("on-chain cluster root");
        proof
            .verify(&cluster.router.node_public_key(0), &on_chain)
            .expect("two-level proof verifies against chain");

        let rate = sent as f64 / elapsed.as_secs_f64().max(1e-9);
        let speedup = rate / base_rate.unwrap_or(rate);
        if base_rate.is_none() {
            base_rate = Some(rate);
        }
        table.rows.push(vec![
            shards.to_string(),
            per_shard.to_string(),
            fmt_dur(elapsed),
            fmt_rate(rate),
            format!("{speedup:.2}×"),
            stats.epochs_committed.to_string(),
            stats.txs_submitted.to_string(),
            format!(
                "{:.2}",
                stats.txs_submitted as f64 / stats.epochs_committed.max(1) as f64
            ),
            groups.to_string(),
            format!(
                "{:.1}",
                stats.gas_total as f64 / (shards as f64 * per_shard as f64)
            ),
            "verified ✓".into(),
        ]);
    }
    table
}
