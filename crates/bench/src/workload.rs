//! Workload generation and world setup shared by every experiment.
//!
//! lint: allow-file(panic) — workload setup runs before any measurement; aborting on a malformed world is the correct failure mode for a bench tool

use std::sync::Arc;
use std::time::Duration;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use wedge_chain::{Chain, ChainConfig, Wei};
use wedge_core::{deploy_service, NodeConfig, OffchainNode, Publisher, ServiceConfig};
use wedge_crypto::signer::Identity;
use wedge_sim::Clock;

/// Default key size used throughout the paper's workloads (64 B).
pub const KEY_SIZE: usize = 64;
/// Default value size (1024 B); key+value ≈ 1 KB entries.
pub const VALUE_SIZE: usize = 1024;

/// Generates `n` key-value payloads of `key_size + value_size` bytes with
/// pseudo-random content (seeded: runs are reproducible).
pub fn kv_payloads(n: usize, key_size: usize, value_size: usize, seed: u64) -> Vec<Vec<u8>> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let mut payload = vec![0u8; key_size + value_size];
            rng.fill(payload.as_mut_slice());
            payload
        })
        .collect()
}

/// A ready-to-measure deployment: chain + miner + contracts + node +
/// publisher.
pub struct World {
    /// The simulated chain.
    pub chain: Arc<Chain>,
    /// Its clock (compressed).
    pub clock: Clock,
    /// The node under test.
    pub node: Arc<OffchainNode>,
    /// A funded publisher.
    pub publisher: Publisher,
    /// Root Record address.
    pub root_record: wedge_chain::Address,
    /// Punishment address.
    pub punishment: wedge_chain::Address,
    /// Keeps blocks flowing; stops on drop.
    pub miner: Option<wedge_chain::MinerHandle>,
    /// Scratch directory (cleaned at construction).
    pub dir: std::path::PathBuf,
    /// Node identity (for restarts / extra roles).
    pub node_identity: Identity,
}

impl World {
    /// Builds a world with the given node configuration. `compression` is
    /// the clock speed-up (1000 ⇒ 13 s blocks every 13 ms).
    pub fn new(tag: &str, node_config: NodeConfig, compression: f64) -> World {
        let clock = Clock::compressed(compression);
        let chain = Chain::new(clock.clone(), ChainConfig::default());
        let node_identity = Identity::from_seed(format!("bench-node-{tag}").as_bytes());
        let client_identity = Identity::from_seed(format!("bench-client-{tag}").as_bytes());
        chain.fund(node_identity.address(), Wei::from_eth(1_000_000));
        chain.fund(client_identity.address(), Wei::from_eth(1_000_000));
        let miner = chain.start_miner();
        let deployment = deploy_service(
            &chain,
            &node_identity,
            client_identity.address(),
            &ServiceConfig {
                escrow: Wei::from_eth(32),
                payment_terms: None,
            },
        )
        .expect("deploy service");
        let dir = std::env::temp_dir().join(format!("wedge-bench-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let node = Arc::new(
            OffchainNode::start(
                node_identity.clone(),
                node_config,
                Arc::clone(&chain),
                deployment.root_record,
                &dir,
            )
            .expect("start node"),
        );
        let publisher = Publisher::new(
            client_identity,
            Arc::clone(&node),
            Arc::clone(&chain),
            deployment.root_record,
            Some(deployment.punishment),
        );
        World {
            chain,
            clock,
            node,
            publisher,
            root_record: deployment.root_record,
            punishment: deployment.punishment,
            miner: Some(miner),
            dir,
            node_identity,
        }
    }

    /// Waits until all flushed positions are blockchain-committed.
    pub fn settle(&self) {
        self.node
            .wait_stage2_idle(Duration::from_secs(3600))
            .expect("stage 2 settled");
    }
}

impl Drop for World {
    fn drop(&mut self) {
        // Stop the miner before tearing the node down so wait loops end.
        self.miner.take();
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

/// Experiment scale profile: `quick` finishes the full suite in minutes;
/// `full` approaches the paper's workload sizes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Profile {
    /// Reduced workloads (default).
    Quick,
    /// Paper-scale workloads.
    Full,
}

impl Profile {
    /// Picks the paper-scale count or the reduced one.
    pub fn scale(&self, full: usize, quick: usize) -> usize {
        match self {
            Profile::Quick => quick,
            Profile::Full => full,
        }
    }
}
