//! Kill-and-recover test for tiered storage + two-plane checkpoints.
//!
//! A child process (this binary re-executed with `WEDGE_TIER_CRASH_DIR`
//! set) runs a full node under `SyncPolicy::GroupCommit` with aggressive
//! sealing and checkpointing, streaming large entries until the parent
//! SIGKILLs it mid-flight — after the log has grown past a configurable
//! floor (`WEDGE_TIER_TARGET_MB`, default 100). The child records each
//! batch in `released.txt` only after `append_batch` returned, i.e. after
//! the node *replied* — a durability promise under the protocol.
//!
//! The parent then restarts a node over the same directory and asserts the
//! tentpole properties end to end:
//!
//! - **reply ⇒ durable**: every released entry survives the kill;
//! - **gapless positions**: log positions `0..log_positions()` all read
//!   back, payloads intact, entry counts summing to `entry_count()`;
//! - **O(tail) restart**: `restart_replayed_records` is a small fraction of
//!   the store's record count — the node restored a checkpoint and replayed
//!   only the uncheckpointed tail instead of re-reading ~100 MB;
//! - **sealing happened and survived**: cold (`.wcold`) segments exist on
//!   disk after recovery.

use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

use wedge_chain::{Chain, ChainConfig, Wei};
use wedge_core::{deploy_service, NodeConfig, OffchainNode, Publisher, ServiceConfig, TierConfig};
use wedge_crypto::signer::Identity;
use wedge_sim::Clock;
use wedge_storage::{StoreConfig, SyncPolicy};

const CRASH_DIR_VAR: &str = "WEDGE_TIER_CRASH_DIR";
const TARGET_MB_VAR: &str = "WEDGE_TIER_TARGET_MB";

/// Entries per `append_batch` call (= one released durability promise).
const BATCH: usize = 4;
/// Payload bytes per entry: big, so the log reaches 100 MB on ~100 entries
/// and hashing stays the bottleneck, not per-entry fixed costs (per-entry
/// ECDSA sign/verify is the dominant term in unoptimized builds).
const PAYLOAD: usize = 1024 * 1024;

fn target_bytes(default_mb: u64) -> u64 {
    let mb = std::env::var(TARGET_MB_VAR)
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(default_mb);
    mb * 1024 * 1024
}

fn tier_config() -> NodeConfig {
    NodeConfig {
        batch_size: BATCH,
        batch_linger: Duration::from_millis(5),
        verify_requests: false,
        stage2_max_group: 4,
        tier: TierConfig {
            seal_on_commit: true,
            // Checkpoint after every stage-2 group so the replayed tail is
            // bounded by one group's worth of batches plus whatever stage-1
            // had in flight.
            checkpoint_every_groups: 1,
            checkpoint_interval: Duration::from_secs(3600),
            retain_groups: None,
        },
        store: StoreConfig {
            // Rotate every ~4 MB so the sealing pass has segments to retire
            // into the cold tier throughout the run.
            max_segment_bytes: 4 * 1024 * 1024,
            sync: SyncPolicy::GroupCommit {
                max_batches: 4,
                max_delay: Duration::from_millis(2),
            },
            ..Default::default()
        },
        ..Default::default()
    }
}

fn payload(seq: u64) -> Vec<u8> {
    let mut p = format!("tier-{seq:08}-").into_bytes();
    p.resize(PAYLOAD, 0xAB);
    p
}

struct World {
    chain: Arc<Chain>,
    node_identity: Identity,
    client_identity: Identity,
    root_record: wedge_chain::Address,
    _miner: wedge_chain::MinerHandle,
}

/// Chain + contracts from fixed seeds: the child and the restarting parent
/// build identical worlds around the same on-disk node directory.
fn world() -> World {
    let clock = Clock::compressed(2000.0);
    let chain = Chain::new(clock, ChainConfig::default());
    let node_identity = Identity::from_seed(b"tier-crash-node");
    let client_identity = Identity::from_seed(b"tier-crash-client");
    chain.fund(node_identity.address(), Wei::from_eth(1000));
    chain.fund(client_identity.address(), Wei::from_eth(1000));
    let miner = chain.start_miner();
    let deployment = deploy_service(
        &chain,
        &node_identity,
        client_identity.address(),
        &ServiceConfig {
            escrow: Wei::from_eth(32),
            payment_terms: None,
        },
    )
    .expect("deploy contracts");
    World {
        chain,
        node_identity,
        client_identity,
        root_record: deployment.root_record,
        _miner: miner,
    }
}

fn start_node(w: &World, dir: &Path) -> Arc<OffchainNode> {
    Arc::new(
        OffchainNode::start(
            w.node_identity.clone(),
            tier_config(),
            Arc::clone(&w.chain),
            w.root_record,
            dir,
        )
        .expect("start node"),
    )
}

/// Child mode: stream batches forever, recording each one as released only
/// after the node replied (append_batch returned). Runs until SIGKILLed.
fn crash_workload(dir: &Path) -> ! {
    let w = world();
    let node = start_node(&w, &dir.join("node"));
    let mut p = Publisher::new(
        w.client_identity.clone(),
        Arc::clone(&node),
        Arc::clone(&w.chain),
        w.root_record,
        None,
    );
    let mut released = std::fs::File::create(dir.join("released.txt")).unwrap();
    let mut next = 0u64;
    loop {
        let batch: Vec<Vec<u8>> = (next..next + BATCH as u64).map(payload).collect();
        p.append_batch(batch).expect("append");
        next += BATCH as u64;
        // The node replied to every entry below `next`: record the promise
        // durably before the next batch so the parent can hold it to it.
        writeln!(released, "{next}").unwrap();
        released.sync_data().unwrap();
    }
}

fn dir_bytes(dir: &Path) -> u64 {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return 0;
    };
    entries
        .flatten()
        .map(|e| match e.metadata() {
            Ok(m) if m.is_dir() => dir_bytes(&e.path()),
            Ok(m) => m.len(),
            Err(_) => 0,
        })
        .sum()
}

fn count_files_with_ext(dir: &Path, ext: &str) -> usize {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return 0;
    };
    entries
        .flatten()
        .filter(|e| e.path().extension().map(|x| x == ext).unwrap_or(false))
        .count()
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("wedge-tier-crash-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Fraction of the store's records the restart is allowed to replay:
/// `replayed * strictness < total` must hold. The 100 MB run uses 4 (the
/// tail is a handful of batches out of ~25); the quick run only requires
/// the checkpoint to have engaged at all (`> 1`).
fn kill_and_recover(test_name: &str, tag: &str, default_mb: u64, strictness: u64) {
    if let Ok(dir) = std::env::var(CRASH_DIR_VAR) {
        crash_workload(Path::new(&dir));
    }

    let dir = scratch(tag);
    let log_dir = dir.join("node").join("log");
    let ckpt_dir = dir.join("node").join("checkpoints");
    let target = target_bytes(default_mb);
    let exe = std::env::current_exe().unwrap();
    let mut child = std::process::Command::new(exe)
        .arg(test_name)
        .arg("--exact")
        .arg("--include-ignored")
        .arg("--nocapture")
        .arg("--test-threads=1")
        .env(CRASH_DIR_VAR, &dir)
        .stdout(std::process::Stdio::null())
        .spawn()
        .unwrap();

    // Wait for the log to grow past the target — with at least one batch
    // released and one checkpoint written so the recovery path has both
    // promises to honour — then SIGKILL mid-flight: no destructors, no
    // final checkpoint, exactly like a power cut.
    let deadline = Instant::now() + Duration::from_secs(600);
    loop {
        if dir_bytes(&log_dir) >= target
            && dir.join("released.txt").exists()
            && count_files_with_ext(&ckpt_dir, "wckp") > 0
        {
            break;
        }
        if let Some(status) = child.try_wait().unwrap() {
            panic!("child exited early ({status}) before reaching {target} log bytes");
        }
        assert!(
            Instant::now() < deadline,
            "child never reached {target} log bytes (at {})",
            dir_bytes(&log_dir)
        );
        std::thread::sleep(Duration::from_millis(100));
    }
    child.kill().unwrap();
    child.wait().unwrap();

    let released: u64 = std::fs::read_to_string(dir.join("released.txt"))
        .unwrap()
        .lines()
        .filter_map(|line| line.parse().ok())
        .max()
        .expect("child released at least one batch");

    // Sealing ran in the child and its cold segments survived the kill.
    assert!(
        count_files_with_ext(&log_dir, "wcold") > 0,
        "no cold segments on disk after the kill"
    );

    // Recover: a fresh world around the child's on-disk state.
    let w = world();
    let node = start_node(&w, &dir.join("node"));
    let stats = node.stats();

    // Reply ⇒ durable: every entry the child was promised is present.
    assert!(
        node.entry_count() >= released,
        "lost replied-to entries: recovered {} < released {released}",
        node.entry_count()
    );

    // O(tail) restart: the store holds one header record per position plus
    // one per entry; a full replay would touch all of them. Restoring from
    // the newest checkpoint must leave only a small tail.
    let total_records = node.entry_count() + node.log_positions();
    assert!(
        stats.restart_replayed_records * strictness < total_records,
        "restart replayed {} of {} records — checkpoint restore did not engage",
        stats.restart_replayed_records,
        total_records
    );

    // Gapless positions: every position reads back, payloads intact, and
    // the per-position counts account for every entry.
    let mut entries_seen = 0u64;
    for log_id in 0..node.log_positions() {
        let responses = node
            .read_log_position(log_id)
            .unwrap_or_else(|e| panic!("position {log_id} unreadable after recovery: {e:?}"));
        assert!(!responses.is_empty(), "position {log_id} is empty");
        for resp in &responses {
            let req = resp.request().expect("payload decodes");
            assert!(
                req.payload.starts_with(b"tier-"),
                "position {log_id} holds a foreign payload"
            );
            assert_eq!(req.payload.len(), PAYLOAD);
        }
        entries_seen += responses.len() as u64;
    }
    assert_eq!(entries_seen, node.entry_count(), "positions have gaps");

    drop(node);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Quick tier-1 variant: a ~16 MB log, enough for a couple of seals and
/// checkpoints, killed and recovered in well under a minute.
#[test]
fn tiered_node_kill_recover_quick() {
    kill_and_recover("tiered_node_kill_recover_quick", "quick", 16, 2);
}

/// The full acceptance run: a ≥100 MB log (protocol hashing makes this a
/// multi-minute test in unoptimized builds, so it is ignored by default and
/// run explicitly by the CI analysis job).
#[test]
#[ignore = "multi-minute: ≥100 MB through three keccak passes per byte in dev builds"]
fn tiered_node_survives_sigkill_and_restarts_from_checkpoint() {
    kill_and_recover(
        "tiered_node_survives_sigkill_and_restarts_from_checkpoint",
        "full",
        100,
        4,
    );
}
