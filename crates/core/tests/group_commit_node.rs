//! Node-level coverage for the fsync group-commit + overlapped-replication
//! persist stage: a node running `SyncPolicy::GroupCommit` must retain every
//! replied-to entry across a restart, and the new pipeline counters
//! (`fsyncs_coalesced`, `replication_overlap_ns`, `merkle_par_chunks`) must
//! be observable through `NodeStats`.

use std::sync::Arc;
use std::time::Duration;

use wedge_chain::{Chain, ChainConfig, Wei};
use wedge_core::{deploy_service, NodeConfig, OffchainNode, Publisher, ServiceConfig};
use wedge_crypto::signer::Identity;
use wedge_sim::Clock;
use wedge_storage::{StoreConfig, SyncPolicy};

fn group_commit_config(batch_size: usize) -> NodeConfig {
    NodeConfig {
        batch_size,
        batch_linger: Duration::from_millis(5),
        // Keep the collect stage cheap so the persist stage can run ahead
        // and actually accumulate a group (with verification on, collect is
        // the pipeline bottleneck and batches arrive one at a time).
        verify_requests: false,
        replicas: 2,
        replica_link_delay: Duration::from_micros(100),
        store: StoreConfig {
            sync: SyncPolicy::GroupCommit {
                max_batches: 4,
                // Generous delay budget: the covering sync should come from
                // the max_batches threshold, not per-batch deadline syncs.
                max_delay: Duration::from_millis(50),
            },
            ..Default::default()
        },
        ..Default::default()
    }
}

struct World {
    chain: Arc<Chain>,
    node_identity: Identity,
    client_identity: Identity,
    root_record: wedge_chain::Address,
    _miner: wedge_chain::MinerHandle,
    dir: std::path::PathBuf,
}

fn world(tag: &str) -> World {
    let clock = Clock::compressed(2000.0);
    let chain = Chain::new(clock, ChainConfig::default());
    let node_identity = Identity::from_seed(format!("gc-node-{tag}").as_bytes());
    let client_identity = Identity::from_seed(format!("gc-client-{tag}").as_bytes());
    chain.fund(node_identity.address(), Wei::from_eth(1000));
    chain.fund(client_identity.address(), Wei::from_eth(1000));
    let miner = chain.start_miner();
    let deployment = deploy_service(
        &chain,
        &node_identity,
        client_identity.address(),
        &ServiceConfig {
            escrow: Wei::from_eth(32),
            payment_terms: None,
        },
    )
    .expect("deploy contracts");
    let dir = std::env::temp_dir().join(format!("wedge-gc-node-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    World {
        chain,
        node_identity,
        client_identity,
        root_record: deployment.root_record,
        _miner: miner,
        dir,
    }
}

fn start_node(w: &World, config: NodeConfig) -> Arc<OffchainNode> {
    Arc::new(
        OffchainNode::start(
            w.node_identity.clone(),
            config,
            Arc::clone(&w.chain),
            w.root_record,
            &w.dir,
        )
        .expect("start node"),
    )
}

fn payloads(n: usize) -> Vec<Vec<u8>> {
    (0..n)
        .map(|i| format!("gc-entry-{i}").into_bytes())
        .collect()
}

/// Every entry a group-commit node replied to must survive a node restart:
/// the deliver stage only releases replies after `ensure_durable`, so a
/// reply *is* a durability promise even though fsyncs are coalesced.
#[test]
fn group_commit_node_retains_all_replied_entries_across_restart() {
    let w = world("restart");
    let total = 64usize;
    {
        let node = start_node(&w, group_commit_config(8));
        let mut p = Publisher::new(
            w.client_identity.clone(),
            Arc::clone(&node),
            Arc::clone(&w.chain),
            w.root_record,
            None,
        );
        // append_batch only returns once every reply arrived — i.e. once the
        // node promised durability for all `total` entries.
        p.append_batch(payloads(total)).expect("append");
        node.wait_stage2_idle(Duration::from_secs(3600)).unwrap();

        let stats = node.stats();
        assert_eq!(stats.entries_ingested, total as u64);
        // 64 entries / batch_size 8 = 8 batches through a max_batches=4
        // group: at least one fsync must have been coalesced away.
        assert!(
            stats.fsyncs_coalesced > 0,
            "expected coalesced fsyncs, stats: {stats:?}"
        );
        // Replication (2 replicas) overlapped the local persist work.
        assert!(
            stats.replication_overlap_ns > 0,
            "expected overlap accounting, stats: {stats:?}"
        );
        drop(p);
        // Drop the node without an explicit final sync path beyond shutdown.
    }

    // Restart over the same directory: every replied entry must be there.
    let node = start_node(&w, group_commit_config(8));
    assert_eq!(node.entry_count(), total as u64, "entries lost on restart");
    for log_id in 0..node.log_positions() {
        let responses = node.read_log_position(log_id).expect("position readable");
        for resp in &responses {
            let req = resp.request().expect("payload decodes");
            assert!(req.payload.starts_with(b"gc-entry-"));
        }
    }
    let _ = std::fs::remove_dir_all(&w.dir);
}

/// The parallel Merkle path is exercised (and counted) once a batch reaches
/// the configured cutoff — with a multi-worker pool — while a cutoff of
/// `usize::MAX` keeps the builder serial. On single-core machines the pool
/// clamps to one worker and the counter legitimately stays 0, so the
/// positive half only asserts when parallelism is actually available.
#[test]
fn merkle_parallel_cutoff_governs_chunk_accounting() {
    let w = world("cutoff");
    let mut config = group_commit_config(32);
    config.merkle_parallel_cutoff = usize::MAX;
    {
        let node = start_node(&w, config.clone());
        let mut p = Publisher::new(
            w.client_identity.clone(),
            Arc::clone(&node),
            Arc::clone(&w.chain),
            w.root_record,
            None,
        );
        p.append_batch(payloads(64)).expect("append");
        node.wait_stage2_idle(Duration::from_secs(3600)).unwrap();
        assert_eq!(
            node.stats().merkle_par_chunks,
            0,
            "cutoff usize::MAX must force the serial builder"
        );
    }

    let _ = std::fs::remove_dir_all(&w.dir);
    config.merkle_parallel_cutoff = 8;
    let node = start_node(&w, config);
    let mut p = Publisher::new(
        w.client_identity.clone(),
        Arc::clone(&node),
        Arc::clone(&w.chain),
        w.root_record,
        None,
    );
    p.append_batch(payloads(64)).expect("append");
    node.wait_stage2_idle(Duration::from_secs(3600)).unwrap();
    let stats = node.stats();
    if std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        > 1
    {
        assert!(
            stats.merkle_par_chunks > 0,
            "batches of 32 over cutoff 8 must dispatch parallel chunks, stats: {stats:?}"
        );
    } else {
        assert_eq!(stats.merkle_par_chunks, 0, "single-core pool stays inline");
    }
    let _ = std::fs::remove_dir_all(&w.dir);
}
