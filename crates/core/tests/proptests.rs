//! Property-based tests for the protocol types: arbitrary payloads
//! roundtrip through requests/leaves/responses, and every single-field
//! tampering of a response is detected.

use proptest::prelude::*;
use wedge_core::types::{AppendRequest, EntryId, SignedResponse};
use wedge_crypto::Keypair;
use wedge_merkle::MerkleTree;

fn arb_payloads() -> impl Strategy<Value = Vec<Vec<u8>>> {
    prop::collection::vec(prop::collection::vec(any::<u8>(), 0..256), 1..24)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn request_leaf_roundtrip(payload in prop::collection::vec(any::<u8>(), 0..512), seq in any::<u64>()) {
        let kp = Keypair::from_seed(b"prop-publisher");
        let req = AppendRequest::new(&kp.secret, seq, payload.clone());
        req.verify().unwrap();
        let parsed = AppendRequest::from_leaf_bytes(&req.leaf_bytes()).unwrap();
        parsed.verify().unwrap();
        prop_assert_eq!(parsed.sequence, seq);
        prop_assert_eq!(parsed.payload, payload);
    }

    #[test]
    fn batch_responses_all_verify(payloads in arb_payloads(), log_id in 0u64..1000) {
        let publisher = Keypair::from_seed(b"prop-pub2");
        let node = Keypair::from_seed(b"prop-node");
        let requests: Vec<AppendRequest> = payloads
            .iter()
            .enumerate()
            .map(|(i, p)| AppendRequest::new(&publisher.secret, i as u64, p.clone()))
            .collect();
        let leaves: Vec<Vec<u8>> = requests.iter().map(|r| r.leaf_bytes()).collect();
        let tree = MerkleTree::from_leaves(&leaves).unwrap();
        for (offset, request) in requests.iter().enumerate() {
            let response = SignedResponse::sign(
                &node.secret,
                EntryId { log_id, offset: offset as u32 },
                tree.root(),
                tree.prove(offset).unwrap(),
                leaves[offset].clone(),
            );
            response.verify(&node.public).unwrap();
            response.verify_for_request(&node.public, request).unwrap();
        }
    }

    #[test]
    fn any_tampered_response_field_is_detected(
        payloads in arb_payloads(),
        which in 0usize..4,
        flip in any::<u8>(),
    ) {
        prop_assume!(flip != 0);
        let publisher = Keypair::from_seed(b"prop-pub3");
        let node = Keypair::from_seed(b"prop-node3");
        let requests: Vec<AppendRequest> = payloads
            .iter()
            .enumerate()
            .map(|(i, p)| AppendRequest::new(&publisher.secret, i as u64, p.clone()))
            .collect();
        let leaves: Vec<Vec<u8>> = requests.iter().map(|r| r.leaf_bytes()).collect();
        let tree = MerkleTree::from_leaves(&leaves).unwrap();
        let mut response = SignedResponse::sign(
            &node.secret,
            EntryId { log_id: 1, offset: 0 },
            tree.root(),
            tree.prove(0).unwrap(),
            leaves[0].clone(),
        );
        match which {
            0 => {
                // Tamper with the leaf bytes.
                let idx = (flip as usize) % response.leaf.len().max(1);
                if response.leaf.is_empty() { return Ok(()); }
                response.leaf[idx] ^= flip;
            }
            1 => {
                // Tamper with the root.
                response.merkle_root.0[(flip as usize) % 32] ^= flip;
            }
            2 => {
                // Tamper with the claimed index.
                response.entry_id = EntryId { log_id: 1, offset: 1 };
            }
            _ => {
                // Tamper with the proof path (when one exists).
                if response.proof.path.is_empty() { return Ok(()); }
                let i = (flip as usize) % response.proof.path.len();
                response.proof.path[i].hash.0[0] ^= flip;
            }
        }
        prop_assert!(
            response.verify(&node.public).is_err()
                || response
                    .verify_for_request(&node.public, &requests[0])
                    .is_err(),
            "tampering must be detected (case {which})"
        );
    }
}
