//! Regression tests for the two-plane read path: every multi-value read
//! (`read_many`, `read_log_position`, `meta`) must be served from ONE
//! published snapshot, so concurrent stage-1 flushes can never tear a
//! result — a group of reads sees either none of a batch or all of it.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use wedge_chain::{Chain, ChainConfig, Wei};
use wedge_core::{deploy_service, AppendRequest, EntryId, NodeConfig, OffchainNode, ServiceConfig};
use wedge_crypto::signer::Identity;
use wedge_sim::Clock;

struct World {
    node: OffchainNode,
    publisher: Identity,
    dir: std::path::PathBuf,
    _miner: wedge_chain::MinerHandle,
}

fn start_world(tag: &str, config: NodeConfig) -> World {
    let clock = Clock::compressed(2000.0);
    let chain = Chain::new(clock, ChainConfig::default());
    let node_identity = Identity::from_seed(format!("snapconsist-node-{tag}").as_bytes());
    let publisher = Identity::from_seed(format!("snapconsist-pub-{tag}").as_bytes());
    chain.fund(node_identity.address(), Wei::from_eth(1000));
    chain.fund(publisher.address(), Wei::from_eth(10));
    let miner = chain.start_miner();
    let deployment = deploy_service(
        &chain,
        &node_identity,
        publisher.address(),
        &ServiceConfig {
            escrow: Wei::from_eth(32),
            payment_terms: None,
        },
    )
    .expect("deploy contracts");
    let dir = std::env::temp_dir().join(format!("wedge-snapconsist-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let node = OffchainNode::start(
        node_identity,
        config,
        Arc::clone(&chain),
        deployment.root_record,
        &dir,
    )
    .expect("start node");
    World {
        node,
        publisher,
        dir,
        _miner: miner,
    }
}

/// `meta` returns `(positions, entries, position_len)` from one snapshot:
/// summing the (immutable, post-flush) per-position lengths over exactly
/// `positions` batches must reproduce `entries`, at every instant of a
/// concurrent ingestion run. The pre-refactor composed read (three separate
/// accessor calls) could interleave with a flush and report an `entries`
/// total that includes a batch missing from `positions`.
#[test]
fn meta_is_internally_consistent_under_concurrent_flushes() {
    let mut world = start_world(
        "meta",
        NodeConfig {
            batch_size: 5,
            batch_linger: Duration::from_millis(1),
            ..Default::default()
        },
    );
    let total = 120u64;
    let stop = AtomicBool::new(false);
    let checks = AtomicU64::new(0);

    crossbeam::thread::scope(|scope| {
        let node = &world.node;
        let publisher = &world.publisher;
        scope.spawn(|_| {
            for seq in 0..total {
                let request = AppendRequest::new(
                    publisher.secret_key(),
                    seq,
                    format!("meta-{seq}").into_bytes(),
                );
                node.submit_with(request, Box::new(|_| {}))
                    .expect("submit while running");
                std::thread::sleep(Duration::from_micros(100));
            }
            stop.store(true, Ordering::Relaxed);
        });
        scope.spawn(|_| {
            let mut last_positions = 0u64;
            let mut last_entries = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let (positions, entries, first_len) = node.meta(0);
                // Monotonicity: the log only grows during ingestion.
                assert!(positions >= last_positions, "positions went backwards");
                assert!(entries >= last_entries, "entries went backwards");
                last_positions = positions;
                last_entries = entries;
                // Internal consistency: batch lengths are immutable once
                // flushed, so re-reading them must reproduce the counter.
                let sum: u64 = (0..positions)
                    .map(|l| {
                        u64::from(
                            node.read_log_position_len(l)
                                .expect("flushed position has a length"),
                        )
                    })
                    .sum();
                assert_eq!(
                    sum, entries,
                    "entries counter must equal the sum over exactly `positions` batches"
                );
                if positions > 0 {
                    assert_eq!(
                        first_len,
                        node.read_log_position_len(0),
                        "position_len in the triple matches the accessor"
                    );
                }
                checks.fetch_add(1, Ordering::Relaxed);
            }
        });
    })
    .expect("threads");

    assert!(
        checks.load(Ordering::Relaxed) > 10,
        "the checker must observe the log mid-growth"
    );
    world.node.shutdown();
    assert_eq!(world.node.entry_count(), total);
    let _ = std::fs::remove_dir_all(&world.dir);
}

/// A `read_many` group and a `read_log_position` scan are all-or-nothing
/// with respect to a concurrently flushing batch: ids taken from one `meta`
/// observation always resolve, and a position scan returns the full batch.
#[test]
fn read_many_and_position_scans_are_atomic_per_snapshot() {
    let mut world = start_world(
        "group",
        NodeConfig {
            batch_size: 4,
            batch_linger: Duration::from_millis(1),
            ..Default::default()
        },
    );
    let total = 80u64;
    let stop = AtomicBool::new(false);
    let key = world.node.public_key();

    crossbeam::thread::scope(|scope| {
        let node = &world.node;
        let publisher = &world.publisher;
        scope.spawn(|_| {
            for seq in 0..total {
                let request = AppendRequest::new(
                    publisher.secret_key(),
                    seq,
                    format!("group-{seq}").into_bytes(),
                );
                node.submit_with(request, Box::new(|_| {}))
                    .expect("submit while running");
                std::thread::sleep(Duration::from_micros(150));
            }
            stop.store(true, Ordering::Relaxed);
        });
        scope.spawn(|_| {
            while !stop.load(Ordering::Relaxed) {
                let (positions, _, _) = node.meta(0);
                if positions == 0 {
                    continue;
                }
                // Whole-log read_many: every id derived from the meta
                // observation must resolve, even while later batches flush.
                let mut ids = Vec::new();
                for log_id in 0..positions {
                    let len = node
                        .read_log_position_len(log_id)
                        .expect("observed position exists");
                    ids.extend((0..len).map(|offset| EntryId { log_id, offset }));
                }
                for (id, result) in ids.iter().zip(node.read_many(&ids)) {
                    let response = result.unwrap_or_else(|e| {
                        panic!("entry {id:?} vanished from an observed snapshot: {e}")
                    });
                    response.verify(&key).expect("response verifies");
                }
                // Position scan: full batch, never a partial one.
                let last = positions - 1;
                let batch = node
                    .read_log_position(last)
                    .expect("observed position scans");
                assert_eq!(
                    batch.len() as u32,
                    node.read_log_position_len(last).expect("length"),
                    "a position scan returns the fully-registered batch"
                );
            }
        });
    })
    .expect("threads");

    world.node.shutdown();
    let _ = std::fs::remove_dir_all(&world.dir);
}

/// Reads that race `destroy_tail` degrade to clean `EntryNotFound`-style
/// errors, never torn data: the plane is republished before the store is
/// truncated, so a fresh snapshot never references destroyed records.
#[test]
fn destroyed_tail_disappears_atomically() {
    let mut world = start_world(
        "destroy",
        NodeConfig {
            batch_size: 6,
            batch_linger: Duration::from_millis(1),
            ..Default::default()
        },
    );
    let total = 60u64;
    for seq in 0..total {
        let request = AppendRequest::new(
            world.publisher.secret_key(),
            seq,
            format!("destroy-{seq}").into_bytes(),
        );
        world
            .node
            .submit_with(request, Box::new(|_| {}))
            .expect("submit");
    }
    // Drain stage 1 so the full log is flushed, but keep the node readable.
    world.node.begin_shutdown();
    while world.node.entry_count() < total {
        std::thread::sleep(Duration::from_millis(1));
    }
    let before = world.node.log_positions();
    world.node.destroy_tail(10).expect("destroy tail");
    let after = world.node.log_positions();
    assert!(after < before, "destruction drops whole batches");
    // Surviving prefix reads clean; the destroyed suffix errors cleanly.
    for log_id in 0..after {
        world
            .node
            .read_log_position(log_id)
            .expect("surviving position reads");
    }
    for log_id in after..before {
        assert!(
            world.node.read_log_position(log_id).is_err(),
            "destroyed position {log_id} must not read"
        );
        assert_eq!(world.node.read_log_position_len(log_id), None);
    }
    let (positions, entries, _) = world.node.meta(0);
    assert_eq!(positions, after);
    let sum: u64 = (0..after)
        .map(|l| u64::from(world.node.read_log_position_len(l).expect("len")))
        .sum();
    assert_eq!(entries, sum, "entry counter tracks destruction");
    world.node.shutdown();
    let _ = std::fs::remove_dir_all(&world.dir);
}
