//! Concurrent stress for the two-plane node: readers, sequence lookups, and
//! commit-phase polling race sustained multi-publisher ingestion (with
//! replication enabled), and a shutdown lands mid-stress.
//!
//! Invariants under fire:
//! * a reader sees nothing of a batch or all of it — never a partial
//!   registration;
//! * an acknowledged `(publisher, sequence)` is immediately readable
//!   (registration happens before the reply fires);
//! * `commit_phase` never reports `Pending` for an observed position;
//! * every request accepted before `begin_shutdown` is answered exactly
//!   once, and none after it are silently dropped.

use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use wedge_chain::{Chain, ChainConfig, Wei};
use wedge_core::{
    deploy_service, AppendRequest, CommitPhase, EntryId, NodeConfig, OffchainNode, ServiceConfig,
};
use wedge_crypto::signer::Identity;
use wedge_sim::Clock;

const PUBLISHERS: usize = 3;
const REQUESTS_PER_PUBLISHER: usize = 40;

#[test]
fn readers_and_shutdown_race_ingestion_without_loss() {
    let clock = Clock::compressed(2000.0);
    let chain = Chain::new(clock, ChainConfig::default());
    let node_identity = Identity::from_seed(b"stress-node");
    let publishers: Vec<Identity> = (0..PUBLISHERS)
        .map(|p| Identity::from_seed(format!("stress-pub-{p}").as_bytes()))
        .collect();
    chain.fund(node_identity.address(), Wei::from_eth(1000));
    for publisher in &publishers {
        chain.fund(publisher.address(), Wei::from_eth(10));
    }
    let miner = chain.start_miner();
    let deployment = deploy_service(
        &chain,
        &node_identity,
        publishers[0].address(),
        &ServiceConfig {
            escrow: Wei::from_eth(32),
            payment_terms: None,
        },
    )
    .expect("deploy contracts");

    let dir = std::env::temp_dir().join(format!("wedge-stress-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let config = NodeConfig {
        batch_size: 8,
        batch_linger: Duration::from_millis(2),
        pipeline_depth: 2,
        replicas: 2,
        ..Default::default()
    };
    let mut node = OffchainNode::start(
        node_identity,
        config,
        Arc::clone(&chain),
        deployment.root_record,
        &dir,
    )
    .expect("start node");

    let total = PUBLISHERS * REQUESTS_PER_PUBLISHER;
    // Reply bookkeeping: `deliveries[slot]` counts invocations of the slot's
    // reply closure; `submitted[slot]` records whether the node accepted the
    // request. Accepted ⇒ exactly one reply; rejected ⇒ zero.
    let deliveries: Arc<Vec<AtomicU32>> = Arc::new((0..total).map(|_| AtomicU32::new(0)).collect());
    let submitted: Arc<Vec<AtomicBool>> =
        Arc::new((0..total).map(|_| AtomicBool::new(false)).collect());
    // Highest contiguous acknowledged sequence per publisher (count of acks
    // from seq 0 up; submissions are in order per publisher, and batching
    // preserves per-publisher order, so acks are contiguous).
    let acked: Arc<Vec<AtomicU32>> = Arc::new((0..PUBLISHERS).map(|_| AtomicU32::new(0)).collect());
    let failures: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
    let stop_readers = AtomicBool::new(false);

    crossbeam::thread::scope(|scope| {
        let node = &node;
        let stop_readers = &stop_readers;

        // Publishers.
        let mut publisher_handles = Vec::new();
        for (p, publisher) in publishers.iter().enumerate() {
            let deliveries = Arc::clone(&deliveries);
            let submitted = Arc::clone(&submitted);
            let acked = Arc::clone(&acked);
            let failures = Arc::clone(&failures);
            publisher_handles.push(scope.spawn(move |_| {
                for seq in 0..REQUESTS_PER_PUBLISHER {
                    let request = AppendRequest::new(
                        publisher.secret_key(),
                        seq as u64,
                        format!("stress-{p}-{seq}").into_bytes(),
                    );
                    let slot = p * REQUESTS_PER_PUBLISHER + seq;
                    let deliveries = Arc::clone(&deliveries);
                    let acked = Arc::clone(&acked);
                    let failures = Arc::clone(&failures);
                    let outcome = node.submit_with(
                        request,
                        Box::new(move |result| {
                            deliveries[slot].fetch_add(1, Ordering::SeqCst);
                            match result {
                                Ok(_) => {
                                    acked[p].fetch_add(1, Ordering::SeqCst);
                                }
                                Err(err) => {
                                    failures
                                        .lock()
                                        .unwrap()
                                        .push(format!("request {slot}: {err}"));
                                }
                            }
                        }),
                    );
                    if outcome.is_ok() {
                        submitted[slot].store(true, Ordering::SeqCst);
                    } else {
                        // `begin_shutdown` already ran; the node must keep
                        // rejecting from here on (no flapping sender).
                        assert!(
                            node.submit_with(
                                AppendRequest::new(publisher.secret_key(), seq as u64, vec![]),
                                Box::new(|_| {}),
                            )
                            .is_err(),
                            "submissions after shutdown must stay rejected"
                        );
                        break;
                    }
                    std::thread::sleep(Duration::from_micros(120));
                }
            }));
        }

        // Snapshot readers: whole-batch-or-nothing + commit-phase sanity.
        for _ in 0..2 {
            scope.spawn(move |_| {
                while !stop_readers.load(Ordering::Relaxed) {
                    let (positions, entries, _) = node.meta(0);
                    let mut sum = 0u64;
                    for log_id in 0..positions {
                        let len = node
                            .read_log_position_len(log_id)
                            .expect("observed position has a length");
                        sum += u64::from(len);
                        // Nothing-or-all: the full batch is readable the
                        // moment the position is visible.
                        let batch = node
                            .read_log_position(log_id)
                            .expect("observed position reads");
                        assert_eq!(batch.len() as u32, len, "partial batch observed");
                        assert_ne!(
                            node.commit_phase(log_id),
                            CommitPhase::Pending,
                            "observed position {log_id} reported Pending"
                        );
                    }
                    assert_eq!(sum, entries, "meta triple torn across snapshots");
                    // Spot-check the point-read path on the newest batch.
                    if positions > 0 {
                        let id = EntryId {
                            log_id: positions - 1,
                            offset: 0,
                        };
                        node.read(id).expect("first entry of newest batch reads");
                    }
                }
            });
        }

        // Sequence-lookup reader: an acked sequence must already be
        // registered (replies fire only after snapshot publication).
        {
            let acked = Arc::clone(&acked);
            let publishers = &publishers;
            scope.spawn(move |_| {
                while !stop_readers.load(Ordering::Relaxed) {
                    for (p, publisher) in publishers.iter().enumerate() {
                        let n = acked[p].load(Ordering::SeqCst);
                        if n == 0 {
                            continue;
                        }
                        let sequence = u64::from(n - 1);
                        node.read_by_sequence(publisher.address(), sequence)
                            .unwrap_or_else(|e| {
                                panic!("acked sequence ({p}, {sequence}) unreadable: {e}")
                            });
                    }
                }
            });
        }

        // Shutdown lands mid-stress, through a *shared* reference while
        // every thread above still borrows the node.
        scope.spawn(move |_| {
            std::thread::sleep(Duration::from_millis(6));
            node.begin_shutdown();
        });

        for handle in publisher_handles {
            handle.join().expect("publisher thread");
        }
        // Let readers observe the post-shutdown drain for a moment.
        std::thread::sleep(Duration::from_millis(10));
        stop_readers.store(true, Ordering::Relaxed);
    })
    .expect("stress threads");

    node.shutdown();

    // Exactly-once accounting: accepted ⇒ one reply, rejected ⇒ none.
    let mut accepted = 0u64;
    for slot in 0..total {
        let expect = u32::from(submitted[slot].load(Ordering::SeqCst));
        accepted += u64::from(expect);
        assert_eq!(
            deliveries[slot].load(Ordering::SeqCst),
            expect,
            "slot {slot}: accepted requests get exactly one reply, rejected ones none"
        );
    }
    assert!(
        failures.lock().unwrap().is_empty(),
        "accepted appends must not fail: {:?}",
        failures.lock().unwrap()
    );
    assert!(accepted > 0, "the stress run must accept some requests");
    assert_eq!(
        node.entry_count(),
        accepted,
        "every accepted entry is registered"
    );

    // The drained log finishes stage 2 and survives restart intact.
    node.wait_stage2_idle(Duration::from_secs(600))
        .expect("stage 2 drains");
    let positions = node.log_positions();
    for log_id in 0..positions {
        assert_eq!(node.commit_phase(log_id), CommitPhase::BlockchainCommitted);
    }
    let stats = node.stats();
    assert_eq!(stats.stage2_failed, 0);
    assert!(
        stats.snapshot_publishes >= positions,
        "each flush publishes a snapshot"
    );
    drop(node);
    drop(miner);
    let _ = std::fs::remove_dir_all(&dir);
}
