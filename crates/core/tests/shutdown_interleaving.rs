//! Shutdown-interleaving tests for the batcher → stage-2 handoff.
//!
//! A node stopped mid-batch must neither lose a task nor execute one twice:
//! every submitted request is answered exactly once, every acknowledged
//! entry is durable, every flushed log position is blockchain-committed
//! exactly once, and a restart finds nothing left to re-commit. The same
//! scenario runs under a set of schedules (publisher count, batch size,
//! submission jitter, shutdown delay) so the shutdown lands at different
//! points of the pipeline: mid-linger, mid-flush, and mid-stage-2.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use wedge_chain::{Chain, ChainConfig, Wei};
use wedge_core::{
    deploy_service, AppendRequest, CommitPhase, NodeConfig, OffchainNode, ServiceConfig,
};
use wedge_crypto::signer::Identity;
use wedge_sim::Clock;

struct Schedule {
    publishers: usize,
    requests_per_publisher: usize,
    batch_size: usize,
    /// Wall-clock pause between submissions (explores mid-linger flushes).
    submit_jitter: Duration,
    /// Wall-clock pause before shutdown (explores mid-flush / mid-stage-2).
    shutdown_delay: Duration,
}

#[test]
fn shutdown_mid_batch_loses_and_duplicates_nothing() {
    let schedules = [
        // Immediate shutdown: most requests still queued in the ingest
        // channel when the sender closes.
        Schedule {
            publishers: 1,
            requests_per_publisher: 30,
            batch_size: 7,
            submit_jitter: Duration::ZERO,
            shutdown_delay: Duration::ZERO,
        },
        // Concurrent publishers, shutdown while early batches flush.
        Schedule {
            publishers: 2,
            requests_per_publisher: 20,
            batch_size: 10,
            submit_jitter: Duration::from_micros(200),
            shutdown_delay: Duration::from_millis(2),
        },
        // Ragged tail: the last batch is partial and only the linger
        // timeout (or the shutdown drain) can flush it.
        Schedule {
            publishers: 2,
            requests_per_publisher: 13,
            batch_size: 9,
            submit_jitter: Duration::from_micros(500),
            shutdown_delay: Duration::from_millis(8),
        },
        // Late shutdown: stage 2 is already consuming the handoff queue.
        Schedule {
            publishers: 3,
            requests_per_publisher: 12,
            batch_size: 6,
            submit_jitter: Duration::from_micros(100),
            shutdown_delay: Duration::from_millis(25),
        },
    ];
    for (tag, schedule) in schedules.iter().enumerate() {
        run_schedule(tag, schedule);
    }
}

fn run_schedule(tag: usize, schedule: &Schedule) {
    let clock = Clock::compressed(2000.0);
    let chain = Chain::new(clock, ChainConfig::default());
    let node_identity = Identity::from_seed(format!("shutdown-node-{tag}").as_bytes());
    let publishers: Vec<Identity> = (0..schedule.publishers)
        .map(|p| Identity::from_seed(format!("shutdown-pub-{tag}-{p}").as_bytes()))
        .collect();
    chain.fund(node_identity.address(), Wei::from_eth(1000));
    for publisher in &publishers {
        chain.fund(publisher.address(), Wei::from_eth(10));
    }
    let miner = chain.start_miner();
    let deployment = deploy_service(
        &chain,
        &node_identity,
        publishers[0].address(),
        &ServiceConfig {
            escrow: Wei::from_eth(32),
            payment_terms: None,
        },
    )
    .expect("deploy contracts");

    let dir = std::env::temp_dir().join(format!("wedge-shutdown-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let config = NodeConfig {
        batch_size: schedule.batch_size,
        batch_linger: Duration::from_millis(2),
        ..Default::default()
    };
    let mut node = OffchainNode::start(
        node_identity.clone(),
        config,
        Arc::clone(&chain),
        deployment.root_record,
        &dir,
    )
    .expect("start node");

    // One delivery counter per request; the reply closure is the only
    // writer, so any count other than exactly 1 is a lost or duplicated
    // reply.
    let total = schedule.publishers * schedule.requests_per_publisher;
    let deliveries: Arc<Vec<AtomicU32>> = Arc::new((0..total).map(|_| AtomicU32::new(0)).collect());
    let failures: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));

    crossbeam::thread::scope(|scope| {
        for (p, publisher) in publishers.iter().enumerate() {
            let node = &node;
            let deliveries = Arc::clone(&deliveries);
            let failures = Arc::clone(&failures);
            scope.spawn(move |_| {
                for seq in 0..schedule.requests_per_publisher {
                    let request = AppendRequest::new(
                        publisher.secret_key(),
                        seq as u64,
                        format!("entry-{tag}-{p}-{seq}").into_bytes(),
                    );
                    let slot = p * schedule.requests_per_publisher + seq;
                    let deliveries = Arc::clone(&deliveries);
                    let failures = Arc::clone(&failures);
                    node.submit_with(
                        request,
                        Box::new(move |outcome| {
                            deliveries[slot].fetch_add(1, Ordering::SeqCst);
                            if let Err(err) = outcome {
                                failures
                                    .lock()
                                    .unwrap()
                                    .push(format!("request {slot}: {err}"));
                            }
                        }),
                    )
                    .expect("submit while running");
                    if !schedule.submit_jitter.is_zero() {
                        std::thread::sleep(schedule.submit_jitter);
                    }
                }
            });
        }
    })
    .expect("submitter threads");

    // Shut down while batches are still in flight through the
    // batcher → stage-2 pipeline. `shutdown` closes the ingest channel
    // (the batcher drains what is queued, flushes the partial batch, and
    // hangs up on the committer, which drains its own queue) and joins
    // both threads.
    std::thread::sleep(schedule.shutdown_delay);
    node.shutdown();

    // Exactly-once replies, all successful.
    for (slot, counter) in deliveries.iter().enumerate() {
        assert_eq!(
            counter.load(Ordering::SeqCst),
            1,
            "schedule {tag}: request {slot} must be answered exactly once"
        );
    }
    assert!(
        failures.lock().unwrap().is_empty(),
        "schedule {tag}: no acknowledged append may fail: {:?}",
        failures.lock().unwrap()
    );

    // Every acknowledged entry was flushed, and every flushed position was
    // committed exactly once. A double-executed task would either bump
    // `stage2_committed` past the position count or revert on-chain (the
    // contract rejects non-sequential writes) and show up as a failure.
    let stats = node.stats();
    let positions = node.log_positions();
    assert!(
        positions >= 1,
        "schedule {tag}: at least one batch must flush"
    );
    assert_eq!(
        node.entry_count(),
        total as u64,
        "schedule {tag}: entries lost"
    );
    assert_eq!(
        stats.stage2_committed, positions,
        "schedule {tag}: each flushed position is committed exactly once"
    );
    assert_eq!(
        stats.stage2_failed, 0,
        "schedule {tag}: no stage-2 task may fail"
    );
    drop(node);

    // A restart finds a fully committed log: nothing lost before stage 2,
    // nothing left to re-commit (the startup resync would re-submit any
    // dropped task, so zero submissions proves the drain was complete).
    let node = OffchainNode::start(
        node_identity,
        NodeConfig {
            batch_size: schedule.batch_size,
            ..Default::default()
        },
        Arc::clone(&chain),
        deployment.root_record,
        &dir,
    )
    .expect("restart node");
    assert_eq!(
        node.log_positions(),
        positions,
        "schedule {tag}: positions lost on disk"
    );
    assert_eq!(
        node.entry_count(),
        total as u64,
        "schedule {tag}: entries lost on disk"
    );
    node.wait_stage2_idle(Duration::from_secs(600))
        .expect("recovered log fully committed");
    assert_eq!(
        node.stats().stage2_txs_submitted,
        0,
        "schedule {tag}: a drained shutdown leaves nothing to re-commit"
    );
    for log_id in 0..positions {
        assert_eq!(
            node.commit_phase(log_id),
            CommitPhase::BlockchainCommitted,
            "schedule {tag}: position {log_id} lost its stage-2 commitment"
        );
    }
    drop(node);
    drop(miner);
    let _ = std::fs::remove_dir_all(&dir);
}
