//! End-to-end LMT protocol tests: honest two-phase commitment, reads and
//! audits, node recovery, and every injected malicious behaviour ending in
//! detection (and, where applicable, punishment).

use std::sync::Arc;
use std::time::Duration;

use wedge_chain::{Chain, ChainConfig, Wei};
use wedge_contracts::{Punishment, PunishmentStatus};
use wedge_core::{
    deploy_service, Auditor, CommitPhase, NodeBehavior, NodeConfig, OffchainNode, Publisher,
    Reader, ServiceConfig, Stage2Verdict,
};
use wedge_crypto::signer::Identity;
use wedge_sim::Clock;

struct World {
    chain: Arc<Chain>,
    node: Arc<OffchainNode>,
    node_identity: Identity,
    publisher: Publisher,
    reader: Reader,
    auditor: Auditor,
    root_record: wedge_chain::Address,
    punishment: wedge_chain::Address,
    _miner: wedge_chain::MinerHandle,
    dir: std::path::PathBuf,
}

const ESCROW: Wei = Wei::from_eth(32);

fn world(tag: &str, behavior: NodeBehavior, batch_size: usize) -> World {
    // 2000x compression: 13 s blocks every 6.5 ms of wall time.
    let clock = Clock::compressed(2000.0);
    let chain = Chain::new(clock, ChainConfig::default());
    let node_identity = Identity::from_seed(format!("node-{tag}").as_bytes());
    let client_identity = Identity::from_seed(format!("client-{tag}").as_bytes());
    chain.fund(node_identity.address(), Wei::from_eth(1000));
    chain.fund(client_identity.address(), Wei::from_eth(1000));
    let miner = chain.start_miner();
    let deployment = deploy_service(
        &chain,
        &node_identity,
        client_identity.address(),
        &ServiceConfig {
            escrow: ESCROW,
            payment_terms: None,
        },
    )
    .expect("deploy contracts");

    let dir = std::env::temp_dir().join(format!("wedge-proto-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let config = NodeConfig {
        batch_size,
        batch_linger: Duration::from_millis(5),
        behavior,
        ..Default::default()
    };
    let node = Arc::new(
        OffchainNode::start(
            node_identity.clone(),
            config,
            Arc::clone(&chain),
            deployment.root_record,
            &dir,
        )
        .expect("start node"),
    );
    let publisher = Publisher::new(
        client_identity,
        Arc::clone(&node),
        Arc::clone(&chain),
        deployment.root_record,
        Some(deployment.punishment),
    );
    let reader = Reader::new(
        Arc::clone(&node),
        Arc::clone(&chain),
        deployment.root_record,
    );
    let auditor = Auditor::new(
        Arc::clone(&node),
        Arc::clone(&chain),
        deployment.root_record,
    );
    World {
        chain,
        node,
        node_identity,
        publisher,
        reader,
        auditor,
        root_record: deployment.root_record,
        punishment: deployment.punishment,
        _miner: miner,
        dir,
    }
}

fn payloads(n: usize, size: usize) -> Vec<Vec<u8>> {
    (0..n)
        .map(|i| {
            let mut p = format!("payload-{i}-").into_bytes();
            p.resize(size, 0x42);
            p
        })
        .collect()
}

#[test]
fn honest_two_phase_commitment() {
    let mut w = world("honest", NodeBehavior::Honest, 50);
    let outcome = w.publisher.append_batch(payloads(100, 256)).unwrap();
    assert_eq!(outcome.responses.len(), 100);
    assert!(outcome.first_response <= outcome.last_response);
    assert!(outcome.last_response <= outcome.stage1_commit);
    // Batch size 50 → 2 log positions.
    assert_eq!(w.node.log_positions(), 2);
    assert_eq!(w.node.entry_count(), 100);

    // Stage 2 completes lazily; wait for it, then every response verifies
    // as blockchain-committed.
    w.node.wait_stage2_idle(Duration::from_secs(600)).unwrap();
    for response in &outcome.responses {
        assert_eq!(
            w.publisher.verify_blockchain_commit(response).unwrap(),
            Stage2Verdict::Committed
        );
    }
    assert_eq!(w.node.commit_phase(0), CommitPhase::BlockchainCommitted);
    assert_eq!(w.node.commit_phase(1), CommitPhase::BlockchainCommitted);
    assert_eq!(w.node.commit_phase(2), CommitPhase::Pending);

    // Stage-2 latency is in the tens of simulated seconds (paper: ~43 s).
    let stats = w.node.stats();
    let mean = stats.mean_stage2_latency().expect("commits recorded");
    assert!(
        mean >= Duration::from_secs(10) && mean <= Duration::from_secs(120),
        "stage-2 latency {mean:?} outside the plausible band"
    );
    assert!(stats.stage2_fees > Wei::ZERO);
}

#[test]
fn reads_verify_through_all_paths() {
    let mut w = world("reads", NodeBehavior::Honest, 25);
    let outcome = w.publisher.append_batch(payloads(50, 128)).unwrap();
    w.node.wait_stage2_idle(Duration::from_secs(600)).unwrap();

    // By entry id.
    let id = outcome.responses[7].entry_id;
    let entry = w.reader.read(id).unwrap();
    assert_eq!(entry.request.payload, payloads(50, 128)[7]);
    assert_eq!(entry.phase, CommitPhase::BlockchainCommitted);

    // By (publisher, sequence).
    let by_seq = w.reader.read_by_sequence(w.publisher.address(), 7).unwrap();
    assert_eq!(by_seq.request.payload, entry.request.payload);

    // Lazy (stage-1-only) read.
    let lazy = w.reader.read_lazy(id).unwrap();
    assert_eq!(lazy.phase, CommitPhase::OffchainCommitted);

    // Missing entries fail cleanly.
    assert!(w
        .reader
        .read(wedge_core::EntryId {
            log_id: 99,
            offset: 0
        })
        .is_err());
    assert!(w
        .reader
        .read_by_sequence(w.publisher.address(), 9999)
        .is_err());
}

#[test]
fn auditor_scans_clean_log() {
    let mut w = world("audit", NodeBehavior::Honest, 40);
    w.publisher.append_batch(payloads(120, 64)).unwrap();
    w.node.wait_stage2_idle(Duration::from_secs(600)).unwrap();
    let report = w.auditor.audit(0, 120).unwrap();
    assert_eq!(report.entries_checked, 120);
    assert!(report.is_clean());
    assert!(report.verify_time <= report.total_time);

    // Range-proof variant agrees.
    let report2 = w.auditor.audit_with_range_proofs(0, 120).unwrap();
    assert_eq!(report2.entries_checked, 120);
    assert!(report2.is_clean());
}

#[test]
fn equivocating_node_is_detected_and_punished() {
    let mut w = world(
        "equivocate",
        NodeBehavior::CommitWrongRoot { from_log: 0 },
        30,
    );
    let outcome = w.publisher.append_batch(payloads(30, 128)).unwrap();
    // Stage 1 looks perfectly honest.
    assert_eq!(outcome.responses.len(), 30);
    w.node.wait_stage2_idle(Duration::from_secs(600)).unwrap();

    // Stage-2 verification exposes the lie.
    let verdict = w
        .publisher
        .verify_blockchain_commit(&outcome.responses[0])
        .unwrap();
    assert_eq!(verdict, Stage2Verdict::Mismatch);

    // Reader's verified path refuses the entry.
    let err = w.reader.read(outcome.responses[0].entry_id).unwrap_err();
    assert!(matches!(
        err,
        wedge_core::CoreError::BlockchainMismatch { .. }
    ));

    // Punishment drains the escrow to the client.
    let client_before = w.chain.balance(w.publisher.address());
    let receipt = w
        .publisher
        .verify_all_and_punish(&outcome.responses)
        .unwrap()
        .expect("mismatch must trigger punishment");
    assert!(receipt.status.is_success());
    let status = Punishment::decode_status(
        &w.chain
            .view(w.punishment, &Punishment::status_calldata())
            .unwrap(),
    )
    .unwrap();
    assert_eq!(status, PunishmentStatus::Punished);
    assert_eq!(w.chain.balance(w.punishment), Wei::ZERO);
    let gained = w
        .chain
        .balance(w.publisher.address())
        .checked_add(receipt.fee)
        .unwrap()
        .checked_sub(client_before)
        .unwrap();
    assert_eq!(gained, ESCROW);
}

#[test]
fn tampering_node_is_detected_at_stage1() {
    let mut w = world("tamper", NodeBehavior::TamperResponses { from_log: 0 }, 20);
    // The publisher's own verification catches the tampered leaf
    // immediately (the proof cannot reproduce the root for altered bytes).
    let err = w.publisher.append_batch(payloads(20, 128)).unwrap_err();
    assert!(matches!(
        err,
        wedge_core::CoreError::ProofInvalid { .. } | wedge_core::CoreError::LeafMismatch { .. }
    ));
}

#[test]
fn tampered_read_is_punishable_after_commit() {
    // Honest at append time; tampers on the READ path.
    let mut w = world(
        "tamper-read",
        NodeBehavior::TamperResponses { from_log: 1 },
        10,
    );
    // Log 0 is unaffected; publish a batch into it honestly.
    w.publisher.append_batch(payloads(10, 64)).unwrap();
    // Next batch lands in log 1, where reads tamper.
    let outcome = w.publisher.append_batch(payloads(10, 64));
    // Appends into log 1 already fail verification...
    assert!(outcome.is_err());
    w.node.wait_stage2_idle(Duration::from_secs(600)).unwrap();
    // ...and a read of log 1 yields a signed-but-invalid response which,
    // after stage 2 committed the honest root, is punishable evidence.
    let response = w
        .node
        .read(wedge_core::EntryId {
            log_id: 1,
            offset: 3,
        })
        .unwrap();
    assert!(response.verify(&w.node.public_key()).is_err());
    let receipt = w.publisher.punish(&response).unwrap();
    assert!(receipt.status.is_success());
    assert_eq!(
        Punishment::decode_invoke_result(&receipt.output),
        Some(true),
        "bogus proof must seize escrow"
    );
}

#[test]
fn omission_attack_leaves_positions_uncommitted() {
    let mut w = world("omit", NodeBehavior::OmitStage2 { from_log: 1 }, 10);
    let first = w.publisher.append_batch(payloads(10, 64)).unwrap();
    let second = w.publisher.append_batch(payloads(10, 64)).unwrap();
    w.node.wait_stage2_idle(Duration::from_secs(600)).unwrap();
    // Log 0 committed; log 1 never will be.
    assert_eq!(
        w.publisher
            .verify_blockchain_commit(&first.responses[0])
            .unwrap(),
        Stage2Verdict::Committed
    );
    assert_eq!(
        w.publisher
            .verify_blockchain_commit(&second.responses[0])
            .unwrap(),
        Stage2Verdict::NotYet
    );
    assert_eq!(w.node.commit_phase(1), CommitPhase::OffchainCommitted);
    // The wait-for-commit helper times out rather than hanging.
    let verdict = w
        .publisher
        .wait_blockchain_commit(&second.responses[0], Duration::from_secs(60))
        .unwrap();
    assert_eq!(verdict, Stage2Verdict::NotYet);
}

#[test]
fn node_recovers_state_after_restart() {
    let mut w = world("recover", NodeBehavior::Honest, 25);
    let data = payloads(50, 100);
    w.publisher.append_batch(data.clone()).unwrap();
    w.node.wait_stage2_idle(Duration::from_secs(600)).unwrap();
    let positions = w.node.log_positions();
    let publisher_addr = w.publisher.address();
    let dir = w.dir.clone();
    let identity = w.node_identity.clone();
    let chain = Arc::clone(&w.chain);
    let root_record = w.root_record;

    // Tear the node down (drops flush + join threads) and restart on the
    // same directory.
    drop(w.publisher);
    drop(w.reader);
    drop(w.auditor);
    drop(w.node);
    let node = Arc::new(
        OffchainNode::start(
            identity,
            NodeConfig {
                batch_size: 25,
                ..Default::default()
            },
            Arc::clone(&chain),
            root_record,
            &dir,
        )
        .expect("restart node"),
    );
    assert_eq!(node.log_positions(), positions);
    assert_eq!(node.entry_count(), 50);
    // Recovered entries still serve verified reads by sequence number.
    let reader = Reader::new(Arc::clone(&node), chain, root_record);
    let entry = reader.read_by_sequence(publisher_addr, 33).unwrap();
    assert_eq!(entry.request.payload, data[33]);
    assert_eq!(entry.phase, CommitPhase::BlockchainCommitted);
}

#[test]
fn multiple_publishers_interleave_safely() {
    // The concurrency property prior single-producer systems lack (paper
    // §1): many publishers share one log.
    let w = world("multi", NodeBehavior::Honest, 60);
    let mut publishers: Vec<Publisher> = (0..3)
        .map(|i| {
            let identity = Identity::from_seed(format!("pub-{i}").as_bytes());
            w.chain.fund(identity.address(), Wei::from_eth(10));
            Publisher::new(
                identity,
                Arc::clone(&w.node),
                Arc::clone(&w.chain),
                w.root_record,
                None,
            )
        })
        .collect();
    crossbeam::thread::scope(|scope| {
        for (i, publisher) in publishers.iter_mut().enumerate() {
            scope.spawn(move |_| {
                let data = (0..40)
                    .map(|j| format!("publisher-{i}-entry-{j}").into_bytes())
                    .collect();
                publisher.append_batch(data).unwrap()
            });
        }
    })
    .unwrap();
    assert_eq!(w.node.entry_count(), 120);
    w.node.wait_stage2_idle(Duration::from_secs(600)).unwrap();
    // Every publisher's entries are retrievable by sequence.
    for i in 0..3 {
        let identity = Identity::from_seed(format!("pub-{i}").as_bytes());
        let entry = w.reader.read_by_sequence(identity.address(), 39).unwrap();
        assert_eq!(
            entry.request.payload,
            format!("publisher-{i}-entry-39").into_bytes()
        );
    }
}

#[test]
fn bad_request_signatures_rejected_by_node() {
    let w = world("badsig", NodeBehavior::Honest, 10);
    // Hand-craft a request with a broken signature.
    let identity = Identity::from_seed(b"forger");
    let mut request = wedge_core::AppendRequest::new(identity.secret_key(), 0, b"x".to_vec());
    request.sequence = 1; // invalidates the signature
    let (tx, rx) = crossbeam::channel::unbounded();
    w.node.submit(request, tx).unwrap();
    let reply = rx.recv_timeout(Duration::from_secs(5)).unwrap();
    assert!(reply.is_err());
    assert_eq!(w.node.stats().requests_rejected, 1);
    assert_eq!(w.node.entry_count(), 0);
}

#[test]
fn destroy_tail_models_extreme_omission() {
    let mut w = world("destroy", NodeBehavior::Honest, 10);
    w.publisher.append_batch(payloads(30, 64)).unwrap();
    assert_eq!(w.node.entry_count(), 30);
    w.node.destroy_tail(10).unwrap();
    assert_eq!(w.node.entry_count(), 20);
    assert!(w
        .node
        .read(wedge_core::EntryId {
            log_id: 2,
            offset: 0
        })
        .is_err());
    // Earlier entries still verify at stage 1.
    let response = w
        .node
        .read(wedge_core::EntryId {
            log_id: 0,
            offset: 5,
        })
        .unwrap();
    response.verify(&w.node.public_key()).unwrap();
}

#[test]
fn stage2_resumes_after_crash_between_stages() {
    // Crash after stage 1 but before stage 2 commits, then restart: the
    // recovered node must finish the interrupted commitment on its own.
    let mut w = world("resume", NodeBehavior::OmitStage2 { from_log: 0 }, 10);
    let outcome = w.publisher.append_batch(payloads(20, 64)).unwrap();
    // The "crash": the omitting node never committed anything.
    assert_eq!(
        w.publisher
            .verify_blockchain_commit(&outcome.responses[0])
            .unwrap(),
        Stage2Verdict::NotYet
    );
    let dir = w.dir.clone();
    let identity = w.node_identity.clone();
    let chain = Arc::clone(&w.chain);
    let root_record = w.root_record;
    drop(w.publisher);
    drop(w.reader);
    drop(w.auditor);
    drop(w.node);

    // Restart HONEST on the same data; startup resync must queue both
    // recovered positions for stage 2.
    let node = Arc::new(
        OffchainNode::start(
            identity,
            NodeConfig {
                batch_size: 10,
                ..Default::default()
            },
            Arc::clone(&chain),
            root_record,
            &dir,
        )
        .unwrap(),
    );
    node.wait_stage2_idle(Duration::from_secs(600)).unwrap();
    assert_eq!(node.commit_phase(0), CommitPhase::BlockchainCommitted);
    assert_eq!(node.commit_phase(1), CommitPhase::BlockchainCommitted);
    // And the original stage-1 responses now verify on-chain.
    let reader = Reader::new(Arc::clone(&node), Arc::clone(&chain), root_record);
    let entry = reader.read(outcome.responses[5].entry_id).unwrap();
    assert_eq!(entry.phase, CommitPhase::BlockchainCommitted);
}

#[test]
fn restart_does_not_recommit_already_committed_positions() {
    // A restarted honest node must not re-submit roots the contract already
    // holds (the contract would revert the non-sequential write).
    let mut w = world("norecommit", NodeBehavior::Honest, 10);
    w.publisher.append_batch(payloads(20, 64)).unwrap();
    w.node.wait_stage2_idle(Duration::from_secs(600)).unwrap();
    let submitted_before = w.node.stats().stage2_txs_submitted;
    assert!(submitted_before >= 1);
    let dir = w.dir.clone();
    let identity = w.node_identity.clone();
    let chain = Arc::clone(&w.chain);
    let root_record = w.root_record;
    drop(w.publisher);
    drop(w.reader);
    drop(w.auditor);
    drop(w.node);
    let node = Arc::new(
        OffchainNode::start(
            identity,
            NodeConfig {
                batch_size: 10,
                ..Default::default()
            },
            Arc::clone(&chain),
            root_record,
            &dir,
        )
        .unwrap(),
    );
    node.wait_stage2_idle(Duration::from_secs(600)).unwrap();
    let stats = node.stats();
    assert_eq!(stats.stage2_txs_submitted, 0, "nothing to re-commit");
    assert_eq!(stats.stage2_failed, 0);
    assert_eq!(node.commit_phase(0), CommitPhase::BlockchainCommitted);
    assert_eq!(node.commit_phase(1), CommitPhase::BlockchainCommitted);
}

#[test]
fn reader_root_cache_eliminates_repeat_lookups() {
    let mut w = world("rootcache", NodeBehavior::Honest, 25);
    w.publisher.append_batch(payloads(50, 64)).unwrap();
    w.node.wait_stage2_idle(Duration::from_secs(600)).unwrap();
    let reader = Reader::new(Arc::clone(&w.node), Arc::clone(&w.chain), w.root_record);
    // 50 reads across 2 log positions: at most 2 chain lookups (write-once
    // digests are cacheable forever).
    for i in 0..50u32 {
        let id = wedge_core::EntryId {
            log_id: (i / 25) as u64,
            offset: i % 25,
        };
        let entry = reader.read(id).unwrap();
        assert_eq!(entry.phase, CommitPhase::BlockchainCommitted);
    }
    assert_eq!(reader.chain_lookups(), 2, "one lookup per log position");
}

#[test]
fn receipt_store_sweeps_and_survives_restart() {
    let w = world("receipts", NodeBehavior::Honest, 20);
    let receipt_dir =
        std::env::temp_dir().join(format!("wedge-pub-receipts-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&receipt_dir);
    let client = Identity::from_seed(b"client-receipts");
    let mut publisher = Publisher::new(
        client.clone(),
        Arc::clone(&w.node),
        Arc::clone(&w.chain),
        w.root_record,
        Some(w.punishment),
    )
    .with_receipt_store(&receipt_dir)
    .unwrap();
    publisher.append_batch(payloads(40, 64)).unwrap();
    assert_eq!(publisher.receipt_store().unwrap().len(), 40);
    assert_eq!(publisher.receipt_store().unwrap().pending_count(), 40);
    w.node.wait_stage2_idle(Duration::from_secs(600)).unwrap();

    // Sweep verifies everything.
    let sweep = publisher.verify_pending().unwrap();
    assert_eq!(sweep.verified, 40);
    assert!(sweep.punished.is_none());
    assert_eq!(publisher.receipt_store().unwrap().pending_count(), 0);

    // A restarted publisher resumes sequence numbering past its receipts.
    drop(publisher);
    let publisher2 = Publisher::new(
        client,
        Arc::clone(&w.node),
        Arc::clone(&w.chain),
        w.root_record,
        Some(w.punishment),
    )
    .with_receipt_store(&receipt_dir)
    .unwrap();
    // Receipts 0..40 verified; pending() is empty, but starting sequence
    // must still not collide (watermark-verified receipts are spent).
    assert_eq!(publisher2.receipt_store().unwrap().len(), 40);
    let sweep = publisher2.verify_pending().unwrap();
    assert_eq!(sweep.verified, 0);
    assert_eq!(sweep.still_pending, 0);
}

#[test]
fn receipt_sweep_punishes_equivocation_found_after_restart() {
    let w = world(
        "receipts-evil",
        NodeBehavior::CommitWrongRoot { from_log: 0 },
        20,
    );
    let receipt_dir =
        std::env::temp_dir().join(format!("wedge-pub-receipts-evil-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&receipt_dir);
    let client = Identity::from_seed(b"client-receipts-evil");
    {
        let mut publisher = Publisher::new(
            client.clone(),
            Arc::clone(&w.node),
            Arc::clone(&w.chain),
            w.root_record,
            Some(w.punishment),
        )
        .with_receipt_store(&receipt_dir)
        .unwrap();
        publisher.append_batch(payloads(20, 64)).unwrap();
        // Publisher process "crashes" here, before verifying stage 2.
    }
    w.node.wait_stage2_idle(Duration::from_secs(600)).unwrap();
    // A fresh publisher process recovers its receipts from disk and the
    // sweep converts one into a successful punishment.
    let publisher = Publisher::new(
        client,
        Arc::clone(&w.node),
        Arc::clone(&w.chain),
        w.root_record,
        Some(w.punishment),
    )
    .with_receipt_store(&receipt_dir)
    .unwrap();
    let sweep = publisher.verify_pending().unwrap();
    let receipt = sweep
        .punished
        .expect("equivocation punished from recovered evidence");
    assert!(receipt.status.is_success());
    assert_eq!(w.chain.balance(w.punishment), Wei::ZERO);
}
