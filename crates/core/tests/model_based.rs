//! Model-based testing: a long random sequence of appends, reads,
//! sequence-lookups, audits and node restarts is executed against the real
//! system AND an in-memory reference model; after every step the two must
//! agree.
//!
//! This is the "many small correct steps compose" check that unit tests
//! can't give: restarts interleave with appends, reads hit every region of
//! the log, and verified phases must be monotone (an entry seen
//! blockchain-committed can never regress).

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use wedge_chain::{Chain, ChainConfig, Wei};
use wedge_core::{
    deploy_service, CommitPhase, EntryId, NodeConfig, OffchainNode, Publisher, Reader,
    ServiceConfig,
};
use wedge_crypto::signer::Identity;
use wedge_sim::Clock;

/// The reference model: what the log must contain.
#[derive(Default)]
struct Model {
    /// All payloads in append order (global entry order).
    entries: Vec<Vec<u8>>,
    /// `(publisher_idx, sequence)` → global entry index.
    by_sequence: HashMap<(usize, u64), usize>,
    /// Next sequence per publisher.
    next_seq: Vec<u64>,
}

const BATCH: usize = 16;

fn entry_id_for(global: usize) -> EntryId {
    EntryId {
        log_id: (global / BATCH) as u64,
        offset: (global % BATCH) as u32,
    }
}

#[test]
fn random_workload_agrees_with_model() {
    let mut rng = SmallRng::seed_from_u64(0xC0FFEE);
    let clock = Clock::compressed(2000.0);
    let chain = Chain::new(clock, ChainConfig::default());
    let node_id = Identity::from_seed(b"model-node");
    chain.fund(node_id.address(), Wei::from_eth(10_000));
    let _miner = chain.start_miner();

    let publishers: Vec<Identity> = (0..3)
        .map(|i| Identity::from_seed(format!("model-pub-{i}").as_bytes()))
        .collect();
    for p in &publishers {
        chain.fund(p.address(), Wei::from_eth(10));
    }
    let deployment = deploy_service(
        &chain,
        &node_id,
        publishers[0].address(),
        &ServiceConfig {
            escrow: Wei::from_eth(1),
            payment_terms: None,
        },
    )
    .unwrap();
    let dir = std::env::temp_dir().join(format!("wedge-model-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let config = || NodeConfig {
        batch_size: BATCH,
        batch_linger: Duration::from_millis(5),
        ..Default::default()
    };
    let mut node = Arc::new(
        OffchainNode::start(
            node_id.clone(),
            config(),
            Arc::clone(&chain),
            deployment.root_record,
            &dir,
        )
        .unwrap(),
    );

    let mut model = Model {
        next_seq: vec![0; publishers.len()],
        ..Default::default()
    };

    for step in 0..60 {
        match rng.gen_range(0..100) {
            // ---- append a full batch from a random publisher (70%).
            0..=69 => {
                let who = rng.gen_range(0..publishers.len());
                let payloads: Vec<Vec<u8>> = (0..BATCH)
                    .map(|i| format!("step{step}-p{who}-e{i}-{}", rng.gen::<u32>()).into_bytes())
                    .collect();
                let mut publisher = Publisher::new(
                    publishers[who].clone(),
                    Arc::clone(&node),
                    Arc::clone(&chain),
                    deployment.root_record,
                    None,
                )
                .with_starting_sequence(model.next_seq[who]);
                let outcome = publisher.append_batch(payloads.clone()).unwrap();
                assert_eq!(outcome.responses.len(), BATCH, "step {step}");
                for payload in payloads {
                    let global = model.entries.len();
                    model.by_sequence.insert((who, model.next_seq[who]), global);
                    model.next_seq[who] += 1;
                    model.entries.push(payload);
                }
            }
            // ---- random verified read by entry id (15%).
            70..=84 => {
                if model.entries.is_empty() {
                    continue;
                }
                node.wait_stage2_idle(Duration::from_secs(600)).unwrap();
                let reader = Reader::new(
                    Arc::clone(&node),
                    Arc::clone(&chain),
                    deployment.root_record,
                );
                let global = rng.gen_range(0..model.entries.len());
                let entry = reader.read(entry_id_for(global)).unwrap();
                assert_eq!(
                    entry.request.payload, model.entries[global],
                    "step {step}: entry {global} diverged"
                );
                assert_eq!(entry.phase, CommitPhase::BlockchainCommitted);
            }
            // ---- random read by (publisher, sequence) (10%).
            85..=94 => {
                if model.by_sequence.is_empty() {
                    continue;
                }
                let reader = Reader::new(
                    Arc::clone(&node),
                    Arc::clone(&chain),
                    deployment.root_record,
                );
                let (&(who, seq), &global) = model
                    .by_sequence
                    .iter()
                    .nth(rng.gen_range(0..model.by_sequence.len()))
                    .unwrap();
                let entry = reader
                    .read_lazy_by_sequence(publishers[who].address(), seq)
                    .unwrap();
                assert_eq!(entry.request.payload, model.entries[global], "step {step}");
            }
            // ---- restart the node (5%).
            _ => {
                node.wait_stage2_idle(Duration::from_secs(600)).unwrap();
                drop(node);
                node = Arc::new(
                    OffchainNode::start(
                        node_id.clone(),
                        config(),
                        Arc::clone(&chain),
                        deployment.root_record,
                        &dir,
                    )
                    .unwrap(),
                );
                assert_eq!(
                    node.entry_count(),
                    model.entries.len() as u64,
                    "step {step}: restart lost entries"
                );
            }
        }
        // Global invariants after every step.
        assert_eq!(node.entry_count(), model.entries.len() as u64);
        assert_eq!(node.log_positions(), (model.entries.len() / BATCH) as u64);
    }

    // Final sweep: every model entry is served verbatim and verified.
    node.wait_stage2_idle(Duration::from_secs(600)).unwrap();
    let reader = Reader::new(
        Arc::clone(&node),
        Arc::clone(&chain),
        deployment.root_record,
    );
    for (global, payload) in model.entries.iter().enumerate() {
        let entry = reader.read(entry_id_for(global)).unwrap();
        assert_eq!(&entry.request.payload, payload);
    }
}
