//! Stage-2 fault-tolerance tests: injected chain failures (dropped
//! submissions, forced reverts, hidden receipts) during sustained ingestion
//! must never silently lose a flushed commitment — every position reaches
//! `CommitPhase::BlockchainCommitted` exactly once short of retry
//! exhaustion.

use std::sync::Arc;
use std::time::Duration;

use wedge_chain::{Chain, ChainConfig, Wei};
use wedge_contracts::RootRecord;
use wedge_core::{
    deploy_service, CommitPhase, NodeBehavior, NodeConfig, OffchainNode, Publisher, ServiceConfig,
    Stage2RetryPolicy,
};
use wedge_crypto::signer::Identity;
use wedge_sim::Clock;

struct World {
    chain: Arc<Chain>,
    node: Arc<OffchainNode>,
    node_identity: Identity,
    publisher: Publisher,
    root_record: wedge_chain::Address,
    _miner: wedge_chain::MinerHandle,
    dir: std::path::PathBuf,
}

fn retry_policy() -> Stage2RetryPolicy {
    Stage2RetryPolicy {
        max_attempts: 8,
        base_backoff: Duration::from_secs(1),
        max_backoff: Duration::from_secs(15),
        jitter: 0.2,
    }
}

fn node_config(batch_size: usize) -> NodeConfig {
    NodeConfig {
        batch_size,
        batch_linger: Duration::from_millis(5),
        stage2_max_group: 4,
        stage2_retry: retry_policy(),
        ..Default::default()
    }
}

fn world(tag: &str, chain_config: ChainConfig, config: NodeConfig) -> World {
    // 2000x compression: 13 s blocks every 6.5 ms of wall time.
    let clock = Clock::compressed(2000.0);
    let chain = Chain::new(clock, chain_config);
    let node_identity = Identity::from_seed(format!("s2f-node-{tag}").as_bytes());
    let client_identity = Identity::from_seed(format!("s2f-client-{tag}").as_bytes());
    chain.fund(node_identity.address(), Wei::from_eth(1000));
    chain.fund(client_identity.address(), Wei::from_eth(1000));
    let miner = chain.start_miner();
    let deployment = deploy_service(
        &chain,
        &node_identity,
        client_identity.address(),
        &ServiceConfig {
            escrow: Wei::from_eth(32),
            payment_terms: None,
        },
    )
    .expect("deploy contracts");
    let dir = std::env::temp_dir().join(format!("wedge-s2f-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let node = Arc::new(
        OffchainNode::start(
            node_identity.clone(),
            config,
            Arc::clone(&chain),
            deployment.root_record,
            &dir,
        )
        .expect("start node"),
    );
    let publisher = Publisher::new(
        client_identity,
        Arc::clone(&node),
        Arc::clone(&chain),
        deployment.root_record,
        Some(deployment.punishment),
    );
    World {
        chain,
        node,
        node_identity,
        publisher,
        root_record: deployment.root_record,
        _miner: miner,
        dir,
    }
}

fn payloads(n: usize) -> Vec<Vec<u8>> {
    (0..n).map(|i| format!("entry-{i}").into_bytes()).collect()
}

fn onchain_tail(chain: &Chain, root_record: wedge_chain::Address) -> u64 {
    let out = chain
        .view(root_record, &RootRecord::get_tail_calldata())
        .expect("tail view");
    RootRecord::decode_tail(&out).expect("tail decode")
}

/// Asserts every flushed position is blockchain-committed exactly once:
/// present in the node's commit map, and covered by the on-chain tail (the
/// contract's single-write invariant rules out a second landing).
fn assert_all_committed_exactly_once(
    chain: &Chain,
    node: &OffchainNode,
    root_record: wedge_chain::Address,
) {
    let positions = node.log_positions();
    assert!(positions > 0, "test ingested nothing");
    assert_eq!(
        onchain_tail(chain, root_record),
        positions,
        "on-chain tail must cover every flushed position"
    );
    for log_id in 0..positions {
        assert_eq!(
            node.commit_phase(log_id),
            CommitPhase::BlockchainCommitted,
            "position {log_id} lost"
        );
        assert!(node.commit_info(log_id).is_some());
    }
    let stats = node.stats();
    assert_eq!(
        stats.stage2_committed, positions,
        "each position committed exactly once"
    );
    assert_eq!(stats.stage2_failed, 0, "no commitment abandoned");
}

/// The PR's acceptance scenario: N consecutive chain failures (submission
/// drops and forced reverts) during sustained ingestion. All flushed
/// positions must still land, each exactly once, with `stage2_retries > 0`
/// and `stage2_failed == 0`.
#[test]
fn consecutive_chain_failures_never_lose_commitments() {
    let mut w = world("sustained", ChainConfig::default(), node_config(10));
    // Round 1: 2 dropped submissions, then 2 forced reverts, while the
    // publisher keeps ingesting.
    w.chain.faults().drop_next_submissions(2);
    w.chain.faults().revert_next_calls(2);
    w.publisher.append_batch(payloads(40)).expect("round 1");
    // Round 2: more faults arrive mid-stream, more ingestion on top.
    w.chain.faults().drop_next_submissions(1);
    w.publisher.append_batch(payloads(30)).expect("round 2");
    w.node
        .wait_stage2_idle(Duration::from_secs(3600))
        .expect("all positions must eventually commit");
    assert_all_committed_exactly_once(&w.chain, &w.node, w.root_record);
    let stats = w.node.stats();
    assert!(
        stats.stage2_retries > 0,
        "faults fired, so retries must have happened: {stats:?}"
    );
    assert!(stats.stage2_requeued > 0);
    assert!(stats.stage2_submission_errors >= 3);
    assert!(stats.stage2_reverts >= 1);
    assert!(
        !stats.stage2_backoff_hist.is_empty() && stats.stage2_backoff_hist[0] > 0,
        "backoff histogram records first-retry waits: {:?}",
        stats.stage2_backoff_hist
    );
    // Every armed fault actually fired.
    assert_eq!(w.chain.faults().submissions_dropped(), 3);
    assert_eq!(w.chain.faults().calls_reverted(), 2);
    let _ = std::fs::remove_dir_all(&w.dir);
}

/// A receipt hidden past the patience window looks like a timeout while the
/// transaction in fact landed. The committer must reconcile against the
/// on-chain tail and skip the landed positions instead of re-sending them.
#[test]
fn timed_out_but_landed_group_is_reconciled_not_resent() {
    let chain_config = ChainConfig {
        // Short patience so the hidden receipt turns into a timeout quickly.
        receipt_timeout: Duration::from_secs(60),
        ..Default::default()
    };
    let mut w = world("timeout", chain_config, node_config(10));
    // Hide the first Update-Records receipt for 4 simulated minutes.
    w.chain
        .faults()
        .delay_next_receipts(1, Duration::from_secs(240));
    w.publisher.append_batch(payloads(10)).expect("append");
    w.node
        .wait_stage2_idle(Duration::from_secs(3600))
        .expect("the landed group must be reconciled");
    assert_all_committed_exactly_once(&w.chain, &w.node, w.root_record);
    let stats = w.node.stats();
    assert!(stats.stage2_timeouts >= 1, "{stats:?}");
    assert_eq!(
        stats.stage2_txs_submitted, 1,
        "the landed transaction must not be re-sent"
    );
    let _ = std::fs::remove_dir_all(&w.dir);
}

/// Restart recovery under faults: the node crashes between stage 1 and
/// stage 2 (modelled via the omission behaviour), restarts honest, and the
/// chain reverts its first re-submission. Every recovered position must
/// still land on-chain exactly once.
#[test]
fn restart_recovery_survives_reverted_resubmission() {
    let w = world(
        "recovery",
        ChainConfig::default(),
        NodeConfig {
            behavior: NodeBehavior::OmitStage2 { from_log: 0 },
            ..node_config(10)
        },
    );
    let World {
        chain,
        node,
        node_identity,
        publisher,
        root_record,
        _miner,
        dir,
    } = w;
    let mut publisher = publisher;
    publisher.append_batch(payloads(30)).expect("append");
    let flushed = node.log_positions();
    assert_eq!(flushed, 3);
    assert_eq!(onchain_tail(&chain, root_record), 0, "nothing committed");
    // "Crash" between stage 1 and stage 2.
    drop(node);
    drop(publisher);
    // Restart honest, with the chain reverting the first re-submission.
    chain.faults().revert_next_calls(1);
    let node = Arc::new(
        OffchainNode::start(
            node_identity.clone(),
            node_config(10),
            Arc::clone(&chain),
            root_record,
            &dir,
        )
        .expect("restart node"),
    );
    assert_eq!(node.log_positions(), flushed, "state recovered");
    node.wait_stage2_idle(Duration::from_secs(3600))
        .expect("recovered positions must commit despite the revert");
    assert_eq!(onchain_tail(&chain, root_record), flushed);
    let stats = node.stats();
    assert_eq!(stats.stage2_failed, 0);
    assert!(stats.stage2_retries >= 1, "{stats:?}");
    assert_eq!(
        stats.stage2_committed, flushed,
        "each recovered position lands exactly once"
    );
    for log_id in 0..flushed {
        assert_eq!(node.commit_phase(log_id), CommitPhase::BlockchainCommitted);
    }
    assert_eq!(chain.faults().calls_reverted(), 1);
    let _ = std::fs::remove_dir_all(&dir);
}

/// `stage2_failed` now means "retries exhausted", not "first attempt
/// unlucky": only a fault burst longer than the whole retry budget loses
/// the group, and the loss is visible in the stats.
#[test]
fn exhausted_retries_are_counted_as_failed() {
    let config = NodeConfig {
        stage2_retry: Stage2RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::from_millis(500),
            max_backoff: Duration::from_secs(2),
            jitter: 0.0,
        },
        ..node_config(10)
    };
    let mut w = world("exhaust", ChainConfig::default(), config);
    // More drops than the retry budget can absorb.
    w.chain.faults().drop_next_submissions(1_000);
    w.publisher.append_batch(payloads(10)).expect("append");
    assert!(
        w.node.wait_stage2_idle(Duration::from_secs(300)).is_err(),
        "the position can never commit"
    );
    // Give the committer time to burn through its attempts.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(20);
    while w.node.stats().stage2_failed == 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    let stats = w.node.stats();
    assert_eq!(stats.stage2_failed, 1, "{stats:?}");
    assert_eq!(stats.stage2_committed, 0);
    assert_eq!(
        stats.stage2_retries, 2,
        "3 attempts = 1 initial + 2 retries: {stats:?}"
    );
    w.chain.faults().clear();
    let _ = std::fs::remove_dir_all(&w.dir);
}
