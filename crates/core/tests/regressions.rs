//! Regression tests for PR 2's satellite bugfixes.

use std::sync::Arc;
use std::time::Duration;

use wedge_chain::{Chain, ChainConfig, Wei};
use wedge_core::{deploy_service, NodeConfig, OffchainNode, Publisher, ServiceConfig};
use wedge_crypto::signer::Identity;
use wedge_sim::Clock;

struct World {
    chain: Arc<Chain>,
    node: Arc<OffchainNode>,
    client_identity: Identity,
    root_record: wedge_chain::Address,
    _miner: wedge_chain::MinerHandle,
    dir: std::path::PathBuf,
}

fn world(tag: &str, batch_size: usize) -> World {
    let clock = Clock::compressed(2000.0);
    let chain = Chain::new(clock, ChainConfig::default());
    let node_identity = Identity::from_seed(format!("regr-node-{tag}").as_bytes());
    let client_identity = Identity::from_seed(format!("regr-client-{tag}").as_bytes());
    chain.fund(node_identity.address(), Wei::from_eth(1000));
    chain.fund(client_identity.address(), Wei::from_eth(1000));
    let miner = chain.start_miner();
    let deployment = deploy_service(
        &chain,
        &node_identity,
        client_identity.address(),
        &ServiceConfig {
            escrow: Wei::from_eth(32),
            payment_terms: None,
        },
    )
    .expect("deploy contracts");
    let dir = std::env::temp_dir().join(format!("wedge-regr-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let node = Arc::new(
        OffchainNode::start(
            node_identity,
            NodeConfig {
                batch_size,
                batch_linger: Duration::from_millis(5),
                ..Default::default()
            },
            Arc::clone(&chain),
            deployment.root_record,
            &dir,
        )
        .expect("start node"),
    );
    World {
        chain,
        node,
        client_identity,
        root_record: deployment.root_record,
        _miner: miner,
        dir,
    }
}

fn publisher(w: &World) -> Publisher {
    Publisher::new(
        w.client_identity.clone(),
        Arc::clone(&w.node),
        Arc::clone(&w.chain),
        w.root_record,
        None,
    )
}

fn payloads(n: usize) -> Vec<Vec<u8>> {
    (0..n).map(|i| format!("entry-{i}").into_bytes()).collect()
}

/// Regression: `scan_range`'s bounds check computed `start + count` with
/// wrapping u32 arithmetic, so `start = u32::MAX, count = 2` wrapped to 1
/// and sailed past validation straight into the store.
#[test]
fn scan_range_rejects_overflowing_bounds() {
    let w = world("scan-overflow", 8);
    let mut p = publisher(&w);
    p.append_batch(payloads(8)).expect("append");
    // Sanity: the honest scan works.
    let (leaves, proof, root) = w.node.scan_range(0, 2, 4).expect("honest scan");
    assert_eq!(leaves.len(), 4);
    proof.verify(&leaves, &root).expect("proof verifies");
    // The wrapping inputs must be rejected, not served.
    assert!(w.node.scan_range(0, u32::MAX, 2).is_err());
    assert!(w.node.scan_range(0, u32::MAX, u32::MAX).is_err());
    assert!(w.node.scan_range(0, 2, u32::MAX).is_err());
    // Zero-length scans stay rejected too.
    assert!(w.node.scan_range(0, 0, 0).is_err());
    drop(p);
    w.node.wait_stage2_idle(Duration::from_secs(3600)).unwrap();
    let _ = std::fs::remove_dir_all(&w.dir);
}

/// Regression: a publisher restarting after *all* its receipts were
/// verified resumed sequence numbering from the (empty) pending set —
/// i.e. at 0 — and collided with its own already-logged entries.
#[test]
fn publisher_restart_after_full_verify_resumes_sequence() {
    let w = world("pub-restart", 10);
    let receipts_dir = w.dir.join("publisher-receipts");
    let mut p = publisher(&w)
        .with_receipt_store(&receipts_dir)
        .expect("receipt store");
    p.append_batch(payloads(20)).expect("append");
    w.node
        .wait_stage2_idle(Duration::from_secs(3600))
        .expect("stage 2 commits");
    // Verify every stored receipt so the pending set drains completely.
    let sweep = p.verify_pending().expect("sweep");
    assert_eq!(sweep.verified, 20);
    assert_eq!(sweep.still_pending, 0);
    assert_eq!(p.receipt_store().unwrap().pending_count(), 0);
    drop(p);
    // Restart: the publisher must resume *after* its own logged entries.
    let mut p = publisher(&w)
        .with_receipt_store(&receipts_dir)
        .expect("reopen receipt store");
    assert_eq!(
        p.next_sequence(),
        20,
        "restart after full verify must not reuse sequences"
    );
    // And the resumed stream must not collide: new sequences read back as
    // the new entries.
    p.append_batch(payloads(5)).expect("append after restart");
    let resp = w
        .node
        .read_by_sequence(p.address(), 20)
        .expect("sequence 20 exists exactly once");
    assert_eq!(resp.request().unwrap().payload, b"entry-0".to_vec());
    assert_eq!(p.next_sequence(), 25);
    let _ = std::fs::remove_dir_all(&w.dir);
}
