//! # wedge-core
//!
//! The WedgeBlock system itself (paper §3–4): the **Lazy-Minimum Trust**
//! secure logging protocol.
//!
//! - [`node::OffchainNode`] — batched stage-1 ingestion (Merkle tree +
//!   local persistence + signed responses), asynchronous stage-2 digest
//!   commitment to the Root Record contract, verified reads/audits, and
//!   injectable malicious behaviours for adversarial testing.
//! - [`client::Publisher`] / [`client::Reader`] / [`client::Auditor`] — the
//!   three client roles of §4.2, including stage-2 verification and the
//!   punishment trigger.
//! - [`service`] — the DApp-logging-as-a-service deployment glue (§4.5).
//!
//! The safety definitions 3.1 and 3.2 are exercised end-to-end by the
//! workspace integration tests (`tests/` at the repository root).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod client;
pub mod config;
pub mod error;
pub mod node;
pub mod service;
pub mod types;
mod util;

pub use api::LogService;
pub use client::{
    AppendOutcome, AuditReport, Auditor, Evidence, EvidenceKind, PendingSweep, Publisher, Reader,
    ReceiptStore, Stage2Verdict, VerifiedEntry,
};
pub use config::{NodeBehavior, NodeConfig, Stage2Mode, Stage2RetryPolicy, TierConfig};
pub use error::CoreError;
pub use node::{NodeStats, OffchainNode};
pub use service::{deploy_service, ServiceConfig, ServiceDeployment, Subscription};
pub use types::{
    AppendRequest, CommitPhase, EntryId, EpochCommit, ShardGroup, SignedResponse, Stage2Record,
};
pub use util::parallel_map;
