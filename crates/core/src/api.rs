//! The transport-agnostic logging-service interface (paper §3.1).
//!
//! [`LogService`] is the surface the three client roles program against. It
//! is implemented by [`crate::node::OffchainNode`] for in-process use and by
//! `wedge_net::RemoteNode` for TCP access, so a `Publisher`, `Reader` or
//! `Auditor` works identically against a local node or one across the
//! network.

use wedge_crypto::hash::Hash32;
use wedge_crypto::keys::Address;
use wedge_crypto::PublicKey;
use wedge_merkle::RangeProof;

use crate::error::CoreError;
use crate::node::{OffchainNode, ReplyFn};
use crate::types::{AppendRequest, EntryId, EpochCommit, ShardGroup, SignedResponse};

/// The WedgeBlock logging service: append (stage-1 commit) plus the read
/// and audit paths.
pub trait LogService: Send + Sync {
    /// The serving node's public key, for response verification.
    fn node_public_key(&self) -> PublicKey;

    /// Submits one append request; `reply` fires when the containing batch
    /// flushes (off-chain commitment).
    fn submit_request(&self, request: AppendRequest, reply: ReplyFn) -> Result<(), CoreError>;

    /// Pushes any buffered submissions toward the node. In-process services
    /// deliver immediately, so the default is a no-op; buffered network
    /// transports override it to flush their write buffers. Callers that
    /// submit a burst of requests should flush once after the burst.
    fn flush(&self) {}

    /// Reads one entry as a freshly signed response.
    fn read_entry(&self, id: EntryId) -> Result<SignedResponse, CoreError>;

    /// Reads a group of entries in one operation (paper §4.2). The default
    /// loops over [`LogService::read_entry`]; network transports override it
    /// with a single round trip.
    fn read_entries(&self, ids: &[EntryId]) -> Vec<Result<SignedResponse, CoreError>> {
        ids.iter().map(|id| self.read_entry(*id)).collect()
    }

    /// Looks an entry up by `(publisher, sequence)`.
    fn read_entry_by_sequence(
        &self,
        publisher: Address,
        sequence: u64,
    ) -> Result<SignedResponse, CoreError>;

    /// Reads every entry of one log position.
    fn read_position(&self, log_id: u64) -> Result<Vec<SignedResponse>, CoreError>;

    /// Number of entries in one log position, if it exists.
    fn position_len(&self, log_id: u64) -> Option<u32>;

    /// Range scan with a single multiproof (audit fast path).
    fn scan(
        &self,
        log_id: u64,
        start: u32,
        count: u32,
    ) -> Result<(Vec<Vec<u8>>, RangeProof, Hash32), CoreError>;

    /// Number of flushed log positions.
    fn positions(&self) -> u64;

    /// Total entries stored.
    fn entries(&self) -> u64;

    /// One-call metadata read: `(positions, entries, position_len(log_id))`.
    /// The default composes the individual accessors (three reads that may
    /// straddle a flush); implementations override it to serve all three
    /// from one consistent snapshot, or one network round trip.
    fn meta(&self, log_id: u64) -> (u64, u64, Option<u32>) {
        (self.positions(), self.entries(), self.position_len(log_id))
    }

    /// Cluster epoch collection: the shard's pending batch-root group (see
    /// [`crate::Stage2Mode::Epoch`]). The default rejects — only shard
    /// nodes (and transports fronting them) participate in epochs.
    fn epoch_report(&self, max_group: usize) -> Result<ShardGroup, CoreError> {
        let _ = max_group;
        Err(CoreError::RequestRejected(
            "epoch coordination unsupported by this service",
        ))
    }

    /// Cluster epoch acknowledgement: marks the reported group as covered
    /// by a confirmed root-of-roots transaction, returning the number of
    /// newly committed positions. The default rejects.
    fn epoch_commit(&self, commit: EpochCommit) -> Result<u64, CoreError> {
        let _ = commit;
        Err(CoreError::RequestRejected(
            "epoch coordination unsupported by this service",
        ))
    }
}

impl LogService for OffchainNode {
    fn node_public_key(&self) -> PublicKey {
        self.public_key()
    }
    fn submit_request(&self, request: AppendRequest, reply: ReplyFn) -> Result<(), CoreError> {
        self.submit_with(request, reply)
    }
    fn read_entry(&self, id: EntryId) -> Result<SignedResponse, CoreError> {
        self.read(id)
    }
    fn read_entries(&self, ids: &[EntryId]) -> Vec<Result<SignedResponse, CoreError>> {
        // One snapshot for the whole group (not the default per-entry loop).
        self.read_many(ids)
    }
    fn read_entry_by_sequence(
        &self,
        publisher: Address,
        sequence: u64,
    ) -> Result<SignedResponse, CoreError> {
        self.read_by_sequence(publisher, sequence)
    }
    fn read_position(&self, log_id: u64) -> Result<Vec<SignedResponse>, CoreError> {
        self.read_log_position(log_id)
    }
    fn position_len(&self, log_id: u64) -> Option<u32> {
        self.read_log_position_len(log_id)
    }
    fn scan(
        &self,
        log_id: u64,
        start: u32,
        count: u32,
    ) -> Result<(Vec<Vec<u8>>, RangeProof, Hash32), CoreError> {
        self.scan_range(log_id, start, count)
    }
    fn positions(&self) -> u64 {
        self.log_positions()
    }
    fn entries(&self) -> u64 {
        self.entry_count()
    }
    fn meta(&self, log_id: u64) -> (u64, u64, Option<u32>) {
        // All three values from one snapshot.
        self.meta(log_id)
    }
    fn epoch_report(&self, max_group: usize) -> Result<ShardGroup, CoreError> {
        self.epoch_report(max_group)
    }
    fn epoch_commit(&self, commit: EpochCommit) -> Result<u64, CoreError> {
        self.epoch_commit(commit)
    }
}
