//! DApp-logging-as-a-service deployment glue (paper §4.5).
//!
//! Bundles the three-contract setup the paper describes: the Offchain Node
//! deploys the Root Record, Punishment (with escrow), and Payment contracts,
//! the client deposits and starts the subscription, and both sides interact
//! through the [`ServiceDeployment`] handle.

use std::sync::Arc;

use wedge_chain::{Address, Chain, Gas, Wei};
use wedge_contracts::{Payment, PaymentStatus, PaymentTerms, Punishment, RootRecord};
use wedge_crypto::signer::Identity;

use crate::error::CoreError;

/// Addresses of a full WedgeBlock service deployment.
#[derive(Clone, Copy, Debug)]
pub struct ServiceDeployment {
    /// The Root Record contract.
    pub root_record: Address,
    /// The Punishment contract (holding the node's escrow).
    pub punishment: Address,
    /// The Payment contract (subscription stream), if service mode is on.
    pub payment: Option<Address>,
}

/// Parameters for a service deployment.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Escrow the node locks in the Punishment contract. Must be large
    /// enough to outweigh any gain from lying (paper §3.3).
    pub escrow: Wei,
    /// Payment terms; `None` disables the logging-as-a-service contract.
    pub payment_terms: Option<PaymentTerms>,
}

/// Deploys the contract suite as the Offchain Node (the initialization step
/// of §3.4). Mines happen via the chain's miner; this call submits the
/// deploys and waits for their receipts.
pub fn deploy_service(
    chain: &Arc<Chain>,
    node: &Identity,
    client: Address,
    config: &ServiceConfig,
) -> Result<ServiceDeployment, CoreError> {
    let (root_record, tx1) = chain.deploy(
        node.secret_key(),
        Box::new(RootRecord::new(node.address())),
        Wei::ZERO,
        RootRecord::CODE_LEN,
    )?;
    let (punishment, tx2) = chain.deploy(
        node.secret_key(),
        Box::new(Punishment::new(client, node.address(), root_record)),
        config.escrow,
        Punishment::CODE_LEN,
    )?;
    let payment = match &config.payment_terms {
        Some(terms) => {
            let (addr, tx3) = chain.deploy(
                node.secret_key(),
                Box::new(Payment::new(*terms)),
                Wei::ZERO,
                Payment::CODE_LEN,
            )?;
            chain.wait_for_receipt(tx3)?;
            Some(addr)
        }
        None => None,
    };
    chain.wait_for_receipt(tx1)?;
    chain.wait_for_receipt(tx2)?;
    Ok(ServiceDeployment {
        root_record,
        punishment,
        payment,
    })
}

/// Client-side subscription handle for the Payment contract.
pub struct Subscription {
    chain: Arc<Chain>,
    client: Identity,
    payment: Address,
}

impl Subscription {
    /// Wraps an existing Payment contract.
    pub fn new(chain: Arc<Chain>, client: Identity, payment: Address) -> Subscription {
        Subscription {
            chain,
            client,
            payment,
        }
    }

    /// Deposits `amount` and starts the payment stream ("After verifying the
    /// Offchain Node has completed Stage 2 Commitment, the Client node
    /// deposits ... and invokes the startPayment method").
    pub fn deposit_and_start(&self, amount: Wei) -> Result<(), CoreError> {
        let tx = self
            .chain
            .transfer(self.client.secret_key(), self.payment, amount)?;
        self.chain.wait_for_receipt(tx)?;
        let tx = self.chain.call_contract(
            self.client.secret_key(),
            self.payment,
            Wei::ZERO,
            Payment::start_payment_calldata(),
            Gas(300_000),
        )?;
        let receipt = self.chain.wait_for_receipt(tx)?;
        if !receipt.status.is_success() {
            return Err(CoreError::RequestRejected("startPayment reverted"));
        }
        Ok(())
    }

    /// Tops the deposit up.
    pub fn top_up(&self, amount: Wei) -> Result<(), CoreError> {
        let tx = self
            .chain
            .transfer(self.client.secret_key(), self.payment, amount)?;
        self.chain.wait_for_receipt(tx)?;
        Ok(())
    }

    /// Triggers `updatePaymentStatus` (anyone may; typically driven by the
    /// node or a keeper).
    pub fn update_status(&self) -> Result<(), CoreError> {
        let tx = self.chain.call_contract(
            self.client.secret_key(),
            self.payment,
            Wei::ZERO,
            Payment::update_status_calldata(),
            Gas(500_000),
        )?;
        self.chain.wait_for_receipt(tx)?;
        Ok(())
    }

    /// Ends the subscription, settling both sides.
    pub fn terminate(&self) -> Result<(), CoreError> {
        let tx = self.chain.call_contract(
            self.client.secret_key(),
            self.payment,
            Wei::ZERO,
            Payment::terminate_calldata(),
            Gas(500_000),
        )?;
        let receipt = self.chain.wait_for_receipt(tx)?;
        if !receipt.status.is_success() {
            return Err(CoreError::RequestRejected("terminate reverted"));
        }
        Ok(())
    }

    /// Reads the contract's status snapshot.
    pub fn status(&self) -> Result<PaymentStatus, CoreError> {
        let out = self.chain.view(self.payment, &Payment::status_calldata())?;
        Payment::decode_status(&out).ok_or(CoreError::RequestRejected("malformed payment status"))
    }
}

/// Node-side withdrawal of earned service fees.
pub fn withdraw_earnings(
    chain: &Arc<Chain>,
    node: &Identity,
    payment: Address,
) -> Result<Wei, CoreError> {
    let before = chain.balance(node.address());
    let tx = chain.call_contract(
        node.secret_key(),
        payment,
        Wei::ZERO,
        Payment::withdraw_edge_calldata(),
        Gas(500_000),
    )?;
    let receipt = chain.wait_for_receipt(tx)?;
    if !receipt.status.is_success() {
        return Err(CoreError::RequestRejected("withdrawal reverted"));
    }
    let after = chain.balance(node.address());
    Ok(after
        .checked_add(receipt.fee)
        .and_then(|w| w.checked_sub(before))
        .unwrap_or(Wei::ZERO))
}
