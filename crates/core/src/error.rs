//! Error type for the WedgeBlock protocol layer.

use std::fmt;

use wedge_chain::{ChainError, DecodeError};
use wedge_crypto::keys::Address;
use wedge_storage::StorageError;

use crate::types::EntryId;

/// Errors from node and client protocol operations.
#[derive(Debug)]
pub enum CoreError {
    /// A publisher's request signature failed verification.
    BadRequestSignature {
        /// Claimed publisher.
        publisher: Address,
    },
    /// The node's response signature failed verification.
    BadResponseSignature {
        /// Entry the response was for.
        entry_id: EntryId,
    },
    /// A response's proof index disagreed with its claimed entry id.
    ProofPositionMismatch {
        /// Claimed entry id.
        entry_id: EntryId,
        /// Index the proof actually proves.
        proof_index: u64,
    },
    /// A response's Merkle proof did not reproduce its root.
    ProofInvalid {
        /// Entry the response was for.
        entry_id: EntryId,
    },
    /// A response's leaf differs from the request the client sent.
    LeafMismatch {
        /// Entry the response was for.
        entry_id: EntryId,
    },
    /// The requested entry does not exist.
    EntryNotFound(EntryId),
    /// No entry recorded for `(publisher, sequence)`.
    SequenceNotFound {
        /// Publisher address.
        publisher: Address,
        /// Requested sequence number.
        sequence: u64,
    },
    /// The node rejected an append (e.g. signature verification on).
    RequestRejected(&'static str),
    /// The node is shutting down.
    NodeStopped,
    /// An error reported by a remote node over the network transport.
    Remote(String),
    /// On-chain digest disagrees with the signed response — the malicious
    /// case the client should punish.
    BlockchainMismatch {
        /// Entry whose verification failed.
        entry_id: EntryId,
    },
    /// Stage 2 has not yet committed this log position.
    NotYetBlockchainCommitted {
        /// The log position.
        log_id: u64,
    },
    /// Wrapped storage failure.
    Storage(StorageError),
    /// Wrapped chain failure.
    Chain(ChainError),
    /// Wrapped decoding failure.
    Decode(DecodeError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::BadRequestSignature { publisher } => {
                write!(f, "invalid request signature from {publisher}")
            }
            CoreError::BadResponseSignature { entry_id } => {
                write!(f, "invalid node signature on response for {entry_id}")
            }
            CoreError::ProofPositionMismatch {
                entry_id,
                proof_index,
            } => write!(
                f,
                "proof position {proof_index} does not match entry {entry_id}"
            ),
            CoreError::ProofInvalid { entry_id } => {
                write!(f, "merkle proof invalid for {entry_id}")
            }
            CoreError::LeafMismatch { entry_id } => {
                write!(
                    f,
                    "response leaf differs from the submitted request for {entry_id}"
                )
            }
            CoreError::EntryNotFound(id) => write!(f, "entry {id} not found"),
            CoreError::SequenceNotFound {
                publisher,
                sequence,
            } => {
                write!(f, "no entry for publisher {publisher} sequence {sequence}")
            }
            CoreError::RequestRejected(why) => write!(f, "request rejected: {why}"),
            CoreError::NodeStopped => write!(f, "offchain node has stopped"),
            CoreError::Remote(message) => write!(f, "remote node error: {message}"),
            CoreError::BlockchainMismatch { entry_id } => write!(
                f,
                "on-chain digest mismatch for {entry_id}: offchain node lied (punishable)"
            ),
            CoreError::NotYetBlockchainCommitted { log_id } => {
                write!(f, "log position {log_id} not yet blockchain-committed")
            }
            CoreError::Storage(e) => write!(f, "storage: {e}"),
            CoreError::Chain(e) => write!(f, "chain: {e}"),
            CoreError::Decode(e) => write!(f, "decode: {e}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Storage(e) => Some(e),
            CoreError::Chain(e) => Some(e),
            CoreError::Decode(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StorageError> for CoreError {
    fn from(e: StorageError) -> Self {
        CoreError::Storage(e)
    }
}

impl From<ChainError> for CoreError {
    fn from(e: ChainError) -> Self {
        CoreError::Chain(e)
    }
}

impl From<DecodeError> for CoreError {
    fn from(e: DecodeError) -> Self {
        CoreError::Decode(e)
    }
}
