//! Small concurrency utilities.

/// Applies `f` to every element of `items` across at most `threads` scoped
/// workers (clamped to the machine's parallelism by [`wedge_pool`]),
/// preserving order. Falls back to inline execution for tiny inputs.
///
/// This is the parallel-ECDSA pattern of the paper's prototype ("executed
/// concurrently using all available CPU cores", §5). A worker panic is
/// re-raised on the calling thread.
pub fn parallel_map<T, U, F>(items: &[T], threads: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    wedge_pool::WorkPool::new(threads).map(items, f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<u32> = (0..1000).collect();
        let doubled = parallel_map(&items, 8, |x| x * 2);
        assert_eq!(doubled, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_and_tiny_inputs() {
        assert_eq!(parallel_map(&[1, 2, 3], 1, |x| x + 1), vec![2, 3, 4]);
        assert_eq!(
            parallel_map::<u32, u32, _>(&[], 8, |x| *x),
            Vec::<u32>::new()
        );
        assert_eq!(parallel_map(&[7], 8, |x| x * x), vec![49]);
    }
}
