//! Small concurrency utilities.

/// Applies `f` to every element of `items` across `threads` scoped workers,
/// preserving order. Falls back to inline execution for tiny inputs.
///
/// This is the parallel-ECDSA pattern of the paper's prototype ("executed
/// concurrently using all available CPU cores", §5).
pub fn parallel_map<T, U, F>(items: &[T], threads: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    if threads <= 1 || items.len() < 4 {
        return items.iter().map(&f).collect();
    }
    let chunk = items.len().div_ceil(threads);
    let mut out: Vec<Option<U>> = Vec::with_capacity(items.len());
    out.resize_with(items.len(), || None);
    crossbeam::thread::scope(|scope| {
        for (input, output) in items.chunks(chunk).zip(out.chunks_mut(chunk)) {
            let f = &f;
            scope.spawn(move |_| {
                for (item, slot) in input.iter().zip(output.iter_mut()) {
                    *slot = Some(f(item));
                }
            });
        }
    })
    // lint: allow(panic) — re-raises a worker thread's panic on the caller
    .expect("parallel_map worker panicked");
    out.into_iter()
        // lint: allow(panic) — every slot is zipped 1:1 with an input chunk
        .map(|v| v.expect("all slots filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<u32> = (0..1000).collect();
        let doubled = parallel_map(&items, 8, |x| x * 2);
        assert_eq!(doubled, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_and_tiny_inputs() {
        assert_eq!(parallel_map(&[1, 2, 3], 1, |x| x + 1), vec![2, 3, 4]);
        assert_eq!(
            parallel_map::<u32, u32, _>(&[], 8, |x| *x),
            Vec::<u32>::new()
        );
        assert_eq!(parallel_map(&[7], 8, |x| x * x), vec![49]);
    }
}
