//! Client roles (paper §4.2): [`Publisher`], [`Reader`] (the paper's User),
//! and [`Auditor`].

mod auditor;
mod publisher;
mod reader;
mod receipts;

pub use auditor::{AuditReport, Auditor, Evidence, EvidenceKind};
pub use publisher::{AppendOutcome, PendingSweep, Publisher, Stage2Verdict};
pub use reader::{Reader, VerifiedEntry};
pub use receipts::ReceiptStore;
