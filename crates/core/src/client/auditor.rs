//! The Auditor role (paper §4.2): scans a range of log entries and verifies
//! every one of them, separating read time from verification time (the
//! Figure 9 measurement).

use std::sync::Arc;
use std::time::{Duration, Instant};

use wedge_chain::{Address, Chain};
use wedge_contracts::RootRecord;
use wedge_crypto::hash::Hash32;
use wedge_crypto::secp256k1::AffineTable;
use wedge_crypto::PublicKey;

use crate::api::LogService;
use crate::error::CoreError;
use crate::types::EntryId;

/// Outcome of one audit scan.
#[derive(Clone, Debug, Default)]
pub struct AuditReport {
    /// Entries read and verified.
    pub entries_checked: usize,
    /// Entries whose verification failed (with the failing id).
    pub failures: Vec<EntryId>,
    /// Total wall time of the audit.
    pub total_time: Duration,
    /// Wall time spent verifying (signature + proof + publisher signature).
    pub verify_time: Duration,
}

/// Court-admissible evidence of a lying node, as gathered by
/// [`Auditor::find_evidence`]: a signed response that the Punishment
/// contract will accept.
#[derive(Clone, Debug)]
pub struct Evidence {
    /// The inconsistent signed response.
    pub response: crate::types::SignedResponse,
    /// Why it is punishable.
    pub kind: EvidenceKind,
}

/// The two punishable inconsistencies of Algorithm 2.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EvidenceKind {
    /// The signed root differs from the blockchain-committed root.
    RootMismatch,
    /// The signed proof does not reproduce the signed root.
    BogusProof,
}

impl AuditReport {
    /// True when every audited entry verified.
    pub fn is_clean(&self) -> bool {
        self.failures.is_empty()
    }

    /// Fraction of total time spent in verification (paper reports ~42%).
    pub fn verify_fraction(&self) -> f64 {
        if self.total_time.is_zero() {
            return 0.0;
        }
        self.verify_time.as_secs_f64() / self.total_time.as_secs_f64()
    }
}

/// An auditor client bound to one Offchain Node.
pub struct Auditor {
    service: Arc<dyn LogService>,
    node_public: PublicKey,
    /// Precomputed odd-multiples table for the node key: built once at
    /// construction so every audited response shares it instead of
    /// rebuilding the table per signature.
    node_table: AffineTable,
    chain: Arc<Chain>,
    root_record: Address,
}

impl Auditor {
    /// Creates an auditor.
    pub fn new(
        service: Arc<impl LogService + 'static>,
        chain: Arc<Chain>,
        root_record: Address,
    ) -> Auditor {
        let service: Arc<dyn LogService> = service;
        let node_public = service.node_public_key();
        let node_table = AffineTable::new(node_public.point());
        Auditor {
            service,
            node_public,
            node_table,
            chain,
            root_record,
        }
    }

    /// Fetches the on-chain digest for a log position (one view call per
    /// position; the auditor caches it across the position's entries).
    fn onchain_root(&self, log_id: u64) -> Result<Option<Hash32>, CoreError> {
        let out = self
            .chain
            .view(self.root_record, &RootRecord::get_root_calldata(log_id))?;
        Ok(RootRecord::decode_root(&out))
    }

    /// Audits `entry_budget` entries starting at log position `from_log`,
    /// reading whole positions at a time and verifying every response
    /// against the blockchain-committed digest.
    pub fn audit(&self, from_log: u64, entry_budget: usize) -> Result<AuditReport, CoreError> {
        let started = Instant::now();
        let mut report = AuditReport::default();
        let mut log_id = from_log;
        let positions = self.service.positions();
        while report.entries_checked < entry_budget && log_id < positions {
            let responses = self.service.read_position(log_id)?;
            let onchain = self.onchain_root(log_id)?;
            let verify_started = Instant::now();
            for response in &responses {
                if report.entries_checked >= entry_budget {
                    break;
                }
                let ok = response.verify_with_table(&self.node_table).is_ok()
                    && response
                        .request()
                        .map(|r| r.verify().is_ok())
                        .unwrap_or(false)
                    && onchain == Some(response.merkle_root);
                if !ok {
                    report.failures.push(response.entry_id);
                }
                report.entries_checked += 1;
            }
            report.verify_time += verify_started.elapsed();
            log_id += 1;
        }
        report.total_time = started.elapsed();
        Ok(report)
    }

    /// Scans log positions `[from_log, to_log)` hunting for *punishable*
    /// inconsistencies, returning the first piece of evidence found.
    ///
    /// This is the watchdog loop a third-party auditing service would run:
    /// read signed responses, compare against the Root Record, and keep the
    /// signed response whenever the node's own signature convicts it. The
    /// returned [`Evidence::response`] can be handed directly to
    /// [`crate::client::Publisher::punish`] (or any client with a
    /// punishment contract).
    pub fn find_evidence(&self, from_log: u64, to_log: u64) -> Result<Option<Evidence>, CoreError> {
        let positions = self.service.positions().min(to_log);
        for log_id in from_log..positions {
            let onchain = self.onchain_root(log_id)?;
            let Some(onchain_root) = onchain else {
                // Not yet committed: nothing adjudicable at this position.
                continue;
            };
            for response in self.service.read_position(log_id)? {
                // Only node-signed responses are evidence; skip anything
                // whose signature does not even recover to a valid signer.
                let digest = response.digest();
                let Ok(signer) = wedge_crypto::recover_prehashed(&digest, &response.signature)
                else {
                    continue;
                };
                if signer != self.node_public {
                    continue;
                }
                if response.merkle_root != onchain_root {
                    return Ok(Some(Evidence {
                        response,
                        kind: EvidenceKind::RootMismatch,
                    }));
                }
                if response
                    .proof
                    .verify(&response.leaf, &response.merkle_root)
                    .is_err()
                {
                    return Ok(Some(Evidence {
                        response,
                        kind: EvidenceKind::BogusProof,
                    }));
                }
            }
        }
        Ok(None)
    }

    /// Extension: audits a range using the node's [`wedge_merkle::RangeProof`] scan API —
    /// one proof per log position instead of one per entry. Dramatically
    /// cheaper verification; the ablation benchmark compares both.
    pub fn audit_with_range_proofs(
        &self,
        from_log: u64,
        entry_budget: usize,
    ) -> Result<AuditReport, CoreError> {
        let started = Instant::now();
        let mut report = AuditReport::default();
        let mut log_id = from_log;
        let positions = self.service.positions();
        while report.entries_checked < entry_budget && log_id < positions {
            let count = self
                .service
                .position_len(log_id)
                .ok_or(CoreError::EntryNotFound(EntryId { log_id, offset: 0 }))?;
            let take = count.min((entry_budget - report.entries_checked) as u32);
            let (leaves, proof, root) = self.service.scan(log_id, 0, take)?;
            let onchain = self.onchain_root(log_id)?;
            let verify_started = Instant::now();
            let proof_ok = proof.verify(&leaves, &root).is_ok() && onchain == Some(root);
            for (offset, leaf) in leaves.iter().enumerate() {
                let publisher_ok = crate::types::AppendRequest::from_leaf_bytes(leaf)
                    .map(|r| r.verify().is_ok())
                    .unwrap_or(false);
                if !(proof_ok && publisher_ok) {
                    report.failures.push(EntryId {
                        log_id,
                        offset: offset as u32,
                    });
                }
                report.entries_checked += 1;
            }
            report.verify_time += verify_started.elapsed();
            log_id += 1;
        }
        report.total_time = started.elapsed();
        Ok(report)
    }
}
