//! Durable client-side storage for signed responses.
//!
//! A stage-1 response is only as good as the client's ability to present it
//! later: if the node equivocates, the *response is the evidence* (paper
//! §3.2). A publisher that discards responses after reading them forfeits
//! its ability to punish. [`ReceiptStore`] persists every response and
//! tracks a verification watermark, so `verify_pending` can sweep exactly
//! the responses whose stage-2 outcome is still unknown — across process
//! restarts.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use wedge_storage::{LogStore, StoreConfig};

use crate::error::CoreError;
use crate::types::SignedResponse;

/// Append-only persistence for a client's signed responses.
pub struct ReceiptStore {
    store: LogStore,
    /// Responses `< watermark` are stage-2-verified (or punished).
    watermark: AtomicU64,
    watermark_path: PathBuf,
}

impl ReceiptStore {
    /// Opens (or creates) a receipt store under `dir`, recovering the
    /// verification watermark.
    pub fn open(dir: impl AsRef<Path>) -> Result<ReceiptStore, CoreError> {
        let dir = dir.as_ref();
        let store = LogStore::open(dir.join("receipts"), StoreConfig::default())?;
        let watermark_path = dir.join("verified.watermark");
        let watermark = std::fs::read(&watermark_path)
            .ok()
            .and_then(|bytes| bytes.try_into().ok().map(u64::from_be_bytes))
            .unwrap_or(0)
            // A stale watermark beyond the store length (e.g. after manual
            // deletion of receipts) clamps down.
            .min(store.len());
        Ok(ReceiptStore {
            store,
            watermark: AtomicU64::new(watermark),
            watermark_path,
        })
    }

    /// Persists one response; returns its receipt id.
    pub fn save(&self, response: &SignedResponse) -> Result<u64, CoreError> {
        Ok(self.store.append(&response.to_bytes())?)
    }

    /// Persists a batch of responses (one fsync window).
    pub fn save_all(&self, responses: &[SignedResponse]) -> Result<(), CoreError> {
        let encoded: Vec<Vec<u8>> = responses.iter().map(|r| r.to_bytes()).collect();
        if !encoded.is_empty() {
            self.store.append_batch(&encoded)?;
        }
        Ok(())
    }

    /// Responses saved.
    pub fn len(&self) -> u64 {
        self.store.len()
    }

    /// True when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }

    /// Responses not yet confirmed blockchain-committed.
    pub fn pending(&self) -> Result<Vec<SignedResponse>, CoreError> {
        let from = self.watermark.load(Ordering::Acquire);
        let mut out = Vec::with_capacity((self.store.len() - from) as usize);
        for id in from..self.store.len() {
            out.push(SignedResponse::from_bytes(&self.store.read(id)?)?);
        }
        Ok(out)
    }

    /// The newest stored response, if any — verified or not. A restarting
    /// publisher resumes sequence numbering after it; resuming from the
    /// *pending* set alone would restart at 0 once every receipt has been
    /// verified and collide with the publisher's own logged entries.
    pub fn last(&self) -> Result<Option<SignedResponse>, CoreError> {
        let Some(id) = self.store.len().checked_sub(1) else {
            return Ok(None);
        };
        Ok(Some(SignedResponse::from_bytes(&self.store.read(id)?)?))
    }

    /// Count of unverified responses.
    pub fn pending_count(&self) -> u64 {
        self.store.len() - self.watermark.load(Ordering::Acquire)
    }

    /// Advances the verification watermark to `up_to` (exclusive) and
    /// persists it.
    pub fn mark_verified(&self, up_to: u64) -> Result<(), CoreError> {
        let clamped = up_to.min(self.store.len());
        self.watermark.store(clamped, Ordering::Release);
        std::fs::write(&self.watermark_path, clamped.to_be_bytes())
            .map_err(wedge_storage::StorageError::from)?;
        Ok(())
    }

    /// The current watermark.
    pub fn verified_watermark(&self) -> u64 {
        self.watermark.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{AppendRequest, EntryId};
    use wedge_crypto::Keypair;
    use wedge_merkle::MerkleTree;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("wedge-receipts-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn response(i: u64) -> SignedResponse {
        let node = Keypair::from_seed(b"receipt-node");
        let publisher = Keypair::from_seed(b"receipt-pub");
        let request = AppendRequest::new(&publisher.secret, i, format!("r{i}").into_bytes());
        let leaves = vec![request.leaf_bytes()];
        let tree = MerkleTree::from_leaves(&leaves).unwrap();
        SignedResponse::sign(
            &node.secret,
            EntryId {
                log_id: i,
                offset: 0,
            },
            tree.root(),
            tree.prove(0).unwrap(),
            leaves[0].clone(),
        )
    }

    #[test]
    fn save_pending_verify_cycle() {
        let dir = scratch("cycle");
        let store = ReceiptStore::open(&dir).unwrap();
        let responses: Vec<SignedResponse> = (0..5).map(response).collect();
        store.save_all(&responses).unwrap();
        assert_eq!(store.len(), 5);
        assert_eq!(store.pending_count(), 5);
        // Verify the first three.
        store.mark_verified(3).unwrap();
        let pending = store.pending().unwrap();
        assert_eq!(pending.len(), 2);
        assert_eq!(pending[0].entry_id.log_id, 3);
    }

    #[test]
    fn watermark_survives_restart() {
        let dir = scratch("restart");
        {
            let store = ReceiptStore::open(&dir).unwrap();
            store
                .save_all(&(0..4).map(response).collect::<Vec<_>>())
                .unwrap();
            store.mark_verified(2).unwrap();
        }
        let store = ReceiptStore::open(&dir).unwrap();
        assert_eq!(store.len(), 4);
        assert_eq!(store.verified_watermark(), 2);
        assert_eq!(store.pending_count(), 2);
        // Recovered responses still carry valid signatures.
        let node = Keypair::from_seed(b"receipt-node");
        for pending in store.pending().unwrap() {
            pending.verify(&node.public).unwrap();
        }
    }

    #[test]
    fn watermark_clamps_to_store() {
        let dir = scratch("clamp");
        let store = ReceiptStore::open(&dir).unwrap();
        store.save(&response(0)).unwrap();
        store.mark_verified(99).unwrap();
        assert_eq!(store.verified_watermark(), 1);
        assert_eq!(store.pending_count(), 0);
    }
}
