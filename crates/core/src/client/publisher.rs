//! The Publisher role (paper §4.2): signs append requests, collects and
//! verifies stage-1 responses, later verifies stage-2 commitment against the
//! Root Record contract, and invokes the Punishment contract on any
//! inconsistency (links #1, #4 and #5 of Figure 2).

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::unbounded;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use wedge_chain::{Address, Chain, Gas, Receipt, Wei};
use wedge_contracts::{Punishment, RootRecord};
use wedge_crypto::signer::Identity;
use wedge_crypto::PublicKey;

use crate::api::LogService;
use crate::error::CoreError;
use crate::types::{AppendRequest, SignedResponse};
use crate::util::parallel_map;

/// Stage-2 verification verdict for one response.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Stage2Verdict {
    /// The on-chain digest matches the signed response.
    Committed,
    /// No digest on-chain yet for this log position.
    NotYet,
    /// On-chain digest differs from the signed root — provable malice.
    Mismatch,
}

/// Latency breakdown of one publisher append batch (the Figure 4/6
/// measurements).
#[derive(Clone, Debug)]
pub struct AppendOutcome {
    /// Verified stage-1 responses, in request order.
    pub responses: Vec<SignedResponse>,
    /// Wall time until the first response arrived ("First operation
    /// delay").
    pub first_response: Duration,
    /// Wall time until the last response arrived ("Last operation delay").
    pub last_response: Duration,
    /// Wall time until all responses were received *and verified*
    /// ("Stage 1 commitment delay").
    pub stage1_commit: Duration,
}

/// A publisher client bound to one Offchain Node.
pub struct Publisher {
    identity: Identity,
    service: Arc<dyn LogService>,
    node_public: PublicKey,
    chain: Arc<Chain>,
    root_record: Address,
    punishment: Option<Address>,
    next_sequence: u64,
    /// Worker threads for parallel signing/verification.
    worker_threads: usize,
    rng: SmallRng,
    /// Simulated request-network delay (one message per append batch).
    request_latency: wedge_sim::LatencyModel,
    /// Optional durable store for issued responses (punishment evidence).
    receipts: Option<super::receipts::ReceiptStore>,
}

/// Result of a [`Publisher::verify_pending`] sweep.
#[derive(Debug, Default)]
pub struct PendingSweep {
    /// Receipts newly confirmed blockchain-committed.
    pub verified: usize,
    /// Receipts whose positions are not yet committed.
    pub still_pending: usize,
    /// Set when a mismatch was found and punished.
    pub punished: Option<Receipt>,
}

impl Publisher {
    /// Creates a publisher talking to `node`, verifying against
    /// `root_record`, and (optionally) armed with a Punishment contract.
    pub fn new(
        identity: Identity,
        service: Arc<impl LogService + 'static>,
        chain: Arc<Chain>,
        root_record: Address,
        punishment: Option<Address>,
    ) -> Publisher {
        let service: Arc<dyn LogService> = service;
        let node_public = service.node_public_key();
        Publisher {
            identity,
            service,
            node_public,
            chain,
            root_record,
            punishment,
            next_sequence: 0,
            worker_threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            rng: SmallRng::seed_from_u64(0x7075_626c_6973_6865),
            request_latency: wedge_sim::LatencyModel::Zero,
            receipts: None,
        }
    }

    /// Overrides the simulated request-link latency.
    pub fn with_request_latency(mut self, model: wedge_sim::LatencyModel) -> Publisher {
        self.request_latency = model;
        self
    }

    /// Starts sequence numbering at `sequence` — required when a publisher
    /// restarts and must not collide with its own already-logged entries.
    pub fn with_starting_sequence(mut self, sequence: u64) -> Publisher {
        self.next_sequence = sequence;
        self
    }

    /// Attaches a durable [`super::receipts::ReceiptStore`]: every stage-1
    /// response is persisted, and [`Publisher::verify_pending`] sweeps
    /// unverified ones against the chain — across restarts. The response
    /// *is* the punishment evidence, so a careful publisher never holds it
    /// only in memory.
    pub fn with_receipt_store(
        mut self,
        dir: impl AsRef<std::path::Path>,
    ) -> Result<Publisher, CoreError> {
        let store = super::receipts::ReceiptStore::open(dir)?;
        // Resume sequence numbering after the newest stored receipt —
        // *not* the newest pending one: after a restart with every receipt
        // already verified, the pending set is empty and resuming from it
        // would restart at sequence 0, colliding with the publisher's own
        // logged entries. The store length covers even receipts whose
        // request bytes no longer decode.
        let resume = store
            .last()
            .ok()
            .flatten()
            .and_then(|r| r.request().ok().map(|q| q.sequence + 1))
            .unwrap_or(0)
            .max(store.len())
            .max(self.next_sequence);
        self.next_sequence = resume;
        self.receipts = Some(store);
        Ok(self)
    }

    /// The attached receipt store, if any.
    pub fn receipt_store(&self) -> Option<&super::receipts::ReceiptStore> {
        self.receipts.as_ref()
    }

    /// Sweeps all unverified stored receipts: committed ones advance the
    /// watermark; the first mismatch triggers punishment (AoN — further
    /// sweeping is pointless once the escrow is seized). Returns a summary.
    pub fn verify_pending(&self) -> Result<PendingSweep, CoreError> {
        let store = self
            .receipts
            .as_ref()
            .ok_or(CoreError::RequestRejected("no receipt store attached"))?;
        let base = store.verified_watermark();
        let pending = store.pending()?;
        let mut sweep = PendingSweep::default();
        for (i, response) in pending.iter().enumerate() {
            match self.verify_blockchain_commit(response)? {
                Stage2Verdict::Committed => {
                    sweep.verified += 1;
                    store.mark_verified(base + i as u64 + 1)?;
                }
                Stage2Verdict::NotYet => {
                    sweep.still_pending = pending.len() - i;
                    break; // later positions commit strictly after this one
                }
                Stage2Verdict::Mismatch => {
                    let receipt = self.punish(response)?;
                    sweep.punished = Some(receipt);
                    store.mark_verified(base + i as u64 + 1)?;
                    break;
                }
            }
        }
        Ok(sweep)
    }

    /// The publisher's address.
    pub fn address(&self) -> Address {
        self.identity.address()
    }

    /// The next sequence number this publisher will assign.
    pub fn next_sequence(&self) -> u64 {
        self.next_sequence
    }

    /// Appends a list of payloads: signs each as an [`AppendRequest`] with a
    /// fresh sequence number, submits them as one message, then collects and
    /// verifies every response (completing stage-1 commitment).
    pub fn append_batch(&mut self, payloads: Vec<Vec<u8>>) -> Result<AppendOutcome, CoreError> {
        if payloads.is_empty() {
            return Ok(AppendOutcome {
                responses: Vec::new(),
                first_response: Duration::ZERO,
                last_response: Duration::ZERO,
                stage1_commit: Duration::ZERO,
            });
        }
        let n = payloads.len();
        let first_seq = self.next_sequence;
        self.next_sequence += n as u64;
        // Sign requests in parallel (paper: ECDSA across all cores).
        let key = *self.identity.secret_key();
        let numbered: Vec<(u64, Vec<u8>)> = (first_seq..).zip(payloads).collect();
        let requests: Vec<AppendRequest> =
            parallel_map(&numbered, self.worker_threads, |(seq, payload)| {
                AppendRequest::new(&key, *seq, payload.clone())
            });
        let by_sequence: HashMap<u64, &AppendRequest> =
            requests.iter().map(|r| (r.sequence, r)).collect();

        let started = Instant::now();
        // One message to the node; the link delay applies once.
        let total_bytes: usize = requests.iter().map(|r| r.payload.len()).sum();
        let delay = self.request_latency.sample(&mut self.rng, total_bytes);
        if !delay.is_zero() {
            std::thread::sleep(delay);
        }
        let (reply_tx, reply_rx) = unbounded();
        for request in &requests {
            let tx = reply_tx.clone();
            self.service.submit_request(
                request.clone(),
                Box::new(move |outcome| {
                    let _ = tx.send(outcome);
                }),
            )?;
        }
        drop(reply_tx);
        // Buffered transports hold append frames until flushed; one flush
        // for the whole burst keeps it a single socket write.
        self.service.flush();

        // Collect responses one by one, timing first and last arrivals.
        let mut responses = Vec::with_capacity(n);
        let mut first_response = Duration::ZERO;
        for i in 0..n {
            let reply = reply_rx
                .recv()
                .map_err(|_| CoreError::NodeStopped)?
                .map_err(|_| CoreError::RequestRejected("node rejected request"))?;
            if i == 0 {
                first_response = started.elapsed();
            }
            responses.push(reply);
        }
        let last_response = started.elapsed();

        // Verify all responses (parallel), matching each to its request.
        let node_public = self.node_public;
        let verdicts = parallel_map(&responses, self.worker_threads, |resp| {
            let req = match resp.request() {
                Ok(r) => r,
                Err(_) => return false,
            };
            by_sequence
                .get(&req.sequence)
                .map(|orig| resp.verify_for_request(&node_public, orig).is_ok())
                .unwrap_or(false)
        });
        if let Some(bad) = verdicts.iter().position(|ok| !ok) {
            return Err(CoreError::ProofInvalid {
                entry_id: responses[bad].entry_id,
            });
        }
        let stage1_commit = started.elapsed();
        // Return responses in request (sequence) order.
        responses.sort_by_key(|r| r.request().map(|q| q.sequence).unwrap_or(u64::MAX));
        // Persist the evidence before handing it out.
        if let Some(store) = &self.receipts {
            store.save_all(&responses)?;
        }
        Ok(AppendOutcome {
            responses,
            first_response,
            last_response,
            stage1_commit,
        })
    }

    /// Link #4 of Figure 2: checks a signed response against the Root
    /// Record contract.
    pub fn verify_blockchain_commit(
        &self,
        response: &SignedResponse,
    ) -> Result<Stage2Verdict, CoreError> {
        let out = self.chain.view(
            self.root_record,
            &RootRecord::get_root_calldata(response.entry_id.log_id),
        )?;
        Ok(match RootRecord::decode_root(&out) {
            None => Stage2Verdict::NotYet,
            Some(root) if root == response.merkle_root => Stage2Verdict::Committed,
            Some(_) => Stage2Verdict::Mismatch,
        })
    }

    /// Polls until the response's log position is blockchain-committed (or
    /// mismatched), up to `timeout` of simulated time.
    pub fn wait_blockchain_commit(
        &self,
        response: &SignedResponse,
        timeout: Duration,
    ) -> Result<Stage2Verdict, CoreError> {
        let clock = self.chain.clock().clone();
        let start = clock.now();
        loop {
            match self.verify_blockchain_commit(response)? {
                Stage2Verdict::NotYet => {}
                verdict => return Ok(verdict),
            }
            if clock.now().since(start) > timeout {
                return Ok(Stage2Verdict::NotYet);
            }
            clock.sleep(Duration::from_millis(500));
        }
    }

    /// Link #5 of Figure 2: submits the signed response to the Punishment
    /// contract. Returns the receipt; on a proven lie the escrow has been
    /// transferred to this client.
    pub fn punish(&self, response: &SignedResponse) -> Result<Receipt, CoreError> {
        let punishment = self.punishment.ok_or(CoreError::RequestRejected(
            "no punishment contract configured",
        ))?;
        let calldata = Punishment::invoke_calldata(
            response.entry_id.log_id,
            &response.merkle_root,
            &response.proof.to_bytes(),
            &response.leaf,
            &response.signature,
        );
        let hash = self.chain.call_contract(
            self.identity.secret_key(),
            punishment,
            Wei::ZERO,
            calldata,
            Gas(5_000_000),
        )?;
        Ok(self.chain.wait_for_receipt(hash)?)
    }

    /// Convenience: verify stage 2 for every response and punish the first
    /// mismatch found. Returns the punished entry's receipt, if any.
    pub fn verify_all_and_punish(
        &self,
        responses: &[SignedResponse],
    ) -> Result<Option<Receipt>, CoreError> {
        for response in responses {
            if self.verify_blockchain_commit(response)? == Stage2Verdict::Mismatch {
                return Ok(Some(self.punish(response)?));
            }
        }
        Ok(None)
    }
}
