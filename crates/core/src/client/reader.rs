//! The User (reader) role (paper §4.2, read requests): fetches entries from
//! the Offchain Node and verifies them — stage-1 trust from the node's
//! signature and proof, stage-2 trust by checking the Root Record contract.

use std::sync::Arc;

use wedge_chain::{Address, Chain};
use wedge_contracts::RootRecord;
use wedge_crypto::PublicKey;

use crate::api::LogService;
use crate::error::CoreError;
use crate::types::{AppendRequest, CommitPhase, EntryId, SignedResponse};

/// A verified read result.
#[derive(Clone, Debug)]
pub struct VerifiedEntry {
    /// Where the entry lives.
    pub entry_id: EntryId,
    /// The decoded original append request.
    pub request: AppendRequest,
    /// The trust level established for this read.
    pub phase: CommitPhase,
}

/// A reader client bound to one Offchain Node.
pub struct Reader {
    service: Arc<dyn LogService>,
    node_public: PublicKey,
    chain: Arc<Chain>,
    root_record: Address,
    /// Client-side cache of blockchain-committed digests. Sound because the
    /// Root Record contract writes each position at most once (Algorithm 1):
    /// a digest, once observed on-chain, can never change. Only committed
    /// (`Some`) results are cached.
    root_cache: parking_lot::Mutex<std::collections::HashMap<u64, wedge_crypto::Hash32>>,
    /// View calls actually issued (exposed for cache testing/metrics).
    chain_lookups: std::sync::atomic::AtomicU64,
}

impl Reader {
    /// Creates a reader.
    pub fn new(
        service: Arc<impl LogService + 'static>,
        chain: Arc<Chain>,
        root_record: Address,
    ) -> Reader {
        let service: Arc<dyn LogService> = service;
        let node_public = service.node_public_key();
        Reader {
            service,
            node_public,
            chain,
            root_record,
            root_cache: parking_lot::Mutex::new(std::collections::HashMap::new()),
            chain_lookups: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Number of on-chain lookups this reader has performed (cache misses).
    pub fn chain_lookups(&self) -> u64 {
        self.chain_lookups
            .load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Reads and stage-1-verifies one entry: node signature, proof position,
    /// proof-root consistency, and the embedded publisher signature.
    pub fn read(&self, id: EntryId) -> Result<VerifiedEntry, CoreError> {
        let response = self.service.read_entry(id)?;
        self.verify_response(&response)
    }

    /// Reads by `(publisher, sequence)`.
    pub fn read_by_sequence(
        &self,
        publisher: Address,
        sequence: u64,
    ) -> Result<VerifiedEntry, CoreError> {
        let response = self.service.read_entry_by_sequence(publisher, sequence)?;
        self.verify_response(&response)
    }

    /// Reads a group of entries in one operation (one round trip on
    /// networked transports).
    pub fn read_many(&self, ids: &[EntryId]) -> Vec<Result<VerifiedEntry, CoreError>> {
        self.service
            .read_entries(ids)
            .into_iter()
            .map(|r| r.and_then(|resp| self.verify_response(&resp)))
            .collect()
    }

    /// Full verification of a response, upgrading to
    /// [`CommitPhase::BlockchainCommitted`] when the Root Record digest
    /// matches (Definition 3.2 trust).
    pub fn verify_response(&self, response: &SignedResponse) -> Result<VerifiedEntry, CoreError> {
        response.verify(&self.node_public)?;
        let request = response.request()?;
        request.verify()?;
        let phase = self.onchain_phase(response)?;
        if phase == CommitPhase::Pending {
            // Recorded digest exists but differs: the node lied. Surface it
            // as the punishable condition rather than a silent downgrade.
            return Err(CoreError::BlockchainMismatch {
                entry_id: response.entry_id,
            });
        }
        Ok(VerifiedEntry {
            entry_id: response.entry_id,
            request,
            phase,
        })
    }

    /// Determines the on-chain phase of a response's log position, caching
    /// committed digests (write-once on-chain ⇒ cache never stales).
    fn onchain_phase(&self, response: &SignedResponse) -> Result<CommitPhase, CoreError> {
        let log_id = response.entry_id.log_id;
        let cached = self.root_cache.lock().get(&log_id).copied();
        let root = match cached {
            Some(root) => Some(root),
            None => {
                self.chain_lookups
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                let out = self
                    .chain
                    .view(self.root_record, &RootRecord::get_root_calldata(log_id))?;
                let root = RootRecord::decode_root(&out);
                if let Some(root) = root {
                    self.root_cache.lock().insert(log_id, root);
                }
                root
            }
        };
        Ok(match root {
            None => CommitPhase::OffchainCommitted,
            Some(root) if root == response.merkle_root => CommitPhase::BlockchainCommitted,
            Some(_) => CommitPhase::Pending, // sentinel for mismatch
        })
    }

    /// Stage-1-only verification (no chain round-trip) — the fast path a
    /// client uses when it accepts lazy (deterrence-based) trust.
    pub fn read_lazy(&self, id: EntryId) -> Result<VerifiedEntry, CoreError> {
        let response = self.service.read_entry(id)?;
        self.verify_lazy(response)
    }

    /// Lazy-trust read by `(publisher, sequence)`.
    pub fn read_lazy_by_sequence(
        &self,
        publisher: Address,
        sequence: u64,
    ) -> Result<VerifiedEntry, CoreError> {
        let response = self.service.read_entry_by_sequence(publisher, sequence)?;
        self.verify_lazy(response)
    }

    fn verify_lazy(
        &self,
        response: crate::types::SignedResponse,
    ) -> Result<VerifiedEntry, CoreError> {
        response.verify(&self.node_public)?;
        let request = response.request()?;
        request.verify()?;
        Ok(VerifiedEntry {
            entry_id: response.entry_id,
            request,
            phase: CommitPhase::OffchainCommitted,
        })
    }
}
