//! The node's two-plane state (see `docs/architecture.md`).
//!
//! *Read plane*: an immutable [`Snapshot`] published through a
//! [`SnapshotCell`]. The hot read path performs **one atomic version load**
//! — no `RwLock` read guard is ever acquired while serving a read, a proof,
//! or a `Meta` request. Each reader thread keeps a small cache of
//! `(cell, version, Arc<Snapshot>)` entries; the cache is refreshed from the
//! cell's cold slot only when the version counter has moved, i.e. once per
//! publish per thread.
//!
//! *Write plane*: a [`WritePlane`] owned by the stage-1 pipeline and the
//! stage-2 committer behind a mutex ([`super::Shared::mutate`]). Writers
//! mutate the plane's copy-on-write structures and publish a frozen
//! [`Snapshot`] exactly once per flush/commit. Freezing is cheap: batch
//! metadata is `Arc`-shared per batch, the sequence index shares its levels,
//! and the commit index shares fixed-size chunks.
//!
//! The copy-on-write containers are built in-tree (the workspace vendors its
//! dependencies) and keep publish cost sub-linear:
//!
//! * [`SeqIndex`] — a tiered `(publisher, sequence) → EntryId` index. Each
//!   flush pushes one delta level; adjacent levels merge LSM-style when the
//!   newer reaches half the older's size, so inserts cost amortized
//!   `O(log n)` copies and lookups probe `O(log n)` small hash maps.
//! * [`CommitIndex`] — chunked `log_id → CommitInfo` storage; an insert
//!   copies one fixed-size chunk, not the whole map.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;
use wedge_crypto::keys::Address;

use super::state::{BatchMeta, CommitInfo};
use crate::types::EntryId;

/// Entries per [`CommitIndex`] chunk. Small enough that the copy-on-write
/// clone of one chunk per stage-2 group commit is negligible, large enough
/// that the chunk vector stays short.
const COMMIT_CHUNK: usize = 512;

/// Reader-side snapshot cache entries kept per thread. Each live node the
/// thread reads from occupies one slot; least-recently-used cells fall out.
const MAX_CACHED_CELLS: usize = 8;

/// An immutable view of the node's state, shared by all readers that loaded
/// it. A snapshot never changes after publication: a multi-entry read that
/// works on one snapshot can never observe a batch appearing mid-iteration.
pub(crate) struct Snapshot {
    /// Flushed batches, indexed by `log_id`.
    pub batches: Vec<Arc<BatchMeta>>,
    /// `(publisher, sequence)` → entry locator.
    pub seq: SeqIndex,
    /// Blockchain-committed positions.
    pub commits: CommitIndex,
    /// Total entries across all batches (maintained as a running counter —
    /// never recomputed by summing batches).
    pub entry_count: u64,
}

/// The mutable state owned by the writers (stage-1 pipeline, stage-2
/// committer, recovery). Every field is copy-on-write-friendly so
/// [`WritePlane::freeze`] is cheap; mutation happens only under
/// [`super::Shared::mutate`], which publishes a fresh [`Snapshot`] when the
/// closure returns.
#[derive(Default)]
pub(crate) struct WritePlane {
    /// Flushed batches, indexed by `log_id`.
    pub batches: Vec<Arc<BatchMeta>>,
    /// `(publisher, sequence)` → entry locator.
    pub seq: SeqIndex,
    /// Blockchain-committed positions.
    pub commits: CommitIndex,
    /// Running total of entries across all batches.
    pub entry_count: u64,
}

impl WritePlane {
    /// Freezes the current state into a publishable snapshot. Costs one
    /// `Vec<Arc>` clone plus `Arc` reference bumps — no entry is copied.
    pub fn freeze(&self) -> Arc<Snapshot> {
        Arc::new(Snapshot {
            batches: self.batches.clone(),
            seq: self.seq.clone(),
            commits: self.commits.clone(),
            entry_count: self.entry_count,
        })
    }

    /// Registers one flushed batch: appends its metadata, indexes its
    /// entries, and bumps the running entry counter.
    pub fn register_batch<I>(&mut self, meta: BatchMeta, entries: I)
    where
        I: IntoIterator<Item = ((Address, u64), u32)>,
    {
        let log_id = meta.log_id;
        let delta: HashMap<(Address, u64), EntryId> = entries
            .into_iter()
            .map(|(key, offset)| (key, EntryId { log_id, offset }))
            .collect();
        self.entry_count = self.entry_count.saturating_add(meta.count as u64);
        self.seq.insert_batch(delta);
        self.batches.push(Arc::new(meta));
    }
}

/// Tiered copy-on-write `(publisher, sequence)` index.
///
/// Levels are ordered oldest→newest; lookups probe newest-first. A clone
/// shares every level, so snapshots pay `O(levels)` pointer copies. Writers
/// push one delta per batch and merge adjacent levels geometrically
/// (LSM-style), keeping the level count logarithmic in the entry count. A
/// merge clones the older level only when a published snapshot still shares
/// it (`Arc::try_unwrap` falls back to a copy), which is the copy-on-write
/// cost of lock-free readers.
#[derive(Clone, Default)]
pub(crate) struct SeqIndex {
    levels: Vec<Arc<HashMap<(Address, u64), EntryId>>>,
}

impl SeqIndex {
    /// Looks up an entry locator, newest level first.
    pub fn get(&self, publisher: Address, sequence: u64) -> Option<EntryId> {
        let key = (publisher, sequence);
        self.levels
            .iter()
            .rev()
            .find_map(|level| level.get(&key).copied())
    }

    /// Total indexed entries (distinct keys, assuming no re-insertions —
    /// the node assigns each `(publisher, sequence)` exactly once).
    #[cfg(test)]
    pub fn len(&self) -> usize {
        self.levels.iter().map(|level| level.len()).sum()
    }

    /// Pushes one batch's delta as the newest level, then restores the
    /// geometric level invariant.
    pub fn insert_batch(&mut self, delta: HashMap<(Address, u64), EntryId>) {
        if delta.is_empty() {
            return;
        }
        self.levels.push(Arc::new(delta));
        self.compact();
    }

    /// Merges the newest level into its predecessor while the newest holds
    /// at least half the predecessor's entries.
    fn compact(&mut self) {
        loop {
            let n = self.levels.len();
            let (Some(older), Some(newer)) = (
                n.checked_sub(2).and_then(|i| self.levels.get(i)),
                self.levels.last(),
            ) else {
                break;
            };
            if newer.len().saturating_mul(2) < older.len() {
                break;
            }
            let (Some(newer), Some(older)) = (self.levels.pop(), self.levels.pop()) else {
                break;
            };
            let mut merged = Arc::try_unwrap(older).unwrap_or_else(|shared| (*shared).clone());
            merged.extend(newer.iter().map(|(key, id)| (*key, *id)));
            self.levels.push(Arc::new(merged));
        }
    }

    /// Every indexed entry, newest insertion winning on (theoretical) key
    /// collisions. `O(n)` — used by the checkpoint writer, never on the
    /// flush or read paths.
    pub fn entries(&self) -> Vec<((Address, u64), EntryId)> {
        let mut merged: HashMap<(Address, u64), EntryId> = HashMap::new();
        for level in &self.levels {
            for (key, id) in level.iter() {
                merged.insert(*key, *id);
            }
        }
        merged.into_iter().collect()
    }

    /// Keeps only entries whose locator satisfies `keep`, collapsing all
    /// levels into one. `O(n)` — used by the destructive-attack simulation
    /// path, never on the flush path.
    pub fn retain(&mut self, keep: impl Fn(&EntryId) -> bool) {
        let mut merged: HashMap<(Address, u64), EntryId> = HashMap::new();
        for level in &self.levels {
            for (key, id) in level.iter() {
                merged.insert(*key, *id);
            }
        }
        merged.retain(|_, id| keep(id));
        self.levels = if merged.is_empty() {
            Vec::new()
        } else {
            vec![Arc::new(merged)]
        };
    }
}

/// Chunked copy-on-write `log_id → CommitInfo` map.
///
/// Log ids are dense (positions commit from 0 upward), so storage is an
/// array of fixed-size chunks. A clone shares every chunk; an insert copies
/// exactly one chunk when a published snapshot still shares it.
#[derive(Clone, Default)]
pub(crate) struct CommitIndex {
    chunks: Vec<Arc<Vec<Option<CommitInfo>>>>,
    committed: u64,
    /// Smallest log id *not* yet committed: positions `[0, contiguous)`
    /// are all committed. Maintained incrementally on insert/remove
    /// (amortized O(1)) — this is the frontier that gates segment sealing.
    contiguous: u64,
}

impl CommitIndex {
    /// Stage-2 info for a position, if committed.
    pub fn get(&self, log_id: u64) -> Option<CommitInfo> {
        let chunk = self.chunks.get((log_id / COMMIT_CHUNK as u64) as usize)?;
        chunk
            .get((log_id % COMMIT_CHUNK as u64) as usize)
            .copied()
            .flatten()
    }

    /// Whether the position is blockchain-committed.
    pub fn contains(&self, log_id: u64) -> bool {
        self.get(log_id).is_some()
    }

    /// Number of committed positions.
    pub fn len(&self) -> u64 {
        self.committed
    }

    /// The committed frontier: the smallest log id not yet committed
    /// (positions `[0, contiguous)` all are). Records of those positions
    /// are immutable and eligible for sealing into the cold tier.
    pub fn contiguous(&self) -> u64 {
        self.contiguous
    }

    /// Every committed position. `O(n)` — used by the checkpoint writer,
    /// never on the commit or read paths.
    pub fn entries(&self) -> Vec<(u64, CommitInfo)> {
        let mut out = Vec::with_capacity(self.committed as usize);
        for (chunk_idx, chunk) in self.chunks.iter().enumerate() {
            for (offset, slot) in chunk.iter().enumerate() {
                if let Some(info) = slot {
                    out.push(((chunk_idx * COMMIT_CHUNK + offset) as u64, *info));
                }
            }
        }
        out
    }

    /// Records a commitment, overwriting any existing record.
    pub fn insert(&mut self, log_id: u64, info: CommitInfo) {
        let chunk_idx = (log_id / COMMIT_CHUNK as u64) as usize;
        let offset = (log_id % COMMIT_CHUNK as u64) as usize;
        while self.chunks.len() <= chunk_idx {
            self.chunks.push(Arc::new(vec![None; COMMIT_CHUNK]));
        }
        let Some(chunk) = self.chunks.get_mut(chunk_idx) else {
            return;
        };
        let chunk = Arc::make_mut(chunk);
        let Some(slot) = chunk.get_mut(offset) else {
            return;
        };
        if slot.is_none() {
            self.committed = self.committed.saturating_add(1);
        }
        *slot = Some(info);
        // Advance the frontier over every now-contiguous position. Each
        // position is crossed at most once over the index's lifetime, so
        // the total cost is O(1) amortized per insert.
        while self.contains(self.contiguous) {
            self.contiguous = self.contiguous.saturating_add(1);
        }
    }

    /// Records a commitment only when the position has none yet (the
    /// restart-resynchronization path).
    pub fn insert_if_absent(&mut self, log_id: u64, info: CommitInfo) {
        if !self.contains(log_id) {
            self.insert(log_id, info);
        }
    }

    /// Removes a commitment (the destructive-attack simulation path).
    pub fn remove(&mut self, log_id: u64) {
        let chunk_idx = (log_id / COMMIT_CHUNK as u64) as usize;
        let offset = (log_id % COMMIT_CHUNK as u64) as usize;
        let Some(chunk) = self.chunks.get_mut(chunk_idx) else {
            return;
        };
        let chunk = Arc::make_mut(chunk);
        let Some(slot) = chunk.get_mut(offset) else {
            return;
        };
        if slot.is_some() {
            self.committed = self.committed.saturating_sub(1);
        }
        *slot = None;
        // The frontier can only shrink back to the removed position.
        if log_id < self.contiguous {
            self.contiguous = log_id;
        }
    }
}

/// The publication point between the planes.
///
/// `load` is the readers' entry: one atomic version load; when the version
/// matches the calling thread's cached copy, the cached `Arc<Snapshot>` is
/// cloned without touching any lock. Only when the version moved (once per
/// publish per thread) does the reader refresh from the cold `slot` — and
/// that refresh holds the slot's lock just long enough to clone an `Arc`,
/// never across proof generation or store reads.
///
/// `publish` must only be called while holding the write-plane mutex (see
/// [`super::Shared::mutate`]): the mutex serializes publications so a later
/// snapshot can never be overwritten by an earlier one.
pub(crate) struct SnapshotCell {
    /// Distinguishes cells in the per-thread cache (multiple nodes can live
    /// in one process, e.g. under tests).
    id: u64,
    /// Bumped after every publication; readers poll this single atomic.
    version: AtomicU64,
    /// Cold-path storage for the current snapshot.
    slot: RwLock<Arc<Snapshot>>,
}

/// Allocator for [`SnapshotCell::id`].
static NEXT_CELL_ID: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// Per-thread `(cell id, version, snapshot)` cache, most recent first.
    static SNAP_CACHE: RefCell<Vec<(u64, u64, Arc<Snapshot>)>> = const { RefCell::new(Vec::new()) };
}

impl SnapshotCell {
    /// Creates a cell holding `initial` as the current snapshot.
    pub fn new(initial: Arc<Snapshot>) -> SnapshotCell {
        SnapshotCell {
            id: NEXT_CELL_ID.fetch_add(1, Ordering::Relaxed),
            version: AtomicU64::new(0),
            slot: RwLock::new(initial),
        }
    }

    /// Returns the current snapshot. Hot path: one atomic load plus a
    /// thread-local cache hit.
    pub fn load(&self) -> Arc<Snapshot> {
        let version = self.version.load(Ordering::Acquire);
        SNAP_CACHE.with(|cache| {
            let mut cache = cache.borrow_mut();
            if let Some(pos) = cache.iter().position(|(id, _, _)| *id == self.id) {
                if let Some(entry) = cache.get_mut(pos) {
                    if entry.1 != version {
                        // Stale: refresh from the cold slot. The slot guard
                        // lives only for this Arc clone. The slot may
                        // already hold a snapshot newer than `version`;
                        // caching it under `version` is harmless — the next
                        // load sees a newer version and refreshes again.
                        *entry = (self.id, version, self.slot.read().clone());
                    }
                }
                cache.swap(0, pos);
                cache
                    .first()
                    .map(|(_, _, snap)| Arc::clone(snap))
                    // lint: allow(panic) — `pos` was found above, the cache
                    // is non-empty
                    .expect("cache entry present")
            } else {
                let snap = self.slot.read().clone();
                cache.insert(0, (self.id, version, Arc::clone(&snap)));
                cache.truncate(MAX_CACHED_CELLS);
                snap
            }
        })
    }

    /// Installs a new snapshot and bumps the version so readers refresh.
    /// Caller must hold the write-plane mutex.
    pub fn publish(&self, snap: Arc<Snapshot>) {
        *self.slot.write() = snap;
        self.version.fetch_add(1, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wedge_merkle::MerkleTree;

    fn addr(b: u8) -> Address {
        Address([b; 20])
    }

    fn id(log_id: u64, offset: u32) -> EntryId {
        EntryId { log_id, offset }
    }

    fn info(block: u64) -> CommitInfo {
        CommitInfo {
            tx_hash: wedge_crypto::Hash32::ZERO,
            block_number: block,
            stage2_latency: std::time::Duration::ZERO,
        }
    }

    #[test]
    fn seq_index_insert_lookup_and_levels_merge() {
        let mut seq = SeqIndex::default();
        for batch in 0u64..40 {
            let delta: HashMap<_, _> = (0..25u32)
                .map(|off| ((addr(1), batch * 25 + off as u64), id(batch, off)))
                .collect();
            seq.insert_batch(delta);
        }
        assert_eq!(seq.len(), 1000);
        // Geometric merging keeps the level count logarithmic.
        assert!(
            seq.levels.len() <= 12,
            "levels must stay logarithmic, got {}",
            seq.levels.len()
        );
        for n in [0u64, 24, 25, 500, 999] {
            assert_eq!(seq.get(addr(1), n), Some(id(n / 25, (n % 25) as u32)));
        }
        assert_eq!(seq.get(addr(1), 1000), None);
        assert_eq!(seq.get(addr(2), 0), None);
    }

    #[test]
    fn seq_index_clone_shares_and_is_isolated() {
        let mut seq = SeqIndex::default();
        seq.insert_batch([((addr(1), 0), id(0, 0))].into_iter().collect());
        let frozen = seq.clone();
        seq.insert_batch([((addr(1), 1), id(1, 0))].into_iter().collect());
        // The frozen copy must not see post-clone inserts.
        assert_eq!(frozen.get(addr(1), 1), None);
        assert_eq!(seq.get(addr(1), 1), Some(id(1, 0)));
        assert_eq!(frozen.get(addr(1), 0), Some(id(0, 0)));
    }

    #[test]
    fn seq_index_retain_drops_matching_entries() {
        let mut seq = SeqIndex::default();
        for batch in 0u64..4 {
            seq.insert_batch([((addr(1), batch), id(batch, 0))].into_iter().collect());
        }
        seq.retain(|entry| entry.log_id < 2);
        assert_eq!(seq.len(), 2);
        assert_eq!(seq.get(addr(1), 1), Some(id(1, 0)));
        assert_eq!(seq.get(addr(1), 3), None);
    }

    #[test]
    fn commit_index_chunked_cow() {
        let mut commits = CommitIndex::default();
        assert_eq!(commits.len(), 0);
        commits.insert(0, info(1));
        commits.insert(COMMIT_CHUNK as u64 + 3, info(2));
        let frozen = commits.clone();
        commits.insert(1, info(3));
        commits.insert(0, info(9)); // overwrite: count unchanged
        assert_eq!(commits.len(), 3);
        assert_eq!(commits.get(0).map(|i| i.block_number), Some(9));
        // The clone still sees the pre-mutation values.
        assert_eq!(frozen.len(), 2);
        assert_eq!(frozen.get(0).map(|i| i.block_number), Some(1));
        assert!(!frozen.contains(1));
        assert!(frozen.contains(COMMIT_CHUNK as u64 + 3));
        commits.remove(1);
        assert_eq!(commits.len(), 2);
        assert!(!commits.contains(1));
        commits.insert_if_absent(0, info(7));
        assert_eq!(commits.get(0).map(|i| i.block_number), Some(9), "kept");
    }

    #[test]
    fn commit_index_contiguous_frontier() {
        let mut commits = CommitIndex::default();
        assert_eq!(commits.contiguous(), 0);
        commits.insert(1, info(1));
        commits.insert(2, info(1));
        assert_eq!(commits.contiguous(), 0, "gap at 0 pins the frontier");
        commits.insert(0, info(1));
        assert_eq!(commits.contiguous(), 3, "filling the gap jumps past 1,2");
        commits.insert(5, info(1));
        assert_eq!(commits.contiguous(), 3);
        // entries() reflects everything, ordered by log id.
        let ids: Vec<u64> = commits.entries().iter().map(|(id, _)| *id).collect();
        assert_eq!(ids, vec![0, 1, 2, 5]);
        // Removal (destructive-attack path) pulls the frontier back.
        commits.remove(1);
        assert_eq!(commits.contiguous(), 1);
        commits.insert(1, info(2));
        assert_eq!(commits.contiguous(), 3, "re-insert restores the run");
    }

    fn batch_meta(log_id: u64, count: u32) -> BatchMeta {
        let leaves: Vec<Vec<u8>> = (0..count).map(|i| vec![log_id as u8, i as u8]).collect();
        BatchMeta {
            log_id,
            first_record: log_id * (count as u64 + 1) + 1,
            count,
            tree: MerkleTree::from_leaves(&leaves).unwrap(),
        }
    }

    #[test]
    fn cell_load_reflects_publish_and_old_snapshots_stay_immutable() {
        let mut plane = WritePlane::default();
        plane.register_batch(
            batch_meta(0, 2),
            (0..2u32).map(|off| ((addr(1), off as u64), off)),
        );
        let cell = SnapshotCell::new(plane.freeze());

        let before = cell.load();
        assert_eq!(before.entry_count, 2);
        assert_eq!(before.batches.len(), 1);

        plane.register_batch(
            batch_meta(1, 3),
            (0..3u32).map(|off| ((addr(1), 2 + off as u64), off)),
        );
        plane.commits.insert(0, info(5));
        cell.publish(plane.freeze());

        // The retained snapshot is frozen in time…
        assert_eq!(before.entry_count, 2);
        assert_eq!(before.batches.len(), 1);
        assert!(!before.commits.contains(0));
        assert_eq!(before.seq.get(addr(1), 3), None);
        // …while a fresh load (same thread: exercises the cache-refresh
        // path) sees the publication.
        let after = cell.load();
        assert_eq!(after.entry_count, 5);
        assert_eq!(after.batches.len(), 2);
        assert!(after.commits.contains(0));
        assert_eq!(after.seq.get(addr(1), 3), Some(id(1, 1)));
    }

    #[test]
    fn cell_load_is_fresh_across_threads() {
        let plane = WritePlane::default();
        let cell = std::sync::Arc::new(SnapshotCell::new(plane.freeze()));
        let mut plane = plane;
        plane.register_batch(batch_meta(0, 1), [((addr(1), 0), 0u32)]);
        cell.publish(plane.freeze());
        let handle = {
            let cell = std::sync::Arc::clone(&cell);
            std::thread::spawn(move || cell.load().batches.len())
        };
        assert_eq!(handle.join().unwrap(), 1);
        // Repeated loads on this thread hit the cache and stay correct.
        assert_eq!(cell.load().batches.len(), 1);
        assert_eq!(cell.load().batches.len(), 1);
    }

    #[test]
    fn distinct_cells_do_not_cross_talk_in_the_thread_cache() {
        let mut plane_a = WritePlane::default();
        plane_a.register_batch(batch_meta(0, 1), [((addr(1), 0), 0u32)]);
        let cell_a = SnapshotCell::new(plane_a.freeze());
        let cell_b = SnapshotCell::new(WritePlane::default().freeze());
        assert_eq!(cell_a.load().entry_count, 1);
        assert_eq!(cell_b.load().entry_count, 0);
        assert_eq!(cell_a.load().entry_count, 1);
    }
}
