//! Node-side metrics, the raw material for the paper's figures.

use std::time::Duration;

use wedge_chain::{Gas, Wei};

/// Counters and samples collected by the Offchain Node.
#[derive(Clone, Debug, Default)]
pub struct NodeStats {
    /// Append requests accepted into batches.
    pub entries_ingested: u64,
    /// Raw payload bytes accepted.
    pub bytes_ingested: u64,
    /// Requests dropped for invalid signatures.
    pub requests_rejected: u64,
    /// Batches flushed (log positions created).
    pub batches_flushed: u64,
    /// `Update-Records` transactions submitted.
    pub stage2_txs_submitted: u64,
    /// Log positions confirmed on-chain.
    pub stage2_committed: u64,
    /// Log positions abandoned after the retry policy's `max_attempts`
    /// consecutive failures — *not* first-attempt failures, which are
    /// retried (see [`crate::Stage2RetryPolicy`]).
    pub stage2_failed: u64,
    /// Stage-2 re-submissions performed (attempt ≥ 2 of a group).
    pub stage2_retries: u64,
    /// Log positions re-queued into the retry backlog (one position
    /// counted once per failed attempt of its group).
    pub stage2_requeued: u64,
    /// Failed stage-2 submissions classified as submission errors
    /// (transaction never reached the mempool).
    pub stage2_submission_errors: u64,
    /// Failed stage-2 submissions classified as on-chain reverts.
    pub stage2_reverts: u64,
    /// Failed stage-2 submissions classified as receipt timeouts.
    pub stage2_timeouts: u64,
    /// Per-attempt backoff histogram: `stage2_backoff_hist[k]` counts the
    /// retries scheduled after attempt `k + 1` failed.
    pub stage2_backoff_hist: Vec<u64>,
    /// Per-position simulated stage-1→stage-2 latencies.
    pub stage2_latencies: Vec<Duration>,
    /// Total gas spent on stage-2 commitments.
    pub stage2_gas: Gas,
    /// Total fees spent on stage-2 commitments.
    pub stage2_fees: Wei,
    /// Batches that received fewer replica acknowledgements than
    /// configured (a replica is down or lagging).
    pub replication_shortfalls: u64,
    /// Read-plane snapshots published (one per batch registration, stage-2
    /// group commit, or destructive mutation).
    pub snapshot_publishes: u64,
    /// Times a stage-1 pipeline stage blocked handing a batch downstream
    /// (the bounded inter-stage queue was full). A persistently high rate
    /// means the persist/deliver stages are the bottleneck; consider a
    /// deeper [`crate::NodeConfig::pipeline_depth`].
    pub pipeline_stalls: u64,
    /// Parallel chunks dispatched while building batch Merkle trees
    /// (0 ⇒ every tree was built serially, e.g. below
    /// [`crate::NodeConfig::merkle_parallel_cutoff`] or on a single-core
    /// machine).
    pub merkle_par_chunks: u64,
    /// Batches whose durability rode a neighbouring batch's fsync under
    /// [`wedge_storage::SyncPolicy::GroupCommit`] instead of paying their
    /// own (sampled from the store when stats are read).
    pub fsyncs_coalesced: u64,
    /// Nanoseconds of local persistence (Merkle + `append_batch` + fsync)
    /// that ran while replica sends were already in flight — the persist
    /// stage's overlap win. 0 when `overlap_replication` is off or there
    /// are no replicas.
    pub replication_overlap_ns: u64,
    /// Worker threads *not* spawned because the shared pool caps
    /// parallelism at the machine's core count (process-wide, sampled from
    /// [`wedge_pool::oversubscription_avoided`] when stats are read).
    pub oversubscription_avoided: u64,
    /// Keccak-256 digests computed, all paths (process-wide, sampled from
    /// [`wedge_crypto::hash::hashes_computed`] when stats are read).
    pub hashes_computed: u64,
    /// ×4 lane-interleaved Keccak groups executed — each one produced four
    /// digests in roughly one permutation's time (process-wide, sampled
    /// from [`wedge_crypto::hash::hash_batches_x4`] when stats are read).
    pub hash_batches_x4: u64,
    /// Nanoseconds the persist stage spent building batch Merkle trees
    /// (leaf hashing + level folding) — where digest time goes once
    /// signing is amortized.
    pub merkle_hash_ns: u64,
    /// Hot segments sealed into read-only cold segments since this node
    /// started (sampled from the store when stats are read).
    pub segments_sealed: u64,
    /// Two-plane checkpoints written (periodic and final-on-shutdown).
    pub checkpoint_writes: u64,
    /// Store records replayed during this node's start — records past the
    /// newest valid checkpoint's cursor, or the whole log when no
    /// checkpoint was usable. The observable measure of O(tail) restart.
    pub restart_replayed_records: u64,
    /// Cold segments deleted by the retention policy since this node
    /// started (sampled from the store when stats are read).
    pub gc_deleted_segments: u64,
    /// Non-empty `epoch_report` groups handed to a cluster epoch
    /// coordinator (shard nodes in [`crate::Stage2Mode::Epoch`] only).
    pub epoch_reports: u64,
    /// Cluster epoch acknowledgements applied via `epoch_commit`.
    pub epoch_commits: u64,
    /// `epoch_commit` calls rejected because a later epoch was already
    /// acknowledged — the stale-epoch guard the cluster protocol model
    /// checks.
    pub epoch_stale_rejected: u64,
}

impl NodeStats {
    /// Records one scheduled retry after attempt `attempt` (1-based)
    /// failed, growing the histogram as needed.
    pub(crate) fn record_backoff(&mut self, attempt: u32) {
        let idx = attempt.saturating_sub(1) as usize;
        if self.stage2_backoff_hist.len() <= idx {
            self.stage2_backoff_hist.resize(idx + 1, 0);
        }
        self.stage2_backoff_hist[idx] = self.stage2_backoff_hist[idx].saturating_add(1);
    }

    /// Mean stage-2 latency (simulated), if any commitments completed.
    pub fn mean_stage2_latency(&self) -> Option<Duration> {
        if self.stage2_latencies.is_empty() {
            return None;
        }
        let total: Duration = self.stage2_latencies.iter().sum();
        Some(total / self.stage2_latencies.len() as u32)
    }

    /// On-chain cost per ingested operation, in wei.
    pub fn cost_per_op(&self) -> Wei {
        if self.entries_ingested == 0 {
            return Wei::ZERO;
        }
        Wei(self.stage2_fees.0 / self.entries_ingested as u128)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_metrics() {
        let mut s = NodeStats::default();
        assert!(s.mean_stage2_latency().is_none());
        assert_eq!(s.cost_per_op(), Wei::ZERO);
        s.stage2_latencies = vec![Duration::from_secs(40), Duration::from_secs(46)];
        assert_eq!(s.mean_stage2_latency(), Some(Duration::from_secs(43)));
        s.entries_ingested = 1000;
        s.stage2_fees = Wei(5_000_000);
        assert_eq!(s.cost_per_op(), Wei(5_000));
    }
}
