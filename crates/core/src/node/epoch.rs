//! Cluster epoch participation (shard side).
//!
//! A node in [`Stage2Mode::Epoch`] runs no stage-2 committer of its own.
//! Instead an epoch coordinator drives a pull-based two-step protocol:
//!
//! 1. **`epoch_report`** — the coordinator asks for the shard's pending
//!    group: the contiguous run of flushed-but-uncommitted batch roots
//!    starting at the blockchain-committed frontier. The report is a pure
//!    snapshot read — no per-epoch state is kept, so a crashed-and-
//!    recovered shard simply re-reports the same positions and the
//!    protocol converges without a handshake.
//! 2. **`epoch_commit`** — after the coordinator's root-of-roots
//!    transaction confirms on-chain, it acknowledges the covered group.
//!    The acknowledgement is idempotent per position and guarded against
//!    stale epochs: once epoch `e` is acknowledged, an acknowledgement for
//!    any epoch `< e` is rejected (its roots were superseded by a
//!    re-report — exactly the hazard `wedge-check`'s epoch model proves
//!    the guard necessary for).

use std::sync::atomic::Ordering;
use std::time::Duration;

use crate::config::Stage2Mode;
use crate::error::CoreError;
use crate::types::{EpochCommit, ShardGroup};

use super::state::CommitInfo;
use super::OffchainNode;

impl OffchainNode {
    /// Reports the shard's pending group: batch roots for positions
    /// `[frontier, min(frontier + max_group, flushed))`, where `frontier`
    /// is the contiguous blockchain-committed prefix. Empty when nothing
    /// is pending. Only meaningful in [`Stage2Mode::Epoch`].
    pub fn epoch_report(&self, max_group: usize) -> Result<ShardGroup, CoreError> {
        if self.shared.config.stage2_mode != Stage2Mode::Epoch {
            return Err(CoreError::RequestRejected(
                "node is not in epoch commit mode",
            ));
        }
        let snap = self.shared.snapshot();
        let start = snap.commits.contiguous();
        let end = (snap.batches.len() as u64).min(start.saturating_add(max_group.max(1) as u64));
        let roots: Vec<_> = (start..end)
            .filter_map(|id| snap.batches.get(id as usize).map(|b| b.tree.root()))
            .collect();
        if !roots.is_empty() {
            self.shared.stats.lock().epoch_reports += 1;
        }
        Ok(ShardGroup { start, roots })
    }

    /// Applies the coordinator's acknowledgement: positions
    /// `[start, start + count)` are covered by the confirmed root-of-roots
    /// transaction of `epoch`. Returns the number of *newly* committed
    /// positions (retries and restart-replays are idempotent).
    pub fn epoch_commit(&self, commit: EpochCommit) -> Result<u64, CoreError> {
        if self.shared.config.stage2_mode != Stage2Mode::Epoch {
            return Err(CoreError::RequestRejected(
                "node is not in epoch commit mode",
            ));
        }
        // Stale-epoch guard: `epoch_seen` holds `last acknowledged epoch +
        // 1`. `fetch_max` both claims this epoch and exposes the previous
        // watermark; an acknowledgement older than an already-applied one
        // would bind re-reported positions to a superseded root-of-roots.
        let claimed = commit.epoch.saturating_add(1);
        let prev = self.shared.epoch_seen.fetch_max(claimed, Ordering::AcqRel);
        if prev > claimed {
            self.shared.stats.lock().epoch_stale_rejected += 1;
            return Err(CoreError::RequestRejected(
                "stale epoch acknowledgement rejected",
            ));
        }
        let snap = self.shared.snapshot();
        let flushed = snap.batches.len() as u64;
        let end = commit.start.saturating_add(commit.count);
        if end > flushed {
            return Err(CoreError::RequestRejected(
                "epoch commit beyond the flushed tail",
            ));
        }
        if commit.start > snap.commits.contiguous() {
            return Err(CoreError::RequestRejected(
                "epoch commit leaves a commitment gap",
            ));
        }
        let latency = Duration::ZERO;
        let newly = self.shared.mutate(|plane| {
            let mut newly = 0u64;
            for log_id in commit.start..end {
                if !plane.commits.contains(log_id) {
                    newly += 1;
                }
                plane.commits.insert_if_absent(
                    log_id,
                    CommitInfo {
                        tx_hash: commit.tx_hash,
                        block_number: commit.block_number,
                        stage2_latency: latency,
                    },
                );
            }
            newly
        });
        {
            let mut stats = self.shared.stats.lock();
            stats.epoch_commits += 1;
            stats.stage2_committed += newly;
        }
        // The frontier advanced: seal, checkpoint, and retire on the
        // coordinator's (caller's) thread, exactly as the direct committer
        // does after a group commit.
        if newly > 0 {
            self.shared
                .maintenance
                .lock()
                .after_group_commit(&self.shared);
        }
        Ok(newly)
    }
}
