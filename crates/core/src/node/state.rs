//! Per-batch metadata, the on-disk batch encoding, and recovery into the
//! write plane (see [`super::snapshot`] for the two-plane state itself).

use std::time::Duration;

use wedge_chain::{Decoder, Encoder, TxHash};
use wedge_crypto::hash::Hash32;
use wedge_merkle::MerkleTree;
use wedge_storage::LogStore;

use super::snapshot::WritePlane;
use crate::error::CoreError;
use crate::types::AppendRequest;

/// Record-type tags in the backing store.
const TAG_HEADER: u8 = 0x01;
const TAG_LEAF: u8 = 0x02;

/// Metadata for one flushed batch (log position).
pub struct BatchMeta {
    /// The log position id.
    pub log_id: u64,
    /// Storage record id of the batch's first leaf.
    pub first_record: u64,
    /// Number of entries.
    pub count: u32,
    /// The batch's Merkle tree, retained for O(log n) proof generation on
    /// reads.
    pub tree: MerkleTree,
}

/// Stage-2 commitment bookkeeping for one log position.
#[derive(Clone, Copy, Debug)]
pub struct CommitInfo {
    /// The `Update-Records` transaction.
    pub tx_hash: TxHash,
    /// Block in which it was mined.
    pub block_number: u64,
    /// Simulated latency from stage-1 completion to confirmed stage-2.
    pub stage2_latency: Duration,
}

/// Encodes a batch-header record: `(tag, log_id, count, root)`.
pub fn encode_header(log_id: u64, count: u32, root: &Hash32) -> Vec<u8> {
    let mut enc = Encoder::with_capacity(53);
    enc.u8(TAG_HEADER)
        .u64(log_id)
        .u64(count as u64)
        .bytes(root.as_bytes());
    enc.finish()
}

/// Encodes a leaf record.
pub fn encode_leaf(leaf: &[u8]) -> Vec<u8> {
    let mut enc = Encoder::with_capacity(1 + leaf.len());
    enc.u8(TAG_LEAF).bytes(leaf);
    enc.finish()
}

/// Decodes a leaf record back to its leaf bytes.
pub fn decode_leaf(record: &[u8]) -> Result<Vec<u8>, CoreError> {
    let mut dec = Decoder::new(record);
    let tag = dec.u8().map_err(CoreError::Decode)?;
    if tag != TAG_LEAF {
        return Err(CoreError::RequestRejected("expected leaf record"));
    }
    let leaf = dec.bytes().map_err(CoreError::Decode)?.to_vec();
    dec.finish().map_err(CoreError::Decode)?;
    Ok(leaf)
}

/// Decoded batch header.
pub struct Header {
    /// Log position id.
    pub log_id: u64,
    /// Entries in the batch.
    pub count: u32,
    /// The persisted Merkle root (re-derived and checked at recovery).
    pub root: Hash32,
}

/// Decodes a header record, returning `None` for non-header records.
pub fn decode_header(record: &[u8]) -> Option<Header> {
    let mut dec = Decoder::new(record);
    if dec.u8().ok()? != TAG_HEADER {
        return None;
    }
    let log_id = dec.u64().ok()?;
    let count = dec.u64().ok()? as u32;
    let root: [u8; 32] = dec.bytes_fixed().ok()?;
    dec.finish().ok()?;
    Some(Header {
        log_id,
        count,
        root: Hash32(root),
    })
}

/// Replays records `[from, store.len())` into `plane` — the node restart
/// path. With `from = 0` and an empty plane this rebuilds the entire state
/// from the log; with a restored checkpoint, `from` is the checkpoint's
/// record cursor and only the uncheckpointed tail is read and hashed
/// (O(tail) restart). Returns the number of records replayed.
///
/// `from` must sit on a batch-header boundary (0 and checkpoint cursors
/// always do). An incomplete trailing batch (header persisted, some leaves
/// torn away) is dropped, mirroring the store's torn-tail semantics.
pub fn replay_tail(store: &LogStore, plane: &mut WritePlane, from: u64) -> Result<u64, CoreError> {
    let total = store.len();
    let mut cursor = from;
    while cursor < total {
        let record = store.read(cursor)?;
        let Some(header) = decode_header(&record) else {
            return Err(CoreError::RequestRejected(
                "expected batch header during recovery",
            ));
        };
        let first_record = cursor + 1;
        if first_record + header.count as u64 > total {
            break; // incomplete trailing batch
        }
        let mut leaves = Vec::with_capacity(header.count as usize);
        for record in store.read_range(first_record, header.count as u64)? {
            leaves.push(decode_leaf(&record)?);
        }
        let tree = MerkleTree::from_leaf_hashes(
            leaves.iter().map(|l| wedge_merkle::hash_leaf(l)).collect(),
        )
        .map_err(|_| CoreError::RequestRejected("empty batch during recovery"))?;
        if tree.root() != header.root {
            return Err(CoreError::RequestRejected("recovered root mismatch"));
        }
        let entries: Vec<_> = leaves
            .iter()
            .enumerate()
            .filter_map(|(offset, leaf)| {
                AppendRequest::from_leaf_bytes(leaf)
                    .ok()
                    .map(|req| ((req.publisher, req.sequence), offset as u32))
            })
            .collect();
        plane.register_batch(
            BatchMeta {
                log_id: header.log_id,
                first_record,
                count: header.count,
                tree,
            },
            entries,
        );
        cursor = first_record + header.count as u64;
    }
    Ok(total.saturating_sub(from))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_roundtrip() {
        let root = Hash32([7; 32]);
        let encoded = encode_header(42, 100, &root);
        let header = decode_header(&encoded).unwrap();
        assert_eq!(header.log_id, 42);
        assert_eq!(header.count, 100);
        assert_eq!(header.root, root);
    }

    #[test]
    fn leaf_roundtrip() {
        let encoded = encode_leaf(b"leaf-data");
        assert_eq!(decode_leaf(&encoded).unwrap(), b"leaf-data");
        // Headers are not leaves.
        let header = encode_header(0, 1, &Hash32::ZERO);
        assert!(decode_leaf(&header).is_err());
        assert!(decode_header(&encode_leaf(b"x")).is_none());
    }
}
