//! Durable checkpoints of the node's two-plane state, the other half of the
//! O(tail) restart story (the store's locator sidecar being the first).
//!
//! A checkpoint captures everything [`super::state::replay_tail`] would
//! otherwise have to re-derive from the log: per-batch metadata (log id,
//! record range, Merkle root *and leaf hashes* — the tree is rebuilt from
//! the hashes without touching a single record), the `(publisher, sequence)`
//! index, and the stage-2 commit index. On restart the node restores the
//! newest valid checkpoint and replays only records past its cursor.
//!
//! # Format (`checkpoint-<cursor>.wckp`)
//!
//! One [`wedge_chain::Encoder`] stream followed by a CRC32:
//!
//! ```text
//! u64 magic+version         0x5743_4B50_0000_0001 ("WCKP", v1)
//! u64 cursor                store records below this are captured
//! u64 entry_count
//! u64 batch_count
//!   per batch: u64 log_id | u64 first_record | u64 count
//!              | bytes root (32) | u64 leaf_count | bytes leaf hashes
//! u64 seq_count
//!   per entry: bytes publisher (20) | u64 sequence | u64 log_id | u64 offset
//! u64 commit_count
//!   per commit: u64 log_id | bytes tx_hash (32) | u64 block | u64 latency_ns
//! u32 crc32 (big-endian, over everything above)
//! ```
//!
//! Files are written atomically (temp + rename + directory fsync); the two
//! newest are kept so one torn or corrupt file never strands the node. Any
//! validation failure — CRC, magic, root mismatch against the rebuilt tree,
//! cursor outside the store's live range — makes [`restore`] fall back to
//! the next-older file, and ultimately to a full replay.

use std::collections::HashMap;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

use wedge_chain::{Decoder, Encoder};
use wedge_crypto::hash::Hash32;
use wedge_crypto::keys::Address;
use wedge_merkle::MerkleTree;
use wedge_storage::{crc32, LogStore, StorageError};

use super::snapshot::{Snapshot, WritePlane};
use super::state::{BatchMeta, CommitInfo};
use crate::error::CoreError;
use crate::types::EntryId;

/// "WCKP" + format version 1.
const MAGIC: u64 = 0x5743_4B50_0000_0001;

/// Checkpoint files kept on disk (newest first). Two, so one corrupt or
/// torn write never strands the node — and the *older* kept cursor is the
/// retention floor ([`floor`]).
const KEEP: usize = 2;

/// A checkpoint restored from disk.
pub(crate) struct Restored {
    /// The reconstructed write plane (batches, seq index, commits).
    pub plane: WritePlane,
    /// First store record *not* covered: replay starts here.
    pub cursor: u64,
}

fn checkpoint_path(dir: &Path, cursor: u64) -> PathBuf {
    dir.join(format!("checkpoint-{cursor:020}.wckp"))
}

fn io_err(e: std::io::Error) -> CoreError {
    CoreError::Storage(StorageError::from(e))
}

/// Existing checkpoint files as `(cursor, path)`, ascending by cursor.
fn list(dir: &Path) -> Vec<(u64, PathBuf)> {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return Vec::new();
    };
    let mut found = Vec::new();
    for entry in entries.flatten() {
        let Ok(name) = entry.file_name().into_string() else {
            continue;
        };
        if let Some(cursor) = name
            .strip_prefix("checkpoint-")
            .and_then(|rest| rest.strip_suffix(".wckp"))
            .and_then(|digits| digits.parse::<u64>().ok())
        {
            found.push((cursor, entry.path()));
        }
    }
    found.sort_unstable_by_key(|(cursor, _)| *cursor);
    found
}

/// The record cursor every kept checkpoint can restore from — the oldest
/// kept file's cursor (0 when none exist). Retention must never delete
/// records at or above any kept cursor, or a restart could find its best
/// checkpoint pointing into retired territory.
pub(crate) fn floor(dir: &Path) -> u64 {
    list(dir).first().map(|(cursor, _)| *cursor).unwrap_or(0)
}

/// Serializes a snapshot; returns `(cursor, bytes)`.
fn encode(snap: &Snapshot) -> (u64, Vec<u8>) {
    let cursor = snap
        .batches
        .last()
        .map(|b| b.first_record + b.count as u64)
        .unwrap_or(0);
    let mut enc = Encoder::new();
    enc.u64(MAGIC).u64(cursor).u64(snap.entry_count);
    enc.u64(snap.batches.len() as u64);
    for batch in &snap.batches {
        enc.u64(batch.log_id)
            .u64(batch.first_record)
            .u64(batch.count as u64)
            .bytes(batch.tree.root().as_bytes());
        let leaf_count = batch.tree.leaf_count();
        let mut hashes = Vec::with_capacity(leaf_count * 32);
        for i in 0..leaf_count {
            if let Some(hash) = batch.tree.leaf_hash(i) {
                hashes.extend_from_slice(hash.as_bytes());
            }
        }
        enc.u64(leaf_count as u64).bytes(&hashes);
    }
    let seq = snap.seq.entries();
    enc.u64(seq.len() as u64);
    for ((publisher, sequence), id) in &seq {
        enc.bytes(&publisher.0)
            .u64(*sequence)
            .u64(id.log_id)
            .u64(id.offset as u64);
    }
    let commits = snap.commits.entries();
    enc.u64(commits.len() as u64);
    for (log_id, info) in &commits {
        let latency = info.stage2_latency.as_nanos().min(u64::MAX as u128) as u64;
        enc.u64(*log_id)
            .bytes(info.tx_hash.as_bytes())
            .u64(info.block_number)
            .u64(latency);
    }
    let mut body = enc.finish();
    let crc = crc32(&body);
    body.extend_from_slice(&crc.to_be_bytes());
    (cursor, body)
}

/// Parses and validates checkpoint bytes. `None` on any inconsistency —
/// including a stored root that the tree rebuilt from the leaf hashes does
/// not reproduce.
fn decode(bytes: &[u8]) -> Option<Restored> {
    if bytes.len() < 4 {
        return None;
    }
    let (body, crc_bytes) = bytes.split_at(bytes.len() - 4);
    let expected = u32::from_be_bytes(crc_bytes.try_into().ok()?);
    if crc32(body) != expected {
        return None;
    }
    let mut dec = Decoder::new(body);
    if dec.u64().ok()? != MAGIC {
        return None;
    }
    let cursor = dec.u64().ok()?;
    let entry_count = dec.u64().ok()?;
    let batch_count = dec.u64().ok()?;
    let mut plane = WritePlane::default();
    let mut expect_first = 1u64; // record 0 is batch 0's header
    for expect_id in 0..batch_count {
        let log_id = dec.u64().ok()?;
        if log_id != expect_id {
            return None; // batches must be dense from 0
        }
        let first_record = dec.u64().ok()?;
        let count = dec.u64().ok()?;
        if first_record != expect_first {
            return None; // batches must tile the log: header, leaves, header…
        }
        expect_first = first_record + count + 1;
        let root: [u8; 32] = dec.bytes_fixed().ok()?;
        let leaf_count = dec.u64().ok()? as usize;
        let hash_bytes = dec.bytes().ok()?;
        if leaf_count as u64 != count || hash_bytes.len() != leaf_count.checked_mul(32)? {
            return None;
        }
        let mut hashes = Vec::with_capacity(leaf_count);
        for chunk in hash_bytes.chunks_exact(32) {
            hashes.push(Hash32(chunk.try_into().ok()?));
        }
        let tree = MerkleTree::from_leaf_hashes(hashes).ok()?;
        if tree.root() != Hash32(root) {
            return None; // checkpointed root does not match its own leaves
        }
        plane.batches.push(Arc::new(BatchMeta {
            log_id,
            first_record,
            count: count as u32,
            tree,
        }));
    }
    // The cursor must be exactly what the batches cover.
    let covered = plane
        .batches
        .last()
        .map(|b| b.first_record + b.count as u64)
        .unwrap_or(0);
    if covered != cursor {
        return None;
    }
    plane.entry_count = entry_count;
    let seq_count = dec.u64().ok()?;
    let mut delta: HashMap<(Address, u64), EntryId> = HashMap::with_capacity(seq_count as usize);
    for _ in 0..seq_count {
        let publisher: [u8; 20] = dec.bytes_fixed().ok()?;
        let sequence = dec.u64().ok()?;
        let log_id = dec.u64().ok()?;
        let offset = dec.u64().ok()?;
        delta.insert(
            (Address(publisher), sequence),
            EntryId {
                log_id,
                offset: u32::try_from(offset).ok()?,
            },
        );
    }
    plane.seq.insert_batch(delta);
    let commit_count = dec.u64().ok()?;
    for _ in 0..commit_count {
        let log_id = dec.u64().ok()?;
        let tx_hash: [u8; 32] = dec.bytes_fixed().ok()?;
        let block_number = dec.u64().ok()?;
        let latency_ns = dec.u64().ok()?;
        plane.commits.insert(
            log_id,
            CommitInfo {
                tx_hash: Hash32(tx_hash),
                block_number,
                stage2_latency: Duration::from_nanos(latency_ns),
            },
        );
    }
    dec.finish().ok()?;
    Some(Restored { plane, cursor })
}

/// Writes a checkpoint of `snap` atomically and prunes to the newest
/// [`KEEP`] files. Returns the checkpoint's cursor.
pub(crate) fn write(dir: &Path, snap: &Snapshot) -> Result<u64, CoreError> {
    std::fs::create_dir_all(dir).map_err(io_err)?;
    let (cursor, bytes) = encode(snap);
    let tmp = dir.join("checkpoint.wckp.tmp");
    {
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&tmp)
            .map_err(io_err)?;
        file.write_all(&bytes).map_err(io_err)?;
        file.sync_all().map_err(io_err)?;
    }
    std::fs::rename(&tmp, checkpoint_path(dir, cursor)).map_err(io_err)?;
    // Make the rename itself durable before pruning older files.
    if let Ok(dir_handle) = std::fs::File::open(dir) {
        let _ = dir_handle.sync_all();
    }
    let existing = list(dir);
    for (_, path) in existing.iter().take(existing.len().saturating_sub(KEEP)) {
        let _ = std::fs::remove_file(path);
    }
    Ok(cursor)
}

/// Restores the newest checkpoint consistent with `store`: the cursor must
/// lie within the store's live record range (a checkpoint pointing past a
/// truncated tail, or below the retention frontier, is skipped). Falls back
/// file-by-file; `None` means "replay everything from scratch".
pub(crate) fn restore(dir: &Path, store: &LogStore) -> Option<Restored> {
    for (_, path) in list(dir).into_iter().rev() {
        let Ok(bytes) = std::fs::read(&path) else {
            continue;
        };
        let Some(restored) = decode(&bytes) else {
            continue;
        };
        if restored.cursor > store.len() || restored.cursor < store.oldest() {
            continue;
        }
        return Some(restored);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use wedge_merkle::hash_leaf;

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "wedge-ckpt-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_plane(batches: u64, per_batch: u32) -> WritePlane {
        let mut plane = WritePlane::default();
        let mut record = 0u64;
        for log_id in 0..batches {
            let leaves: Vec<Vec<u8>> = (0..per_batch)
                .map(|i| format!("leaf-{log_id}-{i}").into_bytes())
                .collect();
            let tree = MerkleTree::from_leaf_hashes(leaves.iter().map(|l| hash_leaf(l)).collect())
                .unwrap();
            let meta = BatchMeta {
                log_id,
                first_record: record + 1, // +1 for the header record
                count: per_batch,
                tree,
            };
            let entries =
                (0..per_batch).map(|off| ((Address([7; 20]), log_id * 100 + off as u64), off));
            plane.register_batch(meta, entries);
            record += 1 + per_batch as u64;
        }
        for log_id in 0..batches.saturating_sub(1) {
            plane.commits.insert(
                log_id,
                CommitInfo {
                    tx_hash: Hash32([log_id as u8; 32]),
                    block_number: log_id + 10,
                    stage2_latency: Duration::from_millis(log_id),
                },
            );
        }
        plane
    }

    #[test]
    fn checkpoint_roundtrips_the_planes() {
        let dir = tempdir("rt");
        let plane = sample_plane(4, 3);
        let snap = plane.freeze();
        let cursor = write(&dir, &snap).unwrap();
        assert_eq!(cursor, 4 * 4); // 4 batches × (1 header + 3 leaves)

        let bytes = std::fs::read(checkpoint_path(&dir, cursor)).unwrap();
        let restored = decode(&bytes).expect("valid checkpoint");
        assert_eq!(restored.cursor, cursor);
        assert_eq!(restored.plane.batches.len(), 4);
        assert_eq!(restored.plane.entry_count, 12);
        for (orig, back) in plane.batches.iter().zip(&restored.plane.batches) {
            assert_eq!(orig.log_id, back.log_id);
            assert_eq!(orig.first_record, back.first_record);
            assert_eq!(orig.count, back.count);
            assert_eq!(orig.tree.root(), back.tree.root());
            // Proof generation works on the rebuilt tree.
            assert!(back.tree.prove(0).is_ok());
        }
        assert_eq!(
            restored.plane.seq.get(Address([7; 20]), 201),
            Some(EntryId {
                log_id: 2,
                offset: 1
            })
        );
        assert_eq!(restored.plane.commits.len(), 3);
        assert_eq!(restored.plane.commits.contiguous(), 3);
        assert_eq!(
            restored.plane.commits.get(1).map(|i| i.block_number),
            Some(11)
        );
    }

    #[test]
    fn corrupt_checkpoint_is_rejected() {
        let dir = tempdir("bad");
        let snap = sample_plane(2, 2).freeze();
        let cursor = write(&dir, &snap).unwrap();
        let path = checkpoint_path(&dir, cursor);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        assert!(decode(&bytes).is_none(), "flipped byte must fail the CRC");
        // A CRC-valid file whose root does not match its leaves is also
        // rejected: re-CRC the tampered body.
        let mut bytes = std::fs::read(&path).unwrap();
        let body_len = bytes.len() - 4;
        bytes[40] ^= 0x01; // inside the first batch's fields
        let crc = crc32(&bytes[..body_len]);
        bytes[body_len..].copy_from_slice(&crc.to_be_bytes());
        assert!(decode(&bytes).is_none());
    }

    #[test]
    fn prune_keeps_the_newest_two_and_floor_tracks_the_oldest() {
        let dir = tempdir("prune");
        assert_eq!(floor(&dir), 0);
        let mut cursors = Vec::new();
        for n in 1..=4u64 {
            let snap = sample_plane(n, 2).freeze();
            cursors.push(write(&dir, &snap).unwrap());
        }
        let kept = list(&dir);
        assert_eq!(kept.len(), KEEP);
        assert_eq!(kept[0].0, cursors[2]);
        assert_eq!(kept[1].0, cursors[3]);
        assert_eq!(floor(&dir), cursors[2]);
        assert!(!dir.join("checkpoint.wckp.tmp").exists());
    }
}
