//! The stage-2 committer (paper §4.3, blockchain commitment).
//!
//! Runs lazily in the background: drains `(log_id, MRoot)` pairs from the
//! batcher, groups contiguous runs into a single `Update-Records`
//! transaction (amortizing the 21k base cost — the minimum-writing lever of
//! Figure 3 right), submits, and waits for the confirmed receipt before
//! recording the position as blockchain-committed.

use std::sync::Arc;

use crossbeam::channel::Receiver;
use wedge_chain::Gas;
use wedge_contracts::RootRecord;
use wedge_crypto::hash::Hash32;
use wedge_sim::SimInstant;

use super::state::CommitInfo;
use super::Shared;

/// One batch's pending stage-2 commitment.
pub(crate) struct Stage2Task {
    pub log_id: u64,
    pub root: Hash32,
    pub stage1_done: SimInstant,
}

/// The root a (possibly malicious) node will blockchain-commit for
/// `log_id`, given the honest root. Shared by the live batcher and the
/// restart-recovery path so a configured behaviour survives restarts.
pub(crate) fn stage2_root_for(
    behavior: crate::config::NodeBehavior,
    log_id: u64,
    honest_root: Hash32,
) -> Option<Hash32> {
    use crate::config::NodeBehavior;
    match behavior {
        NodeBehavior::OmitStage2 { .. } if behavior.affects(log_id) => None,
        NodeBehavior::CommitWrongRoot { .. } if behavior.affects(log_id) => Some(Hash32::keccak(
            &[honest_root.as_bytes().as_slice(), b"equivocation"].concat(),
        )),
        _ => Some(honest_root),
    }
}

/// Committer main loop: exits when the batcher hangs up and the queue is
/// drained.
pub(crate) fn run(shared: Arc<Shared>, rx: Receiver<Stage2Task>) {
    while let Ok(first) = rx.recv() {
        let mut last_id = first.log_id;
        let mut group = vec![first];
        while group.len() < shared.config.stage2_max_group {
            match rx.try_recv() {
                Ok(task) => {
                    // Only contiguous runs share a transaction (the contract
                    // enforces sequential writes).
                    let contiguous = task.log_id == last_id + 1;
                    last_id = task.log_id;
                    group.push(task);
                    if !contiguous {
                        // Defensive: should not happen with a single batcher.
                        break;
                    }
                }
                Err(_) => break,
            }
        }
        commit_group(&shared, group);
    }
}

/// Submits one `Update-Records` transaction for a contiguous group and
/// waits for its confirmed receipt.
fn commit_group(shared: &Shared, group: Vec<Stage2Task>) {
    let start_idx = group[0].log_id;
    let roots: Vec<Hash32> = group.iter().map(|t| t.root).collect();
    let calldata = RootRecord::update_records_calldata(start_idx, &roots);
    // 21k base + calldata + 20k per fresh word + margin.
    let gas_limit = Gas(120_000 + 25_000 * roots.len() as u64);
    shared.stats.lock().stage2_txs_submitted += 1;
    let submit = shared.chain.call_contract(
        shared.identity.secret_key(),
        shared.root_record,
        wedge_chain::Wei::ZERO,
        calldata,
        gas_limit,
    );
    let receipt = match submit.and_then(|hash| shared.chain.wait_for_receipt(hash)) {
        Ok(receipt) if receipt.status.is_success() => receipt,
        _ => {
            shared.stats.lock().stage2_failed += group.len() as u64;
            return;
        }
    };
    let committed_at = shared.chain.clock().now();
    {
        let mut state = shared.state.write();
        for task in &group {
            state.commits.insert(
                task.log_id,
                CommitInfo {
                    tx_hash: receipt.tx_hash,
                    block_number: receipt.block_number,
                    stage2_latency: committed_at.since(task.stage1_done),
                },
            );
        }
    }
    let mut stats = shared.stats.lock();
    stats.stage2_committed += group.len() as u64;
    stats.stage2_gas = stats.stage2_gas.saturating_add(receipt.gas_used);
    stats.stage2_fees = stats.stage2_fees.saturating_add(receipt.fee);
    for task in &group {
        stats
            .stage2_latencies
            .push(committed_at.since(task.stage1_done));
    }
}
