//! The stage-2 committer (paper §4.3, blockchain commitment), rebuilt as a
//! fault-tolerant retry subsystem.
//!
//! Runs lazily in the background: drains `(log_id, MRoot)` pairs from the
//! batcher into an ordered backlog, groups contiguous runs into a single
//! `Update-Records` transaction (amortizing the 21k base cost — the
//! minimum-writing lever of Figure 3 right), submits, and waits for the
//! confirmed receipt before recording the position as blockchain-committed.
//!
//! LMT's safety story rests on every flushed position *eventually* reaching
//! the Root Record, so a failed transaction is never dropped on first
//! contact. Instead the committer:
//!
//! 1. **classifies** the failure — submission error (never reached the
//!    mempool), on-chain revert, or receipt timeout;
//! 2. **reconciles** against the contract's on-chain tail — a timed-out
//!    transaction may well have landed, and those positions are marked
//!    committed rather than re-sent (the Root Record's single-write
//!    invariant would reject a duplicate anyway);
//! 3. **re-queues** what remains with bounded exponential backoff + jitter
//!    (see [`crate::config::Stage2RetryPolicy`]);
//! 4. abandons a group — counting `stage2_failed` — only once
//!    `max_attempts` consecutive attempts failed: `stage2_failed` means
//!    "retries exhausted", not "first attempt unlucky".

use std::collections::BTreeMap;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::{Receiver, TryRecvError};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use wedge_chain::{ChainError, Gas, Receipt, TxHash};
use wedge_contracts::RootRecord;
use wedge_crypto::hash::Hash32;
use wedge_sim::SimInstant;

use super::state::CommitInfo;
use super::Shared;

/// One batch's pending stage-2 commitment.
pub(crate) struct Stage2Task {
    pub log_id: u64,
    pub root: Hash32,
    pub stage1_done: SimInstant,
}

/// The root a (possibly malicious) node will blockchain-commit for
/// `log_id`, given the honest root. Shared by the live batcher and the
/// restart-recovery path so a configured behaviour survives restarts.
pub(crate) fn stage2_root_for(
    behavior: crate::config::NodeBehavior,
    log_id: u64,
    honest_root: Hash32,
) -> Option<Hash32> {
    use crate::config::NodeBehavior;
    match behavior {
        NodeBehavior::OmitStage2 { .. } if behavior.affects(log_id) => None,
        NodeBehavior::CommitWrongRoot { .. } if behavior.affects(log_id) => Some(Hash32::keccak(
            &[honest_root.as_bytes().as_slice(), b"equivocation"].concat(),
        )),
        _ => Some(honest_root),
    }
}

/// How one `Update-Records` attempt failed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum FailureKind {
    /// The transaction never entered the mempool.
    Submission,
    /// The transaction was mined but reverted.
    Revert,
    /// No confirmed receipt within the chain's patience window — the
    /// transaction may or may not have landed.
    Timeout,
}

/// The contiguous run of log ids at the head of the backlog, capped at
/// `max_group`. Positions beyond a gap are deferred to a later group: the
/// Root Record writes strictly sequentially, so committing them under
/// `update_records_calldata(start_idx, …)` would bind their roots to the
/// wrong on-chain indices.
fn contiguous_head(pending: &BTreeMap<u64, Stage2Task>, max_group: usize) -> Vec<u64> {
    let mut ids = Vec::new();
    for (&id, _) in pending.iter().take(max_group.max(1)) {
        match ids.last() {
            Some(&last) if id != last + 1 => break,
            _ => ids.push(id),
        }
    }
    ids
}

/// The committer's mutable state: the ordered backlog plus the retry
/// schedule for its head group.
struct Committer<'a> {
    shared: &'a Shared,
    /// Flushed-but-uncommitted positions, ordered by log id.
    pending: BTreeMap<u64, Stage2Task>,
    /// Failed attempts of the current head group.
    attempt: u32,
    /// The log id `attempt` refers to; progress at the head resets it.
    attempt_head: Option<u64>,
    /// Earliest simulated instant the next submission may happen.
    next_due: SimInstant,
    /// Seeded jitter source (deterministic across runs).
    rng: SmallRng,
}

/// Post-group-commit tier maintenance state, shared by the direct stage-2
/// committer and the cluster `epoch_commit` path (whichever advances the
/// blockchain-committed frontier drives sealing/checkpoint/retention).
pub(crate) struct TierMaintenance {
    /// Group commits since the last two-plane checkpoint.
    groups_since_ckpt: u64,
    /// When the last checkpoint was written (simulated time).
    last_ckpt: SimInstant,
}

impl TierMaintenance {
    pub(crate) fn new(now: SimInstant) -> TierMaintenance {
        TierMaintenance {
            groups_since_ckpt: 0,
            last_ckpt: now,
        }
    }

    /// Every blockchain-committed position's records are immutable (the
    /// paper's two-plane commitment makes the frontier explicit), so this
    /// is where hot segments are sealed cold, the two-plane checkpoint
    /// cadence ticks, and cold segments past the punishment window are
    /// retired. All I/O happens on the calling (committer or epoch-commit)
    /// thread — never under the write-plane guard, never on the stage-1 or
    /// read paths.
    pub(crate) fn after_group_commit(&mut self, shared: &Shared) {
        let tier = shared.config.tier;
        let snap = shared.snapshot();
        // The committed frontier in *record* space: every record of every
        // contiguously-committed position is immutable.
        let frontier_log = snap.commits.contiguous();
        let frontier_record = match frontier_log
            .checked_sub(1)
            .and_then(|id| snap.batches.get(id as usize))
        {
            Some(batch) => batch.first_record + batch.count as u64,
            None => 0,
        };
        if tier.seal_on_commit && frontier_record > 0 {
            // Sealing verifies CRCs as it copies; an error here is a disk
            // problem the next group commit will retry.
            let _ = shared.store.seal_up_to(frontier_record);
        }
        self.groups_since_ckpt += 1;
        let now = shared.chain.clock().now();
        let due_by_groups = tier.checkpoint_every_groups > 0
            && self.groups_since_ckpt >= tier.checkpoint_every_groups;
        let due_by_time = now.since(self.last_ckpt) >= tier.checkpoint_interval;
        if (due_by_groups || due_by_time) && shared.write_checkpoint().is_ok() {
            self.groups_since_ckpt = 0;
            self.last_ckpt = now;
        }
        if let Some(retain) = tier.retain_groups {
            // Retire records of positions more than `retain` groups behind
            // the frontier — but never past what the kept checkpoints can
            // restore (a restart must always find its state on disk).
            let keep_from_log = frontier_log.saturating_sub(retain);
            let retain_record = snap
                .batches
                .get(keep_from_log as usize)
                .map(|batch| batch.first_record)
                .unwrap_or(0);
            let upto = retain_record.min(shared.ckpt_floor.load(Ordering::Acquire));
            if upto > 0 {
                let _ = shared.store.retire_up_to(upto);
            }
        }
    }
}

/// Committer main loop: exits when the batcher hangs up, the queue is
/// drained, and every backlog entry is committed or exhausted.
pub(crate) fn run(shared: Arc<Shared>, rx: Receiver<Stage2Task>) {
    let mut c = Committer {
        shared: &shared,
        pending: BTreeMap::new(),
        attempt: 0,
        attempt_head: None,
        next_due: shared.chain.clock().now(),
        rng: SmallRng::seed_from_u64(0x5354_4147_4532_5254), // "STAGE2RT"
    };
    let mut rx_open = true;
    loop {
        if c.pending.is_empty() {
            if !rx_open {
                break;
            }
            // Idle: block until the batcher hands over work or hangs up.
            match rx.recv() {
                Ok(task) => {
                    c.pending.insert(task.log_id, task);
                }
                Err(_) => break,
            }
        }
        // Opportunistically drain whatever else is queued.
        rx_open = drain(&rx, &mut c.pending, rx_open);
        // Honour the backoff deadline, still accepting new work meanwhile.
        loop {
            let now = shared.chain.clock().now();
            if now >= c.next_due {
                break;
            }
            let quantum = c.next_due.since(now).min(Duration::from_millis(100));
            shared.chain.clock().sleep(quantum);
            rx_open = drain(&rx, &mut c.pending, rx_open);
        }
        c.attempt_head_group();
    }
}

/// Drains every queued task without blocking; returns whether the channel
/// is still open.
fn drain(rx: &Receiver<Stage2Task>, pending: &mut BTreeMap<u64, Stage2Task>, open: bool) -> bool {
    if !open {
        return false;
    }
    loop {
        match rx.try_recv() {
            Ok(task) => {
                pending.insert(task.log_id, task);
            }
            Err(TryRecvError::Empty) => return true,
            Err(TryRecvError::Disconnected) => return false,
        }
    }
}

impl Committer<'_> {
    /// Submits one `Update-Records` transaction for the head group and
    /// handles the outcome.
    fn attempt_head_group(&mut self) {
        let group = contiguous_head(&self.pending, self.shared.config.stage2_max_group);
        let Some(&start_idx) = group.first() else {
            return;
        };
        // Progress at the head (including partial progress from a
        // reconciled timeout) starts a fresh attempt budget.
        if self.attempt_head != Some(start_idx) {
            self.attempt = 0;
            self.attempt_head = Some(start_idx);
        }
        let roots: Vec<Hash32> = group
            .iter()
            .filter_map(|id| self.pending.get(id).map(|t| t.root))
            .collect();
        let calldata = RootRecord::update_records_calldata(start_idx, &roots);
        // 21k base + calldata + 20k per fresh word + margin.
        let gas_limit = Gas(120_000 + 25_000 * roots.len() as u64);
        {
            let mut stats = self.shared.stats.lock();
            stats.stage2_txs_submitted += 1;
            if self.attempt > 0 {
                stats.stage2_retries += 1;
            }
        }
        let submit = self.shared.chain.call_contract(
            self.shared.identity.secret_key(),
            self.shared.root_record,
            wedge_chain::Wei::ZERO,
            calldata,
            gas_limit,
        );
        let failure = match submit {
            // A `call_contract` error means the transaction never reached
            // the mempool — a submission-side failure whatever the cause.
            Err(_) => (FailureKind::Submission, None),
            Ok(hash) => match self.shared.chain.wait_for_receipt(hash) {
                Ok(receipt) if receipt.status.is_success() => {
                    self.commit_group(&group, &receipt, true);
                    self.next_due = self.shared.chain.clock().now();
                    return;
                }
                Ok(_) => (FailureKind::Revert, Some(hash)),
                Err(ChainError::ReceiptTimeout(_)) => (FailureKind::Timeout, Some(hash)),
                Err(_) => (FailureKind::Submission, Some(hash)),
            },
        };
        self.handle_failure(&group, failure.0, failure.1);
    }

    /// Marks every position of `group` blockchain-committed under
    /// `receipt`, removing it from the backlog. `charge` controls whether
    /// the receipt's gas/fee are added to the stats (false when the same
    /// receipt was already charged by an earlier reconciliation).
    fn commit_group(&mut self, group: &[u64], receipt: &Receipt, charge: bool) {
        let committed_at = self.shared.chain.clock().now();
        let tasks: Vec<Stage2Task> = group
            .iter()
            .filter_map(|id| self.pending.remove(id))
            .collect();
        // One write-plane mutation (and one published snapshot) for the
        // whole group.
        self.shared.mutate(|plane| {
            for task in &tasks {
                plane.commits.insert(
                    task.log_id,
                    CommitInfo {
                        tx_hash: receipt.tx_hash,
                        block_number: receipt.block_number,
                        stage2_latency: committed_at.since(task.stage1_done),
                    },
                );
            }
        });
        {
            let mut stats = self.shared.stats.lock();
            stats.stage2_committed += tasks.len() as u64;
            if charge {
                stats.stage2_gas = stats.stage2_gas.saturating_add(receipt.gas_used);
                stats.stage2_fees = stats.stage2_fees.saturating_add(receipt.fee);
            }
            for task in &tasks {
                stats
                    .stage2_latencies
                    .push(committed_at.since(task.stage1_done));
            }
        }
        self.shared
            .maintenance
            .lock()
            .after_group_commit(self.shared);
    }

    /// Classifies a failed attempt, reconciles against the on-chain tail
    /// (a timed-out transaction may have landed), and either re-queues the
    /// remainder with backoff or — after `max_attempts` — abandons it.
    fn handle_failure(&mut self, group: &[u64], kind: FailureKind, tx_hash: Option<TxHash>) {
        {
            let mut stats = self.shared.stats.lock();
            match kind {
                FailureKind::Submission => stats.stage2_submission_errors += 1,
                FailureKind::Revert => stats.stage2_reverts += 1,
                FailureKind::Timeout => stats.stage2_timeouts += 1,
            }
        }
        // Partial progress: positions below the contract's tail already
        // landed (e.g. via a timed-out-but-mined transaction, or a
        // pre-restart one) — split them off instead of re-sending.
        let tail = self.onchain_tail();
        let landed: Vec<u64> = group.iter().copied().filter(|id| *id < tail).collect();
        if !landed.is_empty() {
            // Recover the landing receipt when we know the transaction;
            // its gas/fee were genuinely paid and belong in the stats.
            let receipt = tx_hash
                .and_then(|h| self.shared.chain.receipt(h))
                .filter(|r| r.status.is_success());
            match receipt {
                Some(receipt) => self.commit_group(&landed, &receipt, true),
                None => {
                    // Landed through a transaction we cannot identify
                    // (pre-restart, or a competing submission): record the
                    // commitment without per-tx provenance.
                    let synthetic = synthetic_receipt();
                    self.commit_group(&landed, &synthetic, false);
                }
            }
        }
        let remaining: Vec<u64> = group.iter().copied().filter(|id| *id >= tail).collect();
        let now = self.shared.chain.clock().now();
        if remaining.is_empty() {
            // The whole group landed after all — no retry needed.
            self.next_due = now;
            return;
        }
        self.attempt = self.attempt.saturating_add(1);
        let policy = self.shared.config.stage2_retry;
        if self.attempt >= policy.max_attempts.max(1) {
            // Retries exhausted: only now does the commitment count as
            // failed.
            for id in &remaining {
                self.pending.remove(id);
            }
            self.shared.stats.lock().stage2_failed += remaining.len() as u64;
            self.attempt = 0;
            self.attempt_head = None;
            self.next_due = now;
            return;
        }
        let backoff = self.jittered(policy.backoff_for(self.attempt));
        {
            let mut stats = self.shared.stats.lock();
            stats.stage2_requeued += remaining.len() as u64;
            stats.record_backoff(self.attempt);
        }
        self.next_due = now.add(backoff);
    }

    /// The Root Record's current tail index (0 when unreadable).
    fn onchain_tail(&self) -> u64 {
        self.shared
            .chain
            .view(self.shared.root_record, &RootRecord::get_tail_calldata())
            .ok()
            .and_then(|out| RootRecord::decode_tail(&out))
            .unwrap_or(0)
    }

    /// Applies the policy's relative jitter to a backoff duration.
    fn jittered(&mut self, backoff: Duration) -> Duration {
        let jitter = self.shared.config.stage2_retry.jitter;
        if jitter <= 0.0 {
            return backoff;
        }
        let jitter = jitter.min(0.95);
        let factor = 1.0 + self.rng.gen_range(-jitter..=jitter);
        Duration::from_secs_f64((backoff.as_secs_f64() * factor).max(0.0))
    }
}

/// A placeholder receipt for positions that landed through a transaction
/// the committer cannot identify (mirrors the restart-recovery path).
fn synthetic_receipt() -> Receipt {
    Receipt {
        tx_hash: Hash32::ZERO,
        status: wedge_chain::ExecStatus::Success,
        gas_used: Gas::ZERO,
        fee: wedge_chain::Wei::ZERO,
        block_number: 0,
        output: Vec::new(),
        logs: Vec::new(),
        contract_address: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task(log_id: u64) -> Stage2Task {
        Stage2Task {
            log_id,
            root: Hash32([log_id as u8; 32]),
            stage1_done: SimInstant::EPOCH,
        }
    }

    fn backlog(ids: &[u64]) -> BTreeMap<u64, Stage2Task> {
        ids.iter().map(|&id| (id, task(id))).collect()
    }

    #[test]
    fn head_group_is_contiguous_run() {
        assert_eq!(contiguous_head(&backlog(&[3, 4, 5]), 16), vec![3, 4, 5]);
        assert_eq!(contiguous_head(&backlog(&[3, 4, 5]), 2), vec![3, 4]);
        assert_eq!(contiguous_head(&BTreeMap::new(), 16), Vec::<u64>::new());
    }

    /// Regression (PR 2 satellite): a non-contiguous task must be deferred
    /// to a later group — the old committer pushed it into the group
    /// *before* checking contiguity, binding its root to the wrong
    /// on-chain index inside `update_records_calldata(start_idx, …)`.
    #[test]
    fn non_contiguous_task_deferred_to_next_group() {
        let group = contiguous_head(&backlog(&[0, 1, 5]), 16);
        assert_eq!(group, vec![0, 1], "5 must wait for 2..=4");
        let group = contiguous_head(&backlog(&[7, 9]), 16);
        assert_eq!(group, vec![7], "9 never shares 7's start_idx");
    }
}
