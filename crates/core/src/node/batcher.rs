//! The stage-1 flush pipeline (paper §4.3, append requests).
//!
//! Requests accumulate into the *current batch*; a batch flushes when it
//! reaches `batch_size` or after `batch_linger` of quiet. A flushed batch
//! then flows through three pipelined stages connected by bounded channels
//! (depth [`crate::NodeConfig::pipeline_depth`]), so batch N+1's signature
//! verification overlaps batch N's fsync and replication:
//!
//! 1. **collect** — batch requests, verify publisher signatures
//!    (parallel), reject invalid ones;
//! 2. **persist** — build the batch's Merkle tree (parallel above
//!    [`crate::NodeConfig::merkle_parallel_cutoff`]), kick off the replica
//!    fan-out, persist header + leaves to the local store (link #2 of
//!    Figure 2) while the replicas work, then join both — the stage pays
//!    max(local, replication) instead of the sum;
//! 3. **deliver** — sign one response per request (parallel), wait for the
//!    fsync covering the batch (instant except under
//!    [`wedge_storage::SyncPolicy::GroupCommit`]), register the batch in
//!    the write plane (publishing a new read snapshot), deliver the
//!    replies (completing link #1 — stage-1 / off-chain commitment), and
//!    hand the `(log_id, MRoot)` pair to the stage-2 committer (link #3).
//!
//! Shutdown drains exactly-once by construction: when the ingest channel
//! disconnects, collect flushes its partial batch and drops its sender;
//! persist drains, exits, and drops *its* sender; deliver drains and exits.
//! Every accepted request gets exactly one reply — success from deliver, or
//! an error from deliver when its batch failed to persist.

use std::sync::Arc;

use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender, TrySendError};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use wedge_merkle::MerkleTree;

use crate::config::NodeBehavior;
use crate::types::{EntryId, SignedResponse};

use super::stage2::Stage2Task;
use super::state::{encode_header, encode_leaf, BatchMeta};
use super::{tamper, IngestMsg, Shared};

/// A signature-verified batch, bound for the persist stage.
struct VerifiedBatch {
    msgs: Vec<IngestMsg>,
    /// Leaf encodings, index-aligned with `msgs`.
    leaves: Vec<Vec<u8>>,
}

/// A persist-stage outcome, bound for the deliver stage. Failures travel
/// the same channel so replies stay in submission order.
enum PersistOutcome {
    /// Durable on the local store (and replicated, when configured).
    Persisted {
        msgs: Vec<IngestMsg>,
        tree: MerkleTree,
        log_id: u64,
        first_record: u64,
    },
    /// The local append failed; `log_id` was not consumed.
    Failed { msgs: Vec<IngestMsg>, error: String },
}

/// Batcher main loop: runs the three pipeline stages on scoped threads and
/// returns once all of them have drained and exited.
pub(crate) fn run(shared: Arc<Shared>, rx: Receiver<IngestMsg>, stage2: Sender<Stage2Task>) {
    let depth = shared.config.pipeline_depth.max(1);
    let (persist_tx, persist_rx) = bounded::<VerifiedBatch>(depth);
    let (deliver_tx, deliver_rx) = bounded::<PersistOutcome>(depth);
    let shared = &shared;
    let _ = crossbeam::thread::scope(move |scope| {
        scope.spawn(move |_| collect_stage(shared, rx, persist_tx));
        scope.spawn(move |_| persist_stage(shared, persist_rx, deliver_tx));
        scope.spawn(move |_| deliver_stage(shared, deliver_rx, stage2));
    });
}

/// Hands a value downstream, counting a `pipeline_stalls` when the bounded
/// queue is full and the send has to block. Returns the value when the
/// receiving stage is gone (unreachable while the scope is alive — each
/// receiver outlives its senders — but never silently dropped).
fn send_downstream<T>(shared: &Shared, tx: &Sender<T>, value: T) -> Result<(), T> {
    match tx.try_send(value) {
        Ok(()) => Ok(()),
        Err(TrySendError::Full(value)) => {
            shared.stats.lock().pipeline_stalls += 1;
            tx.send(value).map_err(|e| e.0)
        }
        Err(TrySendError::Disconnected(value)) => Err(value),
    }
}

/// Stage 1: accumulate requests into batches, verify signatures, reject
/// invalid requests, and hand verified batches to the persist stage.
fn collect_stage(shared: &Shared, rx: Receiver<IngestMsg>, persist_tx: Sender<VerifiedBatch>) {
    let mut current: Vec<IngestMsg> = Vec::with_capacity(shared.config.batch_size);
    loop {
        match rx.recv_timeout(shared.config.batch_linger) {
            Ok(msg) => {
                current.push(msg);
                if current.len() >= shared.config.batch_size {
                    verify_and_forward(shared, &mut current, &persist_tx);
                }
            }
            Err(RecvTimeoutError::Timeout) => {
                if !current.is_empty() {
                    verify_and_forward(shared, &mut current, &persist_tx);
                }
            }
            Err(RecvTimeoutError::Disconnected) => {
                if !current.is_empty() {
                    verify_and_forward(shared, &mut current, &persist_tx);
                }
                break; // drops persist_tx: the persist stage drains and exits
            }
        }
    }
}

/// Verifies one batch's publisher signatures (parallel), replies to the
/// rejects, and forwards the survivors.
fn verify_and_forward(
    shared: &Shared,
    current: &mut Vec<IngestMsg>,
    persist_tx: &Sender<VerifiedBatch>,
) {
    let mut batch = std::mem::take(current);
    if shared.config.verify_requests {
        let requests: Vec<&crate::types::AppendRequest> =
            batch.iter().map(|m| &m.request).collect();
        let verdicts = shared.pool.map(&requests, |req| req.verify().is_ok());
        let mut kept = Vec::with_capacity(batch.len());
        let mut rejected = Vec::new();
        for (msg, ok) in batch.into_iter().zip(verdicts) {
            if ok {
                kept.push(msg);
            } else {
                rejected.push(msg);
            }
        }
        if !rejected.is_empty() {
            // Count before replying so observers never see a rejection
            // reply ahead of its counter.
            shared.stats.lock().requests_rejected += rejected.len() as u64;
            for msg in rejected {
                (msg.reply)(Err("invalid request signature".into()));
            }
        }
        batch = kept;
    }
    if batch.is_empty() {
        return;
    }
    let leaves: Vec<Vec<u8>> = batch.iter().map(|m| m.request.leaf_bytes()).collect();
    if let Err(lost) = send_downstream(
        shared,
        persist_tx,
        VerifiedBatch {
            msgs: batch,
            leaves,
        },
    ) {
        for msg in lost.msgs {
            (msg.reply)(Err("node pipeline stopped".into()));
        }
    }
}

/// Stage 2: Merkle tree, durable local append, replica fan-out. Owns the
/// log-position counter — a position is consumed only by a successful
/// append, so a persist failure leaves the sequence gapless.
fn persist_stage(
    shared: &Shared,
    persist_rx: Receiver<VerifiedBatch>,
    deliver_tx: Sender<PersistOutcome>,
) {
    // The only writer of new positions; seeded once from the recovered
    // state. Registration (deliver stage) trails this counter by at most
    // the pipeline depth.
    let mut next_log_id = shared.snapshot().batches.len() as u64;
    let cutoff = shared.config.merkle_parallel_cutoff;
    while let Ok(VerifiedBatch { msgs, leaves }) = persist_rx.recv() {
        // `msgs` was checked non-empty by the collect stage, the only
        // failure mode of the builder.
        let merkle_start = std::time::Instant::now();
        let (tree, par_chunks) =
            MerkleTree::from_leaves_parallel_counted(&leaves, &shared.pool, cutoff)
                // lint: allow(panic) — non-empty batch invariant upheld upstream
                .expect("non-empty batch");
        let merkle_elapsed = merkle_start.elapsed();
        let root = tree.root();
        let log_id = next_log_id;

        let mut records = Vec::with_capacity(leaves.len() + 1);
        records.push(encode_header(log_id, leaves.len() as u32, &root));
        records.extend(leaves.iter().map(|l| encode_leaf(l)));
        let records = Arc::new(records);

        // Overlap: hand the batch to the replicas *before* paying for local
        // durability, then join both below — the stage costs
        // max(local, replication) instead of the sum. Should the local
        // append then fail, the replicas hold a superset of the primary
        // log; they are crash-recovery copies, not the ground truth, so a
        // never-acknowledged batch on a replica is harmless.
        let overlapping = shared.config.overlap_replication && shared.replicator.is_some();
        let handle = match &shared.replicator {
            Some(replicator) if overlapping => {
                Some(replicator.replicate_begin(Arc::clone(&records)))
            }
            _ => None,
        };
        let local_start = std::time::Instant::now();
        let append_result = shared.store.append_batch(&records[..]);
        let local_elapsed = local_start.elapsed();

        let outcome = match append_result {
            Ok(header_record) => {
                next_log_id += 1;
                // Replicate before acknowledging (the paper's
                // stronger-liveness configuration waits for replica acks).
                if let Some(replicator) = &shared.replicator {
                    let acked = match handle {
                        Some(handle) => handle.wait(),
                        // Sequential (pre-overlap) path, kept selectable for
                        // honest before/after benchmarking.
                        None => replicator.replicate_begin(Arc::clone(&records)).wait(),
                    };
                    if acked < replicator.replica_count() {
                        shared.stats.lock().replication_shortfalls += 1;
                    }
                }
                PersistOutcome::Persisted {
                    msgs,
                    tree,
                    log_id,
                    first_record: header_record + 1,
                }
            }
            Err(err) => {
                // Storage is the node's ground truth: without a durable copy
                // no stage-1 response may be signed. Reject the batch (via
                // the deliver stage, keeping reply order) instead of taking
                // the node down.
                PersistOutcome::Failed {
                    msgs,
                    error: format!("local log append failed: {err}"),
                }
            }
        };
        {
            let mut stats = shared.stats.lock();
            stats.merkle_par_chunks += par_chunks;
            stats.merkle_hash_ns += merkle_elapsed.as_nanos() as u64;
            if overlapping {
                // Local persistence time that ran concurrently with the
                // in-flight replica sends.
                stats.replication_overlap_ns += local_elapsed.as_nanos() as u64;
            }
        }
        if let Err(lost) = send_downstream(shared, &deliver_tx, outcome) {
            let (msgs, error) = match lost {
                PersistOutcome::Persisted { msgs, .. } => (msgs, "node pipeline stopped".into()),
                PersistOutcome::Failed { msgs, error } => (msgs, error),
            };
            for msg in msgs {
                (msg.reply)(Err(error.clone()));
            }
        }
    }
    // deliver_tx drops here: the deliver stage drains and exits.
}

/// Stage 3: sign responses, register the batch (publishing a new read
/// snapshot *before* any reply goes out, so a read issued right after a
/// response always succeeds), deliver replies, queue stage-2 work.
fn deliver_stage(
    shared: &Shared,
    deliver_rx: Receiver<PersistOutcome>,
    stage2: Sender<Stage2Task>,
) {
    let mut rng = SmallRng::seed_from_u64(0x5745_4447_4542_4c4b); // "WEDGEBLK"
    while let Ok(outcome) = deliver_rx.recv() {
        let (batch, tree, log_id, first_record) = match outcome {
            PersistOutcome::Persisted {
                msgs,
                tree,
                log_id,
                first_record,
            } => (msgs, tree, log_id, first_record),
            PersistOutcome::Failed { msgs, error } => {
                shared.stats.lock().requests_rejected += msgs.len() as u64;
                for msg in msgs {
                    (msg.reply)(Err(error.clone()));
                }
                continue;
            }
        };
        let root = tree.root();

        // Assemble proofs and leaves in parallel, then batch-sign the
        // response digests — the batch path shares one scalar and one field
        // inversion per chunk and emits signature bytes identical to
        // per-item signing.
        let tampering = matches!(shared.config.behavior, NodeBehavior::TamperResponses { .. })
            && shared.config.behavior.affects(log_id);
        let node_key = *shared.identity.secret_key();
        let responses: Vec<SignedResponse> = {
            let tree = &tree;
            let items: Vec<(usize, &crate::types::AppendRequest)> =
                batch.iter().map(|m| &m.request).enumerate().collect();
            let prepared = shared.pool.map(&items, move |(offset, request)| {
                let mut leaf = request.leaf_bytes();
                if tampering {
                    tamper(&mut leaf);
                }
                // lint: allow(panic) — `offset` enumerates the same batch
                // the tree was built from, so it is always in range
                let proof = tree.prove(*offset).expect("offset in range");
                (
                    EntryId {
                        log_id,
                        offset: *offset as u32,
                    },
                    root,
                    proof,
                    leaf,
                )
            });
            SignedResponse::sign_batch(&node_key, prepared, shared.pool.workers())
        };

        // Optional simulated response-network delay (one message per flush).
        let delay = {
            use rand::Rng as _;
            let _ = rng.gen::<u8>(); // keep rng state moving even for Zero
            shared
                .config
                .response_latency
                .sample(&mut rng, responses.iter().map(|r| r.leaf.len()).sum())
        };
        if !delay.is_zero() {
            std::thread::sleep(delay);
        }

        // Group-commit reply-release rule: no reply (and no snapshot
        // registration) may be released before the fsync covering the
        // batch's records completed. Signing above already overlapped the
        // wait; every policy except `GroupCommit` returns immediately
        // because the persist stage provided its durability inline.
        let last_record = first_record + batch.len() as u64 - 1;
        let durable = shared.store.ensure_durable(last_record);

        // Register the batch in the write plane — one publication makes the
        // whole batch (metadata + sequence entries + entry count) visible
        // atomically; readers see all of it or none of it.
        let entries: Vec<((wedge_chain::Address, u64), u32)> = batch
            .iter()
            .enumerate()
            .map(|(offset, msg)| ((msg.request.publisher, msg.request.sequence), offset as u32))
            .collect();
        let count = batch.len() as u32;
        shared.mutate(move |plane| {
            plane.register_batch(
                BatchMeta {
                    log_id,
                    first_record,
                    count,
                    tree,
                },
                entries,
            );
        });
        {
            let mut stats = shared.stats.lock();
            stats.entries_ingested += batch.len() as u64;
            stats.bytes_ingested += batch
                .iter()
                .map(|m| m.request.payload.len() as u64)
                .sum::<u64>();
            stats.batches_flushed += 1;
        }

        match durable {
            Ok(()) => {
                for (msg, response) in batch.into_iter().zip(responses) {
                    (msg.reply)(Ok(response));
                }
            }
            Err(err) => {
                // The batch stays registered (log positions must remain
                // dense) but was never confirmed durable; acknowledging it
                // would break the reply ⇒ durable invariant. Fail the
                // replies instead — to a client this is indistinguishable
                // from a node crash before the response.
                let error = format!("durability sync failed: {err}");
                shared.stats.lock().requests_rejected += batch.len() as u64;
                for msg in batch {
                    (msg.reply)(Err(error.clone()));
                }
            }
        }

        // Stage 2 hand-off (omitted under the omission attack).
        if let Some(stage2_root) =
            super::stage2::stage2_root_for(shared.config.behavior, log_id, root)
        {
            let _ = stage2.send(Stage2Task {
                log_id,
                root: stage2_root,
                stage1_done: shared.chain.clock().now(),
            });
        }
    }
}
