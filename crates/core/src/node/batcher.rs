//! The batching + stage-1 pipeline (paper §4.3, append requests).
//!
//! Requests accumulate into the *current batch*; a batch flushes when it
//! reaches `batch_size` or after `batch_linger` of quiet. Flushing:
//!
//! 1. verify publisher signatures (parallel),
//! 2. build the batch's Merkle tree,
//! 3. persist header + leaves to the local store (link #2 of Figure 2),
//! 4. fan the batch out to replicas (if configured),
//! 5. sign one response per request (parallel) and deliver them
//!    (completing link #1 — stage-1 / off-chain commitment),
//! 6. hand the `(log_id, MRoot)` pair to the stage-2 committer (link #3).

use std::sync::Arc;

use crossbeam::channel::{Receiver, RecvTimeoutError, Sender};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use wedge_merkle::MerkleTree;

use crate::config::NodeBehavior;
use crate::types::{EntryId, SignedResponse};
use crate::util::parallel_map;

use super::stage2::Stage2Task;
use super::state::{encode_header, encode_leaf, BatchMeta};
use super::{tamper, IngestMsg, Shared};

/// Batcher main loop.
pub(crate) fn run(shared: Arc<Shared>, rx: Receiver<IngestMsg>, stage2: Sender<Stage2Task>) {
    let mut current: Vec<IngestMsg> = Vec::with_capacity(shared.config.batch_size);
    let mut rng = SmallRng::seed_from_u64(0x5745_4447_4542_4c4b); // "WEDGEBLK"
    loop {
        match rx.recv_timeout(shared.config.batch_linger) {
            Ok(msg) => {
                current.push(msg);
                if current.len() >= shared.config.batch_size {
                    flush(&shared, &mut current, &stage2, &mut rng);
                }
            }
            Err(RecvTimeoutError::Timeout) => {
                if !current.is_empty() {
                    flush(&shared, &mut current, &stage2, &mut rng);
                }
            }
            Err(RecvTimeoutError::Disconnected) => {
                if !current.is_empty() {
                    flush(&shared, &mut current, &stage2, &mut rng);
                }
                break;
            }
        }
    }
}

/// Flushes one batch through the stage-1 pipeline.
fn flush(
    shared: &Shared,
    current: &mut Vec<IngestMsg>,
    stage2: &Sender<Stage2Task>,
    rng: &mut SmallRng,
) {
    let mut batch = std::mem::take(current);

    // 1. Verify publisher signatures in parallel; reject invalid requests.
    if shared.config.verify_requests {
        let requests: Vec<&crate::types::AppendRequest> =
            batch.iter().map(|m| &m.request).collect();
        let verdicts = parallel_map(&requests, shared.config.worker_threads, |req| {
            req.verify().is_ok()
        });
        let mut kept = Vec::with_capacity(batch.len());
        let mut rejected = Vec::new();
        for (msg, ok) in batch.into_iter().zip(verdicts) {
            if ok {
                kept.push(msg);
            } else {
                rejected.push(msg);
            }
        }
        if !rejected.is_empty() {
            // Count before replying so observers never see a rejection
            // reply ahead of its counter.
            shared.stats.lock().requests_rejected += rejected.len() as u64;
            for msg in rejected {
                (msg.reply)(Err("invalid request signature".into()));
            }
        }
        batch = kept;
    }
    if batch.is_empty() {
        return;
    }

    // 2. Merkle tree over the leaf encodings.
    let leaves: Vec<Vec<u8>> = batch.iter().map(|m| m.request.leaf_bytes()).collect();
    // lint: allow(panic) — `batch` (and hence `leaves`) was checked non-empty
    // just above, the only failure mode of `from_leaves`
    let tree = MerkleTree::from_leaves(&leaves).expect("non-empty batch");
    let root = tree.root();

    // Reserve the next log position.
    let log_id = shared.state.read().batches.len() as u64;

    // 3. Persist: header record first, then one record per leaf.
    let mut records = Vec::with_capacity(leaves.len() + 1);
    records.push(encode_header(log_id, leaves.len() as u32, &root));
    records.extend(leaves.iter().map(|l| encode_leaf(l)));
    let header_record = match shared.store.append_batch(&records) {
        Ok(id) => id,
        Err(err) => {
            // Storage is the node's ground truth: without a durable copy no
            // stage-1 response may be signed. Reject the batch instead of
            // taking the node down.
            shared.stats.lock().requests_rejected += batch.len() as u64;
            for msg in batch {
                (msg.reply)(Err(format!("local log append failed: {err}")));
            }
            return;
        }
    };
    let first_record = header_record + 1;

    // 4. Replicate before acknowledging (the paper's stronger-liveness
    //    configuration waits for replica acks).
    if let Some(replicator) = &shared.replicator {
        let acked = replicator.replicate_sync(records);
        if acked < replicator.replica_count() {
            shared.stats.lock().replication_shortfalls += 1;
        }
    }

    // 5. Sign responses in parallel and deliver.
    let tampering = matches!(shared.config.behavior, NodeBehavior::TamperResponses { .. })
        && shared.config.behavior.affects(log_id);
    let node_key = *shared.identity.secret_key();
    let responses: Vec<SignedResponse> = {
        let tree = &tree;
        let items: Vec<(usize, &crate::types::AppendRequest)> =
            batch.iter().map(|m| &m.request).enumerate().collect();
        parallel_map(
            &items,
            shared.config.worker_threads,
            move |(offset, request)| {
                let mut leaf = request.leaf_bytes();
                if tampering {
                    tamper(&mut leaf);
                }
                // lint: allow(panic) — `offset` enumerates the same batch the
                // tree was built from, so it is always in range
                let proof = tree.prove(*offset).expect("offset in range");
                SignedResponse::sign(
                    &node_key,
                    EntryId {
                        log_id,
                        offset: *offset as u32,
                    },
                    root,
                    proof,
                    leaf,
                )
            },
        )
    };

    // Optional simulated response-network delay (one message per flush).
    let delay = {
        use rand::Rng as _;
        let _ = rng.gen::<u8>(); // keep rng state moving even for Zero
        shared
            .config
            .response_latency
            .sample(rng, responses.iter().map(|r| r.leaf.len()).sum())
    };
    if !delay.is_zero() {
        std::thread::sleep(delay);
    }

    // 6. Register state BEFORE replying so reads issued immediately after a
    //    response always succeed, and queue stage-2 work.
    {
        let mut state = shared.state.write();
        for (offset, msg) in batch.iter().enumerate() {
            state.seq_index.insert(
                (msg.request.publisher, msg.request.sequence),
                EntryId {
                    log_id,
                    offset: offset as u32,
                },
            );
        }
        state.batches.push(BatchMeta {
            log_id,
            first_record,
            count: batch.len() as u32,
            tree,
        });
    }
    {
        let mut stats = shared.stats.lock();
        stats.entries_ingested += batch.len() as u64;
        stats.bytes_ingested += batch
            .iter()
            .map(|m| m.request.payload.len() as u64)
            .sum::<u64>();
        stats.batches_flushed += 1;
    }

    for (msg, response) in batch.into_iter().zip(responses) {
        (msg.reply)(Ok(response));
    }

    // Stage 2 hand-off (omitted under the omission attack).
    let Some(stage2_root) = super::stage2::stage2_root_for(shared.config.behavior, log_id, root)
    else {
        return;
    };
    let _ = stage2.send(Stage2Task {
        log_id,
        root: stage2_root,
        stage1_done: shared.chain.clock().now(),
    });
}
