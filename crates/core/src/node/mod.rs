//! The Offchain Node (paper §4.3): batched stage-1 ingestion, asynchronous
//! stage-2 digest commitment, and the verified read/audit service.
//!
//! State is split across two planes (see `docs/architecture.md`): readers
//! load an immutable `Snapshot` with a single atomic version check — no
//! `RwLock` read guard is held on any hot read path — while the stage-1
//! pipeline and stage-2 committer mutate the write plane through
//! `Shared::mutate`, which publishes a fresh snapshot exactly once per
//! batch registration or group commit.

mod batcher;
mod checkpoint;
mod epoch;
mod snapshot;
mod stage2;
mod state;
mod stats;

pub use stats::NodeStats;

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam::channel::{unbounded, Sender};
use parking_lot::Mutex;
use wedge_chain::{Address, Chain};
use wedge_crypto::signer::Identity;
use wedge_crypto::PublicKey;
use wedge_merkle::RangeProof;
use wedge_storage::{LogStore, Replicator};

use crate::config::{NodeBehavior, NodeConfig, Stage2Mode};
use crate::error::CoreError;
use crate::types::{AppendRequest, CommitPhase, EntryId, SignedResponse};
use snapshot::{Snapshot, SnapshotCell, WritePlane};
use state::CommitInfo;

/// How a stage-1 outcome is delivered back to the submitter: invoked exactly
/// once, either with the signed response or a rejection reason. A callback
/// (rather than a channel) lets transports tag and route replies — the TCP
/// server forwards them onto sockets, local publishers into channels.
pub type ReplyFn = Box<dyn FnOnce(Result<SignedResponse, String>) + Send>;

/// A queued append with its reply continuation.
pub(crate) struct IngestMsg {
    pub request: AppendRequest,
    pub reply: ReplyFn,
}

/// State shared between the node's public API and its worker threads.
pub(crate) struct Shared {
    pub identity: Identity,
    pub config: NodeConfig,
    pub store: LogStore,
    /// Read plane: the current immutable snapshot. Load it once per
    /// request; never hold any lock across store reads or proof generation.
    pub read_plane: SnapshotCell,
    /// Write plane: mutate only through [`Shared::mutate`] so every change
    /// is published. The L6 lint forbids holding this guard across storage
    /// I/O, signing, or channel sends.
    pub write_plane: Mutex<WritePlane>,
    pub chain: Arc<Chain>,
    pub root_record: Address,
    pub stats: Mutex<NodeStats>,
    pub replicator: Option<Replicator>,
    /// Directory holding the two-plane checkpoints (`<data_dir>/checkpoints`).
    pub ckpt_dir: PathBuf,
    /// Oldest record cursor still covered by a kept checkpoint file — the
    /// retention policy never deletes records at or above this, so a
    /// restart can always restore from what is on disk.
    pub ckpt_floor: AtomicU64,
    /// Shared work pool for signature verification, Merkle construction,
    /// and response signing — sized to `worker_threads`, capped at the
    /// machine's parallelism.
    pub pool: wedge_pool::WorkPool,
    /// Tier maintenance cadence (seal/checkpoint/retire), driven by
    /// whichever path advances the blockchain-committed frontier: the
    /// direct stage-2 committer or the cluster `epoch_commit` path.
    pub maintenance: Mutex<stage2::TierMaintenance>,
    /// Stale-epoch guard for cluster mode: `last acknowledged epoch + 1`
    /// (0 = none yet). An `epoch_commit` for an older epoch is rejected —
    /// its group was re-reported under a newer epoch and acknowledging it
    /// would bind those positions to a superseded root-of-roots.
    pub epoch_seen: AtomicU64,
}

impl Shared {
    /// The current read-plane snapshot (one atomic version load on the hot
    /// path — see [`SnapshotCell::load`]).
    pub fn snapshot(&self) -> Arc<Snapshot> {
        self.read_plane.load()
    }

    /// Applies `f` to the write plane and publishes the resulting snapshot.
    ///
    /// Publication happens *while the plane guard is still held*: the guard
    /// serializes the two writers (stage-1 deliver stage, stage-2
    /// committer), so an older snapshot can never overwrite a newer one.
    /// `f` must not perform storage I/O, signing, or channel sends — the
    /// guard would stall every other writer (enforced lexically by lint
    /// L6 for closure bodies inside `.mutate(`).
    pub fn mutate<R>(&self, f: impl FnOnce(&mut WritePlane) -> R) -> R {
        let mut plane = self.write_plane.lock();
        let out = f(&mut plane);
        self.read_plane.publish(plane.freeze());
        drop(plane);
        self.stats.lock().snapshot_publishes += 1;
        out
    }

    /// Writes a durable checkpoint of the current snapshot (plus the
    /// store's locator-index sidecar) so the next restart replays only
    /// records past the checkpoint cursor. Works off the read plane — no
    /// write-plane lock is held across the file I/O.
    pub fn write_checkpoint(&self) -> Result<(), CoreError> {
        self.store.write_index_checkpoint()?;
        let snap = self.snapshot();
        checkpoint::write(&self.ckpt_dir, &snap)?;
        self.ckpt_floor
            .store(checkpoint::floor(&self.ckpt_dir), Ordering::Release);
        self.stats.lock().checkpoint_writes += 1;
        Ok(())
    }
}

/// The Offchain Node. Create with [`OffchainNode::start`]; share via `Arc`.
///
/// Dropping the node flushes any partial batch, drains the stage-2 queue,
/// and joins the worker threads.
pub struct OffchainNode {
    shared: Arc<Shared>,
    /// `None` once shutdown has begun; behind a mutex so
    /// [`OffchainNode::begin_shutdown`] works through a shared reference
    /// (e.g. while reader threads still borrow the node).
    ingest: Mutex<Option<Sender<IngestMsg>>>,
    handles: Vec<JoinHandle<()>>,
}

impl OffchainNode {
    /// Starts an Offchain Node: opens (or recovers) the store under
    /// `data_dir`, restores in-memory state from disk, and spawns the
    /// stage-1 pipeline and stage-2 committer threads.
    ///
    /// `root_record` must be a deployed [`wedge_contracts::RootRecord`]
    /// whose `offchain_address` is this node's identity.
    pub fn start(
        identity: Identity,
        config: NodeConfig,
        chain: Arc<Chain>,
        root_record: Address,
        data_dir: impl AsRef<Path>,
    ) -> Result<OffchainNode, CoreError> {
        let data_dir = data_dir.as_ref();
        let store = LogStore::open(data_dir.join("log"), config.store.clone())?;
        let ckpt_dir = data_dir.join("checkpoints");
        // O(tail) restart: restore the newest valid checkpoint and replay
        // only the records past its cursor. Without one, replay everything
        // (only valid while retention has not yet deleted any records —
        // retention is floor-bounded by the kept checkpoints, so reaching
        // this fallback with a retired prefix means the checkpoint files
        // were lost).
        let (mut plane, replayed) = match checkpoint::restore(&ckpt_dir, &store) {
            Some(restored) => {
                let mut plane = restored.plane;
                let replayed = state::replay_tail(&store, &mut plane, restored.cursor)?;
                (plane, replayed)
            }
            None => {
                if store.oldest() > 0 {
                    return Err(CoreError::RequestRejected(
                        "retention deleted records but no valid checkpoint covers them",
                    ));
                }
                let mut plane = WritePlane::default();
                let replayed = state::replay_tail(&store, &mut plane, 0)?;
                (plane, replayed)
            }
        };
        let replicator = if config.replicas > 0 {
            Some(Replicator::spawn(
                data_dir.join("replicas"),
                config.replicas,
                config.store.clone(),
                config.replica_link_delay,
            )?)
        } else {
            None
        };

        // Stage-2 resynchronization after a restart: positions the Root
        // Record already holds are marked committed; recovered-but-
        // uncommitted positions are re-queued for commitment (without this,
        // a crash between stage 1 and stage 2 would leave entries off-chain
        // forever). The write plane is still thread-private here, so it is
        // mutated directly; the first published snapshot below already
        // carries the reconciled state.
        //
        // In `Stage2Mode::Epoch` there is no per-node committer and the
        // node's RootRecord is not written: commits restore from the
        // checkpoint, and recovered-but-uncommitted positions simply stay
        // pending — the epoch coordinator re-collects them with the next
        // `epoch_report`, which derives the group from the same snapshot.
        let (stage2_tx, stage2_rx) = unbounded::<stage2::Stage2Task>();
        if config.stage2_mode == Stage2Mode::Direct {
            use wedge_contracts::RootRecord;
            let onchain_tail = chain
                .view(root_record, &RootRecord::get_tail_calldata())
                .ok()
                .and_then(|out| RootRecord::decode_tail(&out))
                .unwrap_or(0);
            let now = chain.clock().now();
            let recovered = plane.batches.len() as u64;
            for log_id in 0..recovered.min(onchain_tail) {
                plane.commits.insert_if_absent(
                    log_id,
                    CommitInfo {
                        tx_hash: wedge_crypto::Hash32::ZERO, // pre-restart tx, unknown
                        block_number: 0,
                        stage2_latency: Duration::ZERO,
                    },
                );
            }
            for log_id in onchain_tail..recovered {
                let Some(honest_root) = plane.batches.get(log_id as usize).map(|b| b.tree.root())
                else {
                    break;
                };
                if let Some(root) = stage2::stage2_root_for(config.behavior, log_id, honest_root) {
                    let _ = stage2_tx.send(stage2::Stage2Task {
                        log_id,
                        root,
                        stage1_done: now,
                    });
                }
            }
        }

        let pool = wedge_pool::WorkPool::new(config.worker_threads);
        let ckpt_floor = AtomicU64::new(checkpoint::floor(&ckpt_dir));
        let maintenance = Mutex::new(stage2::TierMaintenance::new(chain.clock().now()));
        let stats = NodeStats {
            restart_replayed_records: replayed,
            ..NodeStats::default()
        };
        let shared = Arc::new(Shared {
            identity,
            config,
            store,
            read_plane: SnapshotCell::new(plane.freeze()),
            write_plane: Mutex::new(plane),
            chain,
            root_record,
            stats: Mutex::new(stats),
            replicator,
            ckpt_dir,
            ckpt_floor,
            pool,
            maintenance,
            epoch_seen: AtomicU64::new(0),
        });

        let (ingest_tx, ingest_rx) = unbounded::<IngestMsg>();
        let batcher_shared = Arc::clone(&shared);
        let batcher = std::thread::Builder::new()
            .name("wedge-batcher".into())
            .spawn(move || batcher::run(batcher_shared, ingest_rx, stage2_tx))
            // lint: allow(panic) — thread spawn fails only under resource
            // exhaustion during node startup
            .expect("spawn batcher");
        let mut handles = vec![batcher];
        if shared.config.stage2_mode == Stage2Mode::Direct {
            let committer_shared = Arc::clone(&shared);
            let committer = std::thread::Builder::new()
                .name("wedge-stage2".into())
                .spawn(move || stage2::run(committer_shared, stage2_rx))
                // lint: allow(panic) — thread spawn fails only under resource
                // exhaustion during node startup
                .expect("spawn committer");
            handles.push(committer);
        } else {
            // Epoch mode: no committer thread. Dropping the receiver makes
            // the batcher's stage-2 hand-off a no-op (its send result is
            // ignored); pending roots are pulled via `epoch_report` instead.
            drop(stage2_rx);
        }

        Ok(OffchainNode {
            shared,
            ingest: Mutex::new(Some(ingest_tx)),
            handles,
        })
    }

    /// The node's address (must match the Root Record's
    /// `offchain_address`).
    pub fn address(&self) -> Address {
        self.shared.identity.address()
    }

    /// The node's public key, for client-side response verification.
    pub fn public_key(&self) -> PublicKey {
        *self.shared.identity.public_key()
    }

    /// Submits one append request; the signed response (or a rejection
    /// string) is delivered on `reply` once the containing batch flushes.
    pub fn submit(
        &self,
        request: AppendRequest,
        reply: Sender<Result<SignedResponse, String>>,
    ) -> Result<(), CoreError> {
        self.submit_with(
            request,
            Box::new(move |outcome| {
                let _ = reply.send(outcome);
            }),
        )
    }

    /// Submits one append request with an arbitrary reply continuation
    /// (invoked exactly once at flush time).
    pub fn submit_with(&self, request: AppendRequest, reply: ReplyFn) -> Result<(), CoreError> {
        // Clone the sender out of the guard so the send happens lock-free.
        let sender = self.ingest.lock().clone().ok_or(CoreError::NodeStopped)?;
        sender
            .send(IngestMsg { request, reply })
            .map_err(|_| CoreError::NodeStopped)
    }

    /// Reads one entry from a given snapshot. All multi-entry read paths
    /// funnel through this with a *single* snapshot so a batch can never
    /// appear (or vanish) mid-iteration.
    fn read_on(&self, snap: &Snapshot, id: EntryId) -> Result<SignedResponse, CoreError> {
        let meta = snap
            .batches
            .get(id.log_id as usize)
            .ok_or(CoreError::EntryNotFound(id))?;
        if id.offset >= meta.count {
            return Err(CoreError::EntryNotFound(id));
        }
        let record = self
            .shared
            .store
            .read(meta.first_record + id.offset as u64)?;
        let mut leaf = state::decode_leaf(&record)?;
        let proof = meta
            .tree
            .prove(id.offset as usize)
            .map_err(|_| CoreError::EntryNotFound(id))?;
        let root = meta.tree.root();
        if let NodeBehavior::TamperResponses { .. } = self.shared.config.behavior {
            if self.shared.config.behavior.affects(id.log_id) {
                tamper(&mut leaf);
            }
        }
        Ok(SignedResponse::sign(
            self.shared.identity.secret_key(),
            id,
            root,
            proof,
            leaf,
        ))
    }

    /// Reads one entry, returning a freshly signed response (paper §4.3,
    /// read requests carry the same tuple format as append responses).
    pub fn read(&self, id: EntryId) -> Result<SignedResponse, CoreError> {
        self.read_on(&self.shared.snapshot(), id)
    }

    /// Reads a group of entries in one operation (paper §4.2: "a group of
    /// indices together in one operation"). The whole group is served from
    /// one snapshot: entries visible to the first lookup stay visible to
    /// the last, regardless of concurrent flushes.
    pub fn read_many(&self, ids: &[EntryId]) -> Vec<Result<SignedResponse, CoreError>> {
        let snap = self.shared.snapshot();
        ids.iter().map(|id| self.read_on(&snap, *id)).collect()
    }

    /// Looks an entry up by `(publisher, sequence)` (the paper's sequence
    /// number read path). Lookup and read share one snapshot.
    pub fn read_by_sequence(
        &self,
        publisher: Address,
        sequence: u64,
    ) -> Result<SignedResponse, CoreError> {
        let snap = self.shared.snapshot();
        let id = snap
            .seq
            .get(publisher, sequence)
            .ok_or(CoreError::SequenceNotFound {
                publisher,
                sequence,
            })?;
        self.read_on(&snap, id)
    }

    /// Reads every entry of one log position (the auditor's scan unit)
    /// against one snapshot.
    pub fn read_log_position(&self, log_id: u64) -> Result<Vec<SignedResponse>, CoreError> {
        let snap = self.shared.snapshot();
        let count = snap
            .batches
            .get(log_id as usize)
            .ok_or(CoreError::EntryNotFound(EntryId { log_id, offset: 0 }))?
            .count;
        (0..count)
            .map(|offset| self.read_on(&snap, EntryId { log_id, offset }))
            .collect()
    }

    /// Number of entries in one log position, if it exists.
    pub fn read_log_position_len(&self, log_id: u64) -> Option<u32> {
        self.shared
            .snapshot()
            .batches
            .get(log_id as usize)
            .map(|b| b.count)
    }

    /// One-snapshot metadata read: `(log positions, total entries, entry
    /// count of `log_id` if it exists)`. Backs the wire `Meta` request so a
    /// single reply is internally consistent.
    pub fn meta(&self, log_id: u64) -> (u64, u64, Option<u32>) {
        let snap = self.shared.snapshot();
        (
            snap.batches.len() as u64,
            snap.entry_count,
            snap.batches.get(log_id as usize).map(|b| b.count),
        )
    }

    /// Extension API: scans `[start, start+count)` within one log position
    /// returning the raw leaves plus a single [`RangeProof`] — far cheaper
    /// to verify than per-entry proofs for large audits.
    pub fn scan_range(
        &self,
        log_id: u64,
        start: u32,
        count: u32,
    ) -> Result<(Vec<Vec<u8>>, RangeProof, wedge_crypto::Hash32), CoreError> {
        let snap = self.shared.snapshot();
        let meta = snap
            .batches
            .get(log_id as usize)
            .ok_or(CoreError::EntryNotFound(EntryId {
                log_id,
                offset: start,
            }))?;
        // `checked_add`: `start + count` wraps on u32 overflow in release
        // builds, which would bypass the bounds check entirely.
        let end = match start.checked_add(count) {
            Some(end) if end <= meta.count && count != 0 => end,
            _ => {
                return Err(CoreError::EntryNotFound(EntryId {
                    log_id,
                    offset: start,
                }))
            }
        };
        let proof =
            RangeProof::generate(&meta.tree, start as usize, count as usize).map_err(|_| {
                CoreError::EntryNotFound(EntryId {
                    log_id,
                    offset: start,
                })
            })?;
        let root = meta.tree.root();
        let first = meta.first_record;
        let mut leaves = Vec::with_capacity(count as usize);
        for offset in start..end {
            leaves.push(state::decode_leaf(
                &self.shared.store.read(first + offset as u64)?,
            )?);
        }
        Ok((leaves, proof, root))
    }

    /// The commit phase of a log position.
    pub fn commit_phase(&self, log_id: u64) -> CommitPhase {
        let snap = self.shared.snapshot();
        if snap.commits.contains(log_id) {
            CommitPhase::BlockchainCommitted
        } else if (log_id as usize) < snap.batches.len() {
            CommitPhase::OffchainCommitted
        } else {
            CommitPhase::Pending
        }
    }

    /// Stage-2 info for a committed position.
    pub fn commit_info(&self, log_id: u64) -> Option<CommitInfo> {
        self.shared.snapshot().commits.get(log_id)
    }

    /// Number of flushed log positions.
    pub fn log_positions(&self) -> u64 {
        self.shared.snapshot().batches.len() as u64
    }

    /// Total entries stored (a running counter in the snapshot — O(1), not
    /// a sum over batches).
    pub fn entry_count(&self) -> u64 {
        self.shared.snapshot().entry_count
    }

    /// The replica fan-out, when configured (exposed for liveness tests and
    /// fault injection).
    pub fn replicator(&self) -> Option<&Replicator> {
        self.shared.replicator.as_ref()
    }

    /// Snapshot of the node's metrics. The store-, pool- and hash-derived
    /// counters (`fsyncs_coalesced`, `oversubscription_avoided`,
    /// `hashes_computed`, `hash_batches_x4`) are sampled at call time.
    pub fn stats(&self) -> NodeStats {
        let mut stats = self.shared.stats.lock().clone();
        stats.fsyncs_coalesced = self.shared.store.sync_stats().fsyncs_coalesced;
        stats.oversubscription_avoided = wedge_pool::oversubscription_avoided();
        stats.hashes_computed = wedge_crypto::hash::hashes_computed();
        stats.hash_batches_x4 = wedge_crypto::hash::hash_batches_x4();
        let tier = self.shared.store.tier_stats();
        stats.segments_sealed = tier.segments_sealed;
        stats.gc_deleted_segments = tier.segments_retired;
        stats
    }

    /// Blocks until every flushed log position up to the current tail is
    /// blockchain-committed (or `timeout` of *simulated* time passes).
    pub fn wait_stage2_idle(&self, timeout: Duration) -> Result<(), CoreError> {
        let clock = self.shared.chain.clock().clone();
        let start = clock.now();
        loop {
            {
                let snap = self.shared.snapshot();
                let flushed = snap.batches.len() as u64;
                let committed = snap.commits.len();
                let omitted = match self.shared.config.behavior {
                    NodeBehavior::OmitStage2 { from_log } => flushed.saturating_sub(from_log),
                    _ => 0,
                };
                if committed + omitted >= flushed {
                    return Ok(());
                }
            }
            if clock.now().since(start) > timeout {
                return Err(CoreError::NotYetBlockchainCommitted {
                    log_id: self.shared.snapshot().commits.len(),
                });
            }
            clock.sleep(Duration::from_millis(200));
        }
    }

    /// Simulates the paper's extreme omission attack (§4.7): destroys the
    /// newest `entries` from local storage and memory. For liveness tests.
    pub fn destroy_tail(&self, entries: u64) -> Result<(), CoreError> {
        // Mutate (and publish) the plane first, truncate the store after:
        // readers racing this call then see a snapshot whose batches are
        // all still backed by store records. The guard is never held across
        // the truncation (L6).
        let records_to_drop = self.shared.mutate(|plane| {
            let mut remaining = entries;
            let mut records = 0u64;
            while remaining > 0 {
                let Some((count, log_id)) =
                    plane.batches.last().map(|b| (b.count as u64, b.log_id))
                else {
                    break;
                };
                let take = count.min(remaining);
                // Partial destruction of a batch is modelled as dropping the
                // whole batch (+1 for its header record) — simpler and
                // strictly worse for the node.
                plane.batches.pop();
                plane.entry_count = plane.entry_count.saturating_sub(count);
                plane.commits.remove(log_id);
                records += count + 1;
                remaining = remaining.saturating_sub(take);
            }
            if records > 0 {
                // Batches are popped from the tail, so survivors are exactly
                // the log ids below the new length.
                let kept = plane.batches.len() as u64;
                plane.seq.retain(|id| id.log_id < kept);
            }
            records
        });
        if records_to_drop > 0 {
            self.shared.store.truncate_tail(records_to_drop)?;
        }
        Ok(())
    }

    /// Closes the ingest channel through a shared reference: the stage-1
    /// pipeline drains every queued request (delivering all replies exactly
    /// once) and the workers exit. Safe to call while other threads still
    /// read from the node; call [`OffchainNode::shutdown`] (or drop) to
    /// join the workers afterwards. Idempotent.
    pub fn begin_shutdown(&self) {
        let _ = self.ingest.lock().take();
    }

    /// Stops the node: flushes the partial batch, completes queued stage-2
    /// work, joins threads, and writes a final checkpoint so the next start
    /// replays nothing. Called automatically on drop.
    pub fn shutdown(&mut self) {
        self.begin_shutdown();
        let had_workers = !self.handles.is_empty();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
        let _ = self.shared.store.sync();
        if had_workers {
            let _ = self.shared.write_checkpoint();
        }
    }
}

impl Drop for OffchainNode {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Flips a payload byte — the canonical "tamper" used by
/// [`NodeBehavior::TamperResponses`].
pub(crate) fn tamper(leaf: &mut [u8]) {
    if let Some(last) = leaf.last_mut() {
        *last ^= 0xFF;
    }
}
