//! The Offchain Node (paper §4.3): batched stage-1 ingestion, asynchronous
//! stage-2 digest commitment, and the verified read/audit service.

mod batcher;
mod stage2;
mod state;
mod stats;

pub use stats::NodeStats;

use std::path::Path;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam::channel::{unbounded, Sender};
use parking_lot::{Mutex, RwLock};
use wedge_chain::{Address, Chain};
use wedge_crypto::signer::Identity;
use wedge_crypto::PublicKey;
use wedge_merkle::RangeProof;
use wedge_storage::{LogStore, Replicator};

use crate::config::{NodeBehavior, NodeConfig};
use crate::error::CoreError;
use crate::types::{AppendRequest, CommitPhase, EntryId, SignedResponse};
use state::{CommitInfo, NodeState};

/// How a stage-1 outcome is delivered back to the submitter: invoked exactly
/// once, either with the signed response or a rejection reason. A callback
/// (rather than a channel) lets transports tag and route replies — the TCP
/// server forwards them onto sockets, local publishers into channels.
pub type ReplyFn = Box<dyn FnOnce(Result<SignedResponse, String>) + Send>;

/// A queued append with its reply continuation.
pub(crate) struct IngestMsg {
    pub request: AppendRequest,
    pub reply: ReplyFn,
}

/// State shared between the node's public API and its worker threads.
pub(crate) struct Shared {
    pub identity: Identity,
    pub config: NodeConfig,
    pub store: LogStore,
    pub state: RwLock<NodeState>,
    pub chain: Arc<Chain>,
    pub root_record: Address,
    pub stats: Mutex<NodeStats>,
    pub replicator: Option<Replicator>,
}

/// The Offchain Node. Create with [`OffchainNode::start`]; share via `Arc`.
///
/// Dropping the node flushes any partial batch, drains the stage-2 queue,
/// and joins the worker threads.
pub struct OffchainNode {
    shared: Arc<Shared>,
    ingest: Option<Sender<IngestMsg>>,
    handles: Vec<JoinHandle<()>>,
}

impl OffchainNode {
    /// Starts an Offchain Node: opens (or recovers) the store under
    /// `data_dir`, restores in-memory state from disk, and spawns the
    /// batcher and stage-2 committer threads.
    ///
    /// `root_record` must be a deployed [`wedge_contracts::RootRecord`]
    /// whose `offchain_address` is this node's identity.
    pub fn start(
        identity: Identity,
        config: NodeConfig,
        chain: Arc<Chain>,
        root_record: Address,
        data_dir: impl AsRef<Path>,
    ) -> Result<OffchainNode, CoreError> {
        let data_dir = data_dir.as_ref();
        let store = LogStore::open(data_dir.join("log"), config.store.clone())?;
        let state = state::rebuild_state(&store)?;
        let replicator = if config.replicas > 0 {
            Some(Replicator::spawn(
                data_dir.join("replicas"),
                config.replicas,
                config.store.clone(),
                config.replica_link_delay,
            )?)
        } else {
            None
        };
        let shared = Arc::new(Shared {
            identity,
            config,
            store,
            state: RwLock::new(state),
            chain,
            root_record,
            stats: Mutex::new(NodeStats::default()),
            replicator,
        });

        let (ingest_tx, ingest_rx) = unbounded::<IngestMsg>();
        let (stage2_tx, stage2_rx) = unbounded::<stage2::Stage2Task>();

        // Stage-2 resynchronization after a restart: positions the Root
        // Record already holds are marked committed; recovered-but-
        // uncommitted positions are re-queued for commitment (without this,
        // a crash between stage 1 and stage 2 would leave entries off-chain
        // forever).
        {
            use wedge_contracts::RootRecord;
            let onchain_tail = shared
                .chain
                .view(root_record, &RootRecord::get_tail_calldata())
                .ok()
                .and_then(|out| RootRecord::decode_tail(&out))
                .unwrap_or(0);
            let now = shared.chain.clock().now();
            // Collect the re-queue work under the state guard, but send only
            // after it is released: a send while holding `Shared.state` can
            // deadlock against the committer and blocks every reader.
            let tasks: Vec<stage2::Stage2Task> = {
                let mut state = shared.state.write();
                let recovered = state.batches.len() as u64;
                for log_id in 0..recovered.min(onchain_tail) {
                    state.commits.entry(log_id).or_insert(state::CommitInfo {
                        tx_hash: wedge_crypto::Hash32::ZERO, // pre-restart tx, unknown
                        block_number: 0,
                        stage2_latency: Duration::ZERO,
                    });
                }
                (onchain_tail..recovered)
                    .filter_map(|log_id| {
                        let honest_root = state.batches[log_id as usize].tree.root();
                        stage2::stage2_root_for(shared.config.behavior, log_id, honest_root).map(
                            |root| stage2::Stage2Task {
                                log_id,
                                root,
                                stage1_done: now,
                            },
                        )
                    })
                    .collect()
            };
            for task in tasks {
                let _ = stage2_tx.send(task);
            }
        }

        let batcher_shared = Arc::clone(&shared);
        let batcher = std::thread::Builder::new()
            .name("wedge-batcher".into())
            .spawn(move || batcher::run(batcher_shared, ingest_rx, stage2_tx))
            // lint: allow(panic) — thread spawn fails only under resource
            // exhaustion during node startup
            .expect("spawn batcher");
        let committer_shared = Arc::clone(&shared);
        let committer = std::thread::Builder::new()
            .name("wedge-stage2".into())
            .spawn(move || stage2::run(committer_shared, stage2_rx))
            // lint: allow(panic) — thread spawn fails only under resource
            // exhaustion during node startup
            .expect("spawn committer");

        Ok(OffchainNode {
            shared,
            ingest: Some(ingest_tx),
            handles: vec![batcher, committer],
        })
    }

    /// The node's address (must match the Root Record's
    /// `offchain_address`).
    pub fn address(&self) -> Address {
        self.shared.identity.address()
    }

    /// The node's public key, for client-side response verification.
    pub fn public_key(&self) -> PublicKey {
        *self.shared.identity.public_key()
    }

    /// Submits one append request; the signed response (or a rejection
    /// string) is delivered on `reply` once the containing batch flushes.
    pub fn submit(
        &self,
        request: AppendRequest,
        reply: Sender<Result<SignedResponse, String>>,
    ) -> Result<(), CoreError> {
        self.submit_with(
            request,
            Box::new(move |outcome| {
                let _ = reply.send(outcome);
            }),
        )
    }

    /// Submits one append request with an arbitrary reply continuation
    /// (invoked exactly once at flush time).
    pub fn submit_with(&self, request: AppendRequest, reply: ReplyFn) -> Result<(), CoreError> {
        self.ingest
            .as_ref()
            .ok_or(CoreError::NodeStopped)?
            .send(IngestMsg { request, reply })
            .map_err(|_| CoreError::NodeStopped)
    }

    /// Reads one entry, returning a freshly signed response (paper §4.3,
    /// read requests carry the same tuple format as append responses).
    pub fn read(&self, id: EntryId) -> Result<SignedResponse, CoreError> {
        let state = self.shared.state.read();
        let meta = state
            .batches
            .get(id.log_id as usize)
            .ok_or(CoreError::EntryNotFound(id))?;
        if id.offset >= meta.count {
            return Err(CoreError::EntryNotFound(id));
        }
        let record = self
            .shared
            .store
            .read(meta.first_record + id.offset as u64)?;
        let mut leaf = state::decode_leaf(&record)?;
        let proof = meta
            .tree
            .prove(id.offset as usize)
            .map_err(|_| CoreError::EntryNotFound(id))?;
        let root = meta.tree.root();
        drop(state);
        if let NodeBehavior::TamperResponses { .. } = self.shared.config.behavior {
            if self.shared.config.behavior.affects(id.log_id) {
                tamper(&mut leaf);
            }
        }
        Ok(SignedResponse::sign(
            self.shared.identity.secret_key(),
            id,
            root,
            proof,
            leaf,
        ))
    }

    /// Reads a group of entries in one operation (paper §4.2: "a group of
    /// indices together in one operation").
    pub fn read_many(&self, ids: &[EntryId]) -> Vec<Result<SignedResponse, CoreError>> {
        ids.iter().map(|id| self.read(*id)).collect()
    }

    /// Looks an entry up by `(publisher, sequence)` (the paper's sequence
    /// number read path).
    pub fn read_by_sequence(
        &self,
        publisher: Address,
        sequence: u64,
    ) -> Result<SignedResponse, CoreError> {
        let id = {
            let state = self.shared.state.read();
            *state
                .seq_index
                .get(&(publisher, sequence))
                .ok_or(CoreError::SequenceNotFound {
                    publisher,
                    sequence,
                })?
        };
        self.read(id)
    }

    /// Reads every entry of one log position (the auditor's scan unit).
    pub fn read_log_position(&self, log_id: u64) -> Result<Vec<SignedResponse>, CoreError> {
        let count = {
            let state = self.shared.state.read();
            state
                .batches
                .get(log_id as usize)
                .ok_or(CoreError::EntryNotFound(EntryId { log_id, offset: 0 }))?
                .count
        };
        (0..count)
            .map(|offset| self.read(EntryId { log_id, offset }))
            .collect()
    }

    /// Number of entries in one log position, if it exists.
    pub fn read_log_position_len(&self, log_id: u64) -> Option<u32> {
        self.shared
            .state
            .read()
            .batches
            .get(log_id as usize)
            .map(|b| b.count)
    }

    /// Extension API: scans `[start, start+count)` within one log position
    /// returning the raw leaves plus a single [`RangeProof`] — far cheaper
    /// to verify than per-entry proofs for large audits.
    pub fn scan_range(
        &self,
        log_id: u64,
        start: u32,
        count: u32,
    ) -> Result<(Vec<Vec<u8>>, RangeProof, wedge_crypto::Hash32), CoreError> {
        let state = self.shared.state.read();
        let meta = state
            .batches
            .get(log_id as usize)
            .ok_or(CoreError::EntryNotFound(EntryId {
                log_id,
                offset: start,
            }))?;
        // `checked_add`: `start + count` wraps on u32 overflow in release
        // builds, which would bypass the bounds check entirely.
        let end = match start.checked_add(count) {
            Some(end) if end <= meta.count && count != 0 => end,
            _ => {
                return Err(CoreError::EntryNotFound(EntryId {
                    log_id,
                    offset: start,
                }))
            }
        };
        let proof =
            RangeProof::generate(&meta.tree, start as usize, count as usize).map_err(|_| {
                CoreError::EntryNotFound(EntryId {
                    log_id,
                    offset: start,
                })
            })?;
        let root = meta.tree.root();
        let first = meta.first_record;
        drop(state);
        let mut leaves = Vec::with_capacity(count as usize);
        for offset in start..end {
            leaves.push(state::decode_leaf(
                &self.shared.store.read(first + offset as u64)?,
            )?);
        }
        Ok((leaves, proof, root))
    }

    /// The commit phase of a log position.
    pub fn commit_phase(&self, log_id: u64) -> CommitPhase {
        let state = self.shared.state.read();
        if state.commits.contains_key(&log_id) {
            CommitPhase::BlockchainCommitted
        } else if (log_id as usize) < state.batches.len() {
            CommitPhase::OffchainCommitted
        } else {
            CommitPhase::Pending
        }
    }

    /// Stage-2 info for a committed position.
    pub fn commit_info(&self, log_id: u64) -> Option<CommitInfo> {
        self.shared.state.read().commits.get(&log_id).copied()
    }

    /// Number of flushed log positions.
    pub fn log_positions(&self) -> u64 {
        self.shared.state.read().batches.len() as u64
    }

    /// Total entries stored.
    pub fn entry_count(&self) -> u64 {
        self.shared.state.read().entry_count()
    }

    /// The replica fan-out, when configured (exposed for liveness tests and
    /// fault injection).
    pub fn replicator(&self) -> Option<&Replicator> {
        self.shared.replicator.as_ref()
    }

    /// Snapshot of the node's metrics.
    pub fn stats(&self) -> NodeStats {
        self.shared.stats.lock().clone()
    }

    /// Blocks until every flushed log position up to the current tail is
    /// blockchain-committed (or `timeout` of *simulated* time passes).
    pub fn wait_stage2_idle(&self, timeout: Duration) -> Result<(), CoreError> {
        let clock = self.shared.chain.clock().clone();
        let start = clock.now();
        loop {
            {
                let state = self.shared.state.read();
                let flushed = state.batches.len() as u64;
                let committed = state.commits.len() as u64;
                let omitted = match self.shared.config.behavior {
                    NodeBehavior::OmitStage2 { from_log } => flushed.saturating_sub(from_log),
                    _ => 0,
                };
                if committed + omitted >= flushed {
                    return Ok(());
                }
            }
            if clock.now().since(start) > timeout {
                return Err(CoreError::NotYetBlockchainCommitted {
                    log_id: self.shared.state.read().commits.len() as u64,
                });
            }
            clock.sleep(Duration::from_millis(200));
        }
    }

    /// Simulates the paper's extreme omission attack (§4.7): destroys the
    /// newest `entries` from local storage and memory. For liveness tests.
    pub fn destroy_tail(&self, entries: u64) -> Result<(), CoreError> {
        let mut state = self.shared.state.write();
        let mut remaining = entries;
        while remaining > 0 {
            let Some((count, log_id)) = state.batches.last().map(|b| (b.count as u64, b.log_id))
            else {
                break;
            };
            let take = count.min(remaining);
            // Partial destruction of a batch is modelled as dropping the
            // whole batch (+1 for its header record) — simpler and strictly
            // worse for the node.
            self.shared.store.truncate_tail(count + 1)?;
            state.batches.pop();
            state.commits.remove(&log_id);
            state.seq_index.retain(|_, id| id.log_id != log_id);
            remaining = remaining.saturating_sub(take);
        }
        Ok(())
    }

    /// Stops the node: flushes the partial batch, completes queued stage-2
    /// work, joins threads. Called automatically on drop.
    pub fn shutdown(&mut self) {
        self.ingest = None; // closes the channel; batcher drains and exits
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
        let _ = self.shared.store.sync();
    }
}

impl Drop for OffchainNode {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Flips a payload byte — the canonical "tamper" used by
/// [`NodeBehavior::TamperResponses`].
pub(crate) fn tamper(leaf: &mut [u8]) {
    if let Some(last) = leaf.last_mut() {
        *last ^= 0xFF;
    }
}
