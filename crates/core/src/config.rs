//! Offchain Node configuration and (for adversarial testing) malicious
//! behaviour injection.

use std::time::Duration;

use wedge_sim::LatencyModel;
use wedge_storage::StoreConfig;

/// Malicious behaviours an Offchain Node can be configured with.
///
/// The byzantine model (paper §3.3) allows arbitrary behaviour; these are
/// the representative attack vectors the paper discusses, wired in so tests
/// and experiments can demonstrate detection + punishment.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum NodeBehavior {
    /// Follows the protocol.
    #[default]
    Honest,
    /// Signs honest stage-1 responses but blockchain-commits a *different*
    /// root for log positions `>= from_log` (the equivocation of Definition
    /// 3.1's clause 2).
    CommitWrongRoot {
        /// First affected log position.
        from_log: u64,
    },
    /// Tampers with the leaf payload in responses for log positions
    /// `>= from_log`. The signed proof then fails to reproduce the signed
    /// root — punishable under Algorithm 2 line 10.
    TamperResponses {
        /// First affected log position.
        from_log: u64,
    },
    /// Silently drops stage-2 commitment for log positions `>= from_log`
    /// (an omission attack, §4.7).
    OmitStage2 {
        /// First affected log position.
        from_log: u64,
    },
}

impl NodeBehavior {
    /// Whether this behaviour affects `log_id`.
    pub fn affects(&self, log_id: u64) -> bool {
        match *self {
            NodeBehavior::Honest => false,
            NodeBehavior::CommitWrongRoot { from_log }
            | NodeBehavior::TamperResponses { from_log }
            | NodeBehavior::OmitStage2 { from_log } => log_id >= from_log,
        }
    }
}

/// Offchain Node configuration.
#[derive(Clone, Debug)]
pub struct NodeConfig {
    /// Append requests per batch (paper default: 2000).
    pub batch_size: usize,
    /// Flush a partial batch after this much wall time without reaching
    /// `batch_size`.
    pub batch_linger: Duration,
    /// Verify publisher signatures before accepting requests.
    pub verify_requests: bool,
    /// Worker threads for parallel signing/verification (the paper's
    /// prototype uses all cores).
    pub worker_threads: usize,
    /// Behaviour (honest or one of the attack modes).
    pub behavior: NodeBehavior,
    /// Maximum roots grouped into one `Update-Records` transaction.
    pub stage2_max_group: usize,
    /// Simulated network delay applied to each inbound request message.
    pub request_latency: LatencyModel,
    /// Simulated network delay applied to each outbound response batch.
    pub response_latency: LatencyModel,
    /// Replicas to fan batches out to before responding (0 = none; the
    /// paper's red curves use 2).
    pub replicas: usize,
    /// Per-batch link delay towards each replica.
    pub replica_link_delay: Duration,
    /// Storage engine settings.
    pub store: StoreConfig,
}

impl Default for NodeConfig {
    fn default() -> Self {
        NodeConfig {
            batch_size: 2000,
            batch_linger: Duration::from_millis(20),
            verify_requests: true,
            worker_threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            behavior: NodeBehavior::Honest,
            stage2_max_group: 16,
            request_latency: LatencyModel::Zero,
            response_latency: LatencyModel::Zero,
            replicas: 0,
            replica_link_delay: Duration::from_micros(200),
            store: StoreConfig::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn behavior_ranges() {
        assert!(!NodeBehavior::Honest.affects(0));
        let b = NodeBehavior::CommitWrongRoot { from_log: 5 };
        assert!(!b.affects(4));
        assert!(b.affects(5));
        assert!(b.affects(100));
    }

    #[test]
    fn defaults_match_paper() {
        let c = NodeConfig::default();
        assert_eq!(c.batch_size, 2000);
        assert!(c.verify_requests);
        assert_eq!(c.behavior, NodeBehavior::Honest);
    }
}
