//! Offchain Node configuration and (for adversarial testing) malicious
//! behaviour injection.

use std::time::Duration;

use wedge_sim::LatencyModel;
use wedge_storage::StoreConfig;

/// Malicious behaviours an Offchain Node can be configured with.
///
/// The byzantine model (paper §3.3) allows arbitrary behaviour; these are
/// the representative attack vectors the paper discusses, wired in so tests
/// and experiments can demonstrate detection + punishment.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum NodeBehavior {
    /// Follows the protocol.
    #[default]
    Honest,
    /// Signs honest stage-1 responses but blockchain-commits a *different*
    /// root for log positions `>= from_log` (the equivocation of Definition
    /// 3.1's clause 2).
    CommitWrongRoot {
        /// First affected log position.
        from_log: u64,
    },
    /// Tampers with the leaf payload in responses for log positions
    /// `>= from_log`. The signed proof then fails to reproduce the signed
    /// root — punishable under Algorithm 2 line 10.
    TamperResponses {
        /// First affected log position.
        from_log: u64,
    },
    /// Silently drops stage-2 commitment for log positions `>= from_log`
    /// (an omission attack, §4.7).
    OmitStage2 {
        /// First affected log position.
        from_log: u64,
    },
}

impl NodeBehavior {
    /// Whether this behaviour affects `log_id`.
    pub fn affects(&self, log_id: u64) -> bool {
        match *self {
            NodeBehavior::Honest => false,
            NodeBehavior::CommitWrongRoot { from_log }
            | NodeBehavior::TamperResponses { from_log }
            | NodeBehavior::OmitStage2 { from_log } => log_id >= from_log,
        }
    }
}

/// How the node's flushed batch roots reach the blockchain.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Stage2Mode {
    /// The node runs its own stage-2 committer and writes every group to
    /// its `RootRecord` contract (the paper's single-node protocol).
    #[default]
    Direct,
    /// The node is one shard of a cluster: it never submits transactions
    /// itself. An epoch coordinator pulls pending batch roots via
    /// `epoch_report`, folds every shard's roots into one on-chain
    /// root-of-roots, and acknowledges with `epoch_commit` — one
    /// transaction per epoch for the whole cluster.
    Epoch,
}

/// Retry policy for the stage-2 committer.
///
/// A failed `Update-Records` transaction (dropped submission, revert,
/// receipt timeout) is re-queued and re-submitted with bounded exponential
/// backoff: attempt `k` waits `base_backoff × 2^(k-1)` of *simulated* time,
/// capped at `max_backoff`, scaled by a deterministic ±`jitter` factor so
/// co-located committers don't thunder. Only after `max_attempts`
/// consecutive failures of the same group is the commitment abandoned and
/// counted in `NodeStats::stage2_failed`.
#[derive(Clone, Copy, Debug)]
pub struct Stage2RetryPolicy {
    /// Submission attempts per group before giving up (≥ 1).
    pub max_attempts: u32,
    /// Backoff before the first retry.
    pub base_backoff: Duration,
    /// Ceiling on the exponential backoff.
    pub max_backoff: Duration,
    /// Relative backoff jitter in `[0, 1)` (0.0 = deterministic delays).
    pub jitter: f64,
}

impl Default for Stage2RetryPolicy {
    fn default() -> Self {
        Stage2RetryPolicy {
            max_attempts: 8,
            base_backoff: Duration::from_secs(2),
            max_backoff: Duration::from_secs(60),
            jitter: 0.2,
        }
    }
}

impl Stage2RetryPolicy {
    /// The backoff before retry attempt `attempt` (1-based), without
    /// jitter: `base × 2^(attempt-1)`, capped at `max_backoff`.
    pub fn backoff_for(&self, attempt: u32) -> Duration {
        let doublings = attempt.saturating_sub(1).min(32);
        self.base_backoff
            .saturating_mul(1u32 << doublings.min(31))
            .min(self.max_backoff)
    }
}

/// Tiered-storage and checkpoint policy (see `docs/architecture.md`,
/// "Tiered storage & checkpoints").
///
/// Once a log position is blockchain-committed its records are immutable:
/// segments wholly below the committed frontier are sealed into read-only
/// cold segments, the two-plane state is periodically checkpointed so a
/// restart replays only the uncheckpointed tail, and cold segments that
/// age past the punishment window can be deleted outright.
#[derive(Clone, Copy, Debug)]
pub struct TierConfig {
    /// Seal hot segments into cold ones as stage-2 group commits advance
    /// the blockchain-committed frontier.
    pub seal_on_commit: bool,
    /// Write a two-plane checkpoint every N stage-2 group commits
    /// (0 disables the group-count trigger).
    pub checkpoint_every_groups: u64,
    /// Also checkpoint when this much simulated time has passed since the
    /// last one (evaluated at group-commit time).
    pub checkpoint_interval: Duration,
    /// Retention: delete cold segments holding only log positions more
    /// than this many positions behind the committed frontier — they have
    /// outlived the punishment window. `None` keeps everything (the
    /// default: retention is an explicit operator opt-in). Retirement
    /// never outruns the kept checkpoints, so a restart can always rebuild
    /// its state.
    pub retain_groups: Option<u64>,
}

impl Default for TierConfig {
    fn default() -> Self {
        TierConfig {
            seal_on_commit: true,
            checkpoint_every_groups: 8,
            checkpoint_interval: Duration::from_secs(60),
            retain_groups: None,
        }
    }
}

/// Offchain Node configuration.
#[derive(Clone, Debug)]
pub struct NodeConfig {
    /// Append requests per batch (paper default: 2000).
    pub batch_size: usize,
    /// Flush a partial batch after this much wall time without reaching
    /// `batch_size`.
    pub batch_linger: Duration,
    /// Verify publisher signatures before accepting requests.
    pub verify_requests: bool,
    /// Worker threads for parallel signing/verification (the paper's
    /// prototype uses all cores).
    pub worker_threads: usize,
    /// Bounded depth of the stage-1 flush pipeline's inter-stage queues
    /// (≥ 1). Depth 1 still overlaps adjacent batches across the
    /// verify → persist → deliver stages; larger depths absorb burstier
    /// fsync/replication latencies at the cost of more in-flight batches.
    pub pipeline_depth: usize,
    /// Behaviour (honest or one of the attack modes).
    pub behavior: NodeBehavior,
    /// How batch roots reach the blockchain: the node's own committer, or
    /// a cluster epoch coordinator.
    pub stage2_mode: Stage2Mode,
    /// Maximum roots grouped into one `Update-Records` transaction.
    pub stage2_max_group: usize,
    /// Retry policy for failed stage-2 commitments.
    pub stage2_retry: Stage2RetryPolicy,
    /// Simulated network delay applied to each inbound request message.
    pub request_latency: LatencyModel,
    /// Simulated network delay applied to each outbound response batch.
    pub response_latency: LatencyModel,
    /// Replicas to fan batches out to before responding (0 = none; the
    /// paper's red curves use 2).
    pub replicas: usize,
    /// Per-batch link delay towards each replica.
    pub replica_link_delay: Duration,
    /// Start replica sends *before* the local `append_batch` + fsync and
    /// join both afterwards, so the persist stage pays
    /// max(local, replication) instead of the sum. Disable to reproduce the
    /// sequential (pre-overlap) persist stage.
    pub overlap_replication: bool,
    /// Leaf/level count at or above which Merkle construction uses the
    /// shared work pool; below it the serial builder wins on thread-spawn
    /// overhead. `usize::MAX` forces the serial builder.
    pub merkle_parallel_cutoff: usize,
    /// Tiered-storage and checkpoint policy.
    pub tier: TierConfig,
    /// Storage engine settings.
    pub store: StoreConfig,
}

impl Default for NodeConfig {
    fn default() -> Self {
        NodeConfig {
            batch_size: 2000,
            batch_linger: Duration::from_millis(20),
            verify_requests: true,
            worker_threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            pipeline_depth: 2,
            behavior: NodeBehavior::Honest,
            stage2_mode: Stage2Mode::default(),
            stage2_max_group: 16,
            stage2_retry: Stage2RetryPolicy::default(),
            request_latency: LatencyModel::Zero,
            response_latency: LatencyModel::Zero,
            replicas: 0,
            replica_link_delay: Duration::from_micros(200),
            overlap_replication: true,
            merkle_parallel_cutoff: 256,
            tier: TierConfig::default(),
            store: StoreConfig::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn behavior_ranges() {
        assert!(!NodeBehavior::Honest.affects(0));
        let b = NodeBehavior::CommitWrongRoot { from_log: 5 };
        assert!(!b.affects(4));
        assert!(b.affects(5));
        assert!(b.affects(100));
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let p = Stage2RetryPolicy {
            max_attempts: 8,
            base_backoff: Duration::from_secs(2),
            max_backoff: Duration::from_secs(30),
            jitter: 0.0,
        };
        assert_eq!(p.backoff_for(1), Duration::from_secs(2));
        assert_eq!(p.backoff_for(2), Duration::from_secs(4));
        assert_eq!(p.backoff_for(4), Duration::from_secs(16));
        assert_eq!(p.backoff_for(5), Duration::from_secs(30), "capped");
        assert_eq!(p.backoff_for(u32::MAX), Duration::from_secs(30), "no wrap");
    }

    #[test]
    fn defaults_match_paper() {
        let c = NodeConfig::default();
        assert_eq!(c.batch_size, 2000);
        assert!(c.verify_requests);
        assert_eq!(c.behavior, NodeBehavior::Honest);
    }
}
