//! The WedgeBlock protocol data model (paper §4.1).
//!
//! - [`AppendRequest`] — the paper's tuple `A = (S_p, [n, X])`: a payload
//!   `X` with a client-side sequence number `n`, signed by the publisher.
//! - [`SignedResponse`] — the paper's tuple `R = (S_o, [X, P, i])`: the
//!   Offchain Node's off-chain-commit promise, carrying the stage-1 proof.
//! - [`EntryId`] — the paper's index `i`: a log position (batch) plus the
//!   entry's offset inside the batch.
//! - [`Stage2Record`] — the paper's tuple `V = (i, R_f)` committed to the
//!   Root Record contract.

use wedge_chain::{Decoder, Encoder};
use wedge_contracts::{response_digest, response_digest_bytes};
use wedge_crypto::ecdsa::Signature;
use wedge_crypto::hash::{keccak256, Hash32};
use wedge_crypto::keys::Address;
use wedge_crypto::secp256k1::AffineTable;
use wedge_crypto::{
    recover_prehashed, sign_prehashed, verify_prehashed_with_table, PublicKey, SecretKey,
};
use wedge_merkle::MerkleProof;

use crate::error::CoreError;

/// Identifies one log entry: which log position (batch) it belongs to and
/// where it sits inside the batch's Data List.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct EntryId {
    /// The monotonically increasing log position (paper's Log ID).
    pub log_id: u64,
    /// Offset within the batch.
    pub offset: u32,
}

impl core::fmt::Display for EntryId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}:{}", self.log_id, self.offset)
    }
}

/// Commit progress of a log position (paper §3.2).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CommitPhase {
    /// Received, not yet flushed into a batch.
    Pending,
    /// Stage 1 complete: persisted locally, signed response issued.
    OffchainCommitted,
    /// Stage 2 complete: digest confirmed in the Root Record contract.
    BlockchainCommitted,
}

/// The paper's append tuple `A = (S_p, [n, X])`.
#[derive(Clone, Debug)]
pub struct AppendRequest {
    /// The publisher's address (recoverable from the signature; carried for
    /// cheap indexing).
    pub publisher: Address,
    /// Client-side monotonically increasing sequence number `n`.
    pub sequence: u64,
    /// The data object `X`.
    pub payload: Vec<u8>,
    /// Publisher's signature `S_p` over `(n, X)`.
    pub signature: Signature,
}

impl AppendRequest {
    /// The bytes the publisher signs: `(sequence, payload)`.
    fn signing_digest(sequence: u64, payload: &[u8]) -> [u8; 32] {
        let mut enc = Encoder::with_capacity(12 + payload.len());
        enc.u64(sequence).bytes(payload);
        keccak256(&enc.finish())
    }

    /// Builds and signs an append request.
    pub fn new(key: &SecretKey, sequence: u64, payload: Vec<u8>) -> AppendRequest {
        let digest = Self::signing_digest(sequence, &payload);
        let signature = sign_prehashed(key, &digest);
        AppendRequest {
            publisher: key.public_key().address(),
            sequence,
            payload,
            signature,
        }
    }

    /// Verifies the publisher's signature and address binding.
    pub fn verify(&self) -> Result<(), CoreError> {
        let digest = Self::signing_digest(self.sequence, &self.payload);
        let recovered = recover_prehashed(&digest, &self.signature).map_err(|_| {
            CoreError::BadRequestSignature {
                publisher: self.publisher,
            }
        })?;
        if recovered.address() != self.publisher {
            return Err(CoreError::BadRequestSignature {
                publisher: self.publisher,
            });
        }
        Ok(())
    }

    /// The canonical Merkle-leaf bytes: the *entire* signed tuple, so the
    /// on-chain digest commits to payload, ordering and attribution.
    pub fn leaf_bytes(&self) -> Vec<u8> {
        let mut enc = Encoder::with_capacity(110 + self.payload.len());
        enc.bytes(self.publisher.as_bytes())
            .u64(self.sequence)
            .bytes(&self.payload)
            .bytes(&self.signature.to_bytes());
        enc.finish()
    }

    /// Parses leaf bytes back into a request (used by auditors scanning the
    /// raw log).
    pub fn from_leaf_bytes(bytes: &[u8]) -> Result<AppendRequest, CoreError> {
        let mut dec = Decoder::new(bytes);
        let addr: [u8; 20] = dec.bytes_fixed().map_err(CoreError::Decode)?;
        let sequence = dec.u64().map_err(CoreError::Decode)?;
        let payload = dec.bytes().map_err(CoreError::Decode)?.to_vec();
        let sig: [u8; 65] = dec.bytes_fixed().map_err(CoreError::Decode)?;
        dec.finish().map_err(CoreError::Decode)?;
        let signature =
            Signature::from_bytes(&sig).map_err(|_| CoreError::BadRequestSignature {
                publisher: Address(addr),
            })?;
        Ok(AppendRequest {
            publisher: Address(addr),
            sequence,
            payload,
            signature,
        })
    }
}

/// The paper's response tuple `R = (S_o, [X, P, i])`: the Offchain Node's
/// signed off-chain-commit promise for one entry.
#[derive(Clone, Debug)]
pub struct SignedResponse {
    /// Where the entry was placed.
    pub entry_id: EntryId,
    /// The batch's Merkle root `R_f` the node promises to commit on-chain.
    pub merkle_root: Hash32,
    /// Inclusion proof of the entry's leaf under `merkle_root`.
    pub proof: MerkleProof,
    /// The leaf bytes (the full signed request tuple).
    pub leaf: Vec<u8>,
    /// The node's signature `S_o` over
    /// [`response_digest`]`(log_id, merkle_root, proof, leaf)`.
    pub signature: Signature,
}

impl SignedResponse {
    /// The digest the node signs — shared byte-for-byte with the Punishment
    /// contract (Algorithm 2 line 1).
    pub fn digest(&self) -> [u8; 32] {
        response_digest(
            self.entry_id.log_id,
            &self.merkle_root,
            &self.proof.to_bytes(),
            &self.leaf,
        )
    }

    /// Signs a response tuple as the Offchain Node.
    pub fn sign(
        node_key: &SecretKey,
        entry_id: EntryId,
        merkle_root: Hash32,
        proof: MerkleProof,
        leaf: Vec<u8>,
    ) -> SignedResponse {
        let digest = response_digest(entry_id.log_id, &merkle_root, &proof.to_bytes(), &leaf);
        let signature = sign_prehashed(node_key, &digest);
        SignedResponse {
            entry_id,
            merkle_root,
            proof,
            leaf,
            signature,
        }
    }

    /// Signs one response per prepared `(entry_id, merkle_root, proof,
    /// leaf)` tuple, amortizing the expensive per-signature inversions
    /// across the whole batch via
    /// [`wedge_crypto::sign_batch_parallel`]. Signature bytes are identical
    /// to calling [`SignedResponse::sign`] on each tuple.
    pub fn sign_batch(
        node_key: &SecretKey,
        items: Vec<(EntryId, Hash32, MerkleProof, Vec<u8>)>,
        threads: usize,
    ) -> Vec<SignedResponse> {
        // Encode every response preimage first, then digest them through
        // the ×4 interleaved batch path — same bytes as per-item
        // `response_digest`, four permutations' work per pass.
        let preimages: Vec<Vec<u8>> = items
            .iter()
            .map(|(id, root, proof, leaf)| {
                response_digest_bytes(id.log_id, root, &proof.to_bytes(), leaf)
            })
            .collect();
        let preimage_refs: Vec<&[u8]> = preimages.iter().map(|p| p.as_slice()).collect();
        let digests: Vec<[u8; 32]> = wedge_crypto::keccak256_batch(&preimage_refs)
            .into_iter()
            .map(|h| h.0)
            .collect();
        let signatures = wedge_crypto::sign_batch_parallel(node_key, &digests, threads);
        items
            .into_iter()
            .zip(signatures)
            .map(
                |((entry_id, merkle_root, proof, leaf), signature)| SignedResponse {
                    entry_id,
                    merkle_root,
                    proof,
                    leaf,
                    signature,
                },
            )
            .collect()
    }

    /// Full client-side stage-1 verification:
    /// 1. the node's signature is valid,
    /// 2. the proof reproduces the signed root from the leaf,
    /// 3. the proof's position matches the claimed entry id.
    pub fn verify(&self, node_public: &PublicKey) -> Result<(), CoreError> {
        self.verify_with_table(&AffineTable::new(node_public.point()))
    }

    /// Like [`SignedResponse::verify`], but against a prebuilt
    /// odd-multiples table for the node's public key — clients and auditors
    /// checking many responses under the same node key build the table once
    /// (see [`wedge_crypto::secp256k1::AffineTable`]) instead of once per
    /// response.
    pub fn verify_with_table(&self, node_table: &AffineTable) -> Result<(), CoreError> {
        verify_prehashed_with_table(node_table, &self.digest(), &self.signature).map_err(|_| {
            CoreError::BadResponseSignature {
                entry_id: self.entry_id,
            }
        })?;
        if self.proof.leaf_index != self.entry_id.offset as u64 {
            return Err(CoreError::ProofPositionMismatch {
                entry_id: self.entry_id,
                proof_index: self.proof.leaf_index,
            });
        }
        self.proof
            .verify(&self.leaf, &self.merkle_root)
            .map_err(|_| CoreError::ProofInvalid {
                entry_id: self.entry_id,
            })?;
        Ok(())
    }

    /// Like [`SignedResponse::verify`], additionally checking that the leaf
    /// is exactly the request the client sent (detects payload tampering).
    pub fn verify_for_request(
        &self,
        node_public: &PublicKey,
        request: &AppendRequest,
    ) -> Result<(), CoreError> {
        self.verify(node_public)?;
        if self.leaf != request.leaf_bytes() {
            return Err(CoreError::LeafMismatch {
                entry_id: self.entry_id,
            });
        }
        Ok(())
    }

    /// The embedded request (decoded from the leaf).
    pub fn request(&self) -> Result<AppendRequest, CoreError> {
        AppendRequest::from_leaf_bytes(&self.leaf)
    }

    /// Wire serialization (used by the TCP transport).
    pub fn to_bytes(&self) -> Vec<u8> {
        let proof_bytes = self.proof.to_bytes();
        let mut enc = Encoder::with_capacity(128 + proof_bytes.len() + self.leaf.len());
        enc.u64(self.entry_id.log_id)
            .u64(self.entry_id.offset as u64)
            .bytes(self.merkle_root.as_bytes())
            .bytes(&proof_bytes)
            .bytes(&self.leaf)
            .bytes(&self.signature.to_bytes());
        enc.finish()
    }

    /// Parses the wire form. The signature is structurally validated; full
    /// verification still requires [`SignedResponse::verify`].
    pub fn from_bytes(bytes: &[u8]) -> Result<SignedResponse, CoreError> {
        let mut dec = Decoder::new(bytes);
        let log_id = dec.u64().map_err(CoreError::Decode)?;
        let offset = dec.u64().map_err(CoreError::Decode)? as u32;
        let root: [u8; 32] = dec.bytes_fixed().map_err(CoreError::Decode)?;
        let proof_bytes = dec.bytes().map_err(CoreError::Decode)?;
        let proof = merkle_proof_from_bytes(proof_bytes)?;
        let leaf = dec.bytes().map_err(CoreError::Decode)?.to_vec();
        let sig: [u8; 65] = dec.bytes_fixed().map_err(CoreError::Decode)?;
        dec.finish().map_err(CoreError::Decode)?;
        let entry_id = EntryId { log_id, offset };
        let signature = Signature::from_bytes(&sig)
            .map_err(|_| CoreError::BadResponseSignature { entry_id })?;
        Ok(SignedResponse {
            entry_id,
            merkle_root: Hash32(root),
            proof,
            leaf,
            signature,
        })
    }
}

/// Parses a Merkle proof, mapping the error into this crate's type.
fn merkle_proof_from_bytes(bytes: &[u8]) -> Result<MerkleProof, CoreError> {
    MerkleProof::from_bytes(bytes).map_err(|_| CoreError::RequestRejected("malformed merkle proof"))
}

/// The paper's stage-2 record `V = (i, R_f)`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Stage2Record {
    /// Log position.
    pub log_id: u64,
    /// The batch digest committed on-chain.
    pub merkle_root: Hash32,
}

/// One shard's pending contribution to a cluster epoch: the contiguous run
/// of flushed-but-uncommitted batch roots starting at the shard's
/// blockchain-committed frontier. Returned by `epoch_report`; an empty
/// `roots` means the shard has nothing pending.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct ShardGroup {
    /// First uncommitted log position (the shard's committed frontier).
    pub start: u64,
    /// Batch roots for positions `start..start + roots.len()`.
    pub roots: Vec<Hash32>,
}

impl ShardGroup {
    /// Whether the shard reported nothing pending.
    pub fn is_empty(&self) -> bool {
        self.roots.is_empty()
    }
}

/// The coordinator's acknowledgement closing a cluster epoch for one shard:
/// the group it reported is now covered by the on-chain root-of-roots.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct EpochCommit {
    /// The cluster epoch that covered the group (strictly increasing).
    pub epoch: u64,
    /// First log position of the covered group.
    pub start: u64,
    /// Number of covered positions.
    pub count: u64,
    /// The root-of-roots transaction hash (zero when recovered without
    /// provenance).
    pub tx_hash: Hash32,
    /// Block that mined the root-of-roots transaction.
    pub block_number: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use wedge_crypto::Keypair;
    use wedge_merkle::MerkleTree;

    fn request(seq: u64) -> (Keypair, AppendRequest) {
        let kp = Keypair::from_seed(b"types-publisher");
        let req = AppendRequest::new(&kp.secret, seq, format!("payload-{seq}").into_bytes());
        (kp, req)
    }

    #[test]
    fn append_request_roundtrip() {
        let (_, req) = request(7);
        req.verify().unwrap();
        let parsed = AppendRequest::from_leaf_bytes(&req.leaf_bytes()).unwrap();
        assert_eq!(parsed.sequence, 7);
        assert_eq!(parsed.payload, req.payload);
        assert_eq!(parsed.publisher, req.publisher);
        parsed.verify().unwrap();
    }

    #[test]
    fn tampered_request_detected() {
        let (_, mut req) = request(1);
        req.payload.push(b'!');
        assert!(req.verify().is_err());
        let (_, mut req) = request(1);
        req.sequence = 2;
        assert!(req.verify().is_err());
        let (_, mut req) = request(1);
        req.publisher = Address([9; 20]);
        assert!(req.verify().is_err());
    }

    #[test]
    fn response_sign_verify_roundtrip() {
        let node = Keypair::from_seed(b"types-node");
        let (_, req) = request(3);
        let leaves = vec![req.leaf_bytes(), b"other".to_vec()];
        let tree = MerkleTree::from_leaves(&leaves).unwrap();
        let response = SignedResponse::sign(
            &node.secret,
            EntryId {
                log_id: 5,
                offset: 0,
            },
            tree.root(),
            tree.prove(0).unwrap(),
            req.leaf_bytes(),
        );
        response.verify(&node.public).unwrap();
        response.verify_for_request(&node.public, &req).unwrap();
        assert_eq!(response.request().unwrap().sequence, 3);
    }

    #[test]
    fn response_detects_payload_swap() {
        let node = Keypair::from_seed(b"types-node");
        let (kp, req) = request(3);
        let other = AppendRequest::new(&kp.secret, 4, b"other payload".to_vec());
        let leaves = vec![req.leaf_bytes(), other.leaf_bytes()];
        let tree = MerkleTree::from_leaves(&leaves).unwrap();
        // Node responds with the WRONG entry for this request.
        let response = SignedResponse::sign(
            &node.secret,
            EntryId {
                log_id: 5,
                offset: 1,
            },
            tree.root(),
            tree.prove(1).unwrap(),
            other.leaf_bytes(),
        );
        // Structurally valid...
        response.verify(&node.public).unwrap();
        // ...but not for the client's request.
        assert!(matches!(
            response.verify_for_request(&node.public, &req),
            Err(CoreError::LeafMismatch { .. })
        ));
    }

    #[test]
    fn response_detects_wrong_signer() {
        let node = Keypair::from_seed(b"types-node");
        let impostor = Keypair::from_seed(b"impostor");
        let (_, req) = request(1);
        let tree = MerkleTree::from_leaves(&[req.leaf_bytes()]).unwrap();
        let response = SignedResponse::sign(
            &impostor.secret,
            EntryId {
                log_id: 0,
                offset: 0,
            },
            tree.root(),
            tree.prove(0).unwrap(),
            req.leaf_bytes(),
        );
        assert!(response.verify(&node.public).is_err());
    }

    #[test]
    fn response_detects_position_mismatch() {
        let node = Keypair::from_seed(b"types-node");
        let (_, req) = request(1);
        let leaves = vec![req.leaf_bytes(), b"x".to_vec()];
        let tree = MerkleTree::from_leaves(&leaves).unwrap();
        // Claimed offset 1 but proof is for leaf 0.
        let response = SignedResponse::sign(
            &node.secret,
            EntryId {
                log_id: 0,
                offset: 1,
            },
            tree.root(),
            tree.prove(0).unwrap(),
            req.leaf_bytes(),
        );
        assert!(matches!(
            response.verify(&node.public),
            Err(CoreError::ProofPositionMismatch { .. })
        ));
    }

    #[test]
    fn response_detects_tampered_proof() {
        let node = Keypair::from_seed(b"types-node");
        let (_, req) = request(1);
        let leaves = vec![req.leaf_bytes(), b"x".to_vec()];
        let tree = MerkleTree::from_leaves(&leaves).unwrap();
        let mut response = SignedResponse::sign(
            &node.secret,
            EntryId {
                log_id: 0,
                offset: 0,
            },
            tree.root(),
            tree.prove(0).unwrap(),
            req.leaf_bytes(),
        );
        // Tamper with the root after signing: signature check fails first.
        response.merkle_root = Hash32([0xAA; 32]);
        assert!(response.verify(&node.public).is_err());
    }
}
