//! End-to-end tests over real TCP on localhost: the paper's process
//! topology (node process, publisher/user/auditor processes) with the
//! unchanged client roles running against a [`RemoteNode`].

use std::sync::Arc;
use std::time::Duration;

use wedge_chain::{Chain, ChainConfig, Wei};
use wedge_core::{
    deploy_service, Auditor, CommitPhase, LogService, NodeConfig, OffchainNode, Publisher, Reader,
    ServiceConfig,
};
use wedge_crypto::signer::Identity;
use wedge_net::{NodeServer, RemoteNode};
use wedge_sim::Clock;

struct NetWorld {
    chain: Arc<Chain>,
    node: Arc<OffchainNode>,
    server: NodeServer,
    root_record: wedge_chain::Address,
    punishment: wedge_chain::Address,
    client_identity: Identity,
    _miner: wedge_chain::MinerHandle,
}

fn net_world(tag: &str, behavior: wedge_core::NodeBehavior) -> NetWorld {
    let clock = Clock::compressed(2000.0);
    let chain = Chain::new(clock, ChainConfig::default());
    let node_id = Identity::from_seed(format!("net-node-{tag}").as_bytes());
    let client_identity = Identity::from_seed(format!("net-client-{tag}").as_bytes());
    chain.fund(node_id.address(), Wei::from_eth(1000));
    chain.fund(client_identity.address(), Wei::from_eth(1000));
    let miner = chain.start_miner();
    let deployment = deploy_service(
        &chain,
        &node_id,
        client_identity.address(),
        &ServiceConfig {
            escrow: Wei::from_eth(8),
            payment_terms: None,
        },
    )
    .unwrap();
    let dir = std::env::temp_dir().join(format!("wedge-net-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let node = Arc::new(
        OffchainNode::start(
            node_id,
            NodeConfig {
                batch_size: 25,
                batch_linger: Duration::from_millis(5),
                behavior,
                ..Default::default()
            },
            Arc::clone(&chain),
            deployment.root_record,
            &dir,
        )
        .unwrap(),
    );
    let server = NodeServer::bind("127.0.0.1:0", Arc::clone(&node) as _).unwrap();
    NetWorld {
        chain,
        node,
        server,
        root_record: deployment.root_record,
        punishment: deployment.punishment,
        client_identity,
        _miner: miner,
    }
}

fn payloads(n: usize) -> Vec<Vec<u8>> {
    (0..n).map(|i| format!("net-{i}").into_bytes()).collect()
}

#[test]
fn publisher_works_over_tcp() {
    let w = net_world("pub", wedge_core::NodeBehavior::Honest);
    let remote = Arc::new(RemoteNode::connect(w.server.local_addr()).unwrap());
    // The remote handshake learned the real node key.
    assert_eq!(
        remote.node_public_key().to_bytes(),
        w.node.public_key().to_bytes()
    );
    let mut publisher = Publisher::new(
        w.client_identity.clone(),
        Arc::clone(&remote),
        Arc::clone(&w.chain),
        w.root_record,
        Some(w.punishment),
    );
    let outcome = publisher.append_batch(payloads(50)).unwrap();
    assert_eq!(outcome.responses.len(), 50);
    // Every response crossed the wire and still verifies fully.
    w.node.wait_stage2_idle(Duration::from_secs(600)).unwrap();
    for response in &outcome.responses {
        assert_eq!(
            publisher.verify_blockchain_commit(response).unwrap(),
            wedge_core::Stage2Verdict::Committed
        );
    }
}

#[test]
fn reads_and_audits_work_over_tcp() {
    let w = net_world("read", wedge_core::NodeBehavior::Honest);
    // Publish locally, read remotely.
    let mut publisher = Publisher::new(
        w.client_identity.clone(),
        Arc::clone(&w.node),
        Arc::clone(&w.chain),
        w.root_record,
        None,
    );
    let data = payloads(50);
    publisher.append_batch(data.clone()).unwrap();
    w.node.wait_stage2_idle(Duration::from_secs(600)).unwrap();

    let remote = Arc::new(RemoteNode::connect(w.server.local_addr()).unwrap());
    let reader = Reader::new(Arc::clone(&remote), Arc::clone(&w.chain), w.root_record);
    let entry = reader
        .read(wedge_core::EntryId {
            log_id: 1,
            offset: 7,
        })
        .unwrap();
    assert_eq!(entry.request.payload, data[25 + 7]);
    assert_eq!(entry.phase, CommitPhase::BlockchainCommitted);
    let by_seq = reader
        .read_by_sequence(w.client_identity.address(), 3)
        .unwrap();
    assert_eq!(by_seq.request.payload, data[3]);
    // Missing entries come back as clean errors, not hangs.
    assert!(reader
        .read(wedge_core::EntryId {
            log_id: 99,
            offset: 0
        })
        .is_err());

    // Full audit over the wire — including the range-proof scan path.
    let auditor = Auditor::new(Arc::clone(&remote), Arc::clone(&w.chain), w.root_record);
    let report = auditor.audit(0, 50).unwrap();
    assert_eq!(report.entries_checked, 50);
    assert!(report.is_clean());
    let report = auditor.audit_with_range_proofs(0, 50).unwrap();
    assert!(report.is_clean());
}

#[test]
fn remote_client_detects_and_punishes_equivocation() {
    // The full adversarial loop with a network in the middle: remote
    // stage-1 commit, remote evidence, on-chain punishment.
    let w = net_world(
        "evil",
        wedge_core::NodeBehavior::CommitWrongRoot { from_log: 0 },
    );
    let remote = Arc::new(RemoteNode::connect(w.server.local_addr()).unwrap());
    let mut publisher = Publisher::new(
        w.client_identity.clone(),
        Arc::clone(&remote),
        Arc::clone(&w.chain),
        w.root_record,
        Some(w.punishment),
    );
    let outcome = publisher.append_batch(payloads(25)).unwrap();
    w.node.wait_stage2_idle(Duration::from_secs(600)).unwrap();
    let receipt = publisher
        .verify_all_and_punish(&outcome.responses)
        .unwrap()
        .expect("equivocation caught through the network");
    assert!(receipt.status.is_success());
    assert_eq!(w.chain.balance(w.punishment), Wei::ZERO);
}

#[test]
fn concurrent_remote_clients_multiplex() {
    let w = net_world("multi", wedge_core::NodeBehavior::Honest);
    let addr = w.server.local_addr();
    let chain = Arc::clone(&w.chain);
    let root_record = w.root_record;
    crossbeam::thread::scope(|scope| {
        for i in 0..4 {
            let chain = Arc::clone(&chain);
            scope.spawn(move |_| {
                let identity = Identity::from_seed(format!("net-multi-{i}").as_bytes());
                let remote = Arc::new(RemoteNode::connect(addr).unwrap());
                let mut publisher = Publisher::new(identity, remote, chain, root_record, None);
                let outcome = publisher
                    .append_batch((0..30).map(|j| format!("c{i}-e{j}").into_bytes()).collect())
                    .unwrap();
                assert_eq!(outcome.responses.len(), 30);
            });
        }
    })
    .unwrap();
    assert_eq!(w.node.entry_count(), 120);
}

#[test]
fn server_shutdown_is_clean() {
    let mut w = net_world("shutdown", wedge_core::NodeBehavior::Honest);
    let remote = RemoteNode::connect(w.server.local_addr()).unwrap();
    assert_eq!(remote.positions(), 0);
    w.server.shutdown();
    // New connections are refused (or time out) after shutdown...
    std::thread::sleep(Duration::from_millis(50));
    assert!(
        RemoteNode::connect_with_timeout(w.server.local_addr(), Duration::from_millis(300))
            .is_err()
    );
}

#[test]
fn read_many_is_one_round_trip_with_per_entry_results() {
    let w = net_world("readmany", wedge_core::NodeBehavior::Honest);
    let mut publisher = Publisher::new(
        w.client_identity.clone(),
        Arc::clone(&w.node),
        Arc::clone(&w.chain),
        w.root_record,
        None,
    );
    let data = payloads(25);
    publisher.append_batch(data.clone()).unwrap();
    w.node.wait_stage2_idle(Duration::from_secs(600)).unwrap();
    let remote = Arc::new(RemoteNode::connect(w.server.local_addr()).unwrap());
    // Mixed batch: two valid ids, one missing.
    let ids = [
        wedge_core::EntryId {
            log_id: 0,
            offset: 3,
        },
        wedge_core::EntryId {
            log_id: 99,
            offset: 0,
        },
        wedge_core::EntryId {
            log_id: 0,
            offset: 7,
        },
    ];
    let results = remote.read_entries(&ids);
    assert_eq!(results.len(), 3);
    assert!(!results[0].as_ref().unwrap().leaf.is_empty());
    assert!(results[1].is_err());
    assert!(results[2].is_ok());
    // And through the Reader it verifies end-to-end.
    let reader = Reader::new(remote, Arc::clone(&w.chain), w.root_record);
    let verified = reader.read_many(&ids);
    assert!(verified[0].is_ok());
    assert!(verified[1].is_err());
    assert_eq!(verified[2].as_ref().unwrap().request.payload, data[7]);
}
