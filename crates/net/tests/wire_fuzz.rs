//! Fuzzing the wire decoders: arbitrary bytes must never panic, and valid
//! frames always roundtrip.

use proptest::prelude::*;
use wedge_net::wire::{recv_reply, recv_request};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn arbitrary_bytes_never_panic_request_decoder(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let mut cursor = std::io::Cursor::new(bytes);
        // Error or Ok — never a panic, never an unbounded allocation.
        let _ = recv_request(&mut cursor);
    }

    #[test]
    fn arbitrary_bytes_never_panic_reply_decoder(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let mut cursor = std::io::Cursor::new(bytes);
        let _ = recv_reply(&mut cursor);
    }

    #[test]
    fn valid_length_prefix_with_garbage_body_is_rejected(body in prop::collection::vec(any::<u8>(), 9..256)) {
        // Plausible framing, hostile contents.
        let mut frame = Vec::new();
        frame.extend_from_slice(&(body.len() as u32).to_be_bytes());
        frame.extend_from_slice(&body);
        let mut cursor = std::io::Cursor::new(frame.clone());
        let request = recv_request(&mut cursor);
        if let Ok((_, decoded)) = request {
            // If it decoded, re-encoding must produce a frame the decoder
            // accepts again (no ambiguous parses).
            let mut buf = Vec::new();
            wedge_net::wire::send_request(&mut buf, 1, &decoded).unwrap();
            let mut cursor = std::io::Cursor::new(buf);
            prop_assert!(recv_request(&mut cursor).is_ok());
        }
    }

    #[test]
    fn hostile_length_prefixes_never_allocate_unbounded(len in any::<u32>()) {
        let mut frame = Vec::new();
        frame.extend_from_slice(&len.to_be_bytes());
        frame.extend_from_slice(&[0u8; 64]);
        let mut cursor = std::io::Cursor::new(frame);
        // A 4 GB length prefix must be rejected by the cap, not attempted.
        let _ = recv_request(&mut cursor);
    }
}
