//! Integration coverage for the wire-speed RPC plane: accept-loop latency,
//! slow-client shedding on the bounded reply queues, the single-round-trip
//! meta pair, structured errors through the full stack, the striped client
//! pool, and the reply-release rule (reply ⇒ durable) across a node restart
//! through the TCP path.

use std::sync::Arc;
use std::time::{Duration, Instant};

use wedge_chain::{Chain, ChainConfig, Wei};
use wedge_core::{
    deploy_service, AppendRequest, CoreError, EntryId, LogService, NodeConfig, OffchainNode,
    Publisher, ServiceConfig,
};
use wedge_crypto::signer::Identity;
use wedge_net::wire::{send_request, Request};
use wedge_net::{NodeServer, PoolConfig, RemoteNode, RemoteNodePool, ServerConfig};
use wedge_sim::Clock;
use wedge_storage::{StoreConfig, SyncPolicy};

struct NetWorld {
    chain: Arc<Chain>,
    node: Arc<OffchainNode>,
    server: NodeServer,
    root_record: wedge_chain::Address,
    client_identity: Identity,
    node_identity: Identity,
    dir: std::path::PathBuf,
    _miner: wedge_chain::MinerHandle,
}

fn net_world(tag: &str, node_config: NodeConfig, server_config: ServerConfig) -> NetWorld {
    let clock = Clock::compressed(2000.0);
    let chain = Chain::new(clock, ChainConfig::default());
    let node_identity = Identity::from_seed(format!("plane-node-{tag}").as_bytes());
    let client_identity = Identity::from_seed(format!("plane-client-{tag}").as_bytes());
    chain.fund(node_identity.address(), Wei::from_eth(1000));
    chain.fund(client_identity.address(), Wei::from_eth(1000));
    let miner = chain.start_miner();
    let deployment = deploy_service(
        &chain,
        &node_identity,
        client_identity.address(),
        &ServiceConfig {
            escrow: Wei::from_eth(8),
            payment_terms: None,
        },
    )
    .expect("deploy contracts");
    let dir = std::env::temp_dir().join(format!("wedge-plane-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let node = Arc::new(
        OffchainNode::start(
            node_identity.clone(),
            node_config,
            Arc::clone(&chain),
            deployment.root_record,
            &dir,
        )
        .expect("start node"),
    );
    let server = NodeServer::bind_with_config("127.0.0.1:0", Arc::clone(&node) as _, server_config)
        .expect("bind server");
    NetWorld {
        chain,
        node,
        server,
        root_record: deployment.root_record,
        client_identity,
        node_identity,
        dir,
        _miner: miner,
    }
}

fn quick_node_config() -> NodeConfig {
    NodeConfig {
        batch_size: 25,
        batch_linger: Duration::from_millis(5),
        ..Default::default()
    }
}

fn publisher(w: &NetWorld, service: Arc<impl LogService + 'static>) -> Publisher {
    Publisher::new(
        w.client_identity.clone(),
        service,
        Arc::clone(&w.chain),
        w.root_record,
        None,
    )
}

fn payloads(n: usize, size: usize) -> Vec<Vec<u8>> {
    (0..n)
        .map(|i| {
            let mut p = format!("plane-{i}-").into_bytes();
            p.resize(size.max(p.len()), 0xAB);
            p
        })
        .collect()
}

/// The accept path must serve new connections immediately: the old accept
/// loop slept 10 ms between polls, adding up to 10 ms (5 ms expected) to
/// every time-to-first-reply. 30 sequential connect+hello handshakes would
/// have eaten ~150 ms of sleep alone; the blocking accept loop must stay
/// far under that.
#[test]
fn connect_handshake_has_no_accept_poll_latency() {
    let w = net_world("latency", quick_node_config(), ServerConfig::default());
    let addr = w.server.local_addr();
    // Warm up (lazy init, first-connection costs).
    drop(RemoteNode::connect(addr).expect("warmup connect"));
    let started = Instant::now();
    let count = 30;
    for _ in 0..count {
        // Each connect completes a hello round trip, so it observes the
        // full accept-to-first-reply path.
        drop(RemoteNode::connect(addr).expect("connect"));
    }
    let elapsed = started.elapsed();
    assert!(
        elapsed < Duration::from_millis(150),
        "{count} connects took {elapsed:?}: accept path is adding poll latency"
    );
    assert_eq!(w.server.stats().connections_shed, 0);
}

/// A client that stops draining its socket must not grow node memory: its
/// bounded reply queue fills, further replies are shed (counted), and a
/// healthy connection on another worker pair is unaffected.
#[test]
fn slow_client_sheds_replies_without_hurting_others() {
    let server_config = ServerConfig {
        workers: 2,
        reply_queue_depth: 4,
        write_stall_timeout: Duration::from_secs(2),
        ..ServerConfig::default()
    };
    let w = net_world("shed", quick_node_config(), server_config);
    let addr = w.server.local_addr();
    // Publish through a second, default-config server over the same node:
    // burst append replies would overrun the depth-4 queue under test. Fat
    // payloads make reply frames fill the socket buffers quickly.
    let side_server =
        NodeServer::bind("127.0.0.1:0", Arc::clone(&w.node) as _).expect("bind side server");
    {
        let remote = Arc::new(RemoteNode::connect(side_server.local_addr()).expect("connect side"));
        let mut p = publisher(&w, remote);
        p.append_batch(payloads(32, 8 * 1024)).expect("append");
    }

    // The slow client: floods Read requests, never drains a single reply.
    let mut slow = std::net::TcpStream::connect(addr).expect("raw connect");
    let target = EntryId {
        log_id: 0,
        offset: 0,
    };
    for req_id in 0..500u64 {
        send_request(&mut slow, req_id, &Request::Read(target)).expect("send read");
    }
    // The writer stalls once the kernel buffers fill; the bounded queue
    // (depth 4) then sheds.
    let deadline = Instant::now() + Duration::from_secs(10);
    while w.server.stats().queue_shed == 0 {
        assert!(
            Instant::now() < deadline,
            "no shed observed: {:?}",
            w.server.stats()
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    // Node memory is bounded: at most queue-depth replies are parked for
    // the slow session; everything else was dropped, not buffered.
    let stats = w.server.stats();
    assert!(stats.queue_shed > 0);

    // A healthy client on the other worker pair still gets served.
    let healthy =
        RemoteNode::connect_with_timeout(addr, Duration::from_secs(5)).expect("healthy connect");
    let response = healthy.read_entry(target).expect("healthy read");
    response
        .verify(&w.node.public_key())
        .expect("verified read while peer is stalled");
    drop(healthy);
    // Unblock the stalled writer so server shutdown is prompt.
    let _ = slow.shutdown(std::net::Shutdown::Both);
    let _ = std::fs::remove_dir_all(&w.dir);
}

/// An append reply that cannot be queued must kill the connection, not be
/// silently shed: the client's append continuation fires only on reply or
/// connection close, so a shed reply on a live connection would hang the
/// publisher forever (and leak a pool window slot). The kill fails every
/// pending append on the peer at once; other connections are unaffected.
#[test]
fn undeliverable_append_reply_kills_connection_instead_of_hanging() {
    let server_config = ServerConfig {
        workers: 2,
        reply_queue_depth: 2,
        append_reply_grace: Duration::from_millis(100),
        write_stall_timeout: Duration::from_secs(2),
        ..ServerConfig::default()
    };
    let w = net_world("appendkill", quick_node_config(), server_config);
    let addr = w.server.local_addr();
    // A raw publisher that floods signed appends and never reads a single
    // reply: the kernel buffers fill, the depth-2 reply queue fills, and
    // the next undeliverable append reply must kill the connection.
    let key = *w.client_identity.secret_key();
    let mut slow = std::net::TcpStream::connect(addr).expect("raw connect");
    for seq in 0..600u64 {
        let request = AppendRequest::new(&key, seq, vec![0xCD; 16 * 1024]);
        // On slow machines the server may kill the connection before the
        // flood finishes; a send error (broken pipe / reset) is the kill
        // arriving early, which is exactly the behaviour under test.
        if send_request(&mut slow, seq + 1, &Request::Append(request)).is_err() {
            break;
        }
    }
    let deadline = Instant::now() + Duration::from_secs(20);
    while w.server.stats().slow_client_kills == 0 {
        assert!(
            Instant::now() < deadline,
            "append flood never killed the connection: {:?}",
            w.server.stats()
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    // A healthy client is unaffected by the dead peer.
    let healthy =
        RemoteNode::connect_with_timeout(addr, Duration::from_secs(5)).expect("healthy connect");
    assert_eq!(healthy.entries(), w.node.entry_count());
    drop(healthy);
    let _ = slow.shutdown(std::net::Shutdown::Both);
    let _ = std::fs::remove_dir_all(&w.dir);
}

/// `positions()` + `entries()` must cost one Meta round trip for the pair,
/// not one each — counted as frames actually received by the server.
#[test]
fn meta_pair_is_one_round_trip() {
    let w = net_world("metapair", quick_node_config(), ServerConfig::default());
    {
        let remote = Arc::new(RemoteNode::connect(w.server.local_addr()).expect("connect"));
        let mut p = publisher(&w, Arc::clone(&remote));
        p.append_batch(payloads(50, 64)).expect("append");
    }
    let remote = RemoteNode::connect(w.server.local_addr()).expect("fresh connect");
    let base = w.server.stats().frames_rx;
    let positions = remote.positions();
    let entries = remote.entries();
    assert_eq!(positions, w.node.log_positions());
    assert_eq!(entries, w.node.entry_count());
    assert_eq!(
        w.server.stats().frames_rx - base,
        1,
        "the positions/entries pair must share one Meta RPC"
    );
    // Consume-once: polling the same accessor refreshes instead of going
    // stale, costing a new round trip.
    let entries_again = remote.entries();
    assert_eq!(entries_again, w.node.entry_count());
    assert_eq!(w.server.stats().frames_rx - base, 2);
    let _ = std::fs::remove_dir_all(&w.dir);
}

/// An append routed to one pool stripe must invalidate the Meta pair
/// cached on *every* stripe: positions()/entries() are round-robined
/// independently of the append, so a value cached on an idle stripe before
/// the append must never be served after it.
#[test]
fn pool_meta_cache_is_invalidated_on_every_stripe() {
    let w = net_world("poolmeta", quick_node_config(), ServerConfig::default());
    let pool = Arc::new(RemoteNodePool::connect(w.server.local_addr(), 2).expect("pool connect"));
    let mut p = publisher(&w, Arc::clone(&pool));
    p.append_batch(payloads(4, 64)).expect("seed append");
    for round in 1..5 {
        // Prime: caches the companion `positions` value on whichever
        // stripe served this call.
        let _ = pool.entries();
        // Append through the pool — a different stripe than the cache
        // holder, with high probability, under round-robin striping.
        p.append_batch(payloads(4, 64)).expect("append");
        assert_eq!(
            pool.positions(),
            w.node.log_positions(),
            "round {round}: stale cached positions served after an append"
        );
        assert_eq!(
            pool.entries(),
            w.node.entry_count(),
            "round {round}: stale cached entries served after an append"
        );
    }
    let _ = std::fs::remove_dir_all(&w.dir);
}

/// Not-found errors must carry the real `EntryId` across the wire instead
/// of the historical `u64::MAX` sentinel fabricated by string matching.
#[test]
fn entry_not_found_carries_real_id_over_tcp() {
    let w = net_world("notfound", quick_node_config(), ServerConfig::default());
    let remote = RemoteNode::connect(w.server.local_addr()).expect("connect");
    let missing = EntryId {
        log_id: 7,
        offset: 3,
    };
    match remote.read_entry(missing) {
        Err(CoreError::EntryNotFound(id)) => {
            assert_eq!(id, missing, "sentinel id leaked through the wire");
        }
        other => panic!("expected EntryNotFound, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&w.dir);
}

/// The striped client pool drives a publisher end to end: buffered appends
/// flushed per burst, replies striped across connections, the in-flight
/// window bounding the pipeline. Frame buffers recycle on the server.
#[test]
fn striped_pool_publishes_and_reads() {
    let w = net_world("pool", quick_node_config(), ServerConfig::default());
    let pool = Arc::new(
        RemoteNodePool::connect_with_config(
            w.server.local_addr(),
            PoolConfig {
                stripes: 4,
                inflight_window: 16, // small: exercises blocking acquire
                timeout: Duration::from_secs(30),
            },
        )
        .expect("pool connect"),
    );
    assert_eq!(pool.stripes(), 4);
    assert_eq!(
        pool.node_public_key().to_bytes(),
        w.node.public_key().to_bytes()
    );
    let mut p = publisher(&w, Arc::clone(&pool));
    let outcome = p.append_batch(payloads(200, 256)).expect("append via pool");
    assert_eq!(outcome.responses.len(), 200);
    // Reads work through the pool too.
    let first = pool
        .read_entry(outcome.responses[0].entry_id)
        .expect("read via pool");
    first.verify(&w.node.public_key()).expect("verifies");
    let stats = w.server.stats();
    assert!(stats.connections_accepted >= 4, "stats: {stats:?}");
    assert!(stats.peak_connections >= 4, "stats: {stats:?}");
    assert!(stats.replies_sent >= 200, "stats: {stats:?}");
    assert!(
        stats.buffer_pool_hits > 0,
        "rx/tx frame buffers never recycled: {stats:?}"
    );
    let _ = std::fs::remove_dir_all(&w.dir);
}

/// The reply-release rule survives the coalescing writer: every entry a
/// group-commit node replied to **through TCP** must still be there after
/// a restart — the pooled writer may delay or shed replies but never
/// releases one before durability.
#[test]
fn replied_entries_survive_restart_through_tcp() {
    let group_commit = NodeConfig {
        batch_size: 8,
        batch_linger: Duration::from_millis(5),
        verify_requests: false,
        replicas: 2,
        replica_link_delay: Duration::from_micros(100),
        store: StoreConfig {
            sync: SyncPolicy::GroupCommit {
                max_batches: 4,
                max_delay: Duration::from_millis(50),
            },
            ..Default::default()
        },
        ..Default::default()
    };
    let total = 64usize;
    let w = net_world("restart", group_commit.clone(), ServerConfig::default());
    {
        let pool =
            Arc::new(RemoteNodePool::connect(w.server.local_addr(), 2).expect("pool connect"));
        let mut p = publisher(&w, pool);
        // append_batch returns only once every reply crossed the wire —
        // i.e. once the node promised durability for all entries.
        p.append_batch(payloads(total, 64)).expect("append");
        w.node
            .wait_stage2_idle(Duration::from_secs(3600))
            .expect("stage2 idle");
    }
    // Tear down the whole serving stack, then restart over the same dir.
    drop(w.server);
    let node = w.node;
    drop(node);
    let restarted = OffchainNode::start(
        w.node_identity.clone(),
        group_commit,
        Arc::clone(&w.chain),
        w.root_record,
        &w.dir,
    )
    .expect("restart node");
    assert_eq!(
        restarted.entry_count(),
        total as u64,
        "replied entries lost across restart: reply-release rule broken"
    );
    drop(restarted);
    let _ = std::fs::remove_dir_all(&w.dir);
}
