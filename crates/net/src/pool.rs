//! A striped client connection pool.
//!
//! A single [`RemoteNode`] serializes all traffic through one socket and
//! one writer lock — under fan-out the lock convoy, not the network,
//! bounds throughput. [`RemoteNodePool`] opens `stripes` independent
//! connections and spreads requests across them round-robin; each stripe
//! runs in buffered-append mode so bursts share socket writes, and a
//! bounded in-flight append window provides client-side backpressure (a
//! publisher can never buffer unboundedly ahead of the node).
//!
//! The pool implements [`LogService`], so `Publisher`/`Reader`/`Auditor`
//! fan out across connections unchanged.

use std::net::ToSocketAddrs;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};
use wedge_core::node::ReplyFn;
use wedge_core::{
    AppendRequest, CoreError, EntryId, EpochCommit, LogService, ShardGroup, SignedResponse,
};
use wedge_crypto::hash::Hash32;
use wedge_crypto::keys::Address;
use wedge_crypto::PublicKey;
use wedge_merkle::RangeProof;

use crate::RemoteNode;

/// Tuning for [`RemoteNodePool`].
#[derive(Clone, Debug)]
pub struct PoolConfig {
    /// Independent connections to open.
    pub stripes: usize,
    /// Maximum appends in flight (submitted, reply not yet delivered)
    /// across the whole pool; further submissions block.
    pub inflight_window: usize,
    /// Per-operation timeout for every stripe.
    pub timeout: Duration,
}

impl Default for PoolConfig {
    fn default() -> PoolConfig {
        PoolConfig {
            stripes: 4,
            inflight_window: 4096,
            timeout: Duration::from_secs(30),
        }
    }
}

/// Counts in-flight appends; acquire blocks while the window is full.
struct WindowGate {
    cap: usize,
    inflight: Mutex<usize>,
    released: Condvar,
}

impl WindowGate {
    /// Claims a slot if one is free, without blocking.
    fn try_acquire(&self) -> bool {
        let mut inflight = self.inflight.lock();
        if *inflight >= self.cap {
            return false;
        }
        *inflight += 1;
        true
    }

    fn acquire(&self) {
        let mut inflight = self.inflight.lock();
        while *inflight >= self.cap {
            self.released.wait(&mut inflight);
        }
        *inflight += 1;
    }

    fn release(&self) {
        let mut inflight = self.inflight.lock();
        *inflight = inflight.saturating_sub(1);
        drop(inflight);
        self.released.notify_one();
    }
}

/// N multiplexed connections to one node, striped round-robin.
pub struct RemoteNodePool {
    stripes: Vec<RemoteNode>,
    next: AtomicU64,
    window: Arc<WindowGate>,
}

impl RemoteNodePool {
    /// Opens `stripes` connections to `addr` with default tuning.
    pub fn connect(
        addr: impl ToSocketAddrs + Clone,
        stripes: usize,
    ) -> std::io::Result<RemoteNodePool> {
        RemoteNodePool::connect_with_config(
            addr,
            PoolConfig {
                stripes,
                ..PoolConfig::default()
            },
        )
    }

    /// Opens the pool with explicit tuning.
    pub fn connect_with_config(
        addr: impl ToSocketAddrs + Clone,
        config: PoolConfig,
    ) -> std::io::Result<RemoteNodePool> {
        let mut stripes = Vec::with_capacity(config.stripes.max(1));
        for _ in 0..config.stripes.max(1) {
            let node = RemoteNode::connect_with_timeout(addr.clone(), config.timeout)?;
            node.set_buffered_appends(true);
            stripes.push(node);
        }
        // Every stripe handshook with the same endpoint; a key mismatch
        // means the "node" is not one node.
        let key = stripes
            .first()
            .map(|s| s.node_public_key())
            .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidInput, "no stripes"))?;
        if stripes.iter().any(|s| s.node_public_key() != key) {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "stripes reached nodes with different identities",
            ));
        }
        Ok(RemoteNodePool {
            stripes,
            next: AtomicU64::new(0),
            window: Arc::new(WindowGate {
                cap: config.inflight_window.max(1),
                inflight: Mutex::new(0),
                released: Condvar::new(),
            }),
        })
    }

    /// Number of connections in the pool.
    pub fn stripes(&self) -> usize {
        self.stripes.len()
    }

    /// Round-robin stripe selection: request-id striping without any
    /// shared lock on the hot path.
    fn stripe(&self) -> &RemoteNode {
        let i = self.next.fetch_add(1, Ordering::Relaxed) as usize;
        // Non-empty by construction.
        &self.stripes[i % self.stripes.len()]
    }
}

impl LogService for RemoteNodePool {
    fn node_public_key(&self) -> PublicKey {
        // All stripes verified identical at connect time.
        self.stripe().node_public_key()
    }

    fn submit_request(&self, request: AppendRequest, reply: ReplyFn) -> Result<(), CoreError> {
        // The append is routed to one stripe, but it stales the Meta pair
        // cached on *every* stripe — a later positions()/entries() call is
        // round-robined independently of this append and must not read a
        // pre-append value off an idle stripe.
        for stripe in &self.stripes {
            stripe.invalidate_meta_cache();
        }
        // Bounded in-flight window: blocks (backpressure) when the node or
        // network falls behind, releases when the reply lands. Before
        // blocking, push every buffered request out — the submissions that
        // will free the window may still be sitting in stripe buffers, and
        // waiting on them unflushed would deadlock a burst larger than the
        // window.
        if !self.window.try_acquire() {
            self.flush();
            self.window.acquire();
        }
        let gate = Arc::clone(&self.window);
        let wrapped: ReplyFn = Box::new(move |result| {
            gate.release();
            reply(result);
        });
        // On error the stripe has already invoked the callback (releasing
        // the window slot); just propagate.
        self.stripe().submit_request(request, wrapped)
    }

    fn flush(&self) {
        for stripe in &self.stripes {
            stripe.flush();
        }
    }

    fn read_entry(&self, id: EntryId) -> Result<SignedResponse, CoreError> {
        self.stripe().read_entry(id)
    }

    fn read_entries(&self, ids: &[EntryId]) -> Vec<Result<SignedResponse, CoreError>> {
        self.stripe().read_entries(ids)
    }

    fn read_entry_by_sequence(
        &self,
        publisher: Address,
        sequence: u64,
    ) -> Result<SignedResponse, CoreError> {
        self.stripe().read_entry_by_sequence(publisher, sequence)
    }

    fn read_position(&self, log_id: u64) -> Result<Vec<SignedResponse>, CoreError> {
        self.stripe().read_position(log_id)
    }

    fn position_len(&self, log_id: u64) -> Option<u32> {
        self.stripe().position_len(log_id)
    }

    fn scan(
        &self,
        log_id: u64,
        start: u32,
        count: u32,
    ) -> Result<(Vec<Vec<u8>>, RangeProof, Hash32), CoreError> {
        self.stripe().scan(log_id, start, count)
    }

    fn positions(&self) -> u64 {
        self.stripe().positions()
    }

    fn entries(&self) -> u64 {
        self.stripe().entries()
    }

    fn meta(&self, log_id: u64) -> (u64, u64, Option<u32>) {
        self.stripe().meta(log_id)
    }

    fn epoch_report(&self, max_group: usize) -> Result<ShardGroup, CoreError> {
        self.stripe().epoch_report(max_group)
    }

    fn epoch_commit(&self, commit: EpochCommit) -> Result<u64, CoreError> {
        self.stripe().epoch_commit(commit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_gate_blocks_at_capacity_and_releases() {
        let gate = Arc::new(WindowGate {
            cap: 2,
            inflight: Mutex::new(0),
            released: Condvar::new(),
        });
        gate.acquire();
        gate.acquire();
        let blocked = Arc::clone(&gate);
        let t = std::thread::spawn(move || {
            blocked.acquire(); // blocks until a release
            blocked.release();
        });
        std::thread::sleep(Duration::from_millis(50));
        assert!(!t.is_finished(), "third acquire must block at cap 2");
        gate.release();
        t.join().expect("gated thread");
        gate.release();
        assert_eq!(*gate.inflight.lock(), 0);
    }
}
