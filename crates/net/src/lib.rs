//! # wedge-net
//!
//! TCP transport for the WedgeBlock logging service, mirroring the paper's
//! prototype in which the Offchain Node and the client roles are separate
//! processes communicating over RPC (§5).
//!
//! - [`NodeServer`] — serves any [`wedge_core::LogService`] (normally an
//!   `OffchainNode`) on a TCP address, with a fixed connection worker pool,
//!   coalescing writers, pooled frame buffers, and [`NetStats`] metering.
//! - [`RemoteNode`] — a client connection that itself implements
//!   `LogService`, so `Publisher`, `Reader` and `Auditor` work across the
//!   network unchanged.
//! - [`RemoteNodePool`] — N striped connections behind one `LogService`,
//!   for clients that fan out.
//!
//! One connection is multiplexed: every frame carries a request id, and
//! asynchronous append replies (issued at batch-flush time) interleave with
//! synchronous reads.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod buffer;
mod client;
mod pool;
mod server;
mod stats;
pub mod wire;

pub use client::RemoteNode;
pub use pool::{PoolConfig, RemoteNodePool};
pub use server::{NodeServer, ServerConfig};
pub use stats::NetStats;
